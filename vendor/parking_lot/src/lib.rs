//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds hermetically — no crates-io access — so the small
//! slice of `parking_lot` the repo actually uses is reimplemented here on
//! top of `std::sync`, preserving the two API differences that matter to
//! callers:
//!
//! * [`Mutex::lock`] returns a guard directly (no poisoning `Result`);
//!   a panic while holding the lock does not poison it for other threads.
//! * [`Condvar::wait`] takes `&mut MutexGuard` instead of consuming the
//!   guard and returning a new one.
//!
//! Only what `cca-comm`'s router and `cca-core`'s executor need is
//! provided: `Mutex`, `MutexGuard`, `Condvar`. Everything is a thin safe
//! wrapper; there is no parking, no word-sized locks, and fairness is
//! whatever `std::sync` provides on the platform.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion primitive with the `parking_lot` API: `lock()`
/// returns the guard directly and panics never poison the lock.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this ignores poisoning: if another thread
    /// panicked while holding the lock, the data is handed over as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`]. The `Option` indirection exists
/// so [`Condvar::wait`] can move the inner `std` guard out and back in
/// while the caller keeps holding `&mut MutexGuard` — the slot is only
/// ever empty inside `wait`, never observable to callers.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable with the `parking_lot` calling convention:
/// `wait` reborrows the guard in place instead of consuming it.
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    /// Blocks until another thread notifies this condvar. Spurious wakeups
    /// are possible, exactly as with `std` — callers must re-check their
    /// predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(7_i32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the data is still reachable.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }
}
