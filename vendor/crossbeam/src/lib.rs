//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The workspace builds hermetically (no crates-io access), so the slice
//! of `crossbeam` the executor uses — the work-stealing [`deque`] — is
//! reimplemented here with safe, mutex-backed queues. The API shape
//! (`Injector` / `Worker` / `Stealer` / [`deque::Steal`]) matches
//! `crossbeam-deque` so the executor code reads like it would against the
//! real crate; the lock-free innards do not. On this repo's workloads a
//! job is a whole SAMR patch kernel (micro- to milliseconds), so queue
//! synchronization cost is noise.

pub mod deque {
    //! Work-stealing deques: a global injector plus per-worker queues that
    //! other workers can steal from.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    fn locked<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match q.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried. The mutex-backed
        /// implementation never produces this, but callers written against
        /// real `crossbeam` handle it, so it stays in the enum.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// True if the steal lost a race and should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// True if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A FIFO queue shared by all workers; tasks are injected here by the
    /// submitting thread and pulled by whichever worker gets there first.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            locked(&self.queue).push_back(task);
        }

        /// Steals one task from the front of the global queue.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `dest`'s local queue and pops one of
        /// them for immediate execution.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut global = locked(&self.queue);
            let first = match global.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            // Move up to half of what remains into the destination queue,
            // mirroring crossbeam's batching heuristic.
            let batch = global.len() / 2;
            if batch > 0 {
                let mut local = locked(&dest.queue);
                for _ in 0..batch {
                    match global.pop_front() {
                        Some(t) => local.push_back(t),
                        None => break,
                    }
                }
            }
            Steal::Success(first)
        }

        /// True if no tasks are queued.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            locked(&self.queue).len()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// A worker-local queue. The owning worker pushes and pops at the front;
    /// [`Stealer`]s take from the back.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Self {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the local queue.
        pub fn push(&self, task: T) {
            locked(&self.queue).push_back(task);
        }

        /// Pops the next task in FIFO order.
        pub fn pop(&self) -> Option<T> {
            locked(&self.queue).pop_front()
        }

        /// True if the local queue is empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }

        /// Creates a handle other threads can steal from.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle for stealing tasks from another worker's queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals one task from the back of the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True if the victim's queue is empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_fifo_and_batch() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            assert_eq!(inj.steal().success(), Some(0));
            let w = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(1));
            // Half of the remaining 8 moved into the local queue.
            assert!(!w.is_empty());
            assert_eq!(w.pop(), Some(2));
        }

        #[test]
        fn stealer_takes_from_opposite_end() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal().success(), Some(3));
            assert_eq!(w.pop(), Some(1));
        }

        #[test]
        fn steal_across_threads() {
            let inj = std::sync::Arc::new(Injector::new());
            for i in 0..100 {
                inj.push(i);
            }
            let mut handles = Vec::new();
            for _ in 0..4 {
                let inj = std::sync::Arc::clone(&inj);
                handles.push(std::thread::spawn(move || {
                    let mut got = 0;
                    while inj.steal().success().is_some() {
                        got += 1;
                    }
                    got
                }));
            }
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 100);
        }
    }
}
