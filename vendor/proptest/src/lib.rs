//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds hermetically (no crates-io access), so the
//! property tests run against this small reimplementation of the proptest
//! API surface they use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `arg in strategy` parameters, and `#[test]` attributes;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * strategies: half-open numeric ranges, tuples of strategies,
//!   [`collection::vec`], [`collection::hash_set`],
//!   [`sample::subsequence`], [`sample::select`], and
//!   [`strategy::Strategy::prop_map`].
//!
//! Differences from the real crate, deliberately accepted for a test-only
//! shim: no shrinking (a failing case reports its inputs verbatim), and
//! case generation is **deterministic** — seeded from the test's module
//! path — instead of OS-random with a persistence file. Rejections via
//! `prop_assume!` regenerate the case, with a global attempt cap.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a
    /// concrete value directly and no shrinking ever happens.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty i64 strategy range");
            let span = self.end.abs_diff(self.start);
            (self.start as i128 + rng.below_u64(span) as i128) as i64
        }
    }

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty usize strategy range");
            self.start + rng.below_u64((self.end - self.start) as u64) as usize
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod test_runner {
    //! Configuration, the deterministic RNG, and case-level errors.

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` passing cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert!`-style failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejection: the inputs are outside the property's
        /// precondition; the runner draws a fresh case.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Deterministic xoshiro256** generator.
    ///
    /// Seeded from the test's name so every `cargo test` run replays the
    /// same cases — failures are reproducible without a persistence file.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the generator for a named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a of the name, then SplitMix64 expansion into the state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            let mut x = h ^ 0x9E37_79B9_7F4A_7C15;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, n)`; widening multiply keeps bias < 2^-64.
        pub fn below_u64(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below_u64(0)");
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, n)` as `usize`.
        pub fn below(&mut self, n: usize) -> usize {
            self.below_u64(n as u64) as usize
        }
    }
}

pub mod collection {
    //! Strategies for collections of generated elements.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Inclusive size bounds for generated collections. Built from a bare
    /// `usize` (exact size) or a half-open `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        /// Draws a size within the bounds.
        pub(crate) fn pick(self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo {
                self.lo
            } else {
                self.lo + rng.below(self.hi - self.lo + 1)
            }
        }

        pub(crate) fn lo(self) -> usize {
            self.lo
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` of distinct values from `element`, with a target size
    /// drawn from `size`. If the element space is too small to reach the
    /// target, the set saturates at whatever was collected — real proptest
    /// would reject instead, but no in-repo test generates near-exhaustive
    /// sets.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            let budget = 20 * target.max(self.size.lo()) + 100;
            for _ in 0..budget {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit value lists.

    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Order-preserving subsequence of `values` whose length is drawn from
    /// `size`.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }

    /// Strategy returned by [`subsequence`].
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.values.len();
            let want = self.size.pick(rng).min(n);
            // Uniform n-choose-want combination, in order: include element
            // j with probability (still needed) / (still remaining).
            let mut out = Vec::with_capacity(want);
            let mut needed = want;
            for (j, v) in self.values.iter().enumerate() {
                if needed == 0 {
                    break;
                }
                let remaining = n - j;
                if rng.below(remaining) < needed {
                    out.push(v.clone());
                    needed -= 1;
                }
            }
            out
        }
    }

    /// Uniform choice of one element of `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select of empty list");
        Select { values }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len())].clone()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a property inside a `proptest!` body; on failure the current
/// case fails with the formatted message (and its inputs are reported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Rejects the current case (precondition not met); the runner draws a
/// fresh one without counting this as a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
            let __pt_cases = __pt_config.cases;
            let __pt_max_attempts = __pt_cases.saturating_mul(20).max(100);
            let mut __pt_rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __pt_passed: u32 = 0;
            let mut __pt_attempts: u32 = 0;
            while __pt_passed < __pt_cases {
                __pt_attempts += 1;
                assert!(
                    __pt_attempts <= __pt_max_attempts,
                    "proptest {}: too many rejected cases ({} passed of {})",
                    stringify!($name), __pt_passed, __pt_cases
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);)+
                let mut __pt_inputs = ::std::string::String::new();
                $(__pt_inputs.push_str(&format!(
                    "\n    {} = {:?}", stringify!($arg), &$arg
                ));)+
                let __pt_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __pt_result {
                    ::std::result::Result::Ok(()) => __pt_passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}\n  inputs:{}",
                            stringify!($name), __pt_passed, msg, __pt_inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0.25f64..0.75, n in -3i64..9, k in 2usize..5) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((-3..9).contains(&n));
            prop_assert!((2..5).contains(&k));
        }

        #[test]
        fn vec_and_set_sizes(
            v in prop::collection::vec(0.0f64..1.0, 3..7),
            s in prop::collection::hash_set((0i64..10, 0i64..10), 1..20),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(!s.is_empty() && s.len() < 20);
        }

        #[test]
        fn subsequence_full_and_mapped(
            full in prop::sample::subsequence(vec![0usize, 1, 2, 3, 4], 5),
            pair in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| (a.min(b), a.max(b))),
        ) {
            prop_assert_eq!(full, vec![0usize, 1, 2, 3, 4]);
            prop_assert!(pair.0 <= pair.1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x < 0.9);
            prop_assert!(x < 0.9);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0, "x = {} is not > 2", x);
            }
        }
        always_fails();
    }
}
