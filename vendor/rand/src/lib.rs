//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Hermetic builds can't fetch crates-io, so the benches and property
//! tests get this small deterministic PRNG instead. The API mirrors the
//! subset of `rand` 0.8 the repo uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open ranges, [`Rng::gen_bool`], and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded via SplitMix64 —
//! not the real `StdRng` (ChaCha12), so streams differ from upstream
//! `rand`, but every in-repo use seeds explicitly and only needs
//! determinism and reasonable equidistribution, not a specific stream.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a value in `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1), then affine map.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Widening multiply of a random word against the span: keeps modulo bias
/// below 2^-64, plenty for test workloads.
fn scale_to_span<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = range.end.abs_diff(range.start) as u128;
                (range.start as i128 + scale_to_span(span, rng) as i128) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end - range.start) as u128;
                range.start + scale_to_span(span, rng) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i32, i64);
impl_sample_uniform_unsigned!(u32, u64, usize);

/// User-facing sampling methods, in the style of `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range, self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_range(0.0..1.0, self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of seeded generators, in the style of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; the stream differs from
    /// upstream (which is ChaCha12) but is fixed for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(0.8f64..1.2);
            assert!((0.8..1.2).contains(&x));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
