//! The paper's §4.2 experiment (scaled down to laptop size): ignition
//! fronts in a 2D H₂–air reaction–diffusion system on a structured
//! adaptively refined mesh, with three hot spots, operator-split RKC
//! diffusion + implicit point chemistry. Prints the peak-temperature
//! history and the final AMR patch map.
//!
//! ```text
//! cargo run --release --example reaction_diffusion
//! ```

use cca_hydro::apps::reaction_diffusion::{run_reaction_diffusion, RdConfig};

fn main() {
    let cfg = RdConfig {
        nx: 24,
        length: 0.01, // the paper's 10 mm square
        ratio: 2,     // the paper's refinement ratio
        max_levels: 2,
        dt: 5.0e-7,
        n_steps: 4,
        regrid_interval: 2,
        threshold: 40.0,
        with_chemistry: true,
        t_hot: 1400.0,
    };
    println!("# 2D reaction-diffusion flame (paper section 4.2, fig. 2, table 2)");
    println!(
        "# domain {} mm square, coarse mesh {}x{}, refinement ratio {}, {} levels",
        cfg.length * 1e3,
        cfg.nx,
        cfg.nx,
        cfg.ratio,
        cfg.max_levels
    );
    let (report, arena) = run_reaction_diffusion(&cfg).expect("assembly runs");

    println!("\n# t [us]   max T [K]   max Y_H2O2");
    for ((t, tmax), (_, h2o2)) in report.t_max_series.iter().zip(&report.h2o2_max_series) {
        println!("{:8.2}  {:9.1}  {:11.3e}", t * 1e6, tmax, h2o2);
    }

    println!(
        "\n# final AMR structure (cells per level): {:?}",
        report.cells_per_level
    );
    for (level, lo, hi) in &report.final_patches {
        println!(
            "#   level {level}: patch [{},{}] .. [{},{}]",
            lo[0], lo[1], hi[0], hi[1]
        );
    }

    println!("\n# assembly (fig. 2 stand-in):\n{arena}");
}
