//! `cca_serve` — batch front-end for the simulation job server.
//!
//! Feeds a request stream to [`cca_serve::Server`] and prints one outcome
//! line per request plus the server statistics table. Three modes:
//!
//! ```text
//! cargo run --example cca_serve -- --demo          # built-in showcase stream
//! cargo run --example cca_serve -- --loadgen [N]   # deterministic loadgen, N jobs
//! cargo run --example cca_serve -- --fleet [N]     # multi-tenant fleet loadgen, N shards
//! cargo run --example cca_serve -- requests.txt    # one request per line
//! ```
//!
//! Request-file syntax (`#` starts a comment):
//!
//! ```text
//! ign T0=1000 P0=101325 t_end=5e-6 chunks=4 priority=2
//! rd  nx=10 steps=2 levels=2 t_hot=1400 chem=1 checkpoint=1 budget=3
//! ```
//!
//! Everything is deterministic: scheduling runs on a virtual tick clock,
//! so repeated invocations print byte-identical output.

use cca_serve::{
    run_fleet_loadgen, run_loadgen, FleetLoadgenConfig, IgnitionSpec, JobOutcome, LoadgenConfig,
    RdSpec, Server, ServerConfig, SimJob, SubmitError,
};
use std::process::ExitCode;

/// Parse one `key=value` token into `(key, value)`.
fn kv(tok: &str) -> Result<(&str, &str), String> {
    tok.split_once('=')
        .ok_or_else(|| format!("expected key=value, got `{tok}`"))
}

fn num(v: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .map_err(|e| format!("bad number `{v}`: {e}"))
}

/// Parse one request line into a job.
fn parse_request(line: &str) -> Result<SimJob, String> {
    let mut toks = line.split_whitespace();
    let head = toks.next().ok_or("empty request")?;
    let mut priority = 0u8;
    let mut budget = None;
    let mut checkpoint = false;
    let mut job = match head {
        "ign" => {
            let mut spec = IgnitionSpec::default();
            for tok in toks {
                let (k, v) = kv(tok)?;
                match k {
                    "T0" => spec.t0 = num(v)?,
                    "P0" => spec.p0 = num(v)?,
                    "t_end" => spec.t_end = num(v)?,
                    "chunks" => spec.chunks = num(v)? as u64,
                    "reduced" => spec.reduced = num(v)? != 0.0,
                    "priority" => priority = num(v)? as u8,
                    "budget" => budget = Some(num(v)? as u64),
                    other => return Err(format!("unknown ign key `{other}`")),
                }
            }
            spec.job()
        }
        "rd" => {
            let mut spec = RdSpec::default();
            for tok in toks {
                let (k, v) = kv(tok)?;
                match k {
                    "nx" => spec.nx = num(v)? as i64,
                    "steps" => spec.n_steps = num(v)? as usize,
                    "levels" => spec.max_levels = num(v)? as usize,
                    "t_hot" => spec.t_hot = num(v)?,
                    "chem" => spec.with_chemistry = num(v)? != 0.0,
                    "checkpoint" => checkpoint = num(v)? != 0.0,
                    "priority" => priority = num(v)? as u8,
                    "budget" => budget = Some(num(v)? as u64),
                    other => return Err(format!("unknown rd key `{other}`")),
                }
            }
            spec.job()
        }
        other => return Err(format!("unknown workload `{other}` (want ign|rd)")),
    };
    job.priority = priority;
    job.step_budget = budget;
    job.want_checkpoint = checkpoint;
    Ok(job)
}

/// The showcase stream: completion, a coalesced duplicate, a cache hit,
/// a priority jump, and a step-budget deadline.
fn demo_requests() -> Vec<String> {
    [
        "ign T0=1050 t_end=4e-6 chunks=4",
        "ign T0=1050 t_end=4e-6 chunks=4", // duplicate: coalesces onto the first
        "rd  nx=8 steps=2 t_hot=1350",
        "ign T0=1200 t_end=4e-6 chunks=4 priority=5", // jumps the queue
        "rd  nx=8 steps=6 t_hot=1400 budget=2",       // deadline: stopped after 2 steps
        "ign T0=1050 t_end=4e-6 chunks=4",            // resubmission: served from cache
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Submit every request, drain the server, print outcome lines + stats.
fn serve(requests: &[String]) -> ExitCode {
    let mut server = Server::new(ServerConfig::default());
    let mut accepted = Vec::new();
    for (lineno, raw) in requests.iter().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let job = match parse_request(line) {
            Ok(job) => job,
            Err(e) => {
                eprintln!("request {}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        match server.submit(job) {
            Ok(id) => accepted.push((id, line.to_string())),
            Err(e @ SubmitError::QueueFull { .. }) => {
                println!("request {:>3} rejected: {e}", lineno + 1);
            }
            Err(SubmitError::Admission { report }) => {
                eprintln!("request {} rejected by admission:\n{report}", lineno + 1);
                return ExitCode::FAILURE;
            }
            Err(e @ SubmitError::Deadline { .. }) => {
                println!("request {:>3} rejected: {e}", lineno + 1);
            }
        }
    }
    server.run_until_idle();

    for (id, line) in &accepted {
        let Some(outcome) = server.outcome(*id) else {
            println!("job {id:>3} LOST ({line}) -- this is a bug");
            continue;
        };
        let detail = match outcome {
            JobOutcome::Completed {
                artifacts,
                wait_ticks,
                run_ticks,
                attempts,
                session,
            } => format!(
                "wait {wait_ticks}t run {run_ticks}t attempt {attempts} session {session} digest {}",
                artifacts.transcript_digest
            ),
            JobOutcome::Cached {
                artifacts,
                wait_ticks,
            } => format!("wait {wait_ticks}t digest {}", artifacts.transcript_digest),
            JobOutcome::Cancelled {
                reason,
                wait_ticks,
                steps,
            } => format!("after {steps} steps, wait {wait_ticks}t ({reason})"),
            JobOutcome::Failed { reason, attempts } => {
                format!("after {attempts} attempts: {reason}")
            }
        };
        println!("job {id:>3} {:<18} {detail}  [{line}]", outcome.tag());
    }
    println!();
    print!("{}", server.stats().render());
    ExitCode::SUCCESS
}

fn loadgen(jobs: Option<usize>) -> ExitCode {
    let mut cfg = LoadgenConfig::default();
    if let Some(n) = jobs {
        cfg.jobs = n;
    }
    let r = run_loadgen(&cfg);
    println!(
        "loadgen: {} jobs ({} duplicates) on {} sessions, queue {} / burst {}",
        r.config.jobs,
        r.duplicate_requests,
        r.config.sessions,
        r.config.queue_capacity,
        r.config.burst
    );
    println!(
        "outcomes: {} completed, {} cached, {} deadline, {} user-cancelled, {} failed",
        r.completed, r.cached, r.cancelled_deadline, r.cancelled_user, r.failed
    );
    println!(
        "backpressure: {} rejection events (all resubmitted; zero lost)",
        r.rejection_events
    );
    println!(
        "cache hit ratio {:.3} | {} ticks total | {:.3} jobs/kilotick",
        r.cache_hit_ratio, r.total_ticks, r.throughput_jobs_per_kilotick
    );
    println!();
    print!("{}", r.stats.render());
    ExitCode::SUCCESS
}

fn fleet(shards: Option<usize>) -> ExitCode {
    let mut cfg = FleetLoadgenConfig::default();
    if let Some(n) = shards {
        cfg.shards = n;
    }
    let r = run_fleet_loadgen(&cfg);
    println!(
        "fleet loadgen: {} requests over {} shards x {} sessions, burst {}",
        r.config.jobs, r.config.shards, r.config.sessions_per_shard, r.config.burst
    );
    println!(
        "outcomes: {} completed, {} cached, {} deadline-rejected, {} failed, {} lost",
        r.completed, r.cached, r.rejected_deadline, r.failed, r.lost
    );
    println!(
        "{} ticks total | {:.3} jobs/kilotick | outcome checksum {:016x}",
        r.total_ticks, r.throughput_jobs_per_kilotick, r.outcome_checksum
    );
    println!();
    print!("{}", r.stats.render());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--demo") => serve(&demo_requests()),
        Some("--loadgen") => loadgen(args.get(2).and_then(|s| s.parse().ok())),
        Some("--fleet") => fleet(args.get(2).and_then(|s| s.parse().ok())),
        Some(path) if !path.starts_with('-') => match std::fs::read_to_string(path) {
            Ok(text) => serve(&text.lines().map(String::from).collect::<Vec<_>>()),
            Err(e) => {
                eprintln!("cca_serve: cannot read {path}: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: cca_serve --demo | --loadgen [N] | --fleet [N] | REQUEST_FILE");
            ExitCode::FAILURE
        }
    }
}
