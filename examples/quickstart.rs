//! Quickstart: build a tiny CCA assembly from scratch — two components,
//! one port, one wire — then run the paper's real 0D ignition code from
//! its script. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cca_hydro::core::{Component, Framework, GoPort, Services};
use std::rc::Rc;

/// A domain port: something that can produce a greeting.
trait GreeterPort {
    fn greet(&self) -> String;
}

/// A provider component.
struct Greeter;
struct GreeterImpl;
impl GreeterPort for GreeterImpl {
    fn greet(&self) -> String {
        "hello from a CCA port".to_string()
    }
}
impl Component for Greeter {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn GreeterPort>>("greeting", Rc::new(GreeterImpl));
    }
}

/// A consumer component with a GoPort driver.
struct Caller;
struct CallerGo {
    services: Services,
}
impl GoPort for CallerGo {
    fn go(&self) -> Result<(), String> {
        let port: Rc<dyn GreeterPort> = self
            .services
            .get_port("greeting-in")
            .map_err(|e| e.to_string())?;
        println!("caller received: {}", port.greet());
        Ok(())
    }
}
impl Component for Caller {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn GreeterPort>>("greeting-in");
        s.add_provides_port::<Rc<dyn GoPort>>(
            "go",
            Rc::new(CallerGo {
                services: s.clone(),
            }),
        );
    }
}

fn main() {
    // --- part 1: the component model in five lines ---
    let mut fw = Framework::new();
    fw.register_class("Greeter", || Box::new(Greeter));
    fw.register_class("Caller", || Box::new(Caller));
    fw.instantiate("Greeter", "g").unwrap();
    fw.instantiate("Caller", "c").unwrap();
    fw.connect("c", "greeting-in", "g", "greeting").unwrap();
    println!("{}", fw.render_arena());
    fw.go("c", "go").unwrap();

    // --- part 2: the real thing — the paper's 0D ignition assembly ---
    println!("\nrunning the 0D H2-air ignition code (paper fig. 1)...");
    let result = cca_hydro::apps::ignition0d::run_ignition_0d(false, 1000.0, 101_325.0, 1.0e-3)
        .expect("assembly runs");
    println!("{}", result.arena);
    println!(
        "after {:.1} ms:  T = {:.0} K,  P = {:.2} atm  (ignited: {})",
        result.time * 1e3,
        result.temperature(),
        result.pressure() / 101_325.0,
        result.temperature() > 2000.0
    );
}
