//! The paper's §4.3 experiment: a Mach-1.5 shock rupturing an oblique
//! Air/heavy-gas interface (density ratio 3, 30° from the vertical) on an
//! adaptive mesh — and the §4.3 punchline, swapping `GodunovFlux` for
//! `EFMFlux` purely at assembly time to run a strong (Mach 3.5) shock.
//!
//! ```text
//! cargo run --release --example shock_interface
//! ```

use cca_hydro::apps::shock_interface::{
    run_shock_interface, run_shock_interface_profiled, FluxChoice, ShockConfig,
};

fn main() {
    let cfg = ShockConfig {
        nx: 48,
        ny: 24,
        max_levels: 2,
        t_end_over_tau: 1.0,
        ..ShockConfig::default()
    };
    println!("# shock-interface interaction (paper section 4.3, figs. 5-7, table 3)");
    println!(
        "# Mach {} shock, density ratio {}, interface {} deg from vertical",
        cfg.mach, cfg.density_ratio, cfg.angle_deg
    );
    let (report, arena, profile) = run_shock_interface_profiled(&cfg).expect("assembly runs");
    println!("\n# interfacial circulation deposition:");
    println!("# t/tau     Gamma");
    for (t, g) in report
        .circulation_series
        .iter()
        .filter(|(t, _)| *t >= -0.05)
    {
        println!("{:8.3}  {:10.5}", t, g);
    }
    println!(
        "\n# {} steps; density in [{:.3}, {:.3}]; cells per level {:?}",
        report.steps, report.rho_min, report.rho_max, report.cells_per_level
    );
    println!("\n# assembly (fig. 5 stand-in):\n{arena}");
    println!("# per-component timing (the paper's future-work TAU study):\n{profile}");

    // The script-level flux swap for a strong shock.
    println!("\n# strong-shock (Mach 3.5) rerun with the EFM flux component swapped in:");
    let strong = ShockConfig {
        mach: 3.5,
        flux: FluxChoice::Efm,
        max_levels: 1,
        t_end_over_tau: 0.5,
        ..cfg
    };
    let (r2, _) = run_shock_interface(&strong).expect("EFM assembly runs");
    println!(
        "#   EFM: {} steps, final Gamma = {:.4}, density in [{:.3}, {:.3}]",
        r2.steps,
        r2.circulation_series.last().map(|(_, g)| *g).unwrap_or(0.0),
        r2.rho_min,
        r2.rho_max
    );
}
