//! `cca_lint` — static assembly verification from the command line.
//!
//! Lints rc-script files against the full application palette (every class
//! of `cca_apps::palette::standard_palette` plus the two application
//! drivers) without executing anything, and renders rustc-style
//! diagnostics with stable error codes (see the `cca-analyze` crate docs
//! for the E001–E010 / W001–W004 table).
//!
//! ```text
//! cargo run --example cca_lint -- [--check|--run] <script.rc>...
//! cargo run --example cca_lint -- --apps            # lint the three app assemblies
//! cargo run --example cca_lint -- --comm            # verify distributed comm plans
//! cargo run --example cca_lint                      # lint the built-in demos
//! ```
//!
//! `--comm` verifies the *communication schedules* of the shipped
//! distributed configurations: every rank count in {1, 2, 4, 6} crossed
//! with the three schedule flavours (blocking two-pass, overlapped
//! coalesced, overlapped per-variable) is emitted as a comm-plan and run
//! through the static checker (C001–C009; see the `cca-analyze` crate
//! docs), exiting 1 on any diagnostic.
//!
//! `--apps` is the CI gate: it regenerates the ignition, reaction–
//! diffusion and shock-interface assembly scripts exactly as the
//! applications do and lints each against the palette it actually runs
//! in, exiting 1 on any error-severity finding.
//!
//! `--check` (the default) is a pure dry-run: parse + multi-pass analysis,
//! exit 1 if any error-severity finding exists. `--run` executes each
//! script after it passes the checks — a bad assembly is rejected whole,
//! before a single component is instantiated.

use cca_analyze::{run_script_checked, Analyzer, CheckedRunError};
use cca_apps::ignition0d::{ignition_framework, ignition_script};
use cca_apps::reaction_diffusion::{rd_framework, rd_script, RdConfig, RdDriver};
use cca_apps::shock_interface::{shock_framework, shock_script, ShockConfig, ShockDriver};
use cca_core::Framework;
use std::process::ExitCode;

/// The palette scripts are vetted against: everything the three paper
/// assemblies can name.
fn lint_palette() -> Framework {
    let mut fw = cca_apps::palette::standard_palette();
    fw.register_class("RDDriver", || Box::<RdDriver>::default());
    fw.register_class("ShockDriver", || Box::<ShockDriver>::default());
    fw
}

fn main() -> ExitCode {
    let mut check_only = true;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check_only = true,
            "--run" => check_only = false,
            "--apps" => return lint_apps(),
            "--comm" => return lint_comm(),
            "--help" | "-h" => {
                eprintln!("usage: cca_lint [--check|--run] <script.rc>...");
                eprintln!("       cca_lint            (lint built-in demo scripts)");
                return ExitCode::from(2);
            }
            other if other.starts_with('-') => {
                eprintln!("cca_lint: unknown flag '{other}'");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }

    if files.is_empty() {
        return demo();
    }

    let fw = lint_palette();
    let analyzer = Analyzer::new(&fw);
    let mut failed = false;
    for file in &files {
        let script = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cca_lint: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = analyzer.analyze(&script);
        if report.is_clean() {
            println!("{file}: ok");
        } else {
            print!("{}", report.render(file));
            failed |= report.has_errors();
        }
        if !check_only && !report.has_errors() {
            let mut run_fw = lint_palette();
            match run_script_checked(&mut run_fw, &script) {
                Ok(t) => println!("{file}: ran {} go command(s)", t.go_count),
                Err(CheckedRunError::Runtime(e)) => {
                    eprintln!("{file}: runtime failure: {e}");
                    failed = true;
                }
                Err(CheckedRunError::Rejected(_)) => unreachable!("already vetted"),
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The CI gate: lint each application's generated assembly script
/// against the exact framework that application runs it in.
fn lint_apps() -> ExitCode {
    let cases: [(&str, String, Framework); 3] = [
        (
            "ignition0d.rc",
            ignition_script(false, 1000.0, 101_325.0, 1e-3),
            ignition_framework(),
        ),
        (
            "reaction_diffusion.rc",
            rd_script(&RdConfig::default()),
            rd_framework(),
        ),
        (
            "shock_interface.rc",
            shock_script(&ShockConfig::default()),
            shock_framework(),
        ),
    ];
    let mut failed = false;
    for (name, script, fw) in &cases {
        let report = Analyzer::new(fw).analyze(script);
        if report.is_clean() {
            println!("{name}: ok");
        } else {
            print!("{}", report.render(name));
            failed |= report.has_errors();
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The distributed CI gate: emit and statically verify the comm-plan of
/// every shipped distributed configuration — each rank count crossed
/// with the blocking, overlapped-coalesced and overlapped-per-variable
/// schedules — exiting 1 on any diagnostic (warnings included: shipped
/// schedules must be *clean*, not merely runnable).
fn lint_comm() -> ExitCode {
    use cca_apps::scaling::{decompose, ScalingConfig};
    use cca_apps::schedule::comm_plan;

    let flavours: [(&str, bool, bool); 3] = [
        ("blocking", false, false),
        ("overlap+coalesce", true, true),
        ("overlap+per-var", true, false),
    ];
    let mut failed = false;
    for ranks in [1usize, 2, 4, 6] {
        for (label, overlap, coalesce) in flavours {
            let cfg = ScalingConfig {
                n: 24,
                per_rank: false,
                ranks,
                steps: 2,
                overlap,
                coalesce,
                ..ScalingConfig::default()
            };
            let name = format!("scaling P={ranks} {label}");
            let report = comm_plan(&decompose(&cfg), &cfg).verify();
            if report.is_clean() {
                println!("{name}: ok");
            } else {
                print!("{}", report.render(&name));
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// No files given: lint a clean built-in assembly, then a deliberately
/// broken variant, so the diagnostics format is visible at a glance.
fn demo() -> ExitCode {
    let analyzer = Analyzer::new(&lint_palette());
    let good = ignition_script(false, 1000.0, 101_325.0, 1e-3);
    let report = analyzer.analyze(&good);
    println!(
        "ignition0d.rc: {}",
        if report.is_clean() { "ok" } else { "NOT CLEAN" }
    );

    let broken = good
        .replace(
            "instantiate CvodeComponent cvode",
            "instantiate CvodeComponnt cvode",
        )
        .replace(
            "connect init rhs modeler rhs",
            "connect init rhs modeler rsh",
        );
    println!("\n--- broken variant ---");
    print!("{}", analyzer.analyze(&broken).render("broken.rc"));
    ExitCode::SUCCESS
}
