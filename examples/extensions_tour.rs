//! Tour of the implemented future-work items from the paper's §6:
//! (1) pluggable load balancers behind a CCA port, (4) per-component
//! performance characterization, plus checkpoint/restart of the SAMR
//! state. Everything is driven through the same script-assembled
//! component machinery as the physics runs.
//!
//! ```text
//! cargo run --release --example extensions_tour
//! ```

use cca_hydro::components::ports::{
    CheckpointPort, DataPort, InitialConditionPort, MeshPort, StatisticsPort,
};
use cca_hydro::core::script::run_script;
use std::rc::Rc;

fn main() {
    let mut fw = cca_hydro::apps::palette::standard_palette();
    fw.profiler().set_enabled(true);

    // Assembly: GrACE + shock IC + statistics, with the ROUND-ROBIN load
    // balancer wired into GrACE's optional balancer port — future-work
    // item (1): testing a different balancer is one `connect` line.
    run_script(
        &mut fw,
        "instantiate GrACEComponent grace\n\
         instantiate GasProperties gas\n\
         instantiate ConicalInterfaceIC ic\n\
         instantiate StatisticsComponent statistics\n\
         instantiate RoundRobinLoadBalancer balancer\n\
         connect grace load-balancer balancer load-balancer\n\
         connect ic mesh grace mesh\n\
         connect ic data grace data\n\
         connect ic gas gas gas\n\
         connect statistics mesh grace mesh\n\
         connect statistics data grace data\n\
         arena\n",
    )
    .expect("assembly");
    println!("{}", fw.render_arena());

    let mesh: Rc<dyn MeshPort> = fw.get_provides_port("grace", "mesh").unwrap();
    let data: Rc<dyn DataPort> = fw.get_provides_port("grace", "data").unwrap();
    let ic: Rc<dyn InitialConditionPort> = fw.get_provides_port("ic", "ic").unwrap();
    let stats: Rc<dyn StatisticsPort> = fw.get_provides_port("statistics", "statistics").unwrap();
    let ckpt: Rc<dyn CheckpointPort> = fw.get_provides_port("grace", "checkpoint").unwrap();

    // Build a shocked state on an AMR hierarchy.
    mesh.create(32, 16, 2.0, 1.0, 2);
    data.create_data_object("U", 5, 2);
    ic.apply("U");

    // (1) Load balance through the swapped-in component.
    let loads = mesh.load_balance(4);
    println!("round-robin level-0 loads over 4 ranks: {:?}", loads[0]);

    // Checkpoint, damage, restore.
    let rho_max = stats.max_var("U", 0);
    let path = std::env::temp_dir().join("cca_tour.ckpt");
    let path = path.to_str().unwrap().to_string();
    ckpt.save(&path).expect("save");
    let (id, _, _) = mesh.patches(0)[0];
    data.with_patch_mut("U", 0, id, &mut |pd| pd.fill_var(0, 0.0));
    println!(
        "damaged:  max rho = {:.4} (was {:.4})",
        stats.max_var("U", 0),
        rho_max
    );
    ckpt.restore(&path).expect("restore");
    let _ = std::fs::remove_file(&path);
    println!("restored: max rho = {:.4}", stats.max_var("U", 0));
    assert_eq!(stats.max_var("U", 0), rho_max);

    // (4) The TAU-style per-component report of everything we just did.
    println!("\n{}", fw.profiler().report());
}
