//! The paper's §4.1 experiment: 0D homogeneous ignition of stoichiometric
//! H₂–air at 1000 K and 1 atm in a rigid adiabatic vessel, integrated to
//! 1 ms with the component-assembled stiff solver. Prints the ignition
//! trajectory (temperature and pressure vs time) plus the Fig. 1 arena.
//!
//! ```text
//! cargo run --release --example ignition0d
//! ```

use cca_hydro::apps::ignition0d::run_ignition_0d;

fn main() {
    println!("# 0D H2-air ignition (paper section 4.1, fig. 1, table 1)");
    println!("# t [ms]    T [K]      P [atm]   Y_H2       Y_H2O");
    // Sample the trajectory by integrating to increasing end times (the
    // assembly is cheap enough to re-run; CVODE-style dense output is not
    // part of the paper's interface).
    let mut arena = String::new();
    for k in 0..=10 {
        let t_end = 1.0e-4 * k as f64;
        if k == 0 {
            println!(
                "{:8.3}  {:8.1}  {:8.3}  {:9.6}  {:9.6}",
                0.0, 1000.0, 1.0, 0.0285, 0.0
            );
            continue;
        }
        let r = run_ignition_0d(false, 1000.0, 101_325.0, t_end).expect("run");
        let y = r.mass_fractions();
        println!(
            "{:8.3}  {:8.1}  {:8.3}  {:9.6}  {:9.6}",
            t_end * 1e3,
            r.temperature(),
            r.pressure() / 101_325.0,
            y[0],
            y[5],
        );
        arena = r.arena;
    }
    println!("\n# assembly (fig. 1 stand-in):\n{arena}");
}
