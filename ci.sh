#!/usr/bin/env bash
# Repo lint + test gate. Run before every push; the GitHub Actions
# workflow (.github/workflows/ci.yml) runs this same script verbatim.
# Formatting style lives in rustfmt.toml; lint levels live in the
# [workspace.lints] table of the root Cargo.toml.
#
# Opt-in extras:
#   CI_BENCH=1  also run every deterministic bench suite (cca-bench) and
#               fail on malformed output or byte drift from its committed
#               BENCH_PR*.json baseline. Suites live in the BENCHES table
#               below: one "subcommand:baseline" line per suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --examples"
cargo build --examples

echo "== cargo test"
cargo test -q

echo "== determinism lint (no hash-ordered iteration in hot paths)"
./scripts/lint_determinism.sh

echo "== assembly lint (cca-analyze over the three app scripts)"
cargo run -q --example cca_lint -- --apps

echo "== comm-plan lint (static schedule verification, all shipped configs)"
cargo run -q --example cca_lint -- --comm

echo "== serve smoke (demo request stream through the job server)"
cargo run -q --example cca_serve -- --demo > /dev/null

echo "== fleet smoke (multi-tenant loadgen across 2 serve shards)"
cargo run -q --example cca_serve -- --fleet > /dev/null

echo "== cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

if [[ "${CI_BENCH:-0}" == "1" ]]; then
  # subcommand:baseline pairs; the check twin is "<subcommand>-check"
  # ("check" for the legacy smoke suite). Each suite regenerates into
  # target/, self-validates, and must match its committed baseline
  # byte-for-byte.
  BENCHES=(
    "smoke:BENCH_PR2.json"
    "serve:BENCH_PR3.json"
    "hotpath:BENCH_PR4.json"
    "scaling:BENCH_PR5.json"
    "samr:BENCH_PR7.json"
    "ckpt:BENCH_PR8.json"
    "kernels:BENCH_PR9.json"
    "fleet:BENCH_PR10.json"
  )
  for entry in "${BENCHES[@]}"; do
    sub="${entry%%:*}"
    baseline="${entry#*:}"
    check="${sub}-check"
    [[ "$sub" == "smoke" ]] && check="check"
    echo "== bench ${sub} (CI_BENCH=1)"
    cargo run -q -p cca-bench --bin cca-bench -- "$sub" "target/$baseline"
    cargo run -q -p cca-bench --bin cca-bench -- "$check" "target/$baseline"
    echo "== bench ${sub}: compare against committed baseline"
    diff -u "$baseline" "target/$baseline" \
      || { echo "$baseline drifted; regenerate with: cargo run -p cca-bench --bin cca-bench -- $sub"; exit 1; }
  done
fi

echo "ci: all gates passed"
