#!/usr/bin/env bash
# Repo lint + test gate. Run before every push; CI runs the same three
# steps. Formatting style lives in rustfmt.toml; lint levels live in the
# [workspace.lints] table of the root Cargo.toml.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q

echo "ci: all gates passed"
