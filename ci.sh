#!/usr/bin/env bash
# Repo lint + test gate. Run before every push; the GitHub Actions
# workflow (.github/workflows/ci.yml) runs this same script verbatim.
# Formatting style lives in rustfmt.toml; lint levels live in the
# [workspace.lints] table of the root Cargo.toml.
#
# Opt-in extras:
#   CI_BENCH=1  also run the deterministic bench smokes (cca-bench) and
#               fail on malformed output or drift from the committed
#               BENCH_PR2.json / BENCH_PR3.json / BENCH_PR4.json /
#               BENCH_PR5.json baselines.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --examples"
cargo build --examples

echo "== cargo test"
cargo test -q

echo "== determinism lint (no hash-ordered iteration in hot paths)"
./scripts/lint_determinism.sh

echo "== assembly lint (cca-analyze over the three app scripts)"
cargo run -q --example cca_lint -- --apps

echo "== comm-plan lint (static schedule verification, all shipped configs)"
cargo run -q --example cca_lint -- --comm

echo "== serve smoke (demo request stream through the job server)"
cargo run -q --example cca_serve -- --demo > /dev/null

echo "== cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

if [[ "${CI_BENCH:-0}" == "1" ]]; then
  echo "== bench smoke (CI_BENCH=1)"
  cargo run -q -p cca-bench --bin cca-bench -- smoke target/BENCH_PR2.json
  cargo run -q -p cca-bench --bin cca-bench -- check target/BENCH_PR2.json
  echo "== bench smoke: compare against committed baseline"
  diff -u BENCH_PR2.json target/BENCH_PR2.json \
    || { echo "BENCH_PR2.json drifted; regenerate with: cargo run -p cca-bench --bin cca-bench -- smoke"; exit 1; }
  echo "== serve loadgen bench (CI_BENCH=1)"
  cargo run -q -p cca-bench --bin cca-bench -- serve target/BENCH_PR3.json
  cargo run -q -p cca-bench --bin cca-bench -- serve-check target/BENCH_PR3.json
  echo "== serve loadgen: compare against committed baseline"
  diff -u BENCH_PR3.json target/BENCH_PR3.json \
    || { echo "BENCH_PR3.json drifted; regenerate with: cargo run -p cca-bench --bin cca-bench -- serve"; exit 1; }
  echo "== hotpath allocation-discipline bench (CI_BENCH=1)"
  cargo run -q -p cca-bench --bin cca-bench -- hotpath target/BENCH_PR4.json
  cargo run -q -p cca-bench --bin cca-bench -- hotpath-check target/BENCH_PR4.json
  echo "== hotpath: compare against committed baseline"
  diff -u BENCH_PR4.json target/BENCH_PR4.json \
    || { echo "BENCH_PR4.json drifted; regenerate with: cargo run -p cca-bench --bin cca-bench -- hotpath"; exit 1; }
  echo "== halo overlap/coalescing bench (CI_BENCH=1)"
  cargo run -q -p cca-bench --bin cca-bench -- scaling target/BENCH_PR5.json
  cargo run -q -p cca-bench --bin cca-bench -- scaling-check target/BENCH_PR5.json
  echo "== scaling: compare against committed baseline"
  diff -u BENCH_PR5.json target/BENCH_PR5.json \
    || { echo "BENCH_PR5.json drifted; regenerate with: cargo run -p cca-bench --bin cca-bench -- scaling"; exit 1; }
fi

echo "ci: all gates passed"
