//! Umbrella crate re-exporting the whole `cca-hydro` workspace.
//!
//! Downstream users can depend on this single crate and reach every
//! subsystem: the CCA component framework ([`core`]), the SCMD
//! message-passing layer ([`comm`]), the SAMR mesh substrate ([`mesh`]),
//! numerical solvers ([`solvers`]), chemistry and transport physics
//! ([`chem`], [`transport`]), the Euler solver ([`hydro`]), the paper's
//! component set ([`components`]) and the three assembled applications
//! ([`apps`]).
pub use cca_apps as apps;
pub use cca_chem as chem;
pub use cca_comm as comm;
pub use cca_components as components;
pub use cca_core as core;
pub use cca_hydro_solver as hydro;
pub use cca_mesh as mesh;
pub use cca_solvers as solvers;
pub use cca_transport as transport;
