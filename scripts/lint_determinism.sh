#!/usr/bin/env bash
# Determinism lint.
#
# Distributed results must be bit-reproducible: the comm-plan conformance
# auditor and the pinned scaling/SAMR checksums both assume every rank
# issues the same operation sequence on every run. Iterating a
# HashMap/HashSet (randomized order since the default hasher is seeded
# per-process) in a hot path silently breaks that, so source in the
# comm/mesh/apps/serve/analyze crates must use BTreeMap/BTreeSet — or
# sort before iterating. The distributed-hierarchy layer (mesh/src/dist.rs,
# analyze/src/distplan.rs) is the most sensitive: its exchange manifests
# and regrid plans must be *identical on every rank*, so any hash-ordered
# iteration there is a cross-rank divergence, not just run-to-run noise.
# The kernel crates (hydro/components/chem/solvers) are covered too:
# their tiled sweeps promise bit-identical results at any tile size and
# worker count, which a hash-ordered traversal would break the same way.
#
# Files listed in ALLOW may use hash containers because their results are
# provably order-insensitive (membership tests, min/max folds, counting);
# add a file here only with a justification comment.
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOW=(
  # Flag sets feed bounding-box/histogram folds only; clustering output
  # does not depend on iteration order.
  "crates/mesh/src/cluster.rs"
  # Buffered-flag set is consumed by berger_rigoutsos, which is
  # order-insensitive (see cluster.rs).
  "crates/mesh/src/regrid.rs"
)

fail=0
while IFS= read -r hit; do
  file=${hit%%:*}
  allowed=0
  for a in "${ALLOW[@]}"; do
    if [[ "$file" == "$a" ]]; then
      allowed=1
      break
    fi
  done
  if [[ "$allowed" == 0 ]]; then
    echo "determinism lint: hash-ordered container in hot path: $hit" >&2
    fail=1
  fi
done < <(grep -rn --include='*.rs' -E 'Hash(Map|Set)' \
  crates/comm/src crates/mesh/src crates/apps/src crates/serve/src \
  crates/analyze/src crates/ckpt/src \
  crates/hydro/src crates/components/src crates/chem/src \
  crates/solvers/src || true)

if [[ "$fail" != 0 ]]; then
  echo "determinism lint: use BTreeMap/BTreeSet (or sort before" >&2
  echo "iterating), or add an allowlist entry with a justification" >&2
  echo "comment in scripts/lint_determinism.sh" >&2
  exit 1
fi

# The fleet scheduler (crates/serve/src/fleet.rs and friends) pins every
# latency percentile, steal decision, and migration byte-for-byte in
# BENCH_PR10.json. That only holds if the scheduling layer never reads a
# wall clock or process-seeded entropy — virtual ticks and the stream's
# own seeded rng are the only time/randomness sources allowed.
if grep -rn --include='*.rs' -E 'Instant::now|SystemTime|wall_clock|thread_rng|from_entropy' \
  crates/serve/src crates/ckpt/src; then
  echo "determinism lint: wall clock or process-seeded rng in the" >&2
  echo "scheduling layer; use the virtual tick clock / seeded streams" >&2
  exit 1
fi

echo "determinism lint: clean"
