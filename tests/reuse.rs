//! Cross-assembly integration tests of the paper's three headline reuse
//! claims (§6, Conclusions):
//!
//! 1. `CvodeComponent` + `ThermoChemistry` are reused between the 0D
//!    ignition and 2D reaction–diffusion codes;
//! 2. `GrACEComponent` (Mesh) + `ErrorEstAndRegrid` are reused between the
//!    reaction–diffusion and shock-interface codes;
//! 3. a different numerical method is incorporated by replacing
//!    `GodunovFlux` with `EFMFlux` — no recompilation, script-only.

use cca_hydro::apps::ignition0d::ignition_script;
use cca_hydro::apps::reaction_diffusion::{rd_script, RdConfig};
use cca_hydro::apps::shock_interface::{shock_script, FluxChoice, ShockConfig};

/// Extract the set of instantiated classes from a script.
fn classes(script: &str) -> Vec<String> {
    script
        .lines()
        .filter_map(|l| {
            let tok: Vec<&str> = l.split_whitespace().collect();
            (tok.first() == Some(&"instantiate")).then(|| tok[1].to_string())
        })
        .collect()
}

#[test]
fn cvode_and_thermochemistry_shared_by_0d_and_2d() {
    let c0 = classes(&ignition_script(false, 1000.0, 101_325.0, 1e-3));
    let c2 = classes(&rd_script(&RdConfig::default()));
    for shared in ["CvodeComponent", "ThermoChemistry"] {
        assert!(c0.contains(&shared.to_string()), "0D missing {shared}");
        assert!(c2.contains(&shared.to_string()), "2D missing {shared}");
    }
}

#[test]
fn mesh_and_regrid_shared_by_rd_and_shock() {
    let c2 = classes(&rd_script(&RdConfig::default()));
    let cs = classes(&shock_script(&ShockConfig::default()));
    for shared in ["GrACEComponent", "ErrorEstAndRegrid", "StatisticsComponent"] {
        assert!(c2.contains(&shared.to_string()), "RD missing {shared}");
        assert!(cs.contains(&shared.to_string()), "shock missing {shared}");
    }
}

#[test]
fn flux_swap_is_the_only_script_difference() {
    let g = shock_script(&ShockConfig {
        flux: FluxChoice::Godunov,
        ..ShockConfig::default()
    });
    let e = shock_script(&ShockConfig {
        flux: FluxChoice::Efm,
        ..ShockConfig::default()
    });
    let diff: Vec<(&str, &str)> = g.lines().zip(e.lines()).filter(|(a, b)| a != b).collect();
    assert_eq!(diff.len(), 1, "more than the flux line changed: {diff:?}");
    assert_eq!(diff[0].0.trim(), "instantiate GodunovFlux flux");
    assert_eq!(diff[0].1.trim(), "instantiate EFMFlux flux");
}

/// The palette is shared: every class any script instantiates exists in
/// the one standard palette — the components were "developed within the
/// group in a decoupled manner" and assembled per problem.
#[test]
fn all_scripts_draw_from_one_palette() {
    let fw = cca_hydro::apps::palette::standard_palette();
    let available = fw.palette_classes();
    let mut all = classes(&ignition_script(false, 1000.0, 101_325.0, 1e-3));
    all.extend(classes(&rd_script(&RdConfig::default())));
    all.extend(classes(&shock_script(&ShockConfig::default())));
    for class in all {
        if class.ends_with("Driver") {
            continue; // drivers are app-registered
        }
        assert!(available.contains(&class), "palette missing {class}");
    }
}
