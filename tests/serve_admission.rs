//! Comm-plan admission at the serve boundary (PR 6): a distributed job
//! whose communication schedule fails static verification is refused at
//! submit time with C-code diagnostics — no session time, no hung rank
//! team. A clean schedule sails through and the attachment enters the
//! job's cache identity.

use cca_analyze::commplan::OpKind;
use cca_apps::scaling::ScalingConfig;
use cca_apps::schedule::comm_plan;
use cca_serve::{DistributedSpec, IgnitionSpec, Server, ServerConfig, SubmitError};

fn scaling_cfg() -> ScalingConfig {
    ScalingConfig {
        n: 24,
        per_rank: false,
        ranks: 4,
        steps: 2,
        overlap: true,
        ..ScalingConfig::default()
    }
}

#[test]
fn clean_distributed_job_is_admitted() {
    let mut server = Server::new(ServerConfig::default());
    let mut job = IgnitionSpec::default().job();
    job.distributed = Some(DistributedSpec {
        config: scaling_cfg(),
        plan: None, // derived from the config by the schedule emitter
    });
    let id = server.submit(job).expect("derived plans verify clean");
    server.run_until_idle();
    assert!(server.outcome(id).is_some(), "admitted job must resolve");
    assert_eq!(server.stats().rejected_admission, 0);
}

#[test]
fn broken_plan_is_rejected_with_c_code_diagnostics() {
    let mut server = Server::new(ServerConfig::default());

    // Start from the real emitted schedule, then drop rank 2's first
    // posted receive — the classic hand-edited-exchange mistake.
    let cfg = scaling_cfg();
    let mut plan = comm_plan(&cca_apps::scaling::decompose(&cfg), &cfg);
    let pos = plan.ranks[2]
        .iter()
        .position(|o| matches!(o.kind, OpKind::Irecv { .. }))
        .expect("rank 2 posts receives");
    plan.ranks[2].remove(pos);

    let mut job = IgnitionSpec::default().job();
    job.distributed = Some(DistributedSpec {
        config: cfg,
        plan: Some(plan),
    });

    let err = server
        .submit(job)
        .expect_err("mismatched plan must be refused");
    let SubmitError::Admission { report } = err else {
        panic!("expected admission rejection, got {err}");
    };
    assert!(report.contains("error[C001]"), "{report}");
    assert!(report.contains("comm-plan"), "{report}");
    assert_eq!(server.stats().rejected_admission, 1);
    assert_eq!(
        server.stats().submitted,
        0,
        "a rejected job must never be counted as submitted"
    );
}

#[test]
fn distributed_attachment_is_part_of_cache_identity() {
    let base = IgnitionSpec::default().job();
    let mut with_spec = base.clone();
    with_spec.distributed = Some(DistributedSpec {
        config: scaling_cfg(),
        plan: None,
    });
    assert_ne!(base.key(), with_spec.key());

    let mut other_schedule = base.clone();
    other_schedule.distributed = Some(DistributedSpec {
        config: ScalingConfig {
            overlap: false,
            ..scaling_cfg()
        },
        plan: None,
    });
    assert_ne!(with_spec.key(), other_schedule.key());
}
