//! Cached-result fidelity (PR 3): a cache hit is *bit-identical* to a
//! cold recomputation — field norms down to the f64 bit pattern, the
//! transcript digest, and the checkpoint byte stream — including after
//! the serving session has been poisoned and rebuilt in between.

use cca_serve::{Artifacts, FaultSpec, IgnitionSpec, JobOutcome, RdSpec, Server, ServerConfig};
use std::rc::Rc;

/// Norms as (name, raw f64 bits) — the strictest possible comparison.
fn norm_bits(a: &Artifacts) -> Vec<(String, u64)> {
    a.norms
        .iter()
        .map(|(n, v)| (n.clone(), v.to_bits()))
        .collect()
}

#[test]
fn cache_hit_is_bit_identical_even_after_a_poisoned_session() {
    let mut server = Server::new(ServerConfig {
        sessions: 1,
        ..ServerConfig::default()
    });

    // Cold run of a reaction-diffusion job with a checkpoint artifact.
    let mut job = RdSpec {
        nx: 8,
        with_chemistry: true,
        ..RdSpec::default()
    }
    .job();
    job.want_checkpoint = true;

    let cold_id = server.submit(job.clone()).expect("admission-clean job");
    server.run_until_idle();
    let cold = match server.outcome(cold_id).expect("cold run must resolve") {
        JobOutcome::Completed { artifacts, .. } => artifacts.clone(),
        other => panic!("expected completion, got {}", other.tag()),
    };
    assert!(
        cold.checkpoint.as_ref().is_some_and(|c| !c.is_empty()),
        "requested checkpoint must be present and non-empty"
    );

    // Poison the pool's only session: a fault-injected job that panics on
    // every attempt until the retry budget is exhausted.
    let mut bomb = IgnitionSpec {
        t0: 1100.0,
        ..IgnitionSpec::default()
    }
    .job();
    bomb.fault = FaultSpec {
        fail_attempts: 8,
        panic_at_step: 1,
        ..FaultSpec::default()
    };
    let bomb_id = server.submit(bomb).expect("fault job is admission-clean");
    server.run_until_idle();
    assert!(
        matches!(server.outcome(bomb_id), Some(JobOutcome::Failed { .. })),
        "the bomb must fail terminally"
    );
    let s = server.stats();
    assert!(s.poisonings >= 1, "the bomb must poison the session");
    assert_eq!(
        s.sessions[0].epoch, s.poisonings,
        "each poisoning rebuilds the slot"
    );

    // Resubmit the original job: answered from the cache, bit-identical,
    // untouched by the poisoning in between.
    let warm_id = server.submit(job.clone()).expect("resubmission accepted");
    let warm = match server
        .outcome(warm_id)
        .expect("cache hit resolves at submit")
    {
        JobOutcome::Cached { artifacts, .. } => artifacts.clone(),
        other => panic!("expected cache hit, got {}", other.tag()),
    };
    assert_eq!(norm_bits(&warm), norm_bits(&cold));
    assert_eq!(warm.transcript_digest, cold.transcript_digest);
    assert_eq!(warm.checkpoint, cold.checkpoint);
    assert_eq!(warm.steps, cold.steps);

    // A fresh server recomputing from scratch reproduces the exact same
    // bits — the cache returns precisely what a cold run would.
    let mut fresh = Server::new(ServerConfig::default());
    let fresh_id = fresh.submit(job).expect("admission-clean job");
    fresh.run_until_idle();
    match fresh.outcome(fresh_id).expect("fresh run must resolve") {
        JobOutcome::Completed { artifacts, .. } => {
            assert_eq!(norm_bits(artifacts), norm_bits(&cold));
            assert_eq!(artifacts.transcript_digest, cold.transcript_digest);
            assert_eq!(artifacts.checkpoint, cold.checkpoint);
        }
        other => panic!("expected completion, got {}", other.tag()),
    }
}

#[test]
fn coalesced_duplicates_share_the_primary_result() {
    let mut server = Server::new(ServerConfig {
        sessions: 1,
        ..ServerConfig::default()
    });
    let job = IgnitionSpec {
        t0: 1050.0,
        ..IgnitionSpec::default()
    }
    .job();
    let primary = server.submit(job.clone()).expect("primary accepted");
    let follower = server.submit(job).expect("duplicate coalesces");
    assert_eq!(server.stats().coalesced, 1);
    server.run_until_idle();

    let JobOutcome::Completed { artifacts: pa, .. } =
        server.outcome(primary).expect("primary resolves")
    else {
        panic!("primary must complete")
    };
    let JobOutcome::Cached { artifacts: fa, .. } =
        server.outcome(follower).expect("follower resolves")
    else {
        panic!("follower must be answered from the cache")
    };
    // Not just equal — literally the same artifact object.
    assert!(Rc::ptr_eq(pa, fa));
}
