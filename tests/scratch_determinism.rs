//! Bit-identity of the scratch-workspace subsystem, pinned end-to-end.
//!
//! The pool's contract (crates/core/src/scratch.rs) is that a pooled
//! checkout is indistinguishable from `vec![0.0; n]`: same zeroed
//! contents, same length, only the allocation elided. These tests run
//! all three application assemblies with pooling enabled and with the
//! fresh-allocation reference path (`set_pooling(false)`) and require
//! the resulting fields to agree bit for bit — at 1, 2, and 4 executor
//! workers for the SAMR codes, so per-worker thread-local pools are
//! exercised too.
//!
//! The pooling flag is process-global while the test harness runs test
//! functions concurrently, so every test serializes on one mutex and
//! restores the default (pooling on) before releasing it.

use cca_hydro::apps::ignition0d::run_ignition_0d;
use cca_hydro::apps::reaction_diffusion::{rd_framework, rd_script, RdConfig, RdReport};
use cca_hydro::apps::shock_interface::{shock_framework, shock_script, ShockConfig, ShockReport};
use cca_hydro::core::scratch;
use cca_hydro::core::script::run_script;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that flip the process-global pooling flag.
static POOLING_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    POOLING_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Run `f` with the pool enabled or bypassed, restoring the default.
fn with_pooling<T>(on: bool, f: impl FnOnce() -> T) -> T {
    scratch::set_pooling(on);
    let out = f();
    scratch::set_pooling(true);
    out
}

fn run_flame(workers: usize, cfg: &RdConfig) -> RdReport {
    let mut fw = rd_framework();
    fw.set_workers(workers);
    run_script(&mut fw, &rd_script(cfg)).unwrap();
    let report: Rc<RefCell<RdReport>> = fw.get_provides_port("driver", "report").unwrap();
    let report = report.borrow().clone();
    report
}

fn run_shock(workers: usize, cfg: &ShockConfig) -> ShockReport {
    let mut fw = shock_framework();
    fw.set_workers(workers);
    run_script(&mut fw, &shock_script(cfg)).unwrap();
    let report: Rc<RefCell<ShockReport>> = fw.get_provides_port("driver", "report").unwrap();
    let report = report.borrow().clone();
    report
}

/// 0D ignition (BDF over the point-chemistry workspaces): the full
/// paper case to 1 ms must produce the identical state vector and end
/// time whether or not buffers are pooled.
#[test]
fn ignition0d_bit_identical_pooling_on_vs_off() {
    let _guard = lock();
    let pooled = with_pooling(true, || {
        run_ignition_0d(false, 1000.0, 101_325.0, 1.0e-3).unwrap()
    });
    let fresh = with_pooling(false, || {
        run_ignition_0d(false, 1000.0, 101_325.0, 1.0e-3).unwrap()
    });
    assert_eq!(pooled.time.to_bits(), fresh.time.to_bits());
    assert_eq!(pooled.state.len(), fresh.state.len());
    for (i, (a, b)) in pooled.state.iter().zip(&fresh.state).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "state[{i}]: {a} vs {b}");
    }
}

/// Reaction–diffusion flame (RKC stage vectors, diffusion SoA property
/// tables, ghost-exchange pack buffers, implicit cell sweep): fields
/// must be bit-identical pooling on vs off at every worker count.
#[test]
fn flame_fields_bit_identical_pooling_on_vs_off() {
    let _guard = lock();
    let cfg = RdConfig {
        nx: 16,
        dt: 5.0e-7,
        n_steps: 2,
        max_levels: 2,
        threshold: 50.0,
        ..RdConfig::default()
    };
    for workers in [1, 2, 4] {
        let pooled = with_pooling(true, || run_flame(workers, &cfg));
        let fresh = with_pooling(false, || run_flame(workers, &cfg));
        assert!(
            pooled.final_patches.len() > 1,
            "want a multi-patch hierarchy, got {:?}",
            pooled.final_patches
        );
        assert_eq!(pooled.final_patches, fresh.final_patches, "w={workers}");
        assert_eq!(
            pooled.final_t_field.len(),
            fresh.final_t_field.len(),
            "w={workers}"
        );
        for (p, f) in pooled.final_t_field.iter().zip(&fresh.final_t_field) {
            assert_eq!(
                p.2.to_bits(),
                f.2.to_bits(),
                "T at {:?} w={workers}",
                (p.0, p.1)
            );
        }
        for (p, f) in pooled.t_max_series.iter().zip(&fresh.t_max_series) {
            assert_eq!(p.1.to_bits(), f.1.to_bits(), "Tmax series w={workers}");
        }
        for (p, f) in pooled.h2o2_max_series.iter().zip(&fresh.h2o2_max_series) {
            assert_eq!(p.1.to_bits(), f.1.to_bits(), "H2O2 series w={workers}");
        }
    }
}

/// Shock–interface (MUSCL/RK2 stage state through the pooled gather
/// buffers): density field and circulation history must be
/// bit-identical pooling on vs off at every worker count.
#[test]
fn shock_fields_bit_identical_pooling_on_vs_off() {
    let _guard = lock();
    let cfg = ShockConfig {
        nx: 24,
        ny: 12,
        max_levels: 2,
        t_end_over_tau: 0.2,
        ..ShockConfig::default()
    };
    for workers in [1, 2, 4] {
        let pooled = with_pooling(true, || run_shock(workers, &cfg));
        let fresh = with_pooling(false, || run_shock(workers, &cfg));
        assert!(pooled.steps > 0, "w={workers}");
        assert_eq!(pooled.steps, fresh.steps, "w={workers}");
        assert_eq!(pooled.final_patches, fresh.final_patches, "w={workers}");
        assert_eq!(
            pooled.final_density.len(),
            fresh.final_density.len(),
            "w={workers}"
        );
        for (p, f) in pooled.final_density.iter().zip(&fresh.final_density) {
            assert_eq!(
                p.2.to_bits(),
                f.2.to_bits(),
                "rho at {:?} w={workers}",
                (p.0, p.1)
            );
        }
        for (p, f) in pooled
            .circulation_series
            .iter()
            .zip(&fresh.circulation_series)
        {
            assert_eq!(p.1.to_bits(), f.1.to_bits(), "circulation w={workers}");
        }
    }
}
