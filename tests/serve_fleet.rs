//! Fleet contracts (PR 10): checkpoint-based migration is bit-exact, the
//! no-progress guard survives the mid-snapshot drill, elastic shard
//! resizing replays identically, deadline admission is provable, QoS
//! bands order service with aging as the anti-starvation valve, and the
//! multi-shard stats snapshot never double-counts.

use cca_serve::{
    Fleet, FleetConfig, IgnitionSpec, JobOutcome, LatePolicy, QosClass, RdSpec, SimJob,
    SubmitError, TenantSpec,
};

/// A long, sliceable reaction–diffusion job: 12 macro steps with a
/// commit every 2 — under the default 4-step slice it runs as 3+ legs.
fn long_rd(t_hot: f64) -> SimJob {
    let mut job = RdSpec {
        nx: 8,
        n_steps: 12,
        t_hot,
        ..RdSpec::default()
    }
    .job();
    job.ckpt_interval = 2;
    job.want_checkpoint = true;
    job
}

/// An *unsliceable* rd job (no commit interval) whose only purpose is to
/// occupy a session for exactly `n_steps + 1` ticks, homed on `shard`
/// (probes `t_hot` until the consistent-hash router agrees).
fn busy_filler_at(fleet: &Fleet, shard: usize, n_steps: usize, priority: u8) -> SimJob {
    let mut t_hot = 1450.0;
    loop {
        let mut job = RdSpec {
            nx: 8,
            n_steps,
            t_hot,
            ..RdSpec::default()
        }
        .job();
        job.priority = priority;
        if fleet.home_of(job.key()) == shard {
            return job;
        }
        t_hot += 1.0;
    }
}

/// Digest + checkpoint bytes of a completed outcome.
fn completed_artifacts(fleet: &Fleet, id: u64) -> (String, Option<Vec<u8>>, u64) {
    match fleet.outcome(id).expect("job resolved") {
        JobOutcome::Completed { artifacts, .. } => (
            artifacts.transcript_digest.clone(),
            artifacts.checkpoint.clone(),
            artifacts.steps,
        ),
        other => panic!("expected completion, got {other:?}"),
    }
}

fn completed_wait(fleet: &Fleet, id: u64) -> u64 {
    match fleet.outcome(id).expect("job resolved") {
        JobOutcome::Completed { wait_ticks, .. } => *wait_ticks,
        other => panic!("expected completion, got {other:?}"),
    }
}

/// The reference bits: the same job run unmigrated and unsliced on a
/// single-shard fleet with slicing disabled.
fn unsliced_reference(job: SimJob) -> (String, Option<Vec<u8>>, u64) {
    let mut fleet = Fleet::new(FleetConfig {
        shards: 1,
        slice_steps: 0, // never preempt: one uninterrupted attempt
        ..FleetConfig::default()
    });
    let id = fleet.submit(job).unwrap();
    fleet.run_until_idle();
    assert_eq!(fleet.migrations_of(id), 0);
    completed_artifacts(&fleet, id)
}

/// Run `job` through a 2-shard fleet rigged so the job provably crosses
/// shards: a high-priority 20-step filler pins the job's home session
/// until tick 21 while a 10-step filler keeps the other shard busy only
/// until tick 11 — the idle shard steals the job's early slices, then
/// its home (free again at 21) takes a later continuation back over the
/// checkpoint bytes. Returns the fleet and the job's id.
fn run_migrated(job: SimJob) -> (Fleet, u64) {
    let mut fleet = Fleet::new(FleetConfig {
        shards: 2,
        sessions_per_shard: 1,
        queue_capacity: 32,
        ..FleetConfig::default()
    });
    let home = fleet.home_of(job.key());
    let home_filler = busy_filler_at(&fleet, home, 20, 7);
    let away_filler = busy_filler_at(&fleet, 1 - home, 10, 0);
    fleet.submit(home_filler).unwrap();
    fleet.submit(away_filler).unwrap();
    let id = fleet.submit(job).unwrap();
    fleet.run_until_idle();
    assert!(
        fleet.steals_of(id) >= 1,
        "the long job was never stolen off its busy home shard"
    );
    assert!(
        fleet.migrations_of(id) >= 1,
        "the long job never crossed shards with restore bytes (steals={})",
        fleet.steals_of(id)
    );
    (fleet, id)
}

#[test]
fn stolen_long_job_migrates_over_checkpoint_bytes_bit_identically() {
    let job = long_rd(1405.0);
    let reference = unsliced_reference(job.clone());
    let (fleet, id) = run_migrated(job);
    assert_eq!(
        completed_artifacts(&fleet, id),
        reference,
        "migration changed the bits"
    );
    let s = fleet.stats();
    assert!(s.migrations >= 1);
    assert!(s.steals >= 1);
    assert!(s.preemptions >= 2, "the job never ran as slices");
}

#[test]
fn mid_snapshot_steal_falls_back_to_the_prior_set() {
    // The adversarial drill: every preemption lands mid-snapshot, so the
    // boundary commit of each slice is torn and the continuation must
    // fall back to the previous committed set (re-executing at most
    // ckpt_interval steps).
    let mut job = long_rd(1410.0);
    job.fault.mid_snapshot_preempt = true;
    let mut clean = job.clone();
    clean.fault.mid_snapshot_preempt = false;
    let reference = unsliced_reference(clean);
    let (fleet, id) = run_migrated(job);
    assert_eq!(
        completed_artifacts(&fleet, id),
        reference,
        "torn-snapshot fallback changed the bits"
    );
}

#[test]
fn no_progress_guard_survives_slice_equal_to_interval() {
    // slice == ckpt_interval + mid-snapshot tearing: every slice's only
    // commit is torn, so without the extend-slice guard no leg would
    // ever persist progress and the job would loop forever.
    let mut job = long_rd(1415.0);
    job.fault.mid_snapshot_preempt = true;
    let mut clean = job.clone();
    clean.fault.mid_snapshot_preempt = false;
    let reference = unsliced_reference(clean);

    let mut fleet = Fleet::new(FleetConfig {
        shards: 1,
        sessions_per_shard: 1,
        slice_steps: 2, // == ckpt_interval of the job
        ..FleetConfig::default()
    });
    let id = fleet.submit(job).unwrap();
    fleet.run_until_idle();
    assert_eq!(
        completed_artifacts(&fleet, id),
        reference,
        "extended slices changed the bits"
    );
}

#[test]
fn elastic_resize_replays_bit_identically() {
    let jobs: Vec<SimJob> = (0..10).map(|i| long_rd(1300.0 + 2.0 * i as f64)).collect();

    // Reference: fixed 4-session single shard.
    let mut fixed = Fleet::new(FleetConfig {
        shards: 1,
        sessions_per_shard: 4,
        queue_capacity: 32,
        ..FleetConfig::default()
    });
    let fixed_ids: Vec<u64> = jobs
        .iter()
        .map(|j| fixed.submit(j.clone()).unwrap())
        .collect();
    fixed.run_until_idle();
    let want: Vec<_> = fixed_ids
        .iter()
        .map(|&id| completed_artifacts(&fixed, id))
        .collect();

    // Elastic run: shrink to 1 session mid-flight, then grow to 6.
    // In-flight sliced jobs just resume on whatever pool exists next.
    let mut elastic = Fleet::new(FleetConfig {
        shards: 1,
        sessions_per_shard: 4,
        queue_capacity: 32,
        ..FleetConfig::default()
    });
    let ids: Vec<u64> = jobs
        .iter()
        .map(|j| elastic.submit(j.clone()).unwrap())
        .collect();
    for _ in 0..3 {
        elastic.step();
    }
    elastic.resize_shard(0, 1);
    for _ in 0..4 {
        elastic.step();
    }
    elastic.resize_shard(0, 6);
    elastic.run_until_idle();

    let got: Vec<_> = ids
        .iter()
        .map(|&id| completed_artifacts(&elastic, id))
        .collect();
    assert_eq!(got, want, "elastic resizing changed some job's bits");
    let pool = elastic.stats().shards[0].sessions;
    assert_eq!(pool, 6, "grow target never applied");
}

#[test]
fn deadline_admission_accounts_for_queue_pressure() {
    let mut fleet = Fleet::new(FleetConfig {
        shards: 1,
        sessions_per_shard: 1,
        ..FleetConfig::default()
    });
    // Occupy the only session: ignition (cost 5) dispatches at tick 0.
    fleet.submit(IgnitionSpec::default().job()).unwrap();
    fleet.step();

    // A 5-tick job with a 7-tick deadline would fit on an idle fleet,
    // but the session is busy until tick 5 → earliest completion is 10.
    let mut job = IgnitionSpec {
        t0: 1111.0,
        ..IgnitionSpec::default()
    }
    .job();
    job.deadline = Some(7);
    match fleet.submit(job.clone()) {
        Err(SubmitError::Deadline { needed, deadline }) => {
            assert_eq!(needed, 10);
            assert_eq!(deadline, 7);
        }
        other => panic!("expected queue-pressure rejection, got {other:?}"),
    }
    // The same job under Downgrade is accepted and still completes.
    job.on_late = LatePolicy::Downgrade;
    let id = fleet.submit(job).unwrap();
    fleet.run_until_idle();
    assert!(matches!(
        fleet.outcome(id),
        Some(JobOutcome::Completed { .. })
    ));
    let s = fleet.stats();
    assert_eq!(s.rejected_deadline, 1);
    assert_eq!(s.downgraded, 1);
}

/// Three-class tenant table for the QoS tests.
fn classed_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("int", QosClass::Interactive, 1),
        TenantSpec::new("std", QosClass::Standard, 1),
        TenantSpec::new("bat", QosClass::Batch, 1),
    ]
}

fn classed_job(tenant: u32, t0: f64) -> SimJob {
    let mut job = IgnitionSpec {
        t0,
        ..IgnitionSpec::default()
    }
    .job();
    job.tenant = tenant;
    job
}

#[test]
fn qos_bands_order_service_regardless_of_submission_order() {
    // All three classes queued before the first tick on a single
    // session: service order must be interactive, standard, batch —
    // the reverse of submission order. Ignition costs 5 ticks, so the
    // waits are exactly 0 / 5 / 10.
    let mut fleet = Fleet::new(FleetConfig {
        shards: 1,
        sessions_per_shard: 1,
        tenants: classed_tenants(),
        ..FleetConfig::default()
    });
    let batch = fleet.submit(classed_job(2, 1001.0)).unwrap();
    let standard = fleet.submit(classed_job(1, 1002.0)).unwrap();
    let interactive = fleet.submit(classed_job(0, 1003.0)).unwrap();
    fleet.run_until_idle();
    assert_eq!(completed_wait(&fleet, interactive), 0);
    assert_eq!(completed_wait(&fleet, standard), 5);
    assert_eq!(completed_wait(&fleet, batch), 10);
}

/// Queue a batch job behind a 2100-step hog, then (once the hog owns the
/// clock) submit fresh interactive traffic the moment the session frees.
/// Returns (batch wait, interactive wait).
fn aged_batch_vs_fresh_interactive(aging_ticks: u64) -> (u64, u64) {
    let mut fleet = Fleet::new(FleetConfig {
        shards: 1,
        sessions_per_shard: 1,
        aging_ticks,
        tenants: classed_tenants(),
        ..FleetConfig::default()
    });
    let mut hog = RdSpec {
        nx: 8,
        n_steps: 2100,
        t_hot: 1280.0,
        ..RdSpec::default()
    }
    .job();
    hog.tenant = 2;
    fleet.submit(hog).unwrap();
    let starving = fleet.submit(classed_job(2, 1004.0)).unwrap();
    // Dispatch the hog; the clock jumps to its finish (tick 2101) with
    // the batch job still queued — it has now waited 2101 ticks.
    fleet.step();
    assert_eq!(fleet.clock(), 2101);
    let fresh = fleet.submit(classed_job(0, 1005.0)).unwrap();
    fleet.run_until_idle();
    (
        completed_wait(&fleet, starving),
        completed_wait(&fleet, fresh),
    )
}

#[test]
fn aging_lifts_starved_batch_work_over_fresh_interactive() {
    // With aging on (1 tick per priority point), 2101 ticks of waiting
    // out-banks the interactive base band (2048): the batch job runs
    // first and the fresh interactive job eats its 5-tick runtime.
    let (starving, fresh) = aged_batch_vs_fresh_interactive(1);
    assert_eq!(starving, 2101, "aged batch job did not run at once");
    assert_eq!(fresh, 5, "fresh interactive did not yield to aged batch");

    // Control: aging off — class bands alone decide, the fresh
    // interactive job preempts the queue and batch starves longer.
    let (starving, fresh) = aged_batch_vs_fresh_interactive(0);
    assert_eq!(fresh, 0);
    assert_eq!(starving, 2106);
}

#[test]
fn stats_snapshots_are_stable_and_never_double_count() {
    let cfg = cca_serve::FleetLoadgenConfig::default();
    let r = cca_serve::run_fleet_loadgen(&cfg);
    assert_eq!(r.lost, 0);
    let s = &r.stats;
    // Each completed job records exactly one wait/run/turnaround sample,
    // no matter how many slices, retries, or shards it crossed.
    assert_eq!(s.turnaround.count, s.completed);
    assert_eq!(s.queue_wait.count, s.completed);
    assert_eq!(s.run_ticks.count, s.completed);
    // Per tenant: every accepted submission resolves as exactly one hit
    // or one miss.
    for t in &s.tenants {
        assert_eq!(
            t.hits + t.misses,
            t.submitted,
            "tenant {} leaks submissions",
            t.name
        );
    }
    // Shard counters are a partition of the fleet totals.
    assert_eq!(
        s.shards.iter().map(|sh| sh.completed).sum::<u64>(),
        s.completed
    );
    assert_eq!(
        s.shards.iter().map(|sh| sh.steals_in).sum::<u64>(),
        s.steals
    );
    assert_eq!(
        s.shards.iter().map(|sh| sh.steals_out).sum::<u64>(),
        s.steals
    );
}
