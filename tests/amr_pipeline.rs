//! End-to-end SAMR pipeline checks spanning mesh, components, and apps:
//! adaptivity must refine the right places and must not change the
//! physics it resolves.

use cca_hydro::apps::reaction_diffusion::{run_reaction_diffusion, RdConfig};
use cca_hydro::apps::shock_interface::{run_shock_interface, ShockConfig};

/// Diffusion-only flame proxy: a 2-level AMR run tracks the uniform-grid
/// answer for the coarse-grid peak temperature.
#[test]
fn amr_agrees_with_uniform_for_smooth_diffusion() {
    let base = RdConfig {
        nx: 16,
        dt: 1.0e-6,
        n_steps: 3,
        with_chemistry: false,
        regrid_interval: 100, // no mid-run regrids
        threshold: 30.0,
        ..RdConfig::default()
    };
    let uniform = RdConfig {
        max_levels: 1,
        ..base
    };
    let amr = RdConfig {
        max_levels: 2,
        ..base
    };
    let (ru, _) = run_reaction_diffusion(&uniform).unwrap();
    let (ra, _) = run_reaction_diffusion(&amr).unwrap();
    let tu = ru.t_max_series.last().unwrap().1;
    let ta = ra.t_max_series.last().unwrap().1;
    // The AMR run resolves the peak better, so exact equality is not
    // expected; but they must agree to a few percent.
    assert!(
        (tu - ta).abs() < 0.05 * tu,
        "uniform Tmax {tu} vs AMR Tmax {ta}"
    );
    // And the fine level actually covers the hot spots.
    assert!(ra.cells_per_level.len() == 2 && ra.cells_per_level[1] > 0);
}

/// The refined region follows the shock: after the run the fine patches
/// must cover the cells with the steepest density gradients.
#[test]
fn fine_patches_cover_steep_gradients() {
    let cfg = ShockConfig {
        nx: 32,
        ny: 16,
        max_levels: 2,
        t_end_over_tau: 0.4,
        regrid_interval: 2,
        ..ShockConfig::default()
    };
    let (report, _) = run_shock_interface(&cfg).unwrap();
    // From the final field, find the steepest-density location among
    // coarse-level samples; it must not be the global steepest — the
    // steep stuff must live on level >= 1.
    let mut steepest_level0 = 0.0f64;
    let mut steepest_any = 0.0f64;
    // Crude proxy: density spread within each level's samples.
    let mut level0 = Vec::new();
    let mut level1 = Vec::new();
    for &(_, _, rho, _, level) in &report.final_density {
        if level == 0 {
            level0.push(rho);
        } else {
            level1.push(rho);
        }
    }
    if !level0.is_empty() {
        steepest_level0 = level0.iter().cloned().fold(0.0, f64::max)
            - level0.iter().cloned().fold(f64::INFINITY, f64::min);
    }
    if !level1.is_empty() {
        steepest_any = level1.iter().cloned().fold(0.0, f64::max)
            - level1.iter().cloned().fold(f64::INFINITY, f64::min);
    }
    assert!(
        steepest_any > 0.8 * steepest_level0,
        "fine level ({steepest_any}) does not hold the steep features ({steepest_level0})"
    );
}

/// Conservation across restriction: on a closed (zero-flux) box the
/// integral of a diffused variable is invariant, AMR or not.
#[test]
fn closed_box_conserves_integral_under_amr() {
    let cfg = RdConfig {
        nx: 16,
        dt: 1.0e-6,
        n_steps: 2,
        with_chemistry: false,
        max_levels: 2,
        regrid_interval: 100,
        threshold: 30.0,
        ..RdConfig::default()
    };
    let (report, _) = run_reaction_diffusion(&cfg).unwrap();
    // The T field integral on the coarse grid after restriction: compare
    // first and last step's max as a proxy plus explicit field integral.
    let sum_final: f64 = report.final_t_field.iter().map(|(_, _, t)| t).sum();
    let n = report.final_t_field.len() as f64;
    let mean_final = sum_final / n;
    // The initial mean of the IC: ambient 300 K plus three Gaussian spots
    // of amplitude 1100 K and radius 0.8 mm in a 10 mm box:
    // 300 + 3 * (1100 * pi * r^2) / L^2 = 300 + 66.3 ≈ 366.3 K.
    // Diffusion on a closed box preserves it.
    assert!(
        (mean_final - 366.3).abs() < 8.0,
        "mean T drifted: {mean_final}"
    );
}
