//! Tier-2 pin of the serving subsystem's acceptance criteria (PR 3).
//!
//! The load generator is a pure function of its seed and the server runs
//! on a virtual clock, so every number here is deterministic — the same
//! counts `cca-bench serve` freezes into `BENCH_PR3.json`.

use cca_serve::{
    run_fleet_loadgen, run_loadgen, CancelReason, Fleet, FleetConfig, FleetLoadgenConfig,
    IgnitionSpec, JobOutcome, LoadgenConfig, Override, QosClass, RdSpec, Server, ServerConfig,
    SubmitError, TenantSpec,
};

#[test]
fn loadgen_meets_the_pr_acceptance_criteria() {
    let cfg = LoadgenConfig::default();
    let report = run_loadgen(&cfg);

    // Zero lost jobs: all 200 requests were eventually accepted (queue-full
    // rejections were resubmitted) and every accepted id has a terminal
    // outcome.
    assert_eq!(report.ids.len(), cfg.jobs);
    let resolved = report.completed
        + report.cached
        + report.cancelled_deadline
        + report.cancelled_user
        + report.failed;
    assert_eq!(resolved, cfg.jobs as u64, "every accepted job must resolve");

    // 25% duplicates answered from the cache: hit ratio >= duplicate ratio.
    assert_eq!(report.duplicate_requests, 50);
    assert!(
        report.cache_hit_ratio >= cfg.duplicate_ratio,
        "cache hit ratio {} below duplicate ratio {}",
        report.cache_hit_ratio,
        cfg.duplicate_ratio
    );

    // Bursts of 32 against a 24-deep queue must trip backpressure, and the
    // injected faults must exercise retry, poisoning, and terminal failure;
    // the budgeted jobs must hit their deadline.
    assert!(report.rejection_events > 0, "backpressure never engaged");
    let s = &report.stats;
    assert!(s.retries >= 1, "no retry was exercised");
    assert!(s.poisonings >= 1, "no session was poisoned");
    assert!(report.failed >= 1, "the hopeless job must fail terminally");
    assert!(report.cancelled_deadline >= 1, "no deadline fired");

    // Panic isolation: a panic poisons exactly one session, which is
    // rebuilt (epoch bump). Total epoch bumps == total poisonings, and the
    // pool kept serving afterwards.
    let epoch_sum: u64 = s.sessions.iter().map(|x| x.epoch).sum();
    assert_eq!(
        epoch_sum, s.poisonings,
        "each poisoning must rebuild exactly one session"
    );
    assert!(s.sessions.iter().all(|x| x.runs > 0));

    // The exact deterministic scenario, pinned. If a scheduling or
    // workload change shifts these, BENCH_PR3.json must be regenerated in
    // the same commit.
    assert_eq!(report.completed, 144);
    assert_eq!(report.cached, 50);
    assert_eq!(report.cancelled_deadline, 5);
    assert_eq!(report.cancelled_user, 0);
    assert_eq!(report.failed, 1);
    assert_eq!(report.rejection_events, 13);
    assert_eq!(s.retries, 7);
    assert_eq!(s.poisonings, 8);
    assert_eq!(s.coalesced, 9);
    assert_eq!(report.total_ticks, 148);
}

#[test]
fn fleet_loadgen_loses_no_jobs_and_pins_the_pr10_scenario() {
    let cfg = FleetLoadgenConfig::default();
    let r = run_fleet_loadgen(&cfg);

    // Zero lost jobs: every request resolves — completed, cached,
    // cancelled, failed, or provably-late-rejected; nothing vanishes.
    assert_eq!(r.lost, 0, "requests without a terminal outcome");

    // The exact deterministic multi-tenant scenario, pinned. If a
    // scheduling change shifts these, BENCH_PR10.json must be
    // regenerated in the same commit.
    assert_eq!(r.completed, 178);
    assert_eq!(r.cached, 62);
    assert_eq!(r.failed, 0);
    assert_eq!(r.rejected_deadline, 0);
    assert_eq!(r.rejection_events, 4);
    assert_eq!(r.total_ticks, 290);
    assert_eq!(r.outcome_checksum, 0x5113_558c_e54a_6c5e);
    let s = &r.stats;
    assert_eq!(s.steals, 102, "work stealing never engaged");
    assert_eq!(s.migrations, 3, "no checkpoint handoff crossed shards");
    assert_eq!(s.preemptions, 100, "long jobs never ran as slices");

    // Per tenant, every accepted submission resolves as exactly one
    // cache hit or one executed miss — aggregation double-counts
    // nothing, loses nothing.
    for t in &s.tenants {
        assert_eq!(
            t.hits + t.misses,
            t.submitted,
            "tenant {} leaks submissions",
            t.name
        );
    }
    // Skewed popular keys mean only the interactive tenant sees cache
    // hits; the heavy tenant dominates served ticks.
    assert_eq!(s.tenants[0].hits, 62);
    assert_eq!(s.tenants[2].served_ticks, 650);
}

#[test]
fn fleet_loadgen_is_deterministic_and_shard_count_invariant() {
    // Same stream, run twice → byte-identical stats; and the outcome
    // checksum must not depend on the shard count or on stealing (the
    // schedule moves, the physics must not).
    let a = run_fleet_loadgen(&FleetLoadgenConfig::default());
    let b = run_fleet_loadgen(&FleetLoadgenConfig::default());
    assert_eq!(a.outcome_checksum, b.outcome_checksum);
    assert_eq!(a.total_ticks, b.total_ticks);
    assert_eq!(a.stats.executor, b.stats.executor);
    for shards in [1usize, 4] {
        for steal in [false, true] {
            let r = run_fleet_loadgen(&FleetLoadgenConfig {
                shards,
                steal,
                ..FleetLoadgenConfig::default()
            });
            assert_eq!(r.lost, 0, "{shards} shards steal={steal} lost jobs");
            assert_eq!(
                r.outcome_checksum, a.outcome_checksum,
                "{shards} shards steal={steal} drifted the physics"
            );
        }
    }
}

#[test]
fn stride_fair_share_matches_tenant_weights_exactly() {
    // Three batch tenants with weights 1:2:4 saturating one session with
    // identical 3-tick jobs: after 63 ticks (21 jobs) the stride
    // scheduler must have served them 9:18:36 ticks — the exact weight
    // ratio, not an approximation.
    let mut fleet = Fleet::new(FleetConfig {
        shards: 1,
        sessions_per_shard: 1,
        queue_capacity: 128,
        tenants: vec![
            TenantSpec::new("a", QosClass::Batch, 1),
            TenantSpec::new("b", QosClass::Batch, 2),
            TenantSpec::new("c", QosClass::Batch, 4),
        ],
        ..FleetConfig::default()
    });
    for i in 0..30 {
        for t in 0..3u32 {
            let mut job = RdSpec {
                nx: 8,
                n_steps: 2,
                t_hot: 1500.0 + (i * 3 + t as usize) as f64,
                ..RdSpec::default()
            }
            .job();
            job.tenant = t;
            fleet.submit(job).unwrap();
        }
    }
    while fleet.clock() < 63 && fleet.step() {}
    let served: Vec<u64> = fleet
        .stats()
        .tenants
        .iter()
        .map(|t| t.served_ticks)
        .collect();
    assert_eq!(served, vec![9, 18, 36]);
}

#[test]
fn loadgen_is_deterministic_end_to_end() {
    // A smaller scenario run twice must agree on every statistic,
    // including the latency distributions (virtual clock — no wall time).
    let cfg = LoadgenConfig {
        jobs: 60,
        sessions: 2,
        queue_capacity: 12,
        burst: 16,
        ..LoadgenConfig::default()
    };
    let a = run_loadgen(&cfg);
    let b = run_loadgen(&cfg);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.rejection_events, b.rejection_events);
    assert_eq!(a.total_ticks, b.total_ticks);
}

#[test]
fn step_budget_deadline_is_enforced_exactly() {
    // Budget B against a longer run: the job executes exactly B macro
    // steps and resolves Cancelled{Deadline{B}} — no wall clocks involved.
    for budget in [1u64, 2, 4] {
        let mut server = Server::new(ServerConfig::default());
        let mut job = RdSpec {
            nx: 8,
            n_steps: 6,
            ..RdSpec::default()
        }
        .job();
        job.step_budget = Some(budget);
        let id = server.submit(job).expect("admission-clean job");
        server.run_until_idle();
        match server.outcome(id).expect("job must resolve") {
            JobOutcome::Cancelled { reason, steps, .. } => {
                assert_eq!(*reason, CancelReason::Deadline { budget });
                assert_eq!(
                    *steps, budget,
                    "budget {budget} must stop after exactly {budget} steps"
                );
            }
            other => panic!("expected deadline cancellation, got {}", other.tag()),
        }
    }
}

#[test]
fn admission_rejects_doomed_jobs_before_any_session_time() {
    // An override targeting an unknown instance makes the vetted script
    // (assembly + synthetic `parameter` lines) fail the static admission
    // check — the job is refused without ever occupying a session.
    let mut server = Server::new(ServerConfig::default());
    let mut job = IgnitionSpec::default().job();
    job.overrides.push(Override::new("ghost", "T0", 1.0));
    match server.submit(job) {
        Err(SubmitError::Admission { report }) => {
            assert!(report.contains("ghost"), "report must name the culprit")
        }
        other => panic!("expected admission rejection, got {other:?}"),
    }
    let s = server.stats();
    assert_eq!(s.rejected_admission, 1);
    assert_eq!(s.submitted, 0);
    assert!(s.sessions.iter().all(|x| x.runs == 0));
}

#[test]
fn queued_jobs_cancel_without_spending_a_session() {
    let mut server = Server::new(ServerConfig::default());
    let id = server
        .submit(RdSpec::default().job())
        .expect("admission-clean job");
    assert!(server.cancel(id));
    server.run_until_idle();
    match server.outcome(id).expect("cancelled job must resolve") {
        JobOutcome::Cancelled { reason, steps, .. } => {
            assert_eq!(*reason, CancelReason::User);
            assert_eq!(*steps, 0, "no session time may be spent");
        }
        other => panic!("expected user cancellation, got {}", other.tag()),
    }
    let s = server.stats();
    assert_eq!(s.completed, 0);
    assert!(s.sessions.iter().all(|x| x.runs == 0));
}
