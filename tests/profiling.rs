//! Integration test of the per-component performance instrumentation —
//! the paper's future-work item (4) ("characterize the performance
//! characteristics of individual components and their assemblies",
//! there via TAU).

use cca_hydro::apps::shock_interface::{run_shock_interface_profiled, ShockConfig};

#[test]
fn profiled_assembly_reports_component_times() {
    let cfg = ShockConfig {
        nx: 24,
        ny: 12,
        max_levels: 1,
        t_end_over_tau: 0.2,
        ..ShockConfig::default()
    };
    let (report, _, profile) = run_shock_interface_profiled(&cfg).unwrap();
    assert!(report.steps > 0);
    // The driver go and both hot components appear in the profile.
    assert!(profile.contains("driver.go"), "{profile}");
    assert!(
        profile.contains("ExplicitIntegratorRK2.advance"),
        "{profile}"
    );
    assert!(profile.contains("InviscidFlux.patch-rhs"), "{profile}");
    // The RHS evaluator is called twice per RK2 step (two stages), once
    // per patch; with a single patch that is exactly 2 * steps calls.
    let rhs_line = profile
        .lines()
        .find(|l| l.starts_with("InviscidFlux.patch-rhs"))
        .expect("rhs row");
    let calls: u64 = rhs_line
        .split_whitespace()
        .nth(1)
        .expect("calls column")
        .parse()
        .expect("numeric calls");
    assert_eq!(calls, 2 * report.steps as u64, "{rhs_line}");
    // The driver's total time dominates the integrator's, which dominates
    // nothing smaller than itself (sanity of the accounting).
    let total = |needle: &str| -> f64 {
        profile
            .lines()
            .find(|l| l.starts_with(needle))
            .and_then(|l| l.split_whitespace().nth(2))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0)
    };
    assert!(total("driver.go") >= total("ExplicitIntegratorRK2.advance"));
    assert!(total("ExplicitIntegratorRK2.advance") >= total("InviscidFlux.patch-rhs"));
}

#[test]
fn unprofiled_run_collects_nothing_extra() {
    use cca_hydro::apps::shock_interface::run_shock_interface;
    let cfg = ShockConfig {
        nx: 16,
        ny: 8,
        max_levels: 1,
        t_end_over_tau: 0.1,
        ..ShockConfig::default()
    };
    // Just verifies the default path still works with profiling off.
    let (report, _) = run_shock_interface(&cfg).unwrap();
    assert!(report.steps > 0);
}
