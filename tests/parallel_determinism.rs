//! Determinism and failure-containment guarantees of the patch-kernel
//! executor, exercised through the real application assemblies.
//!
//! The executor's contract (crates/core/src/executor.rs) is that results
//! are reassembled by submission index, each patch is owned by exactly
//! one worker, and the kernel route is taken at *any* worker count — so
//! the worker knob must never change the numbers. These tests pin that
//! down end-to-end: the flame assembly (chemistry + diffusion kernels)
//! must be bit-identical at 1 vs N workers, the shock assembly (Euler
//! flux kernel under RK2) must agree to round-off, and a panicking
//! kernel must poison the run without hanging or losing patches.

use cca_hydro::apps::reaction_diffusion::{rd_framework, rd_script, RdConfig, RdReport};
use cca_hydro::apps::shock_interface::{shock_framework, shock_script, ShockConfig, ShockReport};
use cca_hydro::core::script::run_script;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn run_flame(workers: usize, cfg: &RdConfig) -> RdReport {
    let mut fw = rd_framework();
    fw.set_workers(workers);
    run_script(&mut fw, &rd_script(cfg)).unwrap();
    let report: Rc<RefCell<RdReport>> = fw.get_provides_port("driver", "report").unwrap();
    let report = report.borrow().clone();
    report
}

fn run_shock(workers: usize, cfg: &ShockConfig) -> ShockReport {
    let mut fw = shock_framework();
    fw.set_workers(workers);
    run_script(&mut fw, &shock_script(cfg)).unwrap();
    let report: Rc<RefCell<ShockReport>> = fw.get_provides_port("driver", "report").unwrap();
    let report = report.borrow().clone();
    report
}

/// Chemistry (ImplicitIntegrator cell sweep) and diffusion (RKC patch
/// RHS) both run through `Send + Sync` kernel snapshots of the exact
/// port-path arithmetic, so a parallel flame run must reproduce the
/// serial fields bit for bit.
#[test]
fn flame_fields_bit_identical_across_worker_counts() {
    let cfg = RdConfig {
        nx: 16,
        dt: 5.0e-7,
        n_steps: 2,
        max_levels: 2,
        threshold: 50.0,
        ..RdConfig::default()
    };
    let serial = run_flame(1, &cfg);
    // AMR must have produced more than one patch, or the test proves
    // nothing about concurrent execution.
    assert!(
        serial.final_patches.len() > 1,
        "want a multi-patch hierarchy, got {:?}",
        serial.final_patches
    );
    for workers in [2, 4] {
        let par = run_flame(workers, &cfg);
        assert_eq!(serial.final_patches, par.final_patches, "w={workers}");
        assert_eq!(
            serial.final_t_field.len(),
            par.final_t_field.len(),
            "w={workers}"
        );
        for (s, p) in serial.final_t_field.iter().zip(&par.final_t_field) {
            assert_eq!(
                s.2.to_bits(),
                p.2.to_bits(),
                "T at {:?} w={workers}",
                (s.0, s.1)
            );
        }
        for (s, p) in serial.t_max_series.iter().zip(&par.t_max_series) {
            assert_eq!(s.1.to_bits(), p.1.to_bits(), "Tmax series w={workers}");
        }
        for (s, p) in serial.h2o2_max_series.iter().zip(&par.h2o2_max_series) {
            assert_eq!(s.1.to_bits(), p.1.to_bits(), "H2O2 series w={workers}");
        }
    }
}

/// The Euler flux kernel snapshots the States limiter and γ per RHS
/// evaluation; patches come back in submission order, so the shock run
/// agrees with serial to round-off (and, with this executor, exactly).
#[test]
fn shock_fields_match_across_worker_counts() {
    let cfg = ShockConfig {
        nx: 24,
        ny: 12,
        max_levels: 2,
        t_end_over_tau: 0.2,
        ..ShockConfig::default()
    };
    let serial = run_shock(1, &cfg);
    assert!(serial.steps > 0);
    let par = run_shock(3, &cfg);
    assert_eq!(serial.steps, par.steps);
    assert_eq!(serial.final_patches, par.final_patches);
    assert_eq!(serial.final_density.len(), par.final_density.len());
    for (s, p) in serial.final_density.iter().zip(&par.final_density) {
        let tol = 1e-12 * (1.0 + s.2.abs());
        assert!(
            (s.2 - p.2).abs() <= tol,
            "rho at {:?}: {} vs {}",
            (s.0, s.1),
            s.2,
            p.2
        );
    }
    for (s, p) in serial
        .circulation_series
        .iter()
        .zip(&par.circulation_series)
    {
        assert!((s.1 - p.1).abs() <= 1e-10 * (1.0 + s.1.abs()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A kernel that panics on an arbitrary subset of patches, at an
    /// arbitrary worker count, must (a) return — no hang, (b) hand every
    /// patch back, (c) report exactly the panicked indices, sorted, and
    /// (d) leave the non-panicked patches fully updated.
    #[test]
    fn panicking_kernels_poison_without_losing_patches(
        workers in 1usize..5,
        n_items in 1usize..40,
        seed in 0usize..1000,
    ) {
        let seed = seed as u64;
        let executor = cca_hydro::core::Executor::new(cca_hydro::core::Profiler::new());
        executor.set_workers(workers);
        // Deterministic pseudo-random panic mask from the seed.
        let panics: Vec<bool> = (0..n_items)
            .map(|i| {
                let h = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
                h.is_multiple_of(5)
            })
            .collect();
        let mask = panics.clone();
        let items: Vec<i64> = (0..n_items as i64).collect();
        let report = executor.run("prop", items, move |_w, it| {
            if mask[*it as usize] {
                panic!("injected panic at {it}");
            }
            *it += 10_000;
        });
        prop_assert_eq!(report.items.len(), n_items, "no lost patches");
        let expect: Vec<usize> = panics
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| p.then_some(i))
            .collect();
        let got: Vec<usize> = report.failures.iter().map(|f| f.index).collect();
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(report.poisoned(), !expect.is_empty());
        for (i, it) in report.items.iter().enumerate() {
            if !panics[i] {
                prop_assert_eq!(*it, i as i64 + 10_000, "surviving patch updated");
            }
        }
        if report.poisoned() {
            let err = report.into_result().unwrap_err();
            prop_assert!(err.contains("poisoned"), "{}", err);
        }
    }
}
