//! Integration tests of the SCMD scaling configuration: physics
//! invariance under decomposition and the qualitative shapes of the
//! paper's §5.2 results.

use cca_hydro::apps::scaling::{run_scaling, ScalingConfig};
use cca_hydro::comm::ClusterModel;

#[test]
fn decomposition_invariance_many_rank_counts() {
    let base = ScalingConfig {
        n: 30,
        per_rank: false,
        steps: 2,
        audit: true,
        ..ScalingConfig::default()
    };
    let reference = run_scaling(&ScalingConfig { ranks: 1, ..base }, ClusterModel::zero()).checksum;
    for p in [2usize, 3, 5, 6] {
        let s = run_scaling(&ScalingConfig { ranks: p, ..base }, ClusterModel::zero()).checksum;
        assert!(
            (s - reference).abs() < 1e-6 * reference.abs(),
            "P={p}: {s} vs {reference}"
        );
    }
}

#[test]
fn efficiency_declines_as_tiles_shrink() {
    // Fig. 9's knee: fixed global problem, growing P -> efficiency falls.
    let model = ClusterModel::cplant();
    let base = ScalingConfig {
        n: 64,
        per_rank: false,
        audit: true,
        ..ScalingConfig::default()
    };
    let t1 = run_scaling(&ScalingConfig { ranks: 1, ..base }, model).modeled_time;
    let mut last_eff = f64::INFINITY;
    for p in [4usize, 16] {
        let tp = run_scaling(&ScalingConfig { ranks: p, ..base }, model).modeled_time;
        let eff = t1 / (p as f64 * tp);
        assert!(eff <= 1.02, "P={p}: superlinear? eff={eff}");
        assert!(
            eff < last_eff + 0.02,
            "efficiency must decline: {eff} after {last_eff}"
        );
        last_eff = eff;
    }
    assert!(last_eff > 0.3, "model collapsed: eff={last_eff}");
}

#[test]
fn larger_problems_scale_better() {
    // Fig. 9: the 350^2 curve tracks the ideal line closer than 200^2.
    let model = ClusterModel::cplant();
    let eff_for = |n: i64| -> f64 {
        let t1 = run_scaling(
            &ScalingConfig {
                n,
                per_rank: false,
                ranks: 1,
                steps: 2,
                audit: true,
                ..ScalingConfig::default()
            },
            model,
        )
        .modeled_time;
        let t16 = run_scaling(
            &ScalingConfig {
                n,
                per_rank: false,
                ranks: 16,
                steps: 2,
                audit: true,
                ..ScalingConfig::default()
            },
            model,
        )
        .modeled_time;
        t1 / (16.0 * t16)
    };
    let small = eff_for(48);
    let large = eff_for(96);
    assert!(
        large >= small - 1e-9,
        "large problem scaled worse: {large} < {small}"
    );
}

#[test]
fn overlapped_exchange_is_bit_identical_to_blocking() {
    // The tentpole invariant: overlap changes the schedule (interior
    // sweep while halo messages are in flight), never the bits. Checked
    // against the blocking two-pass protocol at awkward rank counts
    // (primes, non-squares) and in both coalescing modes.
    let base = ScalingConfig {
        n: 30,
        per_rank: false,
        steps: 2,
        audit: true,
        ..ScalingConfig::default()
    };
    for p in [1usize, 2, 3, 5, 6] {
        let blocking = run_scaling(&ScalingConfig { ranks: p, ..base }, ClusterModel::cplant());
        for coalesce in [true, false] {
            let overlapped = run_scaling(
                &ScalingConfig {
                    ranks: p,
                    overlap: true,
                    coalesce,
                    ..base
                },
                ClusterModel::cplant(),
            );
            assert_eq!(
                blocking.checksum.to_bits(),
                overlapped.checksum.to_bits(),
                "P={p}, coalesce={coalesce}: {} vs {}",
                blocking.checksum,
                overlapped.checksum
            );
        }
    }
}

#[test]
fn overlap_improves_efficiency_at_the_strong_scaling_knee() {
    // Fig. 9's knee (small tiles, fixed global problem): hiding the halo
    // latency behind the interior sweep must strictly improve the
    // modeled runtime, even with compute-heavy default work.
    let model = ClusterModel::cplant();
    let base = ScalingConfig {
        n: 64,
        per_rank: false,
        ranks: 16,
        audit: true,
        ..ScalingConfig::default()
    };
    let blocking = run_scaling(&base, model).modeled_time;
    let overlapped = run_scaling(
        &ScalingConfig {
            overlap: true,
            ..base
        },
        model,
    )
    .modeled_time;
    assert!(
        overlapped < blocking,
        "overlap did not pay at the knee: {overlapped} vs {blocking}"
    );

    // With communication-bound work (the acceptance-criteria probe) the
    // improvement must clear 10%.
    let probe = ScalingConfig {
        work_per_cell_var: 2.0e-4,
        ..base
    };
    let blocking = run_scaling(&probe, model).modeled_time;
    let overlapped = run_scaling(
        &ScalingConfig {
            overlap: true,
            ..probe
        },
        model,
    )
    .modeled_time;
    let improvement = (blocking - overlapped) / blocking;
    assert!(
        improvement >= 0.10,
        "knee improvement {improvement:.3} below the 10% floor \
         ({blocking} vs {overlapped})"
    );
}

#[test]
fn coalescing_sends_exactly_one_message_per_rank_pair_per_stage() {
    // Structural contract: on a 2 x 2 rank grid there are 8 directed
    // neighbour links, so each of the steps x stages exchanges moves
    // exactly 8 coalesced messages — and the per-variable comparator
    // moves exactly 9 x as many (NVARS = 9), same payload bytes.
    let base = ScalingConfig {
        n: 32,
        per_rank: false,
        ranks: 4,
        steps: 3,
        overlap: true,
        audit: true,
        ..ScalingConfig::default()
    };
    let exchanges = (base.steps * base.stages_per_step) as u64;
    let coalesced = run_scaling(&base, ClusterModel::zero());
    assert_eq!(coalesced.halo_messages, 8 * exchanges);
    let naive = run_scaling(
        &ScalingConfig {
            coalesce: false,
            ..base
        },
        ClusterModel::zero(),
    );
    assert_eq!(naive.halo_messages, 9 * coalesced.halo_messages);
    assert_eq!(naive.halo_bytes, coalesced.halo_bytes);
    // The saved-message counter accounts for every fold: 8 saved per
    // coalesced message, none on the per-variable path.
    assert_eq!(coalesced.messages_coalesced, 8 * coalesced.halo_messages);
    assert_eq!(naive.messages_coalesced, 0);
}

#[test]
fn weak_scaling_message_volume_grows_linearly() {
    // Each added rank adds a bounded number of neighbour exchanges: total
    // traffic grows ~linearly with P, per-rank traffic stays bounded.
    let model = ClusterModel::zero();
    let base = ScalingConfig {
        n: 16,
        per_rank: true,
        steps: 2,
        audit: true,
        ..ScalingConfig::default()
    };
    let m2 = run_scaling(&ScalingConfig { ranks: 2, ..base }, model);
    let m8 = run_scaling(&ScalingConfig { ranks: 8, ..base }, model);
    let per_rank_2 = m2.bytes as f64 / 2.0;
    let per_rank_8 = m8.bytes as f64 / 8.0;
    assert!(
        per_rank_8 < 3.0 * per_rank_2,
        "per-rank traffic exploded: {per_rank_2} -> {per_rank_8}"
    );
}
