//! The correctness half of Table 4: the component-assembled code and the
//! direct library code must compute the *same physics* — the paper's
//! point is that the only difference is virtual-dispatch overhead.

use cca_hydro::chem::systems::ConstantVolumeIgnition;
use cca_hydro::chem::{h2_air_19, h2_air_reduced_5};
use cca_hydro::solvers::{Bdf, BdfConfig};

/// Stoichiometric H2-air for an n-species table (H2, O2 first; N2 last).
fn stoich(n: usize) -> Vec<f64> {
    let w_h2 = 2.0 * 2.016;
    let w_o2 = 31.998;
    let w_n2 = 3.76 * 28.014;
    let total = w_h2 + w_o2 + w_n2;
    let mut y = vec![0.0; n];
    y[0] = w_h2 / total;
    y[1] = w_o2 / total;
    y[n - 1] = w_n2 / total;
    y
}

/// Direct "C-code" path: library calls, no ports.
fn direct_library_run(reduced: bool, t0: f64, p0: f64, t_end: f64) -> Vec<f64> {
    let mech = if reduced {
        h2_air_reduced_5()
    } else {
        h2_air_19()
    };
    let y0 = stoich(mech.n_species());
    let sys = ConstantVolumeIgnition::new(mech, t0, p0, &y0);
    let mut state = sys.pack_state(t0, &y0, p0);
    let bdf = Bdf::new(BdfConfig {
        rtol: 1e-8,
        atol: 1e-14,
        ..BdfConfig::default()
    });
    bdf.integrate(&sys, 0.0, t_end, &mut state)
        .expect("direct run");
    state
}

#[test]
fn component_code_matches_direct_library_full_mechanism() {
    let direct = direct_library_run(false, 1000.0, 101_325.0, 5.0e-4);
    let component = cca_hydro::apps::ignition0d::run_ignition_0d(false, 1000.0, 101_325.0, 5.0e-4)
        .expect("component run");
    assert_eq!(direct.len(), component.state.len());
    // Same trajectory to solver tolerance (both are adaptive BDF; allow
    // the controller a little slack near ignition).
    let t_d = direct[0];
    let t_c = component.state[0];
    assert!(
        (t_d - t_c).abs() < 1e-3 * t_d.max(t_c),
        "T: direct {t_d} vs component {t_c}"
    );
    let p_d = direct.last().unwrap();
    let p_c = component.state.last().unwrap();
    assert!((p_d - p_c).abs() < 1e-3 * p_d, "P: {p_d} vs {p_c}");
}

#[test]
fn component_code_matches_direct_library_reduced_mechanism() {
    // The Table 4 configuration: light 8-species/5-reaction mechanism.
    let direct = direct_library_run(true, 1100.0, 101_325.0, 1.0e-4);
    let component = cca_hydro::apps::ignition0d::run_ignition_0d(true, 1100.0, 101_325.0, 1.0e-4)
        .expect("component run");
    for (k, (d, c)) in direct.iter().zip(&component.state).enumerate() {
        assert!(
            (d - c).abs() <= 1e-6 * (1.0 + d.abs()),
            "state[{k}]: direct {d} vs component {c}"
        );
    }
}

#[test]
fn nfe_counts_are_comparable() {
    // The paper's NFE column: the component path must not do extra work —
    // RHS evaluation counts agree with the direct path to within the
    // adaptive controller's nondeterminism (here: exactly, since both
    // paths run the same BDF with the same tolerances).
    let mech = h2_air_reduced_5();
    let y0 = stoich(mech.n_species());
    let sys = ConstantVolumeIgnition::new(mech, 1100.0, 101_325.0, &y0);
    let mut state = sys.pack_state(1100.0, &y0, 101_325.0);
    let bdf = Bdf::new(BdfConfig {
        rtol: 1e-8,
        atol: 1e-14,
        ..BdfConfig::default()
    });
    let stats = bdf.integrate(&sys, 0.0, 1.0e-4, &mut state).unwrap();
    assert_eq!(stats.rhs_evals, sys.nfe.get());
    assert!(stats.rhs_evals > 0);
}
