//! Property-based tests for the solver substrate.

use cca_solvers::{Bdf, BdfConfig, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LU solve of a diagonally-dominant random matrix reproduces the
    /// right-hand side under multiplication.
    #[test]
    fn lu_solve_roundtrip(
        n in 1usize..8,
        seed in proptest::collection::vec(-1.0f64..1.0, 64 + 8),
    ) {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = seed[i * 8 + j];
            }
            // Diagonal dominance guarantees nonsingularity.
            a[(i, i)] += (n as f64) + 1.0;
        }
        let b: Vec<f64> = (0..n).map(|i| seed[64 + i]).collect();
        let x = a.lu().unwrap().solve(&b).unwrap();
        let bx = a.matvec(&x);
        for i in 0..n {
            prop_assert!((bx[i] - b[i]).abs() < 1e-9,
                "residual {} at row {i}", bx[i] - b[i]);
        }
    }

    /// Permuted identity (any permutation matrix) solves exactly.
    #[test]
    fn lu_handles_permutations(perm in proptest::sample::subsequence(vec![0usize,1,2,3,4], 5)) {
        // Build a permutation from the shuffled complement trick: use the
        // subsequence plus remaining indices to form a permutation vector.
        let mut p: Vec<usize> = perm.clone();
        for i in 0..5 {
            if !p.contains(&i) {
                p.push(i);
            }
        }
        let n = 5;
        let mut a = Matrix::zeros(n, n);
        for (i, &pi) in p.iter().enumerate() {
            a[(i, pi)] = 1.0;
        }
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = a.lu().unwrap().solve(&b).unwrap();
        for (i, &pi) in p.iter().enumerate() {
            prop_assert!((x[pi] - b[i]).abs() < 1e-14);
        }
    }

    /// BDF solves scalar linear ODEs y' = a y + b to tolerance for a range
    /// of decay rates and forcings.
    #[test]
    fn bdf_linear_scalar_matches_closed_form(
        a in -50.0f64..-0.1,
        b in -5.0f64..5.0,
        y0 in -2.0f64..2.0,
    ) {
        let sys = (1usize, move |_t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = a * y[0] + b;
        });
        let bdf = Bdf::new(BdfConfig { rtol: 1e-9, atol: 1e-12, ..BdfConfig::default() });
        let mut y = [y0];
        bdf.integrate(&sys, 0.0, 1.0, &mut y).unwrap();
        let yinf = -b / a;
        let exact = yinf + (y0 - yinf) * (a * 1.0f64).exp();
        prop_assert!((y[0] - exact).abs() < 1e-6 * (1.0 + exact.abs()),
            "got {} want {exact}", y[0]);
    }
}
