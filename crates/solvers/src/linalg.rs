//! Small dense linear algebra: row-major matrices and LU with partial
//! pivoting. Systems here are chemistry-sized (N ≈ 10), so a
//! cache-friendly, allocation-conscious direct solver is the right tool —
//! no external BLAS needed.

use std::fmt;

/// Errors from the direct solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinalgError {
    /// Factorization found no usable pivot: the matrix is singular to
    /// working precision.
    Singular {
        /// Column at which elimination broke down.
        column: usize,
    },
    /// Operand shapes do not match.
    DimensionMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { column } => {
                write!(f, "matrix singular at column {column}")
            }
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Dense row-major square-or-rectangular matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(rows * cols, data.len(), "shape does not match data length");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
        y
    }

    /// In-place scaled add: `self += s * other`.
    pub fn axpy(&mut self, s: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// LU factorization with partial pivoting. Consumes a copy of the
    /// matrix; the original is untouched.
    pub fn lu(&self) -> Result<LuFactors, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot search in column k.
            let mut p = k;
            let mut maxval = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > maxval {
                    maxval = v;
                    p = i;
                }
            }
            if maxval == 0.0 || !maxval.is_finite() {
                return Err(LinalgError::Singular { column: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let l = a[i * n + k] / pivot;
                a[i * n + k] = l;
                for j in (k + 1)..n {
                    a[i * n + j] -= l * a[k * n + j];
                }
            }
        }
        Ok(LuFactors { n, lu: a, piv })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// The result of [`Matrix::lu`]: packed L\U factors and the row permutation.
#[derive(Clone, Debug)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl LuFactors {
    /// Solve `A x = b` given the factorization of `A`. `b` is unchanged.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.n;
        // Apply permutation.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (unit lower triangle).
        for i in 1..n {
            let mut acc = x[i];
            for (l, xj) in self.lu[i * n..i * n + i].iter().zip(&x[..i]) {
                acc -= l * xj;
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (l, xj) in self.lu[(i * n + i + 1)..(i * n + n)]
                .iter()
                .zip(&x[i + 1..])
            {
                acc -= l * xj;
            }
            x[i] = acc / self.lu[i * n + i];
        }
        Ok(x)
    }

    /// Solve in place, reusing the caller's buffer (hot path of the BDF
    /// Newton iteration — avoids an allocation per iteration).
    pub fn solve_in_place(&self, b: &mut [f64], scratch: &mut Vec<f64>) -> Result<(), LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch);
        }
        scratch.clear();
        scratch.extend(self.piv.iter().map(|&p| b[p]));
        let n = self.n;
        for i in 1..n {
            let mut acc = scratch[i];
            for (l, xj) in self.lu[i * n..i * n + i].iter().zip(&scratch[..i]) {
                acc -= l * xj;
            }
            scratch[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = scratch[i];
            for (l, xj) in self.lu[(i * n + i + 1)..(i * n + n)]
                .iter()
                .zip(&scratch[i + 1..])
            {
                acc -= l * xj;
            }
            scratch[i] = acc / self.lu[i * n + i];
        }
        b.copy_from_slice(scratch);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(4);
        let lu = a.lu().unwrap();
        let b = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(lu.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let a = Matrix::from_rows(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let x = a.lu().unwrap().solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-14);
        assert!((x[1] - 1.4).abs() < 1e-14);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let x = a.lu().unwrap().solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(a.lu().err(), Some(LinalgError::DimensionMismatch));
    }

    #[test]
    fn solve_in_place_matches_solve() {
        let a = Matrix::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 5.0, 2.0, 0.0, 2.0, 6.0]);
        let lu = a.lu().unwrap();
        let b = [1.0, 2.0, 3.0];
        let expect = lu.solve(&b).unwrap();
        let mut buf = b;
        let mut scratch = Vec::new();
        lu.solve_in_place(&mut buf, &mut scratch).unwrap();
        assert_eq!(buf.to_vec(), expect);
    }

    #[test]
    fn matvec_and_norm() {
        let a = Matrix::from_rows(2, 3, &[1.0, 0.0, -1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![0.0, 9.0]);
        assert_eq!(a.norm_inf(), 9.0);
    }
}
