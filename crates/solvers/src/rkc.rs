//! Second-order Runge-Kutta-Chebyshev (RKC) integrator, after
//! B.P. Sommeijer, L.F. Shampine & J.G. Verwer, *RKC: an explicit solver
//! for parabolic PDEs*, J. Comp. Appl. Math. 88 (1998) — reference \[9\] of
//! the paper, wrapped there as the `ExplicitIntegrator` component.
//!
//! RKC is explicit but uses `s` internal stages arranged along a Chebyshev
//! polynomial so that its real stability interval grows like
//! `β(s) ≈ 0.653 s²`: ideal for diffusion operators, whose eigenvalues are
//! real and negative. The stage count is chosen per step from an estimate
//! of the spectral radius of the Jacobian — in the paper that estimate
//! comes from the `MaxDiffCoeffEvaluator` component.

use crate::ode::{wrms_norm, OdeSystem};
use cca_core::scratch;

/// Configuration for [`Rkc`].
#[derive(Clone, Copy, Debug)]
pub struct RkcConfig {
    /// Relative tolerance (adaptive driver only).
    pub rtol: f64,
    /// Absolute tolerance (adaptive driver only).
    pub atol: f64,
    /// Damping parameter ε; the published scheme uses 2/13.
    pub epsilon: f64,
    /// Hard cap on stages per step (protects against absurd spectral-radius
    /// estimates).
    pub max_stages: usize,
    /// Step budget for the adaptive driver.
    pub max_steps: usize,
}

impl Default for RkcConfig {
    fn default() -> Self {
        RkcConfig {
            rtol: 1e-6,
            atol: 1e-10,
            epsilon: 2.0 / 13.0,
            max_stages: 512,
            max_steps: 100_000,
        }
    }
}

/// Work counters for an RKC integration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RkcStats {
    /// Accepted steps.
    pub steps: usize,
    /// RHS evaluations.
    pub rhs_evals: usize,
    /// Error-test rejections (adaptive driver).
    pub rejections: usize,
    /// Largest stage count used.
    pub max_stages_used: usize,
}

/// The RKC integrator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rkc {
    /// Configuration used by [`Rkc::integrate`].
    pub config: RkcConfig,
}

impl Rkc {
    /// New integrator with the given configuration.
    pub fn new(config: RkcConfig) -> Self {
        Rkc { config }
    }

    /// Number of stages needed for stability of a step `h` against spectral
    /// radius `rho`: smallest `s` with `h·rho ≤ β(s) ≈ 0.653 s²`.
    pub fn stages_for(&self, h: f64, rho: f64) -> usize {
        let target = (h * rho).max(0.0);
        let mut s = (1.0 + (1.0 + 1.54 * target).sqrt()) as usize;
        if s < 2 {
            s = 2;
        }
        s.min(self.config.max_stages)
    }

    /// One RKC step written into caller-owned buffers. All stage vectors
    /// (`b`, `F0`, `Y_{j-2}`, `Y_{j-1}`, `Y_j`, an RHS buffer) come from
    /// the thread-local [`cca_core::scratch`] pool, so a warm macro-step
    /// loop performs zero heap allocations here.
    #[allow(clippy::too_many_arguments)]
    pub fn step_into(
        &self,
        sys: &dyn OdeSystem,
        t: f64,
        y: &[f64],
        h: f64,
        rho: f64,
        stats: &mut RkcStats,
        y_new: &mut [f64],
        est: &mut [f64],
    ) {
        let n = y.len();
        assert_eq!(y_new.len(), n);
        assert_eq!(est.len(), n);
        let s = self.stages_for(h, rho);
        stats.max_stages_used = stats.max_stages_used.max(s);

        // Chebyshev values at w0 via the three-term recurrences.
        let eps = self.config.epsilon;
        let w0 = 1.0 + eps / (s * s) as f64;
        let (t_s, dt_s, d2t_s) = chebyshev(s, w0);
        let w1 = dt_s / d2t_s;

        // b_j for j = 0..s with b0 = b1 = b2.
        let mut b = scratch::take_f64(s + 1);
        for (j, bj) in b.iter_mut().enumerate().skip(2) {
            let (_tj, dtj, d2tj) = chebyshev(j, w0);
            *bj = d2tj / (dtj * dtj);
        }
        b[0] = b[2];
        b[1] = b[2];
        let _ = t_s; // T_s(w0) itself only appears through a_j below.

        let mut f0 = scratch::take_f64(n);
        sys.rhs(t, y, &mut f0);
        stats.rhs_evals += 1;

        // Stage 1.
        let mu1_tilde = b[1] * w1;
        let mut yjm2 = scratch::take_f64(n);
        yjm2.copy_from_slice(y);
        let mut yjm1 = scratch::take_f64(n);
        for (v, (yi, fi)) in yjm1.iter_mut().zip(y.iter().zip(&*f0)) {
            *v = yi + mu1_tilde * h * fi;
        }
        let mut c_jm2 = 0.0;
        let mut c_jm1 = mu1_tilde; // c_1 = μ̃1 (≈ w1/w0)

        let mut f_buf = scratch::take_f64(n);
        let mut y_j = scratch::take_f64(n);
        y_j.copy_from_slice(&yjm1);
        for j in 2..=s {
            let (tj_pm1, dtj_m1, d2tj_m1) = chebyshev(j - 1, w0);
            let a_jm1 = 1.0 - b[j - 1] * tj_pm1;
            let _ = (dtj_m1, d2tj_m1);
            let mu = 2.0 * b[j] * w0 / b[j - 1];
            let nu = -b[j] / b[j - 2];
            let mu_tilde = 2.0 * b[j] * w1 / b[j - 1];
            let gamma_tilde = -a_jm1 * mu_tilde;

            sys.rhs(t + c_jm1 * h, &yjm1, &mut f_buf);
            stats.rhs_evals += 1;

            for ((yji, &yi), ((&y1, &y2), (&fi, &f0i))) in y_j
                .iter_mut()
                .zip(y)
                .zip(yjm1.iter().zip(&*yjm2).zip(f_buf.iter().zip(&*f0)))
            {
                *yji = (1.0 - mu - nu) * yi
                    + mu * y1
                    + nu * y2
                    + mu_tilde * h * fi
                    + gamma_tilde * h * f0i;
            }
            let c_j = mu * c_jm1 + nu * c_jm2 + mu_tilde + gamma_tilde;
            // Rotate the stage windows by swapping the underlying vectors
            // (pointer swaps — each guard still returns its storage).
            std::mem::swap(&mut *yjm2, &mut *yjm1);
            std::mem::swap(&mut *yjm1, &mut *y_j);
            c_jm2 = c_jm1;
            c_jm1 = c_j;
        }
        y_new.copy_from_slice(&yjm1);

        // Embedded error estimate (RKC paper, eq. (2.9)):
        // est = 0.8 (y_n - y_{n+1}) + 0.4 h (F_n + F_{n+1}).
        sys.rhs(t + h, y_new, &mut f_buf);
        stats.rhs_evals += 1;
        for ((ei, (&yi, &yni)), (&f0i, &fi)) in est
            .iter_mut()
            .zip(y.iter().zip(&*y_new))
            .zip(f0.iter().zip(&*f_buf))
        {
            *ei = 0.8 * (yi - yni) + 0.4 * h * (f0i + fi);
        }
    }

    /// Adaptive driver: advance `y` from `t0` to `t1`, choosing `h` from
    /// the embedded error estimate and the stage count from `rho(t, y)`.
    ///
    /// `rho` is the caller's spectral-radius estimator — the role of the
    /// paper's `MaxDiffCoeffEvaluator` (for Fickian diffusion,
    /// `rho ≈ 4 D_max (1/Δx² + 1/Δy²)`).
    pub fn integrate(
        &self,
        sys: &dyn OdeSystem,
        t0: f64,
        t1: f64,
        y: &mut [f64],
        mut rho: impl FnMut(f64, &[f64]) -> f64,
        h_init: f64,
    ) -> Result<RkcStats, String> {
        if t1.partial_cmp(&t0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("need t1 > t0, got [{t0}, {t1}]"));
        }
        let mut stats = RkcStats::default();
        let mut t = t0;
        let mut h = h_init.min(t1 - t0);
        let cfg = self.config;
        let mut y_new = scratch::take_f64(y.len());
        let mut est = scratch::take_f64(y.len());
        while t < t1 {
            if stats.steps + stats.rejections >= cfg.max_steps {
                return Err(format!("max_steps exhausted at t = {t:e}"));
            }
            h = h.min(t1 - t);
            let r = rho(t, y);
            self.step_into(sys, t, y, h, r, &mut stats, &mut y_new, &mut est);
            let err = wrms_norm(&est, &y_new, cfg.rtol, cfg.atol);
            if err <= 1.0 && y_new.iter().all(|v| v.is_finite()) {
                y.copy_from_slice(&y_new);
                t += h;
                stats.steps += 1;
                let grow = if err > 0.0 {
                    (0.8 * err.powf(-1.0 / 3.0)).clamp(0.5, 5.0)
                } else {
                    5.0
                };
                h *= grow;
            } else {
                stats.rejections += 1;
                let shrink = if err.is_finite() && err > 0.0 {
                    (0.8 * err.powf(-1.0 / 3.0)).clamp(0.1, 0.8)
                } else {
                    0.1
                };
                h *= shrink;
                if h < 1e-15 * (t1 - t0) {
                    return Err(format!("step size underflow at t = {t:e}"));
                }
            }
        }
        Ok(stats)
    }
}

/// `(T_s(w0), T'_s(w0), T''_s(w0))` by the Chebyshev three-term recurrences.
fn chebyshev(s: usize, w0: f64) -> (f64, f64, f64) {
    let (mut t0, mut t1) = (1.0, w0);
    let (mut d0, mut d1) = (0.0, 1.0);
    let (mut e0, mut e1) = (0.0, 0.0);
    if s == 0 {
        return (t0, d0, e0);
    }
    for _ in 2..=s {
        let t2 = 2.0 * w0 * t1 - t0;
        let d2 = 2.0 * t1 + 2.0 * w0 * d1 - d0;
        let e2 = 4.0 * d1 + 2.0 * w0 * e1 - e0;
        t0 = t1;
        t1 = t2;
        d0 = d1;
        d1 = d2;
        e0 = e1;
        e1 = e2;
    }
    (t1, d1, e1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_recurrence_matches_closed_form() {
        // T_s(x) = cosh(s * acosh(x)) for x > 1.
        for s in [1usize, 2, 3, 5, 10] {
            let x = 1.05;
            let (t, _, _) = chebyshev(s, x);
            let exact = (s as f64 * x.acosh()).cosh();
            assert!((t - exact).abs() < 1e-9 * exact, "s={s}: {t} vs {exact}");
        }
    }

    #[test]
    fn stage_count_grows_like_sqrt() {
        let rkc = Rkc::default();
        let s1 = rkc.stages_for(1.0, 100.0);
        let s2 = rkc.stages_for(1.0, 400.0);
        // 4x the stiffness needs ~2x the stages.
        assert!(s2 as f64 / s1 as f64 > 1.6 && (s2 as f64 / s1 as f64) < 2.6);
        // And stability: beta(s) = 0.653 s^2 >= h rho.
        assert!(0.653 * (s1 * s1) as f64 >= 100.0 * 0.95);
    }

    #[test]
    fn integrates_stiff_linear_diffusion_like_problem() {
        // y' = -lambda (y - 1), lambda = 1e4: explicit Euler would need
        // h < 2e-4; RKC takes far fewer steps thanks to s ~ sqrt.
        let lam = 1.0e4;
        let sys = (1usize, move |_t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = -lam * (y[0] - 1.0);
        });
        let rkc = Rkc::new(RkcConfig {
            rtol: 1e-7,
            atol: 1e-10,
            ..RkcConfig::default()
        });
        let mut y = [0.0];
        let stats = rkc
            .integrate(&sys, 0.0, 1.0, &mut y, |_, _| lam, 1e-3)
            .unwrap();
        assert!((y[0] - 1.0).abs() < 1e-6, "y = {}", y[0]);
        // Explicit Euler stability would force ~5000 steps (h < 2/lambda);
        // RKC's extended stability interval does far better even while
        // error-controlled through the fast transient.
        assert!(stats.steps < 2_000, "steps = {}", stats.steps);
        assert!(stats.max_stages_used >= 2);
    }

    #[test]
    fn second_order_convergence_on_smooth_problem() {
        // Fixed-step convergence study on y' = cos t.
        let sys = (1usize, |t: f64, _y: &[f64], d: &mut [f64]| d[0] = t.cos());
        let rkc = Rkc::default();
        let mut errs = Vec::new();
        for &nsteps in &[20usize, 40, 80] {
            let h = 1.0 / nsteps as f64;
            let mut y = vec![0.0];
            let mut y_new = vec![0.0];
            let mut est = vec![0.0];
            let mut stats = RkcStats::default();
            let mut t = 0.0;
            for _ in 0..nsteps {
                rkc.step_into(&sys, t, &y, h, 1.0, &mut stats, &mut y_new, &mut est);
                y.copy_from_slice(&y_new);
                t += h;
            }
            errs.push((y[0] - 1.0f64.sin()).abs());
        }
        let rate1 = (errs[0] / errs[1]).log2();
        let rate2 = (errs[1] / errs[2]).log2();
        assert!(
            rate1 > 1.6 && rate2 > 1.6,
            "rates {rate1}, {rate2}: {errs:?}"
        );
    }

    #[test]
    fn heat_equation_method_of_lines() {
        // 1D heat equation on 32 points, Dirichlet 0 boundaries; the
        // solution decays toward 0 with the leading mode rate.
        let n = 32usize;
        let dx = 1.0 / (n as f64 + 1.0);
        let sys = (n, move |_t: f64, y: &[f64], d: &mut [f64]| {
            for i in 0..n {
                let left = if i == 0 { 0.0 } else { y[i - 1] };
                let right = if i == n - 1 { 0.0 } else { y[i + 1] };
                d[i] = (left - 2.0 * y[i] + right) / (dx * dx);
            }
        });
        let rho = 4.0 / (dx * dx);
        let rkc = Rkc::new(RkcConfig {
            rtol: 1e-6,
            atol: 1e-9,
            ..RkcConfig::default()
        });
        // Initial condition: first sine mode, exact decay exp(-pi^2 t).
        let mut y: Vec<f64> = (1..=n)
            .map(|i| (std::f64::consts::PI * i as f64 * dx).sin())
            .collect();
        let t_end = 0.05;
        rkc.integrate(&sys, 0.0, t_end, &mut y, |_, _| rho, 1e-4)
            .unwrap();
        // Discrete eigenvalue of the first mode.
        let mu = 2.0 / (dx * dx) * (1.0 - (std::f64::consts::PI * dx).cos());
        let decay = (-mu * t_end).exp();
        for (i, v) in y.iter().enumerate() {
            let exact = (std::f64::consts::PI * (i + 1) as f64 * dx).sin() * decay;
            assert!((v - exact).abs() < 1e-4, "i={i}: {v} vs {exact}");
        }
    }
}
