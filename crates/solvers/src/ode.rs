//! The ODE right-hand-side abstraction shared by all integrators.

/// A system `dy/dt = f(t, y)` of dimension [`OdeSystem::dim`].
///
/// This is the crate-level analogue of the paper's *RHS Evaluator* port:
/// the `CvodeComponent` invokes its connected `ThermoChemistry` component
/// through exactly this shape of interface (there via a CCA port, here via
/// a trait — the component layer in `cca-components` adapts one to the
/// other).
pub trait OdeSystem {
    /// Number of state variables.
    fn dim(&self) -> usize;

    /// Evaluate `dydt = f(t, y)`. `dydt` has length [`OdeSystem::dim`].
    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

/// Blanket impl so closures can be used directly in tests and examples.
impl<F> OdeSystem for (usize, F)
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    fn dim(&self) -> usize {
        self.0
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (self.1)(t, y, dydt)
    }
}

/// Weighted RMS norm used for error control by both BDF and RKC:
/// `sqrt(mean((v_i / (atol + rtol*|ref_i|))^2))`, CVODE's `N_VWrmsNorm`.
pub fn wrms_norm(v: &[f64], reference: &[f64], rtol: f64, atol: f64) -> f64 {
    debug_assert_eq!(v.len(), reference.len());
    let n = v.len().max(1);
    let sum: f64 = v
        .iter()
        .zip(reference)
        .map(|(x, r)| {
            let w = atol + rtol * r.abs();
            let e = x / w;
            e * e
        })
        .sum();
    (sum / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_systems_work() {
        let sys = (2usize, |_t: f64, y: &[f64], dydt: &mut [f64]| {
            dydt[0] = y[1];
            dydt[1] = -y[0];
        });
        assert_eq!(sys.dim(), 2);
        let mut d = [0.0; 2];
        sys.rhs(0.0, &[3.0, 4.0], &mut d);
        assert_eq!(d, [4.0, -3.0]);
    }

    #[test]
    fn wrms_norm_basics() {
        // All errors exactly at tolerance -> norm 1.
        let v = [0.1, 0.1];
        let r = [0.0, 0.0];
        assert!((wrms_norm(&v, &r, 0.0, 0.1) - 1.0).abs() < 1e-15);
        // Scales with rtol*|y|.
        let v = [1.0];
        let r = [100.0];
        assert!((wrms_norm(&v, &r, 0.01, 0.0) - 1.0).abs() < 1e-15);
    }
}
