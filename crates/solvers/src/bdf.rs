//! Variable-step, variable-order (1–5) BDF integrator with modified Newton
//! iteration — the reproduction of CVODE's stiff (BDF) mode, which the
//! paper wraps as `CvodeComponent` to integrate chemical source terms.
//!
//! Algorithm outline (uniform-history formulation):
//!
//! * the last `q` solutions at uniform spacing `h` are kept; the BDF-q
//!   formula `y_{n+1} = Σ α_j y_{n-j} + h β f(t_{n+1}, y_{n+1})` is solved
//!   by a modified Newton iteration with a finite-difference Jacobian that
//!   is reused across steps until convergence degrades;
//! * the local error is estimated from the corrector–predictor difference
//!   (the predictor extrapolates the history polynomial), controlled in the
//!   CVODE weighted-RMS norm;
//! * on a step-size change the history is rebuilt by evaluating the
//!   interpolating polynomial at the new uniform spacing;
//! * the order ramps 1 → `max_order` as history accumulates and drops back
//!   on repeated failures.

use crate::linalg::{LuFactors, Matrix};
use crate::ode::{wrms_norm, OdeSystem};
use cca_core::scratch;

/// Uniform-grid BDF coefficients: `y_{n+1} = Σ_j ALPHA[q][j] y_{n-j} +
/// BETA[q] h f_{n+1}` for order `q` (index 0 unused).
const ALPHA: [&[f64]; 6] = [
    &[],
    &[1.0],
    &[4.0 / 3.0, -1.0 / 3.0],
    &[18.0 / 11.0, -9.0 / 11.0, 2.0 / 11.0],
    &[48.0 / 25.0, -36.0 / 25.0, 16.0 / 25.0, -3.0 / 25.0],
    &[
        300.0 / 137.0,
        -300.0 / 137.0,
        200.0 / 137.0,
        -75.0 / 137.0,
        12.0 / 137.0,
    ],
];
const BETA: [f64; 6] = [0.0, 1.0, 2.0 / 3.0, 6.0 / 11.0, 12.0 / 25.0, 60.0 / 137.0];

/// Tuning knobs for [`Bdf`]. `Default` gives CVODE-like settings suitable
/// for combustion kinetics.
#[derive(Clone, Copy, Debug)]
pub struct BdfConfig {
    /// Relative tolerance for the weighted-RMS error test.
    pub rtol: f64,
    /// Absolute tolerance.
    pub atol: f64,
    /// Initial step; `None` picks `1e-4 * (t1 - t0)`.
    pub h_init: Option<f64>,
    /// Smallest step before giving up.
    pub h_min: f64,
    /// Largest step allowed.
    pub h_max: f64,
    /// Maximum BDF order, clamped to `1..=5`.
    pub max_order: usize,
    /// Step budget before [`BdfError::TooMuchWork`].
    pub max_steps: usize,
    /// Newton iterations per attempt.
    pub max_newton_iters: usize,
}

impl Default for BdfConfig {
    fn default() -> Self {
        BdfConfig {
            rtol: 1e-8,
            atol: 1e-12,
            h_init: None,
            h_min: 1e-16,
            h_max: f64::INFINITY,
            max_order: 5,
            max_steps: 500_000,
            max_newton_iters: 4,
        }
    }
}

/// Work counters, reported after every integration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BdfStats {
    /// Accepted steps.
    pub steps: usize,
    /// Right-hand-side evaluations (the paper's *NFE*, Table 4).
    pub rhs_evals: usize,
    /// Jacobian (finite-difference) evaluations.
    pub jac_evals: usize,
    /// Newton iterations across all attempts.
    pub newton_iters: usize,
    /// Error-test failures.
    pub error_failures: usize,
    /// Newton-convergence failures.
    pub newton_failures: usize,
}

/// Integration failure modes.
#[derive(Clone, Debug, PartialEq)]
pub enum BdfError {
    /// Step size underflowed `h_min` while the error test kept failing.
    StepSizeUnderflow {
        /// Time at which the integrator stalled.
        t: f64,
    },
    /// `max_steps` exceeded.
    TooMuchWork {
        /// Time reached when the budget ran out.
        t: f64,
    },
    /// The Newton matrix was singular and step reduction did not cure it.
    SingularMatrix {
        /// Time of the failing attempt.
        t: f64,
    },
    /// Invalid user input (non-finite state, reversed interval, ...).
    BadInput(String),
}

impl std::fmt::Display for BdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BdfError::StepSizeUnderflow { t } => write!(f, "step size underflow at t = {t:e}"),
            BdfError::TooMuchWork { t } => write!(f, "max_steps exhausted at t = {t:e}"),
            BdfError::SingularMatrix { t } => write!(f, "singular Newton matrix at t = {t:e}"),
            BdfError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for BdfError {}

/// The integrator object. Stateless between calls; all per-run state lives
/// on the stack of [`Bdf::integrate`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Bdf {
    /// Configuration used by [`Bdf::integrate`].
    pub config: BdfConfig,
}

impl Bdf {
    /// New integrator with the given configuration.
    pub fn new(config: BdfConfig) -> Self {
        Bdf { config }
    }

    /// Advance `y` from `t0` to `t1`. On success `y` holds `y(t1)` and the
    /// work counters are returned.
    pub fn integrate(
        &self,
        sys: &dyn OdeSystem,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<BdfStats, BdfError> {
        let n = sys.dim();
        if y.len() != n {
            return Err(BdfError::BadInput(format!(
                "state length {} != system dim {}",
                y.len(),
                n
            )));
        }
        if t1.partial_cmp(&t0) != Some(std::cmp::Ordering::Greater) {
            return Err(BdfError::BadInput(format!(
                "need t1 > t0, got [{t0}, {t1}]"
            )));
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(BdfError::BadInput("non-finite initial state".into()));
        }
        let cfg = self.config;
        let max_order = cfg.max_order.clamp(1, 5);
        let mut stats = BdfStats::default();

        let mut t = t0;
        let mut h = cfg
            .h_init
            .unwrap_or(1e-4 * (t1 - t0))
            .min(cfg.h_max)
            .min(t1 - t0);
        let mut q = 1usize;
        // history[0] = y_n, history[1] = y_{n-1}, ... at uniform spacing h.
        // Entries are pooled scratch buffers; on ring overflow the oldest
        // entry's storage is recycled for the newest (no per-step clone).
        let mut history: Vec<scratch::ScratchF64> = Vec::with_capacity(max_order + 1);
        history.push(copy_to_scratch(y));

        // Modified-Newton bookkeeping.
        let mut jac: Option<LuFactors> = None;
        let mut jac_h = h;
        let mut jac_age = usize::MAX; // force a build on first use

        let mut f_buf = scratch::take_f64(n);
        let mut lin_scratch: Vec<f64> = Vec::new();
        let mut rhs_const = scratch::take_f64(n);
        let mut y_pred = scratch::take_f64(n);
        let mut y_new = scratch::take_f64(n);
        let mut g = scratch::take_f64(n);
        let mut diff = scratch::take_f64(n);
        let mut consecutive_failures = 0usize;

        while t < t1 {
            if stats.steps >= cfg.max_steps {
                return Err(BdfError::TooMuchWork { t });
            }
            // Clamp the final step and rescale history to the clamped h.
            let h_target = h.min(t1 - t).max(cfg.h_min);
            if (h_target - h).abs() > 1e-15 * h {
                rescale_history_in_place(&mut history, h, h_target);
                h = h_target;
            }
            let q_eff = q.min(history.len()).min(max_order);

            // rhs_const = Σ α_j y_{n-j}
            let alpha = ALPHA[q_eff];
            let beta = BETA[q_eff];
            rhs_const.fill(0.0);
            for (j, a) in alpha.iter().enumerate() {
                for (r, hj) in rhs_const.iter_mut().zip(&*history[j]) {
                    *r += a * hj;
                }
            }

            // Predictor: extrapolate the history polynomial to t+h.
            extrapolate_into(&history, 1.0, &mut y_pred);

            // Refresh the Newton matrix if it is stale.
            let need_jac = jac.is_none()
                || jac_age > 25
                || !(0.7..=1.43).contains(&(h / jac_h))
                || consecutive_failures > 0;
            if need_jac {
                jac = Some(self.build_newton_matrix(
                    sys,
                    t + h,
                    h,
                    beta,
                    &y_pred,
                    &mut f_buf,
                    &mut stats,
                )?);
                jac_h = h;
                jac_age = 0;
            }

            // Newton iteration on G(y) = y - hβ f(t+h, y) - rhs_const = 0.
            y_new.copy_from_slice(&y_pred);
            let mut converged = false;
            let lu = jac.as_ref().expect("just ensured");
            for _ in 0..cfg.max_newton_iters {
                sys.rhs(t + h, &y_new, &mut f_buf);
                stats.rhs_evals += 1;
                stats.newton_iters += 1;
                for i in 0..n {
                    g[i] = y_new[i] - h * beta * f_buf[i] - rhs_const[i];
                }
                if lu.solve_in_place(&mut g, &mut lin_scratch).is_err() {
                    break;
                }
                for (yi, gi) in y_new.iter_mut().zip(&*g) {
                    *yi -= gi;
                }
                let delta_norm = wrms_norm(&g, &y_new, cfg.rtol, cfg.atol);
                if !delta_norm.is_finite() {
                    break;
                }
                if delta_norm < 0.33 {
                    converged = true;
                    break;
                }
            }

            if !converged || y_new.iter().any(|v| !v.is_finite()) {
                stats.newton_failures += 1;
                consecutive_failures += 1;
                // Force a Jacobian rebuild and shrink the step.
                jac = None;
                let h_new = (h * 0.25).max(cfg.h_min);
                if h_new == h && h <= cfg.h_min {
                    return Err(BdfError::StepSizeUnderflow { t });
                }
                rescale_history_in_place(&mut history, h, h_new);
                h = h_new;
                q = 1;
                continue;
            }

            // Error test: corrector minus predictor, scaled.
            for i in 0..n {
                diff[i] = y_new[i] - y_pred[i];
            }
            let err = wrms_norm(&diff, &y_new, cfg.rtol, cfg.atol) / (q_eff + 1) as f64;

            if err > 1.0 {
                stats.error_failures += 1;
                consecutive_failures += 1;
                let factor = (0.9 * err.powf(-1.0 / (q_eff + 1) as f64)).clamp(0.1, 0.9);
                let h_new = (h * factor).max(cfg.h_min);
                if h_new >= h && h <= cfg.h_min {
                    return Err(BdfError::StepSizeUnderflow { t });
                }
                rescale_history_in_place(&mut history, h, h_new);
                h = h_new;
                if consecutive_failures > 3 {
                    q = 1; // repeated trouble: drop to BDF1 and rebuild
                }
                continue;
            }

            // Accept. Push-front into the history ring, recycling the
            // evicted entry's storage instead of cloning the new state.
            consecutive_failures = 0;
            jac_age += 1;
            t += h;
            let mut entry = if history.len() == max_order + 1 {
                history.pop().expect("ring is non-empty")
            } else {
                scratch::take_f64(n)
            };
            entry.copy_from_slice(&y_new);
            history.insert(0, entry);
            stats.steps += 1;

            // Order ramp-up: raise while history supports it and the error
            // is comfortably inside the tolerance.
            if q < max_order && history.len() > q && err < 0.5 {
                q += 1;
            }

            // Step growth for the next attempt.
            let factor = if err > 0.0 {
                (0.9 * err.powf(-1.0 / (q_eff + 1) as f64)).clamp(0.2, 4.0)
            } else {
                4.0
            };
            let h_new = (h * factor).min(cfg.h_max);
            if (h_new / h - 1.0).abs() > 1e-12 {
                rescale_history_in_place(&mut history, h, h_new);
                h = h_new;
            }
        }

        y.copy_from_slice(&history[0]);
        Ok(stats)
    }

    /// Finite-difference Jacobian of `G(y) = y - hβ f - rhs_const`,
    /// factorized. On singularity the step is not salvageable here; the
    /// caller reduces `h` (which moves the matrix toward the identity).
    #[allow(clippy::too_many_arguments)]
    fn build_newton_matrix(
        &self,
        sys: &dyn OdeSystem,
        t: f64,
        h: f64,
        beta: f64,
        y: &[f64],
        f_buf: &mut [f64],
        stats: &mut BdfStats,
    ) -> Result<LuFactors, BdfError> {
        let n = y.len();
        sys.rhs(t, y, f_buf);
        stats.rhs_evals += 1;
        stats.jac_evals += 1;
        let mut f0 = scratch::take_f64(n);
        f0.copy_from_slice(f_buf);
        let mut m = Matrix::identity(n);
        let mut y_pert = copy_to_scratch(y);
        let sqrt_eps = f64::EPSILON.sqrt();
        for j in 0..n {
            let dy = sqrt_eps
                * y[j]
                    .abs()
                    .max(self.config.atol.max(1e-30) / self.config.rtol.max(1e-16));
            let dy = if dy == 0.0 { sqrt_eps } else { dy };
            y_pert[j] = y[j] + dy;
            sys.rhs(t, &y_pert, f_buf);
            stats.rhs_evals += 1;
            y_pert[j] = y[j];
            for i in 0..n {
                let dfij = (f_buf[i] - f0[i]) / dy;
                m[(i, j)] -= h * beta * dfij;
            }
        }
        m.lu().map_err(|_| BdfError::SingularMatrix { t })
    }
}

/// Checkout a scratch buffer holding a copy of `y`.
fn copy_to_scratch(y: &[f64]) -> scratch::ScratchF64 {
    let mut b = scratch::take_f64(y.len());
    b.copy_from_slice(y);
    b
}

/// Evaluate the interpolating polynomial through `history` (nodes at
/// `x = 0, -1, -2, ...` in units of the current spacing) at `x`, into
/// `out` (fully overwritten).
fn extrapolate_into<H: AsRef<[f64]>>(history: &[H], x: f64, out: &mut [f64]) {
    let k = history.len();
    out.fill(0.0);
    for j in 0..k {
        let xj = -(j as f64);
        let mut w = 1.0;
        for (m, _) in history.iter().enumerate() {
            if m != j {
                let xm = -(m as f64);
                w *= (x - xm) / (xj - xm);
            }
        }
        for (o, hj) in out.iter_mut().zip(history[j].as_ref()) {
            *o += w * hj;
        }
    }
}

/// Evaluate the interpolating polynomial through `history` (nodes at
/// `x = 0, -1, -2, ...` in units of the current spacing) at `x`.
#[cfg(test)]
fn extrapolate(history: &[Vec<f64>], x: f64) -> Vec<f64> {
    let mut out = vec![0.0; history[0].len()];
    extrapolate_into(history, x, &mut out);
    out
}

/// Rebuild `history` for a new uniform spacing `h_new` by interpolating
/// the polynomial through the old nodes. All rebuilt rows are computed
/// into one pooled block first (the evaluation reads every old row), then
/// copied back over the existing storage — no per-row allocation.
fn rescale_history_in_place<H: AsRef<[f64]> + AsMut<[f64]>>(
    history: &mut [H],
    h_old: f64,
    h_new: f64,
) {
    if history.len() <= 1 || h_old == h_new {
        return;
    }
    let ratio = h_new / h_old;
    let k = history.len();
    let n = history[0].as_ref().len();
    let mut tmp = scratch::take_f64(k * n);
    for (j, row) in tmp.chunks_mut(n).enumerate() {
        extrapolate_into(history, -(j as f64) * ratio, row);
    }
    for (j, row) in tmp.chunks(n).enumerate() {
        history[j].as_mut().copy_from_slice(row);
    }
}

/// Allocating variant of [`rescale_history_in_place`] kept for the tests
/// that exercise the polynomial identity directly.
#[cfg(test)]
fn rescale_history(history: &mut [Vec<f64>], h_old: f64, h_new: f64) {
    rescale_history_in_place(history, h_old, h_new);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decay() -> (usize, impl Fn(f64, &[f64], &mut [f64])) {
        (1usize, |_t: f64, y: &[f64], d: &mut [f64]| d[0] = -y[0])
    }

    #[test]
    fn exponential_decay_accuracy() {
        let bdf = Bdf::new(BdfConfig {
            rtol: 1e-10,
            atol: 1e-14,
            ..BdfConfig::default()
        });
        let mut y = [1.0];
        let stats = bdf.integrate(&decay(), 0.0, 5.0, &mut y).unwrap();
        assert!((y[0] - (-5.0f64).exp()).abs() < 1e-8, "y = {}", y[0]);
        assert!(stats.steps > 0);
    }

    #[test]
    fn harmonic_oscillator_two_components() {
        let sys = (2usize, |_t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let bdf = Bdf::new(BdfConfig {
            rtol: 1e-9,
            atol: 1e-12,
            ..BdfConfig::default()
        });
        let mut y = [1.0, 0.0];
        bdf.integrate(&sys, 0.0, std::f64::consts::PI, &mut y)
            .unwrap();
        assert!((y[0] + 1.0).abs() < 1e-5, "cos(pi) = {}", y[0]);
        assert!(y[1].abs() < 1e-5, "-sin(pi) = {}", y[1]);
    }

    #[test]
    fn stiff_linear_system_large_lambda() {
        // y' = -1e6 (y - cos t) - sin t, exact solution decays onto cos t.
        let sys = (1usize, |t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = -1e6 * (y[0] - t.cos()) - t.sin();
        });
        let bdf = Bdf::new(BdfConfig {
            rtol: 1e-8,
            atol: 1e-10,
            ..BdfConfig::default()
        });
        let mut y = [2.0]; // off the slow manifold
        let stats = bdf.integrate(&sys, 0.0, 1.0, &mut y).unwrap();
        assert!((y[0] - 1.0f64.cos()).abs() < 1e-5, "y = {}", y[0]);
        // Stiff efficiency: a non-stiff explicit method would need ~1e6
        // steps; BDF should take a few hundred at most.
        assert!(stats.steps < 5_000, "steps = {}", stats.steps);
    }

    #[test]
    fn robertson_problem_conserves_mass() {
        // The classic stiff benchmark.
        let sys = (3usize, |_t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = -0.04 * y[0] + 1.0e4 * y[1] * y[2];
            d[1] = 0.04 * y[0] - 1.0e4 * y[1] * y[2] - 3.0e7 * y[1] * y[1];
            d[2] = 3.0e7 * y[1] * y[1];
        });
        let bdf = Bdf::new(BdfConfig {
            rtol: 1e-8,
            atol: 1e-12,
            ..BdfConfig::default()
        });
        let mut y = [1.0, 0.0, 0.0];
        bdf.integrate(&sys, 0.0, 4.0e3, &mut y).unwrap();
        let total = y[0] + y[1] + y[2];
        assert!((total - 1.0).abs() < 1e-6, "mass drifted: {total}");
        // SUNDIALS cvRoberts_dns reference at t = 4e3: y = (0.18320, 8.94e-7, 0.81680).
        assert!((y[0] - 0.18320).abs() < 2e-4, "y0 = {}", y[0]);
        assert!((y[1] - 8.94e-7).abs() < 1e-8, "y1 = {}", y[1]);
        assert!((y[2] - 0.81680).abs() < 2e-4, "y2 = {}", y[2]);
    }

    #[test]
    fn rejects_bad_input() {
        let bdf = Bdf::default();
        let mut y = [1.0];
        assert!(matches!(
            bdf.integrate(&decay(), 1.0, 0.0, &mut y),
            Err(BdfError::BadInput(_))
        ));
        let mut y2 = [f64::NAN];
        assert!(matches!(
            bdf.integrate(&decay(), 0.0, 1.0, &mut y2),
            Err(BdfError::BadInput(_))
        ));
        let mut y3 = [1.0, 2.0];
        assert!(matches!(
            bdf.integrate(&decay(), 0.0, 1.0, &mut y3),
            Err(BdfError::BadInput(_))
        ));
    }

    #[test]
    fn max_steps_is_enforced() {
        let bdf = Bdf::new(BdfConfig {
            max_steps: 3,
            h_init: Some(1e-9),
            h_max: 1e-9,
            ..BdfConfig::default()
        });
        let mut y = [1.0];
        assert!(matches!(
            bdf.integrate(&decay(), 0.0, 1.0, &mut y),
            Err(BdfError::TooMuchWork { .. })
        ));
    }

    #[test]
    fn extrapolate_reproduces_polynomials() {
        // History of a quadratic sampled at x = 0, -1, -2 extrapolates
        // exactly to x = 1.
        let f = |x: f64| 3.0 + 2.0 * x + 0.5 * x * x;
        let history = vec![vec![f(0.0)], vec![f(-1.0)], vec![f(-2.0)]];
        let v = extrapolate(&history, 1.0);
        assert!((v[0] - f(1.0)).abs() < 1e-12);
    }

    #[test]
    fn rescale_history_keeps_polynomials_exact() {
        let f = |x: f64| 1.0 - x + 0.25 * x * x;
        // Old spacing h = 0.2 around t_n = 0.
        let mut history = vec![vec![f(0.0)], vec![f(-0.2)], vec![f(-0.4)]];
        rescale_history(&mut history, 0.2, 0.1);
        assert!((history[1][0] - f(-0.1)).abs() < 1e-12);
        assert!((history[2][0] - f(-0.2)).abs() < 1e-12);
    }
}
