//! `cca-solvers` — the numerical-integration substrate.
//!
//! The paper builds its Implicit and Explicit Integration subsystems on
//! three external solvers, all reimplemented here from their published
//! algorithms:
//!
//! * [`bdf`] — a stiff/non-stiff variable-step, variable-order (1–5) BDF
//!   integrator with modified Newton iteration: the stand-in for **CVODE**
//!   (Cohen & Hindmarsh 1996), wrapped by the paper's `CvodeComponent`.
//! * [`rkc`] — the **Runge-Kutta-Chebyshev** scheme of Sommeijer, Shampine
//!   & Verwer (1998): an explicit method with an extended real stability
//!   interval growing like `0.65·s²`, used for the diffusion operator.
//! * [`rk2`] — the two-stage second-order explicit Runge-Kutta (Heun)
//!   scheme driving the shock-hydrodynamics time integration.
//!
//! [`linalg`] supplies the dense LU factorization the BDF Newton solves
//! need (the paper's systems are small: ~10 species per cell).

pub mod bdf;
pub mod linalg;
pub mod ode;
pub mod rk2;
pub mod rkc;

pub use bdf::{Bdf, BdfConfig, BdfError, BdfStats};
pub use linalg::{LinalgError, LuFactors, Matrix};
pub use ode::OdeSystem;
pub use rk2::rk2_step;
pub use rkc::{Rkc, RkcConfig, RkcStats};
