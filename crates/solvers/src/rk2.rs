//! Two-stage second-order explicit Runge-Kutta (Heun's method), the time
//! integrator of the shock-hydrodynamics assembly
//! (`ExplicitIntegratorRK2` in paper §4.3).
//!
//! PDE semi-discretizations call it with a closure over their spatial
//! operator; the state is whatever flat layout the caller uses.

/// One Heun step: `y* = y + h f(t, y)`, `y_{n+1} = y + h/2 (f(t,y) + f(t+h,y*))`.
///
/// `f` writes the RHS into its output slice. Scratch buffers are the
/// caller's so hot loops allocate nothing.
pub fn rk2_step<F>(
    t: f64,
    h: f64,
    y: &mut [f64],
    f: F,
    k1: &mut [f64],
    k2: &mut [f64],
    ystar: &mut [f64],
) where
    F: Fn(f64, &[f64], &mut [f64]),
{
    let n = y.len();
    debug_assert!(k1.len() == n && k2.len() == n && ystar.len() == n);
    f(t, y, k1);
    for (ys, (&yi, &k)) in ystar.iter_mut().zip(y.iter().zip(&*k1)) {
        *ys = yi + h * k;
    }
    f(t + h, ystar, k2);
    for (yi, (&a, &b)) in y.iter_mut().zip(k1.iter().zip(&*k2)) {
        *yi += 0.5 * h * (a + b);
    }
}

/// Convenience wrapper that allocates its own scratch space.
pub fn rk2_step_alloc<F>(t: f64, h: f64, y: &mut [f64], f: F)
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    let n = y.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut ystar = vec![0.0; n];
    rk2_step(t, h, y, f, &mut k1, &mut k2, &mut ystar);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_linear_rhs() {
        // y' = a t + b integrates exactly under any second-order method.
        let f = |t: f64, _y: &[f64], d: &mut [f64]| d[0] = 2.0 * t + 1.0;
        let mut y = vec![0.0];
        let h = 0.25;
        let mut t = 0.0;
        for _ in 0..8 {
            rk2_step_alloc(t, h, &mut y, f);
            t += h;
        }
        // Exact: t^2 + t at t = 2.
        assert!((y[0] - 6.0).abs() < 1e-12, "y = {}", y[0]);
    }

    #[test]
    fn second_order_convergence() {
        let f = |_t: f64, y: &[f64], d: &mut [f64]| d[0] = -y[0];
        let mut errs = Vec::new();
        for &nsteps in &[25usize, 50, 100] {
            let h = 1.0 / nsteps as f64;
            let mut y = vec![1.0];
            let mut t = 0.0;
            for _ in 0..nsteps {
                rk2_step_alloc(t, h, &mut y, f);
                t += h;
            }
            errs.push((y[0] - (-1.0f64).exp()).abs());
        }
        let rate = (errs[0] / errs[2]).log2() / 2.0;
        assert!((rate - 2.0).abs() < 0.2, "rate = {rate}, errs = {errs:?}");
    }

    #[test]
    fn no_alloc_variant_matches() {
        let f = |t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = y[1] * t;
            d[1] = -y[0];
        };
        let mut ya = vec![1.0, 0.5];
        let mut yb = ya.clone();
        rk2_step_alloc(0.3, 0.1, &mut ya, f);
        let mut k1 = vec![0.0; 2];
        let mut k2 = vec![0.0; 2];
        let mut ys = vec![0.0; 2];
        rk2_step(0.3, 0.1, &mut yb, f, &mut k1, &mut k2, &mut ys);
        assert_eq!(ya, yb);
    }
}
