//! Execution-trace records for the runtime conformance auditor.
//!
//! When tracing is enabled ([`crate::router::Router::new_traced`]), every
//! [`crate::Communicator`] operation that the comm-plan IR models appends
//! one [`TraceOp`] to its rank's trace. The trace is *semantic*, not
//! wire-level: a `waitall` over `k` requests records `k` [`TraceOp::Wait`]
//! events in request order, and a collective records a single event on
//! every participating rank — the binomial-tree point-to-point messages it
//! decomposes into are deliberately not recorded, because the plan being
//! audited does not model them either.
//!
//! Recording never touches the virtual clock, so a traced run is
//! bit-identical (results *and* modeled timings) to an untraced one: the
//! auditor is a free sanitizer.

use crate::router::Tag;

/// One recorded communication operation of one rank, in program order.
///
/// Mirrors the op kinds of the `cca-analyze` comm-plan IR so a recorded
/// trace can be checked against a verified plan (`CommPlan::audit`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Nonblocking send posted toward `peer`.
    Isend {
        /// Destination rank.
        peer: usize,
        /// User tag.
        tag: Tag,
        /// Payload bytes.
        bytes: u64,
    },
    /// Nonblocking receive posted for a message from `peer`. The payload
    /// size is unknown until completion, so no byte count is recorded.
    Irecv {
        /// Source rank.
        peer: usize,
        /// User tag.
        tag: Tag,
    },
    /// Completion of a posted receive (one event per request, in request
    /// order, for both `wait` and `waitall`).
    Wait {
        /// Source rank of the completed message.
        peer: usize,
        /// User tag.
        tag: Tag,
        /// Bytes of the delivered payload.
        bytes: u64,
    },
    /// Blocking (buffered) send.
    Send {
        /// Destination rank.
        peer: usize,
        /// User tag.
        tag: Tag,
        /// Payload bytes.
        bytes: u64,
    },
    /// Blocking receive.
    Recv {
        /// Source rank.
        peer: usize,
        /// User tag.
        tag: Tag,
        /// Bytes of the delivered payload.
        bytes: u64,
    },
    /// A reduction collective (`reduce` / `allreduce_*`): one event per
    /// rank, with the per-rank contribution size.
    Reduce {
        /// Bytes contributed by this rank.
        bytes: u64,
    },
    /// A barrier: one event per rank.
    Barrier,
}

impl std::fmt::Display for TraceOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceOp::Isend { peer, tag, bytes } => {
                write!(f, "isend(peer {peer}, tag {tag}, {bytes} B)")
            }
            TraceOp::Irecv { peer, tag } => write!(f, "irecv(peer {peer}, tag {tag})"),
            TraceOp::Wait { peer, tag, bytes } => {
                write!(f, "wait(peer {peer}, tag {tag}, {bytes} B)")
            }
            TraceOp::Send { peer, tag, bytes } => {
                write!(f, "send(peer {peer}, tag {tag}, {bytes} B)")
            }
            TraceOp::Recv { peer, tag, bytes } => {
                write!(f, "recv(peer {peer}, tag {tag}, {bytes} B)")
            }
            TraceOp::Reduce { bytes } => write!(f, "reduce({bytes} B)"),
            TraceOp::Barrier => write!(f, "barrier"),
        }
    }
}

/// The full execution trace of one SCMD job: one op sequence per rank.
pub type CommTrace = Vec<Vec<TraceOp>>;
