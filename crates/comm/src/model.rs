//! Cluster performance model driving each rank's virtual clock.
//!
//! The paper's scaling studies ran on Sandia's CPlant (433 MHz Alpha EV56,
//! Myrinet with 32-bit PCI NICs) and a Beowulf cluster (1 GHz Pentium III,
//! 100 bT fast Ethernet). This reproduction runs ranks as threads on one
//! host, so wall-clock cannot exhibit 48-way parallelism; instead every
//! rank advances a virtual clock using a LogP-flavoured cost model:
//!
//! * compute work `w` (user units, e.g. cell-updates) costs
//!   `w * seconds_per_work_unit`,
//! * a message of `n` bytes costs `alpha + beta * n` end-to-end,
//! * a receive completes at `max(receiver clock, sender clock at send + message cost)`,
//!
//! which preserves causality: the modeled time of a run is the modeled time
//! of its critical path through real messages.

/// LogP-style machine parameters. All times in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterModel {
    /// Per-message latency (s), the `alpha` term.
    pub alpha: f64,
    /// Per-byte transfer time (s/byte), the `beta` term (1 / bandwidth).
    pub beta: f64,
    /// Seconds per unit of compute work charged via
    /// [`crate::Communicator::charge_compute`]. A "work unit" in the
    /// reproduction is one cell-variable update of the reaction-diffusion
    /// kernel unless a benchmark states otherwise.
    pub seconds_per_work_unit: f64,
    /// Fixed CPU-side overhead per point-to-point call (send or receive),
    /// charged to the calling rank even for self-sends.
    pub call_overhead: f64,
}

impl ClusterModel {
    /// Sandia CPlant-era parameters: Myrinet through 32-bit PCI
    /// (~132 MB/s PCI ceiling, ~20 us one-way latency), 433 MHz Alpha.
    ///
    /// `seconds_per_work_unit` is calibrated so that a 100x100 single-rank
    /// reaction-diffusion step costs O(10) s for 5 steps, matching the
    /// magnitude of Table 5's 161.7 s mean for the 100x100 case.
    pub fn cplant() -> Self {
        ClusterModel {
            alpha: 20e-6,
            beta: 1.0 / 132.0e6,
            seconds_per_work_unit: 3.6e-4,
            call_overhead: 1e-6,
        }
    }

    /// 100 bT switched fast Ethernet Beowulf (the paper's production
    /// platform for the flame run): ~70 us latency, ~11 MB/s effective.
    pub fn beowulf_ethernet() -> Self {
        ClusterModel {
            alpha: 70e-6,
            beta: 1.0 / 11.0e6,
            seconds_per_work_unit: 1.5e-4,
            call_overhead: 1e-6,
        }
    }

    /// Zero-cost model: virtual clocks never advance. Useful in unit tests
    /// that only care about data movement.
    pub fn zero() -> Self {
        ClusterModel {
            alpha: 0.0,
            beta: 0.0,
            seconds_per_work_unit: 0.0,
            call_overhead: 0.0,
        }
    }

    /// End-to-end modeled cost of one `nbytes` message.
    pub fn message_cost(&self, nbytes: usize) -> f64 {
        self.alpha + self.beta * nbytes as f64
    }

    /// Modeled cost of `work` units of computation.
    pub fn compute_cost(&self, work: f64) -> f64 {
        work * self.seconds_per_work_unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_is_affine_in_bytes() {
        let m = ClusterModel {
            alpha: 1e-5,
            beta: 1e-8,
            seconds_per_work_unit: 0.0,
            call_overhead: 0.0,
        };
        let c0 = m.message_cost(0);
        let c1 = m.message_cost(1000);
        let c2 = m.message_cost(2000);
        assert!((c0 - 1e-5).abs() < 1e-15);
        assert!(((c2 - c1) - (c1 - c0)).abs() < 1e-15);
    }

    #[test]
    fn presets_are_sane() {
        let cp = ClusterModel::cplant();
        let bw = ClusterModel::beowulf_ethernet();
        // Myrinet has lower latency and higher bandwidth than fast Ethernet.
        assert!(cp.alpha < bw.alpha);
        assert!(cp.beta < bw.beta);
        assert!(cp.message_cost(1 << 20) < bw.message_cost(1 << 20));
    }

    #[test]
    fn zero_model_costs_nothing() {
        let z = ClusterModel::zero();
        assert_eq!(z.message_cost(12345), 0.0);
        assert_eq!(z.compute_cost(9.9), 0.0);
    }
}
