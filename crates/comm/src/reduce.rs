//! Reduction operators for collectives.

/// Element-wise reduction operator, MPI-op style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// Apply the operator to two scalars.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Fold `b` into `a` element-wise. Panics if lengths differ, mirroring
    /// MPI's requirement that reduction buffers agree in count.
    pub fn fold_into(self, a: &mut [f64], b: &[f64]) {
        assert_eq!(a.len(), b.len(), "reduction buffer length mismatch");
        for (x, &y) in a.iter_mut().zip(b) {
            *x = self.apply(*x, y);
        }
    }

    /// Identity element of the operator.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            for v in [-3.5, 0.0, 7.25] {
                assert_eq!(op.apply(op.identity(), v), v);
            }
        }
    }

    #[test]
    fn fold_into_elementwise() {
        let mut a = vec![1.0, 5.0, -2.0];
        ReduceOp::Max.fold_into(&mut a, &[0.0, 9.0, -3.0]);
        assert_eq!(a, vec![1.0, 9.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fold_into_length_mismatch_panics() {
        let mut a = vec![1.0];
        ReduceOp::Sum.fold_into(&mut a, &[1.0, 2.0]);
    }
}
