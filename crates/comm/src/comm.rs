//! Rank-local communicator: MPI-1-shaped point-to-point and collective
//! operations plus the virtual clock used by the cluster performance model.

use crate::model::ClusterModel;
use crate::reduce::ReduceOp;
use crate::router::{Message, Router, Tag};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

/// Bit marking framework-internal (collective) tags; user tags must keep it
/// clear. Mirrors MPI's reserved-tag convention.
const COLLECTIVE_BIT: Tag = 1 << 63;

/// Counters accumulated by a rank across all its communicators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of point-to-point messages sent (collectives included).
    pub messages_sent: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Number of point-to-point receives completed.
    pub messages_received: u64,
}

#[derive(Default)]
struct StatsCell {
    messages_sent: Cell<u64>,
    bytes_sent: Cell<u64>,
    messages_received: Cell<u64>,
}

/// A rank's handle onto one communication context.
///
/// Each SCMD rank (thread) owns a root `Communicator`; [`Communicator::dup`]
/// creates additional contexts whose messages never match the parent's, the
/// way the CCAFFEINE framework "lends out a properly scoped MPI communicator"
/// to components. Duplicates share the rank's virtual clock and statistics.
///
/// The type is deliberately `!Send`/`!Sync` (it holds `Rc`/`Cell`): a
/// communicator belongs to exactly one rank thread, as in MPI.
pub struct Communicator {
    router: Arc<Router>,
    rank: usize,
    size: usize,
    comm_id: u64,
    model: ClusterModel,
    clock: Rc<Cell<f64>>,
    stats: Rc<StatsCell>,
    next_comm_id: Rc<Cell<u64>>,
    collective_seq: Cell<u64>,
}

impl Communicator {
    /// Construct the root communicator for `rank` of an SCMD job. Called by
    /// [`crate::scmd::run`]; test code may call it directly with a shared
    /// [`Router`].
    pub fn root(router: Arc<Router>, rank: usize, model: ClusterModel) -> Self {
        let size = router.size();
        Communicator {
            router,
            rank,
            size,
            comm_id: 0,
            model,
            clock: Rc::new(Cell::new(0.0)),
            stats: Rc::new(StatsCell::default()),
            next_comm_id: Rc::new(Cell::new(1)),
            collective_seq: Cell::new(0),
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine model this communicator charges time against.
    pub fn model(&self) -> ClusterModel {
        self.model
    }

    /// Duplicate into a fresh context (disjoint message matching).
    ///
    /// All ranks must perform the same sequence of `dup` calls so that the
    /// derived context ids agree — the usual MPI collective-order contract.
    pub fn dup(&self) -> Communicator {
        let id = self.next_comm_id.get();
        self.next_comm_id.set(id + 1);
        Communicator {
            router: Arc::clone(&self.router),
            rank: self.rank,
            size: self.size,
            comm_id: id,
            model: self.model,
            clock: Rc::clone(&self.clock),
            stats: Rc::clone(&self.stats),
            next_comm_id: Rc::clone(&self.next_comm_id),
            collective_seq: Cell::new(0),
        }
    }

    // ------------------------------------------------------------------
    // Virtual clock
    // ------------------------------------------------------------------

    /// Current virtual time of this rank (seconds).
    pub fn vtime(&self) -> f64 {
        self.clock.get()
    }

    /// Charge `work` abstract work units of computation to the clock.
    pub fn charge_compute(&self, work: f64) {
        self.advance_seconds(self.model.compute_cost(work));
    }

    /// Advance the clock by a raw number of seconds.
    pub fn advance_seconds(&self, dt: f64) {
        debug_assert!(dt >= 0.0, "time cannot run backwards");
        self.clock.set(self.clock.get() + dt);
    }

    /// Snapshot of this rank's traffic counters.
    pub fn stats(&self) -> CommStats {
        CommStats {
            messages_sent: self.stats.messages_sent.get(),
            bytes_sent: self.stats.bytes_sent.get(),
            messages_received: self.stats.messages_received.get(),
        }
    }

    // ------------------------------------------------------------------
    // Point to point
    // ------------------------------------------------------------------

    fn send_tagged<T: Clone + Send + 'static>(&self, dst: usize, tag: Tag, data: &[T]) {
        assert!(dst < self.size, "destination rank {dst} out of range");
        let nbytes = std::mem::size_of_val(data);
        self.advance_seconds(self.model.call_overhead);
        self.stats
            .messages_sent
            .set(self.stats.messages_sent.get() + 1);
        self.stats
            .bytes_sent
            .set(self.stats.bytes_sent.get() + nbytes as u64);
        self.router.post(
            dst,
            Message {
                comm_id: self.comm_id,
                src: self.rank,
                tag,
                payload: Box::new(data.to_vec()),
                nbytes,
                send_vtime: self.clock.get(),
            },
        );
    }

    fn recv_tagged<T: Clone + Send + 'static>(&self, src: usize, tag: Tag) -> Vec<T> {
        assert!(src < self.size, "source rank {src} out of range");
        let msg = self.router.take(self.rank, self.comm_id, src, tag);
        let arrival = msg.send_vtime + self.model.message_cost(msg.nbytes);
        self.clock
            .set(self.clock.get().max(arrival) + self.model.call_overhead);
        self.stats
            .messages_received
            .set(self.stats.messages_received.get() + 1);
        *msg.payload
            .downcast::<Vec<T>>()
            .expect("receive type does not match the sent payload type")
    }

    /// Send `data` to rank `dst` with `tag`. Buffered (never blocks).
    pub fn send<T: Clone + Send + 'static>(&self, dst: usize, tag: Tag, data: &[T]) {
        assert!(tag & COLLECTIVE_BIT == 0, "user tags must be < 2^63");
        self.send_tagged(dst, tag, data);
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv<T: Clone + Send + 'static>(&self, src: usize, tag: Tag) -> Vec<T> {
        assert!(tag & COLLECTIVE_BIT == 0, "user tags must be < 2^63");
        self.recv_tagged(src, tag)
    }

    /// Is a message from `src` with `tag` already waiting?
    pub fn probe(&self, src: usize, tag: Tag) -> bool {
        self.router.probe(self.rank, self.comm_id, src, tag)
    }

    /// Combined send-then-receive with a partner rank; safe against deadlock
    /// because sends are buffered.
    pub fn sendrecv<T: Clone + Send + 'static>(
        &self,
        partner: usize,
        tag: Tag,
        data: &[T],
    ) -> Vec<T> {
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }

    // ------------------------------------------------------------------
    // Collectives (binomial / dissemination algorithms over p2p, so the
    // performance model charges them realistically)
    // ------------------------------------------------------------------

    fn next_collective_tag(&self, op_code: u64) -> Tag {
        let seq = self.collective_seq.get();
        self.collective_seq.set(seq + 1);
        COLLECTIVE_BIT | (seq << 4) | op_code
    }

    /// Dissemination barrier.
    pub fn barrier(&self) {
        let tag = self.next_collective_tag(0);
        let mut k = 1usize;
        while k < self.size {
            let dst = (self.rank + k) % self.size;
            let src = (self.rank + self.size - k) % self.size;
            self.send_tagged::<u8>(dst, tag, &[]);
            let _ = self.recv_tagged::<u8>(src, tag);
            k <<= 1;
        }
    }

    /// Binomial-tree broadcast from `root`; every rank returns the data.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, data: &[T]) -> Vec<T> {
        let tag = self.next_collective_tag(1);
        let vr = (self.rank + self.size - root) % self.size;
        let mut buf: Vec<T> = if vr == 0 { data.to_vec() } else { Vec::new() };
        let mut mask = 1usize;
        while mask < self.size {
            if vr & mask != 0 {
                let src = (vr - mask + root) % self.size;
                buf = self.recv_tagged(src, tag);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vr & mask == 0 && vr + mask < self.size {
                let dst = (vr + mask + root) % self.size;
                self.send_tagged(dst, tag, &buf);
            }
            mask >>= 1;
        }
        buf
    }

    /// Binomial-tree reduction to `root`. Returns `Some(result)` on the
    /// root, `None` elsewhere.
    pub fn reduce(&self, root: usize, data: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        let tag = self.next_collective_tag(2);
        let vr = (self.rank + self.size - root) % self.size;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < self.size {
            if vr & mask == 0 {
                let child = vr | mask;
                if child < self.size {
                    let src = (child + root) % self.size;
                    let part: Vec<f64> = self.recv_tagged(src, tag);
                    op.fold_into(&mut acc, &part);
                }
            } else {
                let parent = vr & !mask;
                let dst = (parent + root) % self.size;
                self.send_tagged(dst, tag, &acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Reduce to rank 0 then broadcast: every rank gets the reduction.
    pub fn allreduce(&self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        match self.reduce(0, data, op) {
            Some(result) => self.bcast(0, &result),
            None => self.bcast::<f64>(0, &[]),
        }
    }

    /// Element-wise sum across ranks.
    pub fn allreduce_sum(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce(data, ReduceOp::Sum)
    }

    /// Element-wise max across ranks.
    pub fn allreduce_max(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce(data, ReduceOp::Max)
    }

    /// Element-wise min across ranks.
    pub fn allreduce_min(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce(data, ReduceOp::Min)
    }

    /// Gather each rank's buffer to `root` (rank-ordered). `Some` on root.
    pub fn gather<T: Clone + Send + 'static>(
        &self,
        root: usize,
        data: &[T],
    ) -> Option<Vec<Vec<T>>> {
        let tag = self.next_collective_tag(3);
        if self.rank == root {
            let mut out = Vec::with_capacity(self.size);
            for src in 0..self.size {
                if src == root {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv_tagged(src, tag));
                }
            }
            Some(out)
        } else {
            self.send_tagged(root, tag, data);
            None
        }
    }

    /// Gather to rank 0 then broadcast the concatenation boundaries: every
    /// rank receives all buffers, rank-ordered.
    pub fn allgather<T: Clone + Send + 'static>(&self, data: &[T]) -> Vec<Vec<T>> {
        let gathered = self.gather(0, data);
        let lens: Vec<f64> = match &gathered {
            Some(parts) => parts.iter().map(|p| p.len() as f64).collect(),
            None => Vec::new(),
        };
        let lens = self.bcast(0, &lens);
        let flat: Vec<T> = match gathered {
            Some(parts) => parts.into_iter().flatten().collect(),
            None => Vec::new(),
        };
        let flat = self.bcast(0, &flat);
        let mut out = Vec::with_capacity(self.size);
        let mut off = 0usize;
        for l in lens {
            let l = l as usize;
            out.push(flat[off..off + l].to_vec());
            off += l;
        }
        out
    }
}
