//! Rank-local communicator: MPI-1-shaped point-to-point and collective
//! operations plus the virtual clock used by the cluster performance model.
//!
//! Two send/receive disciplines coexist:
//!
//! * **Blocking** `send`/`recv` — the original strictly-sequential model:
//!   a message posted at sender time `s` arrives at `s + α + β·n`, and the
//!   receiver's clock jumps to `max(clock, arrival) + overhead`.
//! * **Nonblocking** [`Communicator::isend`]/[`Communicator::irecv`] with
//!   [`Communicator::wait`]/[`Communicator::waitall`]/[`Communicator::test`]
//!   — the overlap-aware model. An isend reserves the sender's egress link
//!   ([`Router::reserve_egress`]) so consecutive transfers serialize on the
//!   wire (`start = max(clock, link_free)`, link busy for `β·n`), while the
//!   sending rank's own clock only pays the call overhead and keeps
//!   computing. The receiver charges `max(compute_end, start + α + β·n)` at
//!   wait time, i.e. only the *non-overlapped remainder* of each message —
//!   `t_rank = max(compute_end, link_free + α + β·bytes)` instead of a
//!   strictly sequential accumulation.

use crate::model::ClusterModel;
use crate::reduce::ReduceOp;
use crate::router::{Message, Router, Tag};
use crate::trace::TraceOp;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::Arc;

/// Bit marking framework-internal (collective) tags; user tags must keep it
/// clear. Mirrors MPI's reserved-tag convention.
const COLLECTIVE_BIT: Tag = 1 << 63;

/// Per-tag traffic counters (user tags only; collectives are aggregated in
/// the totals but not broken out per generated internal tag).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagTraffic {
    /// Messages sent with this tag.
    pub messages: u64,
    /// Payload bytes sent with this tag.
    pub bytes: u64,
}

/// Counters accumulated by a rank across all its communicators.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of point-to-point messages sent (collectives included).
    pub messages_sent: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Number of point-to-point receives completed.
    pub messages_received: u64,
    /// Messages *saved* by aggregation: each time a sender packs `k`
    /// logical transfers into one wire message it records `k - 1` here
    /// via [`Communicator::note_coalesced`].
    pub messages_coalesced: u64,
    /// Per-tag breakdown of sent traffic, user tags only.
    pub sent_by_tag: BTreeMap<Tag, TagTraffic>,
}

impl CommStats {
    /// Traffic sent under `tag` (zero if the tag was never used).
    pub fn tag(&self, tag: Tag) -> TagTraffic {
        self.sent_by_tag.get(&tag).copied().unwrap_or_default()
    }
}

#[derive(Default)]
struct StatsCell {
    messages_sent: Cell<u64>,
    bytes_sent: Cell<u64>,
    messages_received: Cell<u64>,
    messages_coalesced: Cell<u64>,
    sent_by_tag: RefCell<BTreeMap<Tag, TagTraffic>>,
}

/// Handle for a posted nonblocking send.
///
/// Sends are buffered, so the request is complete as soon as it exists;
/// it records the modeled wire schedule of the message for inspection.
/// Dropping it is harmless — there is no completion to lose.
#[derive(Clone, Copy, Debug)]
pub struct SendRequest {
    /// Modeled time the message reaches the receiver
    /// (`link_start + α + β·bytes`).
    pub arrival_vtime: f64,
}

/// Handle for a posted nonblocking receive of a `Vec<T>` payload.
///
/// Redeem it with [`Communicator::wait`] (or a batch with
/// [`Communicator::waitall`]); poll with [`Communicator::test`]. The type
/// parameter pins the payload type at post time, as an MPI `irecv` buffer
/// would.
#[must_use = "an irecv only completes when waited on"]
#[derive(Debug)]
pub struct RecvRequest<T> {
    src: usize,
    tag: Tag,
    _payload: PhantomData<fn() -> T>,
}

/// A rank's handle onto one communication context.
///
/// Each SCMD rank (thread) owns a root `Communicator`; [`Communicator::dup`]
/// creates additional contexts whose messages never match the parent's, the
/// way the CCAFFEINE framework "lends out a properly scoped MPI communicator"
/// to components. Duplicates share the rank's virtual clock and statistics.
///
/// The type is deliberately `!Send`/`!Sync` (it holds `Rc`/`Cell`): a
/// communicator belongs to exactly one rank thread, as in MPI.
pub struct Communicator {
    router: Arc<Router>,
    rank: usize,
    size: usize,
    comm_id: u64,
    model: ClusterModel,
    clock: Rc<Cell<f64>>,
    stats: Rc<StatsCell>,
    next_comm_id: Rc<Cell<u64>>,
    collective_seq: Cell<u64>,
}

impl Communicator {
    /// Construct the root communicator for `rank` of an SCMD job. Called by
    /// [`crate::scmd::run`]; test code may call it directly with a shared
    /// [`Router`].
    pub fn root(router: Arc<Router>, rank: usize, model: ClusterModel) -> Self {
        let size = router.size();
        Communicator {
            router,
            rank,
            size,
            comm_id: 0,
            model,
            clock: Rc::new(Cell::new(0.0)),
            stats: Rc::new(StatsCell::default()),
            next_comm_id: Rc::new(Cell::new(1)),
            collective_seq: Cell::new(0),
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine model this communicator charges time against.
    pub fn model(&self) -> ClusterModel {
        self.model
    }

    /// Duplicate into a fresh context (disjoint message matching).
    ///
    /// All ranks must perform the same sequence of `dup` calls so that the
    /// derived context ids agree — the usual MPI collective-order contract.
    pub fn dup(&self) -> Communicator {
        let id = self.next_comm_id.get();
        self.next_comm_id.set(id + 1);
        Communicator {
            router: Arc::clone(&self.router),
            rank: self.rank,
            size: self.size,
            comm_id: id,
            model: self.model,
            clock: Rc::clone(&self.clock),
            stats: Rc::clone(&self.stats),
            next_comm_id: Rc::clone(&self.next_comm_id),
            collective_seq: Cell::new(0),
        }
    }

    // ------------------------------------------------------------------
    // Virtual clock
    // ------------------------------------------------------------------

    /// Current virtual time of this rank (seconds).
    pub fn vtime(&self) -> f64 {
        self.clock.get()
    }

    /// Charge `work` abstract work units of computation to the clock.
    pub fn charge_compute(&self, work: f64) {
        self.advance_seconds(self.model.compute_cost(work));
    }

    /// Advance the clock by a raw number of seconds.
    pub fn advance_seconds(&self, dt: f64) {
        debug_assert!(dt >= 0.0, "time cannot run backwards");
        self.clock.set(self.clock.get() + dt);
    }

    /// Snapshot of this rank's traffic counters.
    pub fn stats(&self) -> CommStats {
        CommStats {
            messages_sent: self.stats.messages_sent.get(),
            bytes_sent: self.stats.bytes_sent.get(),
            messages_received: self.stats.messages_received.get(),
            messages_coalesced: self.stats.messages_coalesced.get(),
            sent_by_tag: self.stats.sent_by_tag.borrow().clone(),
        }
    }

    /// Announce the schedule phase this rank is currently executing (for
    /// example `"regrid epoch 7"`). If the rank panics mid-phase, the label
    /// is attached to the poison record so victims and the launcher report
    /// *which* exchange died, not just the original tag.
    pub fn set_phase(&self, label: &str) {
        self.router.set_phase(self.rank, Some(label));
    }

    /// Clear this rank's announced phase; subsequent failures fall back to
    /// the generic "mid-exchange" wording.
    pub fn clear_phase(&self) {
        self.router.set_phase(self.rank, None);
    }

    /// Record that one wire message replaced `packed` logical transfers
    /// (`packed - 1` messages saved by aggregation). No-op for `packed <= 1`.
    pub fn note_coalesced(&self, packed: u64) {
        if packed > 1 {
            self.stats
                .messages_coalesced
                .set(self.stats.messages_coalesced.get() + packed - 1);
        }
    }

    /// Append a semantic op to this rank's execution trace (no-op unless
    /// the job's [`Router`] was built with tracing on). Never touches the
    /// clock: traced runs stay bit-identical to untraced ones.
    fn trace(&self, op: TraceOp) {
        self.router.record(self.rank, op);
    }

    fn record_send(&self, tag: Tag, nbytes: usize) {
        self.stats
            .messages_sent
            .set(self.stats.messages_sent.get() + 1);
        self.stats
            .bytes_sent
            .set(self.stats.bytes_sent.get() + nbytes as u64);
        if tag & COLLECTIVE_BIT == 0 {
            let mut by_tag = self.stats.sent_by_tag.borrow_mut();
            let entry = by_tag.entry(tag).or_default();
            entry.messages += 1;
            entry.bytes += nbytes as u64;
        }
    }

    // ------------------------------------------------------------------
    // Point to point (blocking)
    // ------------------------------------------------------------------

    fn send_tagged<T: Clone + Send + 'static>(&self, dst: usize, tag: Tag, data: &[T]) {
        assert!(dst < self.size, "destination rank {dst} out of range");
        let nbytes = std::mem::size_of_val(data);
        self.advance_seconds(self.model.call_overhead);
        self.record_send(tag, nbytes);
        let send_vtime = self.clock.get();
        self.router.post(
            dst,
            Message {
                comm_id: self.comm_id,
                src: self.rank,
                tag,
                payload: Box::new(data.to_vec()),
                nbytes,
                send_vtime,
                // Legacy sequential schedule: no link contention.
                arrival_vtime: send_vtime + self.model.message_cost(nbytes),
            },
        );
    }

    fn recv_tagged<T: Clone + Send + 'static>(&self, src: usize, tag: Tag) -> Vec<T> {
        assert!(src < self.size, "source rank {src} out of range");
        let msg = self.router.take(self.rank, self.comm_id, src, tag);
        self.clock
            .set(self.clock.get().max(msg.arrival_vtime) + self.model.call_overhead);
        self.stats
            .messages_received
            .set(self.stats.messages_received.get() + 1);
        *msg.payload
            .downcast::<Vec<T>>()
            .expect("receive type does not match the sent payload type")
    }

    /// Send `data` to rank `dst` with `tag`. Buffered (never blocks).
    pub fn send<T: Clone + Send + 'static>(&self, dst: usize, tag: Tag, data: &[T]) {
        assert!(tag & COLLECTIVE_BIT == 0, "user tags must be < 2^63");
        self.trace(TraceOp::Send {
            peer: dst,
            tag,
            bytes: std::mem::size_of_val(data) as u64,
        });
        self.send_tagged(dst, tag, data);
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv<T: Clone + Send + 'static>(&self, src: usize, tag: Tag) -> Vec<T> {
        assert!(tag & COLLECTIVE_BIT == 0, "user tags must be < 2^63");
        let v = self.recv_tagged(src, tag);
        self.trace(TraceOp::Recv {
            peer: src,
            tag,
            bytes: std::mem::size_of_val(&v[..]) as u64,
        });
        v
    }

    /// Is a message from `src` with `tag` already waiting?
    pub fn probe(&self, src: usize, tag: Tag) -> bool {
        self.router.probe(self.rank, self.comm_id, src, tag)
    }

    /// Combined send-then-receive with a partner rank; safe against deadlock
    /// because sends are buffered.
    pub fn sendrecv<T: Clone + Send + 'static>(
        &self,
        partner: usize,
        tag: Tag,
        data: &[T],
    ) -> Vec<T> {
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }

    // ------------------------------------------------------------------
    // Point to point (nonblocking, overlap-aware)
    // ------------------------------------------------------------------

    /// Nonblocking send: post `data` toward `dst` and return immediately.
    ///
    /// The sending rank's clock pays only the call overhead; the transfer
    /// itself is scheduled on the rank's egress link, which serializes
    /// back-to-back isends (`start = max(clock, link_free)`, busy for
    /// `β·bytes`). The modeled arrival, `start + α + β·bytes`, travels with
    /// the message and is what the receiver's `wait` charges against —
    /// compute performed between the isend and the matching wait hides the
    /// transfer.
    pub fn isend<T: Clone + Send + 'static>(
        &self,
        dst: usize,
        tag: Tag,
        data: &[T],
    ) -> SendRequest {
        assert!(dst < self.size, "destination rank {dst} out of range");
        assert!(tag & COLLECTIVE_BIT == 0, "user tags must be < 2^63");
        let nbytes = std::mem::size_of_val(data);
        self.trace(TraceOp::Isend {
            peer: dst,
            tag,
            bytes: nbytes as u64,
        });
        self.advance_seconds(self.model.call_overhead);
        self.record_send(tag, nbytes);
        let send_vtime = self.clock.get();
        let transfer = self.model.beta * nbytes as f64;
        let start = self.router.reserve_egress(self.rank, send_vtime, transfer);
        let arrival_vtime = start + self.model.alpha + transfer;
        self.router.post(
            dst,
            Message {
                comm_id: self.comm_id,
                src: self.rank,
                tag,
                payload: Box::new(data.to_vec()),
                nbytes,
                send_vtime,
                arrival_vtime,
            },
        );
        SendRequest { arrival_vtime }
    }

    /// Nonblocking receive: register interest in a message from `src` with
    /// `tag`. Costs nothing on the clock; redeem with [`Communicator::wait`].
    pub fn irecv<T: Clone + Send + 'static>(&self, src: usize, tag: Tag) -> RecvRequest<T> {
        assert!(src < self.size, "source rank {src} out of range");
        assert!(tag & COLLECTIVE_BIT == 0, "user tags must be < 2^63");
        self.trace(TraceOp::Irecv { peer: src, tag });
        RecvRequest {
            src,
            tag,
            _payload: PhantomData,
        }
    }

    /// Complete a nonblocking receive, returning its payload.
    ///
    /// The clock advances to `max(clock, arrival) + overhead`: if the rank
    /// computed past the message's modeled arrival since posting the irecv,
    /// the transfer was fully hidden and only the overhead is charged.
    pub fn wait<T: Clone + Send + 'static>(&self, req: RecvRequest<T>) -> Vec<T> {
        let v = self.recv_tagged(req.src, req.tag);
        self.trace(TraceOp::Wait {
            peer: req.src,
            tag: req.tag,
            bytes: std::mem::size_of_val(&v[..]) as u64,
        });
        v
    }

    /// Complete a batch of nonblocking receives, payloads in request order.
    ///
    /// The final clock is `max(compute_end, latest arrival) + k·overhead` —
    /// order-insensitive up to the (tiny) per-message overhead, as the max
    /// is taken across all arrivals either way.
    pub fn waitall<T: Clone + Send + 'static>(&self, reqs: Vec<RecvRequest<T>>) -> Vec<Vec<T>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Has the message for `req` already arrived in the mailbox?
    ///
    /// Like MPI's `MPI_Test` this never blocks; unlike `wait` it does not
    /// complete the request. Panics with a poisoned-peer error if a rank
    /// died and no matching message is queued.
    pub fn test<T>(&self, req: &RecvRequest<T>) -> bool {
        self.router.probe(self.rank, self.comm_id, req.src, req.tag)
    }

    // ------------------------------------------------------------------
    // Collectives (binomial / dissemination algorithms over p2p, so the
    // performance model charges them realistically)
    // ------------------------------------------------------------------

    fn next_collective_tag(&self, op_code: u64) -> Tag {
        let seq = self.collective_seq.get();
        self.collective_seq.set(seq + 1);
        COLLECTIVE_BIT | (seq << 4) | op_code
    }

    /// Dissemination barrier.
    pub fn barrier(&self) {
        self.trace(TraceOp::Barrier);
        let tag = self.next_collective_tag(0);
        let mut k = 1usize;
        while k < self.size {
            let dst = (self.rank + k) % self.size;
            let src = (self.rank + self.size - k) % self.size;
            self.send_tagged::<u8>(dst, tag, &[]);
            let _ = self.recv_tagged::<u8>(src, tag);
            k <<= 1;
        }
    }

    /// Binomial-tree broadcast from `root`; every rank returns the data.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, data: &[T]) -> Vec<T> {
        let tag = self.next_collective_tag(1);
        let vr = (self.rank + self.size - root) % self.size;
        let mut buf: Vec<T> = if vr == 0 { data.to_vec() } else { Vec::new() };
        let mut mask = 1usize;
        while mask < self.size {
            if vr & mask != 0 {
                let src = (vr - mask + root) % self.size;
                buf = self.recv_tagged(src, tag);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vr & mask == 0 && vr + mask < self.size {
                let dst = (vr + mask + root) % self.size;
                self.send_tagged(dst, tag, &buf);
            }
            mask >>= 1;
        }
        buf
    }

    /// Binomial-tree reduction to `root`. Returns `Some(result)` on the
    /// root, `None` elsewhere.
    pub fn reduce(&self, root: usize, data: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        self.trace(TraceOp::Reduce {
            bytes: std::mem::size_of_val(data) as u64,
        });
        let tag = self.next_collective_tag(2);
        let vr = (self.rank + self.size - root) % self.size;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < self.size {
            if vr & mask == 0 {
                let child = vr | mask;
                if child < self.size {
                    let src = (child + root) % self.size;
                    let part: Vec<f64> = self.recv_tagged(src, tag);
                    op.fold_into(&mut acc, &part);
                }
            } else {
                let parent = vr & !mask;
                let dst = (parent + root) % self.size;
                self.send_tagged(dst, tag, &acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Reduce to rank 0 then broadcast: every rank gets the reduction.
    pub fn allreduce(&self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        match self.reduce(0, data, op) {
            Some(result) => self.bcast(0, &result),
            None => self.bcast::<f64>(0, &[]),
        }
    }

    /// Element-wise sum across ranks.
    pub fn allreduce_sum(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce(data, ReduceOp::Sum)
    }

    /// Element-wise max across ranks.
    pub fn allreduce_max(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce(data, ReduceOp::Max)
    }

    /// Element-wise min across ranks.
    pub fn allreduce_min(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce(data, ReduceOp::Min)
    }

    /// Gather each rank's buffer to `root` (rank-ordered). `Some` on root.
    pub fn gather<T: Clone + Send + 'static>(
        &self,
        root: usize,
        data: &[T],
    ) -> Option<Vec<Vec<T>>> {
        let tag = self.next_collective_tag(3);
        if self.rank == root {
            let mut out = Vec::with_capacity(self.size);
            for src in 0..self.size {
                if src == root {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv_tagged(src, tag));
                }
            }
            Some(out)
        } else {
            self.send_tagged(root, tag, data);
            None
        }
    }

    /// Gather to rank 0 then broadcast the concatenation boundaries: every
    /// rank receives all buffers, rank-ordered.
    pub fn allgather<T: Clone + Send + 'static>(&self, data: &[T]) -> Vec<Vec<T>> {
        let gathered = self.gather(0, data);
        let lens: Vec<f64> = match &gathered {
            Some(parts) => parts.iter().map(|p| p.len() as f64).collect(),
            None => Vec::new(),
        };
        let lens = self.bcast(0, &lens);
        let flat: Vec<T> = match gathered {
            Some(parts) => parts.into_iter().flatten().collect(),
            None => Vec::new(),
        };
        let flat = self.bcast(0, &flat);
        let mut out = Vec::with_capacity(self.size);
        let mut off = 0usize;
        for l in lens {
            let l = l as usize;
            out.push(flat[off..off + l].to_vec());
            off += l;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(alpha: f64, beta: f64) -> ClusterModel {
        ClusterModel {
            alpha,
            beta,
            seconds_per_work_unit: 1.0,
            call_overhead: 0.0,
        }
    }

    fn pair(m: ClusterModel) -> (Communicator, Communicator) {
        let router = Router::new(2);
        (
            Communicator::root(Arc::clone(&router), 0, m),
            Communicator::root(router, 1, m),
        )
    }

    #[test]
    fn isend_wait_roundtrip() {
        let (c0, c1) = pair(ClusterModel::zero());
        let sreq = c0.isend(1, 7, &[1.0f64, 2.0, 3.0]);
        assert!(sreq.arrival_vtime >= 0.0);
        let rreq = c1.irecv::<f64>(0, 7);
        assert!(c1.test(&rreq));
        assert_eq!(c1.wait(rreq), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn test_reports_pending_message_without_completing() {
        let (c0, c1) = pair(ClusterModel::zero());
        let rreq = c1.irecv::<u8>(0, 3);
        assert!(!c1.test(&rreq));
        c0.isend(1, 3, &[9u8]);
        assert!(c1.test(&rreq));
        // Still deliverable after testing.
        assert_eq!(c1.wait(rreq), vec![9]);
    }

    #[test]
    fn back_to_back_isends_serialize_on_the_egress_link() {
        // α = 10 s, β = 1 s/byte: an 8-byte payload occupies the link 8 s.
        let (c0, c1) = pair(model(10.0, 1.0));
        let s1 = c0.isend(1, 1, &[0u8; 8]);
        let s2 = c0.isend(1, 2, &[0u8; 8]);
        // First transfer starts at clock 0: arrives 0 + 10 + 8.
        assert_eq!(s1.arrival_vtime, 18.0);
        // Second queues behind it on the link: starts at 8, arrives 8 + 18.
        assert_eq!(s2.arrival_vtime, 26.0);
        // Sender's own clock never paid for the transfers.
        assert_eq!(c0.vtime(), 0.0);
        // A receiver that computed past both arrivals pays nothing extra.
        c1.charge_compute(100.0);
        let r1 = c1.irecv::<u8>(0, 1);
        let r2 = c1.irecv::<u8>(0, 2);
        c1.waitall(vec![r1, r2]);
        assert_eq!(c1.vtime(), 100.0);
    }

    #[test]
    fn unhidden_transfer_charges_the_remainder() {
        let (c0, c1) = pair(model(10.0, 1.0));
        c0.isend(1, 1, &[0u8; 8]);
        let req = c1.irecv::<u8>(0, 1);
        c1.charge_compute(5.0); // only partially hides the 18 s transfer
        c1.wait(req);
        assert_eq!(c1.vtime(), 18.0); // max(5, 18)
    }

    #[test]
    fn blocking_send_keeps_sequential_arrival_schedule() {
        // Blocking sends do not contend for the link: two sends posted at
        // clock 0 both arrive at α + β·n, preserving the pre-overlap model.
        let (c0, c1) = pair(model(10.0, 1.0));
        c0.send(1, 1, &[0u8; 8]);
        c0.send(1, 2, &[0u8; 8]);
        c1.recv::<u8>(0, 1);
        assert_eq!(c1.vtime(), 18.0);
        c1.recv::<u8>(0, 2);
        assert_eq!(c1.vtime(), 18.0);
    }

    #[test]
    fn stats_track_tags_and_coalescing() {
        let (c0, c1) = pair(ClusterModel::zero());
        c0.isend(1, 10, &[0u8; 100]);
        c0.isend(1, 10, &[0u8; 50]);
        c0.send(1, 11, &[0u8; 8]);
        c0.note_coalesced(9);
        c0.note_coalesced(1); // no-op
        let s = c0.stats();
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.bytes_sent, 158);
        assert_eq!(s.messages_coalesced, 8);
        assert_eq!(
            s.tag(10),
            TagTraffic {
                messages: 2,
                bytes: 150
            }
        );
        assert_eq!(
            s.tag(11),
            TagTraffic {
                messages: 1,
                bytes: 8
            }
        );
        assert_eq!(s.tag(12), TagTraffic::default());
        // Collectives count in totals but not per-tag.
        let _ = c0.bcast(0, &[1.0f64]);
        let _ = c1.bcast(0, &[1.0f64]);
        assert_eq!(c0.stats().sent_by_tag.len(), 2);
    }

    #[test]
    fn waitall_returns_payloads_in_request_order() {
        let (c0, c1) = pair(ClusterModel::zero());
        c0.isend(1, 2, &[2i32]);
        c0.isend(1, 1, &[1i32]);
        let r2 = c1.irecv::<i32>(0, 2);
        let r1 = c1.irecv::<i32>(0, 1);
        let got = c1.waitall(vec![r1, r2]);
        assert_eq!(got, vec![vec![1], vec![2]]);
    }
}
