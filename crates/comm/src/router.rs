//! In-process message router: one mailbox per rank, selective receive on
//! `(communicator id, source, tag)` exactly like MPI's envelope matching.
//!
//! Beyond mailboxes the router owns two pieces of *shared* modeling state:
//!
//! * **Egress-link occupancy** — one virtual free-time per rank's
//!   injection link (the paper's CPlant pushed Myrinet through a 32-bit
//!   PCI NIC; the NIC, not the fabric, is the contended resource). The
//!   nonblocking send path reserves the link for the `β·bytes` transfer
//!   time of each message, so back-to-back isends from one rank serialize
//!   on the wire while the rank's own clock keeps running — exactly the
//!   overlap the modeled `waitall` then credits. Each entry is written
//!   only by its owning rank's thread, so the timeline is deterministic.
//! * **Poison state** — the first rank that panics mid-exchange records
//!   itself here and wakes every blocked receiver, turning what used to
//!   be a silent distributed hang into an immediate, attributed error.

use crate::trace::{CommTrace, TraceOp};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

/// MPI-style message tag.
pub type Tag = u64;

/// Envelope + payload for one in-flight message.
pub struct Message {
    /// Communicator the message was sent on (distinct communicators never match).
    pub comm_id: u64,
    /// Sending rank.
    pub src: usize,
    /// User tag.
    pub tag: Tag,
    /// Type-erased payload (a `Vec<T>` boxed as `Any`).
    pub payload: Box<dyn Any + Send>,
    /// Payload size in bytes, used by the cluster performance model.
    pub nbytes: usize,
    /// Sender's virtual clock at the moment of the send.
    pub send_vtime: f64,
    /// Modeled arrival time at the receiver: the blocking path computes
    /// `send_vtime + α + β·bytes`; the nonblocking path additionally
    /// waits for the sender's egress link to drain earlier messages.
    pub arrival_vtime: f64,
}

/// Record of the first rank that panicked inside an SCMD job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerPanic {
    /// The rank whose closure panicked.
    pub rank: usize,
    /// Its panic payload, stringified.
    pub message: String,
    /// The schedule phase the rank had announced when it panicked (see
    /// [`Router::set_phase`]) — e.g. `"regrid epoch 7"` — so a mid-regrid
    /// fault is attributed to the regrid, not just to the original tag.
    pub phase: Option<String>,
}

impl PeerPanic {
    /// `" during <phase>"` when the culprit announced one, else empty —
    /// the suffix every poisoned-peer error message carries.
    pub fn phase_context(&self) -> String {
        match &self.phase {
            Some(p) => format!(" during {p}"),
            None => String::new(),
        }
    }
}

/// One rank's mailbox: a queue protected by a mutex + condvar so that a
/// blocking selective receive can wait for a matching envelope.
#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    signal: Condvar,
}

/// Shared router connecting the `P` ranks of one SCMD job.
pub struct Router {
    boxes: Vec<Mailbox>,
    /// Virtual time at which each rank's egress link next falls idle.
    /// Written only by the owning rank (sends are serial per thread).
    egress_free: Vec<Mutex<f64>>,
    /// First panicked rank, if any.
    poison: Mutex<Option<PeerPanic>>,
    /// Per-rank phase labels (e.g. `"regrid epoch 7"`): written only by
    /// the owning rank's thread, read when that rank poisons the job so
    /// the error names the schedule phase, not just the blocked tag.
    phases: Vec<Mutex<Option<String>>>,
    /// Per-rank execution traces for the conformance auditor; empty when
    /// tracing is off. Each entry is written only by its owning rank's
    /// thread, so the recorded order is the rank's program order.
    traces: Vec<Mutex<Vec<TraceOp>>>,
    /// Record communicator operations into `traces`?
    tracing: bool,
}

impl Router {
    /// Create a router for `size` ranks.
    pub fn new(size: usize) -> Arc<Self> {
        Self::build(size, false)
    }

    /// Create a router that records every modeled communicator operation
    /// (see [`TraceOp`]) for post-run conformance auditing. Tracing never
    /// touches the virtual clocks, so traced runs are bit-identical to
    /// untraced ones.
    pub fn new_traced(size: usize) -> Arc<Self> {
        Self::build(size, true)
    }

    pub(crate) fn build(size: usize, tracing: bool) -> Arc<Self> {
        Arc::new(Router {
            boxes: (0..size).map(|_| Mailbox::default()).collect(),
            egress_free: (0..size).map(|_| Mutex::new(0.0)).collect(),
            poison: Mutex::new(None),
            phases: (0..size).map(|_| Mutex::new(None)).collect(),
            traces: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            tracing,
        })
    }

    /// Is this router recording execution traces?
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Append `op` to `rank`'s execution trace (no-op when tracing is off).
    pub fn record(&self, rank: usize, op: TraceOp) {
        if self.tracing {
            self.traces[rank].lock().push(op);
        }
    }

    /// Snapshot every rank's recorded trace, rank-ordered. Call after the
    /// job has joined; mid-run snapshots see each rank's prefix so far.
    pub fn traces(&self) -> CommTrace {
        self.traces.iter().map(|t| t.lock().clone()).collect()
    }

    /// Number of ranks this router serves.
    pub fn size(&self) -> usize {
        self.boxes.len()
    }

    /// Deposit a message into `dst`'s mailbox and wake any waiting receiver.
    pub fn post(&self, dst: usize, msg: Message) {
        let mb = &self.boxes[dst];
        mb.queue.lock().push_back(msg);
        mb.signal.notify_all();
    }

    /// Reserve `src`'s egress link for a transfer of `busy` modeled
    /// seconds, starting no earlier than `earliest` (the sender's clock).
    /// Returns the reserved start time; the link is busy until
    /// `start + busy`. This is the per-link occupancy timeline behind the
    /// overlap credit: the virtual clock of the *receiver* later charges
    /// only the part of the transfer its own compute did not hide.
    pub fn reserve_egress(&self, src: usize, earliest: f64, busy: f64) -> f64 {
        debug_assert!(busy >= 0.0);
        let mut free = self.egress_free[src].lock();
        let start = free.max(earliest);
        *free = start + busy;
        start
    }

    /// Announce the schedule phase `rank` is executing (e.g. a regrid
    /// epoch). If the rank panics while the label is set, the poison
    /// record — and every victim's abort message — names the phase.
    /// `None` clears the label.
    pub fn set_phase(&self, rank: usize, label: Option<&str>) {
        *self.phases[rank].lock() = label.map(str::to_string);
    }

    /// The phase `rank` last announced, if any.
    pub fn phase(&self, rank: usize) -> Option<String> {
        self.phases[rank].lock().clone()
    }

    /// Record that `rank` panicked (first record wins) and wake every
    /// blocked receiver so it can abort with a poisoned-peer error
    /// instead of waiting forever for a message that will never come.
    pub fn poison(&self, rank: usize, message: &str) {
        {
            let mut p = self.poison.lock();
            if p.is_none() {
                *p = Some(PeerPanic {
                    rank,
                    message: message.to_string(),
                    phase: self.phase(rank),
                });
            }
        }
        for mb in &self.boxes {
            // Take the queue lock so a receiver between its match check
            // and its condvar wait cannot miss the wakeup.
            let _q = mb.queue.lock();
            mb.signal.notify_all();
        }
    }

    /// The first panicked rank, if the job is poisoned.
    pub fn poisoned(&self) -> Option<PeerPanic> {
        self.poison.lock().clone()
    }

    /// Blocking selective receive: the oldest message matching
    /// `(comm_id, src, tag)` addressed to `me`.
    ///
    /// The wait parks on a condvar (a deterministic yield — no spinning,
    /// no timeouts). If any rank panics while we wait, [`Router::poison`]
    /// wakes us and this call panics with a poisoned-peer error naming
    /// the original culprit, so one failed rank aborts the whole job
    /// instead of deadlocking the survivors.
    pub fn take(&self, me: usize, comm_id: u64, src: usize, tag: Tag) -> Message {
        let mb = &self.boxes[me];
        let mut q = mb.queue.lock();
        loop {
            if let Some(pos) = q
                .iter()
                .position(|m| m.comm_id == comm_id && m.src == src && m.tag == tag)
            {
                return q.remove(pos).expect("position was just found");
            }
            if let Some(p) = self.poisoned() {
                panic!(
                    "rank {me}: receive from rank {src} (tag {tag}) aborted: \
                     rank {} panicked{}: {}",
                    p.rank,
                    exchange_context(&p),
                    p.message
                );
            }
            mb.signal.wait(&mut q);
        }
    }

    /// Non-blocking probe: is a matching message waiting?
    ///
    /// Panics with a poisoned-peer error when the job is poisoned and no
    /// matching message is queued — a caller spinning on `probe` would
    /// otherwise busy-wait forever on a dead sender.
    pub fn probe(&self, me: usize, comm_id: u64, src: usize, tag: Tag) -> bool {
        let matched = self.boxes[me]
            .queue
            .lock()
            .iter()
            .any(|m| m.comm_id == comm_id && m.src == src && m.tag == tag);
        if !matched {
            if let Some(p) = self.poisoned() {
                panic!(
                    "rank {me}: probe of rank {src} (tag {tag}) aborted: \
                     rank {} panicked{}: {}",
                    p.rank,
                    exchange_context(&p),
                    p.message
                );
            }
        }
        matched
    }

    /// Number of queued (undelivered) messages for `me`, across all
    /// communicators. Useful for leak checks in tests.
    pub fn pending(&self, me: usize) -> usize {
        self.boxes[me].queue.lock().len()
    }
}

/// The culprit's announced phase (`" during regrid epoch 7"`), falling
/// back to the historical `" mid-exchange"` wording when none was set.
fn exchange_context(p: &PeerPanic) -> String {
    match &p.phase {
        Some(phase) => format!(" during {phase}"),
        None => " mid-exchange".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(comm_id: u64, src: usize, tag: Tag, val: i32) -> Message {
        Message {
            comm_id,
            src,
            tag,
            payload: Box::new(vec![val]),
            nbytes: 4,
            send_vtime: 0.0,
            arrival_vtime: 0.0,
        }
    }

    #[test]
    fn post_take_roundtrip() {
        let r = Router::new(2);
        r.post(1, msg(0, 0, 7, 42));
        let m = r.take(1, 0, 0, 7);
        assert_eq!(m.src, 0);
        assert_eq!(m.tag, 7);
        let v = m.payload.downcast::<Vec<i32>>().unwrap();
        assert_eq!(*v, vec![42]);
    }

    #[test]
    fn selective_receive_skips_nonmatching() {
        let r = Router::new(1);
        r.post(0, msg(0, 0, 1, 1));
        r.post(0, msg(0, 0, 2, 2));
        // Take tag 2 first even though tag 1 arrived earlier.
        let m = r.take(0, 0, 0, 2);
        assert_eq!(*m.payload.downcast::<Vec<i32>>().unwrap(), vec![2]);
        assert!(r.probe(0, 0, 0, 1));
        assert_eq!(r.pending(0), 1);
    }

    #[test]
    fn fifo_within_matching_envelope() {
        let r = Router::new(1);
        r.post(0, msg(0, 0, 5, 10));
        r.post(0, msg(0, 0, 5, 20));
        assert_eq!(
            *r.take(0, 0, 0, 5).payload.downcast::<Vec<i32>>().unwrap(),
            vec![10]
        );
        assert_eq!(
            *r.take(0, 0, 0, 5).payload.downcast::<Vec<i32>>().unwrap(),
            vec![20]
        );
    }

    #[test]
    fn communicators_do_not_cross_match() {
        let r = Router::new(1);
        r.post(0, msg(1, 0, 5, 10));
        assert!(!r.probe(0, 0, 0, 5));
        assert!(r.probe(0, 1, 0, 5));
    }

    #[test]
    fn blocking_take_wakes_on_post() {
        let r = Router::new(2);
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            let m = r2.take(1, 0, 0, 9);
            *m.payload.downcast::<Vec<i32>>().unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        r.post(1, msg(0, 0, 9, 77));
        assert_eq!(h.join().unwrap(), vec![77]);
    }

    #[test]
    fn egress_reservations_serialize_back_to_back_sends() {
        let r = Router::new(2);
        // Two messages posted at the same sender clock: the second must
        // queue behind the first on the link.
        assert_eq!(r.reserve_egress(0, 5.0, 2.0), 5.0);
        assert_eq!(r.reserve_egress(0, 5.0, 2.0), 7.0);
        // After the link drains, a later send starts at its own clock.
        assert_eq!(r.reserve_egress(0, 20.0, 1.0), 20.0);
        // Other ranks' links are independent.
        assert_eq!(r.reserve_egress(1, 0.0, 3.0), 0.0);
    }

    #[test]
    fn poison_wakes_blocked_take_with_attributed_panic() {
        let r = Router::new(2);
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            // Never satisfied: rank 0 "panics" instead of sending.
            let _ = r2.take(1, 0, 0, 9);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        r.poison(0, "boom");
        let err = h.join().unwrap_err();
        let text = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("rank 0 panicked"), "{text}");
        assert!(text.contains("boom"), "{text}");
        assert_eq!(r.poisoned().unwrap().rank, 0);
    }

    #[test]
    fn probe_reports_poison_only_when_unmatched() {
        let r = Router::new(2);
        r.post(0, msg(0, 1, 3, 1));
        r.poison(1, "late panic");
        // A queued match is still deliverable.
        assert!(r.probe(0, 0, 1, 3));
        let _ = r.take(0, 0, 1, 3);
        // With nothing queued, a probe against the dead job aborts.
        let err = std::panic::catch_unwind(|| r.probe(0, 0, 1, 3)).unwrap_err();
        let text = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("rank 1 panicked"), "{text}");
    }

    #[test]
    fn first_poison_wins() {
        let r = Router::new(3);
        r.poison(2, "original");
        r.poison(0, "cascade victim");
        let p = r.poisoned().unwrap();
        assert_eq!(p.rank, 2);
        assert_eq!(p.message, "original");
    }

    #[test]
    fn poison_during_announced_phase_names_the_phase() {
        let r = Router::new(2);
        r.set_phase(1, Some("regrid epoch 7"));
        r.poison(1, "clustering exploded");
        let p = r.poisoned().unwrap();
        assert_eq!(p.phase.as_deref(), Some("regrid epoch 7"));
        // A victim's abort message carries the phase, not just the tag.
        let err = std::panic::catch_unwind(|| {
            let _ = r.take(0, 0, 1, 9);
        })
        .unwrap_err();
        let text = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("during regrid epoch 7"), "{text}");
        assert!(text.contains("clustering exploded"), "{text}");
    }

    #[test]
    fn cleared_phase_falls_back_to_mid_exchange_wording() {
        let r = Router::new(2);
        r.set_phase(0, Some("ghost fill"));
        r.set_phase(0, None);
        r.poison(0, "boom");
        let err = std::panic::catch_unwind(|| {
            let _ = r.take(1, 0, 0, 3);
        })
        .unwrap_err();
        let text = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("panicked mid-exchange"), "{text}");
    }
}
