//! In-process message router: one mailbox per rank, selective receive on
//! `(communicator id, source, tag)` exactly like MPI's envelope matching.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

/// MPI-style message tag.
pub type Tag = u64;

/// Envelope + payload for one in-flight message.
pub struct Message {
    /// Communicator the message was sent on (distinct communicators never match).
    pub comm_id: u64,
    /// Sending rank.
    pub src: usize,
    /// User tag.
    pub tag: Tag,
    /// Type-erased payload (a `Vec<T>` boxed as `Any`).
    pub payload: Box<dyn Any + Send>,
    /// Payload size in bytes, used by the cluster performance model.
    pub nbytes: usize,
    /// Sender's virtual clock at the moment of the send.
    pub send_vtime: f64,
}

/// One rank's mailbox: a queue protected by a mutex + condvar so that a
/// blocking selective receive can wait for a matching envelope.
#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    signal: Condvar,
}

/// Shared router connecting the `P` ranks of one SCMD job.
pub struct Router {
    boxes: Vec<Mailbox>,
}

impl Router {
    /// Create a router for `size` ranks.
    pub fn new(size: usize) -> Arc<Self> {
        Arc::new(Router {
            boxes: (0..size).map(|_| Mailbox::default()).collect(),
        })
    }

    /// Number of ranks this router serves.
    pub fn size(&self) -> usize {
        self.boxes.len()
    }

    /// Deposit a message into `dst`'s mailbox and wake any waiting receiver.
    pub fn post(&self, dst: usize, msg: Message) {
        let mb = &self.boxes[dst];
        mb.queue.lock().push_back(msg);
        mb.signal.notify_all();
    }

    /// Blocking selective receive: the oldest message matching
    /// `(comm_id, src, tag)` addressed to `me`.
    pub fn take(&self, me: usize, comm_id: u64, src: usize, tag: Tag) -> Message {
        let mb = &self.boxes[me];
        let mut q = mb.queue.lock();
        loop {
            if let Some(pos) = q
                .iter()
                .position(|m| m.comm_id == comm_id && m.src == src && m.tag == tag)
            {
                return q.remove(pos).expect("position was just found");
            }
            mb.signal.wait(&mut q);
        }
    }

    /// Non-blocking probe: is a matching message waiting?
    pub fn probe(&self, me: usize, comm_id: u64, src: usize, tag: Tag) -> bool {
        self.boxes[me]
            .queue
            .lock()
            .iter()
            .any(|m| m.comm_id == comm_id && m.src == src && m.tag == tag)
    }

    /// Number of queued (undelivered) messages for `me`, across all
    /// communicators. Useful for leak checks in tests.
    pub fn pending(&self, me: usize) -> usize {
        self.boxes[me].queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(comm_id: u64, src: usize, tag: Tag, val: i32) -> Message {
        Message {
            comm_id,
            src,
            tag,
            payload: Box::new(vec![val]),
            nbytes: 4,
            send_vtime: 0.0,
        }
    }

    #[test]
    fn post_take_roundtrip() {
        let r = Router::new(2);
        r.post(1, msg(0, 0, 7, 42));
        let m = r.take(1, 0, 0, 7);
        assert_eq!(m.src, 0);
        assert_eq!(m.tag, 7);
        let v = m.payload.downcast::<Vec<i32>>().unwrap();
        assert_eq!(*v, vec![42]);
    }

    #[test]
    fn selective_receive_skips_nonmatching() {
        let r = Router::new(1);
        r.post(0, msg(0, 0, 1, 1));
        r.post(0, msg(0, 0, 2, 2));
        // Take tag 2 first even though tag 1 arrived earlier.
        let m = r.take(0, 0, 0, 2);
        assert_eq!(*m.payload.downcast::<Vec<i32>>().unwrap(), vec![2]);
        assert!(r.probe(0, 0, 0, 1));
        assert_eq!(r.pending(0), 1);
    }

    #[test]
    fn fifo_within_matching_envelope() {
        let r = Router::new(1);
        r.post(0, msg(0, 0, 5, 10));
        r.post(0, msg(0, 0, 5, 20));
        assert_eq!(
            *r.take(0, 0, 0, 5).payload.downcast::<Vec<i32>>().unwrap(),
            vec![10]
        );
        assert_eq!(
            *r.take(0, 0, 0, 5).payload.downcast::<Vec<i32>>().unwrap(),
            vec![20]
        );
    }

    #[test]
    fn communicators_do_not_cross_match() {
        let r = Router::new(1);
        r.post(0, msg(1, 0, 5, 10));
        assert!(!r.probe(0, 0, 0, 5));
        assert!(r.probe(0, 1, 0, 5));
    }

    #[test]
    fn blocking_take_wakes_on_post() {
        let r = Router::new(2);
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            let m = r2.take(1, 0, 0, 9);
            *m.payload.downcast::<Vec<i32>>().unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        r.post(1, msg(0, 0, 9, 77));
        assert_eq!(h.join().unwrap(), vec![77]);
    }
}
