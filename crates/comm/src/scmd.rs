//! SCMD launcher: the reproduction's `mpirun`.
//!
//! `P` identically-programmed ranks are spawned as OS threads; each receives
//! its own [`Communicator`] (constructed inside the thread, so it may hold
//! rank-local `Rc` state). The closure plays the role of "one framework
//! instance + its components" in the paper's Single Component Multiple Data
//! model.

use crate::comm::Communicator;
use crate::model::ClusterModel;
use crate::router::Router;

/// Per-rank outcome of an SCMD job.
#[derive(Clone, Debug, PartialEq)]
pub struct RankReport<R> {
    /// The rank's return value.
    pub result: R,
    /// The rank's final virtual clock (modeled seconds).
    pub vtime: f64,
    /// Messages the rank sent.
    pub messages_sent: u64,
    /// Payload bytes the rank sent.
    pub bytes_sent: u64,
}

/// Run `f` on `size` ranks and return each rank's result, rank-ordered.
///
/// Panics in any rank propagate (the join unwraps), so a failing assertion
/// inside a rank fails the caller's test — no silent hangs.
pub fn run<R, F>(size: usize, model: ClusterModel, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Communicator) -> R + Send + Sync,
{
    run_reported(size, model, f)
        .into_iter()
        .map(|r| r.result)
        .collect()
}

/// Like [`run`] but also returns each rank's virtual clock and traffic
/// counters — the raw material of the scaling experiments.
pub fn run_reported<R, F>(size: usize, model: ClusterModel, f: F) -> Vec<RankReport<R>>
where
    R: Send,
    F: Fn(&Communicator) -> R + Send + Sync,
{
    assert!(size > 0, "an SCMD job needs at least one rank");
    let router = Router::new(size);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let router = router.clone();
            handles.push(scope.spawn(move || {
                let comm = Communicator::root(router, rank, model);
                let result = f(&comm);
                let stats = comm.stats();
                RankReport {
                    result,
                    vtime: comm.vtime(),
                    messages_sent: stats.messages_sent,
                    bytes_sent: stats.bytes_sent,
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// Modeled wall-clock of a job: the slowest rank's virtual time.
pub fn modeled_runtime<R>(reports: &[RankReport<R>]) -> f64 {
    reports.iter().map(|r| r.vtime).fold(0.0, f64::max)
}
