//! SCMD launcher: the reproduction's `mpirun`.
//!
//! `P` identically-programmed ranks are spawned as OS threads; each receives
//! its own [`Communicator`] (constructed inside the thread, so it may hold
//! rank-local `Rc` state). The closure plays the role of "one framework
//! instance + its components" in the paper's Single Component Multiple Data
//! model.
//!
//! A rank that panics poisons the shared [`Router`] before unwinding, so
//! peers blocked in a receive abort immediately with an error naming the
//! culprit instead of waiting forever — and the launcher re-raises the
//! *original* panic, not a victim's secondary one.

use crate::comm::{CommStats, Communicator};
use crate::model::ClusterModel;
use crate::router::Router;
use crate::trace::CommTrace;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Per-rank outcome of an SCMD job.
#[derive(Clone, Debug, PartialEq)]
pub struct RankReport<R> {
    /// The rank's return value.
    pub result: R,
    /// The rank's final virtual clock (modeled seconds).
    pub vtime: f64,
    /// Messages the rank sent.
    pub messages_sent: u64,
    /// Payload bytes the rank sent.
    pub bytes_sent: u64,
    /// Full traffic counters, including per-tag breakdown and the number
    /// of messages saved by coalescing.
    pub stats: CommStats,
}

/// Run `f` on `size` ranks and return each rank's result, rank-ordered.
///
/// Panics in any rank propagate: the job is poisoned, surviving ranks abort
/// their blocked receives, and the caller observes the original panic — no
/// silent hangs.
pub fn run<R, F>(size: usize, model: ClusterModel, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Communicator) -> R + Send + Sync,
{
    run_reported(size, model, f)
        .into_iter()
        .map(|r| r.result)
        .collect()
}

/// Like [`run`] but also returns each rank's virtual clock and traffic
/// counters — the raw material of the scaling experiments.
pub fn run_reported<R, F>(size: usize, model: ClusterModel, f: F) -> Vec<RankReport<R>>
where
    R: Send,
    F: Fn(&Communicator) -> R + Send + Sync,
{
    run_inner(size, model, false, f).0
}

/// Like [`run_reported`] but with execution tracing on: alongside the rank
/// reports, returns the per-rank [`CommTrace`] for conformance auditing
/// against a verified comm plan. Tracing never touches the virtual clocks,
/// so results and modeled timings are bit-identical to [`run_reported`].
pub fn run_reported_traced<R, F>(
    size: usize,
    model: ClusterModel,
    f: F,
) -> (Vec<RankReport<R>>, CommTrace)
where
    R: Send,
    F: Fn(&Communicator) -> R + Send + Sync,
{
    run_inner(size, model, true, f)
}

fn run_inner<R, F>(
    size: usize,
    model: ClusterModel,
    tracing: bool,
    f: F,
) -> (Vec<RankReport<R>>, CommTrace)
where
    R: Send,
    F: Fn(&Communicator) -> R + Send + Sync,
{
    assert!(size > 0, "an SCMD job needs at least one rank");
    let router = Router::build(size, tracing);
    let f = &f;
    let reports = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let router = router.clone();
            handles.push(scope.spawn(move || {
                let comm = Communicator::root(router.clone(), rank, model);
                let result = match catch_unwind(AssertUnwindSafe(|| f(&comm))) {
                    Ok(result) => result,
                    Err(payload) => {
                        // First poison wins: a victim re-panicking out of a
                        // blocked receive never masks the original culprit.
                        router.poison(rank, &panic_text(payload.as_ref()));
                        resume_unwind(payload);
                    }
                };
                let stats = comm.stats();
                RankReport {
                    result,
                    vtime: comm.vtime(),
                    messages_sent: stats.messages_sent,
                    bytes_sent: stats.bytes_sent,
                    stats,
                }
            }));
        }
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        if joined.iter().any(|r| r.is_err()) {
            // Re-raise the first rank that actually panicked (the poisoner),
            // not whichever victim happened to join first.
            if let Some(p) = router.poisoned() {
                panic!(
                    "SCMD rank {} panicked{}: {}",
                    p.rank,
                    p.phase_context(),
                    p.message
                );
            }
            for r in joined {
                if let Err(payload) = r {
                    resume_unwind(payload);
                }
            }
            unreachable!("a join error existed above");
        }
        joined
            .into_iter()
            .map(|r| r.expect("checked above"))
            .collect()
    });
    let trace = router.traces();
    (reports, trace)
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Modeled wall-clock of a job: the slowest rank's virtual time.
pub fn modeled_runtime<R>(reports: &[RankReport<R>]) -> f64 {
    reports.iter().map(|r| r.vtime).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_panic_does_not_hang_peers_and_names_the_culprit() {
        // Rank 1 panics before sending; ranks 0 and 2 block receiving from
        // it. Without poisoning this deadlocks; with it the job aborts and
        // the original panic is reported.
        let err = catch_unwind(AssertUnwindSafe(|| {
            run(3, ClusterModel::zero(), |comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                comm.recv::<u8>(1, 0)
            })
        }))
        .unwrap_err();
        let text = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("rank 1"), "{text}");
        assert!(text.contains("rank 1 exploded"), "{text}");
    }

    #[test]
    fn panic_inside_announced_phase_names_the_phase() {
        // A rank that dies during an announced regrid epoch should produce a
        // launcher error naming that epoch, so fault-injection tests on the
        // distributed-regrid path get actionable messages.
        let err = catch_unwind(AssertUnwindSafe(|| {
            run(2, ClusterModel::zero(), |comm| {
                if comm.rank() == 1 {
                    comm.set_phase("regrid epoch 3");
                    panic!("rank 1 died mid-regrid");
                }
                comm.recv::<u8>(1, 0)
            })
        }))
        .unwrap_err();
        let text = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("during regrid epoch 3"), "{text}");
        assert!(text.contains("rank 1 died mid-regrid"), "{text}");
    }

    #[test]
    fn traced_run_records_semantic_ops_and_matches_untraced_results() {
        use crate::trace::TraceOp;
        let program = |comm: &Communicator| {
            if comm.rank() == 0 {
                comm.isend(1, 7, &[1.0f64, 2.0]);
            } else {
                let req = comm.irecv::<f64>(0, 7);
                let _ = comm.wait(req);
            }
            comm.allreduce_sum(&[comm.rank() as f64])[0]
        };
        let plain = run_reported(2, ClusterModel::cplant(), program);
        let (traced, trace) = run_reported_traced(2, ClusterModel::cplant(), program);
        // Tracing is a free sanitizer: results and clocks are identical.
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.result.to_bits(), b.result.to_bits());
            assert_eq!(a.vtime.to_bits(), b.vtime.to_bits());
        }
        // Semantic ops only: one isend, one irecv + wait, one reduce per
        // rank — the collective's internal p2p hops are not recorded.
        assert_eq!(
            trace[0],
            vec![
                TraceOp::Isend {
                    peer: 1,
                    tag: 7,
                    bytes: 16
                },
                TraceOp::Reduce { bytes: 8 },
            ]
        );
        assert_eq!(
            trace[1],
            vec![
                TraceOp::Irecv { peer: 0, tag: 7 },
                TraceOp::Wait {
                    peer: 0,
                    tag: 7,
                    bytes: 16
                },
                TraceOp::Reduce { bytes: 8 },
            ]
        );
    }

    #[test]
    fn report_carries_full_stats() {
        let reports = run_reported(2, ClusterModel::zero(), |comm| {
            if comm.rank() == 0 {
                comm.isend(1, 42, &[0u8; 16]);
                comm.note_coalesced(4);
            } else {
                let req = comm.irecv::<u8>(0, 42);
                let _ = comm.wait(req);
            }
        });
        assert_eq!(reports[0].stats.tag(42).messages, 1);
        assert_eq!(reports[0].stats.tag(42).bytes, 16);
        assert_eq!(reports[0].stats.messages_coalesced, 3);
        assert_eq!(reports[0].messages_sent, reports[0].stats.messages_sent);
        assert_eq!(reports[1].stats.messages_received, 1);
    }
}
