//! `cca-comm` — the message-passing substrate of the CCA-hydro workspace.
//!
//! The IPPS'03 paper runs CCAFFEINE in SCMD (Single Component Multiple Data)
//! mode: `P` identical framework instances, one per MPI process, and all
//! message passing happens *inside* components, between the `P` instances of
//! the same component (a *cohort*). The framework itself provides no
//! messaging beyond lending out a properly scoped communicator.
//!
//! We reproduce that structure without an MPI installation:
//!
//! * [`scmd::run`] launches `P` *ranks as OS threads*, each executing the
//!   same closure (the "single component" program) with its own
//!   [`Communicator`]. No state is shared between ranks except the mailbox
//!   router, so the message-passing-only discipline of MPI is preserved.
//! * [`Communicator`] offers MPI-1-shaped point-to-point operations
//!   (`send`/`recv` with source and tag matching) and collectives
//!   (barrier, broadcast, reduce, allreduce, gather, allgather) built from
//!   binomial-tree / dissemination point-to-point algorithms.
//! * Every rank carries a **virtual clock** advanced by a configurable
//!   [`model::ClusterModel`] (LogP-style `α + β·bytes` per message plus a
//!   compute rate). Because the clock is driven by the *actual* messages and
//!   workloads of a real run, the weak/strong-scaling experiments of the
//!   paper (Figs 8-9, Table 5) can be regenerated on a single-core host:
//!   wall-clock parallelism is simulated, message causality is real.
//!
//! ```
//! use cca_comm::{scmd, ClusterModel};
//!
//! let sums = scmd::run(4, ClusterModel::cplant(), |comm| {
//!     let me = comm.rank() as f64;
//!     comm.allreduce_sum(&[me])[0]
//! });
//! assert!(sums.iter().all(|&s| s == 0.0 + 1.0 + 2.0 + 3.0));
//! ```

pub mod comm;
pub mod model;
pub mod reduce;
pub mod router;
pub mod scmd;
pub mod trace;

pub use comm::{CommStats, Communicator, RecvRequest, SendRequest, TagTraffic};
pub use model::ClusterModel;
pub use reduce::ReduceOp;
pub use router::{PeerPanic, Tag};
pub use trace::{CommTrace, TraceOp};
