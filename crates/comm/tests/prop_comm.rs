//! Property-based tests of the SCMD layer.

use cca_comm::{scmd, ClusterModel, ReduceOp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// allreduce(sum) equals the sequential fold for arbitrary data and
    /// rank counts (up to FP reassociation, which our fixed binomial tree
    /// makes deterministic; compare against a tolerance).
    #[test]
    fn allreduce_sum_matches_fold(
        p in 1usize..7,
        data in proptest::collection::vec(-1e6f64..1e6, 1..8),
    ) {
        let len = data.len();
        let d = data.clone();
        let out = scmd::run(p, ClusterModel::zero(), move |c| {
            // Rank r contributes data rotated by r so ranks differ.
            let mine: Vec<f64> =
                (0..len).map(|i| d[(i + c.rank()) % len]).collect();
            c.allreduce_sum(&mine)
        });
        for i in 0..len {
            let expect: f64 =
                (0..p).map(|r| data[(i + r) % len]).sum();
            for o in &out {
                prop_assert!((o[i] - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
                    "i={i} got={} want={}", o[i], expect);
            }
        }
    }

    /// Min/max allreduce are exact (no rounding concerns).
    #[test]
    fn allreduce_minmax_exact(
        p in 1usize..7,
        vals in proptest::collection::vec(-1e9f64..1e9, 1..7),
    ) {
        let nv = vals.len();
        let v = vals.clone();
        let out = scmd::run(p, ClusterModel::zero(), move |c| {
            let mine = [v[c.rank() % nv]];
            (c.allreduce(&mine, ReduceOp::Min)[0],
             c.allreduce(&mine, ReduceOp::Max)[0])
        });
        let contributed: Vec<f64> = (0..p).map(|r| vals[r % nv]).collect();
        let lo = contributed.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = contributed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (mn, mx) in out {
            prop_assert_eq!(mn, lo);
            prop_assert_eq!(mx, hi);
        }
    }

    /// Every message sent is received exactly once: total sent == total
    /// received across ranks in an all-to-all exchange.
    #[test]
    fn conservation_of_messages(p in 1usize..6, reps in 1usize..4) {
        let reports = scmd::run_reported(p, ClusterModel::zero(), move |c| {
            for _ in 0..reps {
                for dst in 0..c.size() {
                    c.send(dst, 2, &[c.rank() as u32]);
                }
                for src in 0..c.size() {
                    let got = c.recv::<u32>(src, 2);
                    assert_eq!(got, vec![src as u32]);
                }
            }
        });
        let sent: u64 = reports.iter().map(|r| r.messages_sent).sum();
        prop_assert_eq!(sent as usize, p * p * reps);
    }

    /// Virtual clocks never decrease and the modeled runtime dominates
    /// every rank's clock.
    #[test]
    fn vtime_monotone(p in 1usize..6, work in 0.0f64..10.0) {
        let reports = scmd::run_reported(p, ClusterModel::cplant(), move |c| {
            let t0 = c.vtime();
            c.charge_compute(work * (c.rank() + 1) as f64);
            let t1 = c.vtime();
            c.barrier();
            let t2 = c.vtime();
            assert!(t0 <= t1 && t1 <= t2);
            t2
        });
        let rt = scmd::modeled_runtime(&reports);
        for r in &reports {
            prop_assert!(rt >= r.result);
        }
    }
}
