//! Cross-rank behaviour of the SCMD layer: collectives, point-to-point
//! patterns, virtual-clock causality.

use cca_comm::{scmd, ClusterModel, Communicator, ReduceOp};

fn sizes() -> Vec<usize> {
    vec![1, 2, 3, 4, 5, 7, 8, 16]
}

#[test]
fn ring_pass_delivers_in_order() {
    for p in sizes() {
        let out = scmd::run(p, ClusterModel::zero(), |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 1, &[c.rank() as u64]);
            c.recv::<u64>(prev, 1)[0]
        });
        for (rank, got) in out.iter().enumerate() {
            let prev = (rank + p - 1) % p;
            assert_eq!(*got, prev as u64, "p={p} rank={rank}");
        }
    }
}

#[test]
fn allreduce_matches_sequential_fold() {
    for p in sizes() {
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let out = scmd::run(p, ClusterModel::zero(), move |c| {
                let mine = [c.rank() as f64 + 0.5, -(c.rank() as f64)];
                c.allreduce(&mine, op)
            });
            let mut expect = vec![op.identity(); 2];
            for r in 0..p {
                op.fold_into(&mut expect, &[r as f64 + 0.5, -(r as f64)]);
            }
            for o in &out {
                assert_eq!(o, &expect, "p={p} op={op:?}");
            }
        }
    }
}

#[test]
fn bcast_from_every_root() {
    for p in sizes() {
        for root in 0..p {
            let out = scmd::run(p, ClusterModel::zero(), move |c| {
                let data: Vec<u32> = if c.rank() == root {
                    vec![42, root as u32]
                } else {
                    vec![]
                };
                c.bcast(root, &data)
            });
            for o in out {
                assert_eq!(o, vec![42, root as u32]);
            }
        }
    }
}

#[test]
fn gather_is_rank_ordered() {
    for p in sizes() {
        let out = scmd::run(p, ClusterModel::zero(), |c| {
            c.gather(0, &[c.rank() as u64, 100 + c.rank() as u64])
        });
        let root = out[0].as_ref().expect("root gets the gather");
        for (r, part) in root.iter().enumerate() {
            assert_eq!(part, &vec![r as u64, 100 + r as u64]);
        }
        for o in &out[1..] {
            assert!(o.is_none());
        }
    }
}

#[test]
fn allgather_everyone_sees_everything() {
    for p in sizes() {
        let out = scmd::run(p, ClusterModel::zero(), |c| {
            // Variable-length contributions exercise the length exchange.
            let mine: Vec<f64> = (0..=c.rank()).map(|i| i as f64).collect();
            c.allgather(&mine)
        });
        for o in &out {
            assert_eq!(o.len(), p);
            for (r, part) in o.iter().enumerate() {
                let expect: Vec<f64> = (0..=r).map(|i| i as f64).collect();
                assert_eq!(part, &expect);
            }
        }
    }
}

#[test]
fn barrier_orders_before_and_after() {
    // After a barrier, every rank must observe every pre-barrier send.
    for p in sizes() {
        scmd::run(p, ClusterModel::zero(), |c| {
            // Everyone tells everyone "I reached phase 1".
            for dst in 0..c.size() {
                c.send(dst, 9, &[c.rank() as u64]);
            }
            c.barrier();
            for src in 0..c.size() {
                assert!(
                    c.probe(src, 9),
                    "rank {} missing phase-1 message from {src}",
                    c.rank()
                );
                let _ = c.recv::<u64>(src, 9);
            }
        });
    }
}

#[test]
fn dup_separates_contexts() {
    scmd::run(2, ClusterModel::zero(), |c| {
        let sub = c.dup();
        // Same (src, tag) on both contexts with different payloads.
        let partner = 1 - c.rank();
        c.send(partner, 5, &[1.0f64]);
        sub.send(partner, 5, &[2.0f64]);
        // Receive from the sub-context first: must see 2.0, not 1.0.
        assert_eq!(sub.recv::<f64>(partner, 5), vec![2.0]);
        assert_eq!(c.recv::<f64>(partner, 5), vec![1.0]);
    });
}

#[test]
fn sendrecv_exchanges_with_partner() {
    let out = scmd::run(6, ClusterModel::zero(), |c| {
        let partner = c.rank() ^ 1; // pairs (0,1) (2,3) (4,5)
        c.sendrecv(partner, 3, &[c.rank() as u64])[0]
    });
    for (r, got) in out.iter().enumerate() {
        assert_eq!(*got, (r ^ 1) as u64);
    }
}

#[test]
fn virtual_clock_respects_message_causality() {
    // Rank 0 computes for 1.0 modeled second then sends; rank 1's clock
    // after the receive must exceed 1.0 s + message cost.
    let model = ClusterModel {
        alpha: 0.25,
        beta: 1e-6,
        seconds_per_work_unit: 1.0,
        call_overhead: 0.0,
    };
    let reports = scmd::run_reported(2, model, |c: &Communicator| {
        if c.rank() == 0 {
            c.charge_compute(1.0);
            c.send(1, 1, &[0u8; 1000]);
        } else {
            let _ = c.recv::<u8>(0, 1);
        }
        c.vtime()
    });
    let t1 = reports[1].result;
    assert!(
        (t1 - (1.0 + 0.25 + 1000.0 * 1e-6)).abs() < 1e-12,
        "t1 = {t1}"
    );
    assert!(scmd::modeled_runtime(&reports) >= t1);
}

#[test]
fn modeled_runtime_scales_with_imbalance() {
    let model = ClusterModel {
        alpha: 0.0,
        beta: 0.0,
        seconds_per_work_unit: 1.0,
        call_overhead: 0.0,
    };
    let reports = scmd::run_reported(4, model, |c: &Communicator| {
        c.charge_compute(c.rank() as f64);
        c.barrier();
        c.vtime()
    });
    // The barrier drags everyone up to (at least) the slowest rank.
    let runtime = scmd::modeled_runtime(&reports);
    assert!(runtime >= 3.0);
    for r in &reports {
        assert!(
            r.result >= 3.0,
            "barrier must not release early: {}",
            r.result
        );
    }
}

#[test]
fn traffic_counters_count() {
    let reports = scmd::run_reported(2, ClusterModel::zero(), |c: &Communicator| {
        if c.rank() == 0 {
            c.send(1, 1, &[0f64; 10]); // 80 bytes
        } else {
            let _ = c.recv::<f64>(0, 1);
        }
    });
    assert_eq!(reports[0].messages_sent, 1);
    assert_eq!(reports[0].bytes_sent, 80);
    assert_eq!(reports[1].messages_sent, 0);
}

#[test]
#[should_panic(expected = "SCMD rank 1 panicked: deliberate failure injection")]
fn rank_panic_propagates() {
    scmd::run(2, ClusterModel::zero(), |c| {
        if c.rank() == 1 {
            panic!("deliberate failure injection");
        } else {
            // Rank 0 does nothing and exits cleanly.
        }
    });
}

#[test]
fn single_rank_collectives_are_identity() {
    let out = scmd::run(1, ClusterModel::zero(), |c| {
        c.barrier();
        let b = c.bcast(0, &[7u8]);
        let r = c.allreduce_sum(&[3.0]);
        let g = c.allgather(&[1u16]);
        (b, r, g)
    });
    assert_eq!(out[0].0, vec![7]);
    assert_eq!(out[0].1, vec![3.0]);
    assert_eq!(out[0].2, vec![vec![1u16]]);
}
