//! Checkpoint/restart exercised through a full component assembly: set up
//! the shock-interface initial state, checkpoint it, damage the live
//! state, restore, and verify the physics diagnostics come back bit-equal.

use cca_apps::palette::standard_palette;
use cca_components::ports::{
    CheckpointPort, DataPort, InitialConditionPort, MeshPort, StatisticsPort,
};
use cca_core::script::run_script;
use std::rc::Rc;

fn assemble() -> cca_core::Framework {
    let mut fw = standard_palette();
    run_script(
        &mut fw,
        "instantiate GrACEComponent grace\n\
         instantiate GasProperties gas\n\
         instantiate ConicalInterfaceIC ic\n\
         instantiate StatisticsComponent statistics\n\
         connect ic mesh grace mesh\n\
         connect ic data grace data\n\
         connect ic gas gas gas\n\
         connect statistics mesh grace mesh\n\
         connect statistics data grace data\n",
    )
    .unwrap();
    fw
}

#[test]
fn checkpoint_restore_roundtrips_a_live_assembly() {
    let fw = assemble();
    let mesh: Rc<dyn MeshPort> = fw.get_provides_port("grace", "mesh").unwrap();
    let data: Rc<dyn DataPort> = fw.get_provides_port("grace", "data").unwrap();
    let ic: Rc<dyn InitialConditionPort> = fw.get_provides_port("ic", "ic").unwrap();
    let stats: Rc<dyn StatisticsPort> = fw.get_provides_port("statistics", "statistics").unwrap();
    let ckpt: Rc<dyn CheckpointPort> = fw.get_provides_port("grace", "checkpoint").unwrap();

    mesh.create(32, 16, 2.0, 1.0, 2);
    data.create_data_object("U", 5, 2);
    ic.apply("U");
    let rho_max_before = stats.max_var("U", 0);
    let integral_before = stats.integral("U", 0);
    assert!(rho_max_before > 2.0, "IC produced a shock state");

    let path = std::env::temp_dir().join("cca_assembly_ckpt.bin");
    let path = path.to_str().unwrap().to_string();
    ckpt.save(&path).unwrap();

    // Damage the live state thoroughly.
    let (id, _, _) = mesh.patches(0)[0];
    data.with_patch_mut("U", 0, id, &mut |pd| {
        for var in 0..5 {
            pd.fill_var(var, 0.1);
        }
    });
    assert!((stats.max_var("U", 0) - rho_max_before).abs() > 1e-6);

    ckpt.restore(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    // Diagnostics restored exactly.
    assert_eq!(stats.max_var("U", 0), rho_max_before);
    assert_eq!(stats.integral("U", 0), integral_before);
    // Geometry restored too.
    assert_eq!(mesh.level_domain(0).count(), 32 * 16);
}
