//! Failure injection across the component stack: errors must surface as
//! `Err` values with informative messages, never as panics or silent
//! corruption.

use cca_apps::palette::standard_palette;
use cca_apps::reaction_diffusion::{run_reaction_diffusion, RdConfig, RdDriver};
use cca_components::ports::{ChemistryAdvancePort, DataPort, MeshPort};
use cca_core::script::run_script;
use cca_core::CcaError;
use std::rc::Rc;

#[test]
fn nan_state_fails_chemistry_advance_gracefully() {
    let mut fw = standard_palette();
    run_script(
        &mut fw,
        "instantiate GrACEComponent grace\n\
         instantiate ThermoChemistry chem\n\
         instantiate CvodeComponent cvode\n\
         instantiate ImplicitIntegrator implicit\n\
         connect implicit chemistry chem chemistry\n\
         connect implicit integrator cvode integrator\n\
         connect implicit mesh grace mesh\n\
         connect implicit data grace data\n",
    )
    .unwrap();
    let mesh: Rc<dyn MeshPort> = fw.get_provides_port("grace", "mesh").unwrap();
    let data: Rc<dyn DataPort> = fw.get_provides_port("grace", "data").unwrap();
    let adv: Rc<dyn ChemistryAdvancePort> = fw
        .get_provides_port("implicit", "chemistry-advance")
        .unwrap();
    mesh.create(4, 4, 0.01, 0.01, 2);
    data.create_data_object("state", 9, 1);
    let (id, _, _) = mesh.patches(0)[0];
    data.with_patch_mut("state", 0, id, &mut |pd| {
        pd.fill_var(0, 1000.0);
        pd.set(0, 2, 2, f64::NAN); // poison one cell's temperature
    });
    let err = adv
        .advance_chemistry("state", 1e-7, 101_325.0)
        .expect_err("NaN cell must fail the advance");
    assert!(err.contains("(2,2)"), "error should locate the cell: {err}");
}

#[test]
fn missing_connection_fails_at_go_not_later() {
    let mut fw = standard_palette();
    fw.register_class("RDDriver", || Box::<RdDriver>::default());
    // Deliberately omit the statistics connection.
    let err = run_script(
        &mut fw,
        "instantiate GrACEComponent grace\n\
         instantiate RDDriver driver\n\
         connect driver mesh grace mesh\n\
         connect driver data grace data\n\
         go driver go\n",
    )
    .expect_err("dangling ports must be refused");
    match err {
        CcaError::Script { message, .. } => {
            assert!(message.contains("dangling"), "{message}");
            assert!(message.contains("statistics"), "{message}");
        }
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn zero_steps_run_is_a_clean_noop() {
    let cfg = RdConfig {
        nx: 8,
        n_steps: 0,
        max_levels: 1,
        with_chemistry: false,
        ..RdConfig::default()
    };
    let (report, _) = run_reaction_diffusion(&cfg).unwrap();
    assert!(report.t_max_series.is_empty());
    assert_eq!(report.cells_per_level, vec![64]);
    // The final field is still captured (the IC).
    assert_eq!(report.final_t_field.len(), 64);
}

#[test]
fn unknown_data_object_panics_with_its_name() {
    let mut fw = standard_palette();
    fw.instantiate("GrACEComponent", "grace").unwrap();
    let mesh: Rc<dyn MeshPort> = fw.get_provides_port("grace", "mesh").unwrap();
    let data: Rc<dyn DataPort> = fw.get_provides_port("grace", "data").unwrap();
    mesh.create(4, 4, 1.0, 1.0, 2);
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| data.nvars("never-created")));
    let err = result.expect_err("must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("never-created"), "{msg}");
}
