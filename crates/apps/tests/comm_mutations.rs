//! Mutation coverage for the comm-plan static checker: corrupt a valid
//! schedule in the ways hand-written exchanges actually go wrong and pin
//! that each fault yields exactly the expected C-code, naming the right
//! rank, peer and tag. A checker that passes these is trustworthy as an
//! admission gate; one that doesn't is noise.

use cca_analyze::commplan::{CommPlan, OpKind};
use cca_apps::scaling::{decompose, ScalingConfig, HALO_TAG};
use cca_apps::schedule::comm_plan;

/// The overlapped/coalesced production schedule on a 2 x 2 rank grid.
fn overlapped_plan() -> CommPlan {
    let cfg = ScalingConfig {
        n: 24,
        per_rank: false,
        ranks: 4,
        steps: 2,
        overlap: true,
        ..ScalingConfig::default()
    };
    comm_plan(&decompose(&cfg), &cfg)
}

/// The blocking two-pass reference schedule on the same grid.
fn blocking_plan() -> CommPlan {
    let cfg = ScalingConfig {
        n: 24,
        per_rank: false,
        ranks: 4,
        steps: 2,
        overlap: false,
        ..ScalingConfig::default()
    };
    comm_plan(&decompose(&cfg), &cfg)
}

#[test]
fn unmutated_plans_are_clean() {
    assert!(overlapped_plan().verify().is_clean());
    assert!(blocking_plan().verify().is_clean());
}

#[test]
fn dropped_irecv_is_c001_naming_the_channel() {
    let mut plan = overlapped_plan();
    // Drop rank 2's first posted irecv.
    let pos = plan.ranks[2]
        .iter()
        .position(|o| matches!(o.kind, OpKind::Irecv { .. }))
        .expect("rank 2 posts receives");
    let OpKind::Irecv { peer, tag, .. } = plan.ranks[2][pos].kind else {
        unreachable!()
    };
    plan.ranks[2].remove(pos);
    let report = plan.verify();
    let errors: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(errors, vec!["C001"], "{}", report.render("plan"));
    let d = &report.diagnostics[0];
    // The diagnostic names both ends of the unbalanced channel and the tag.
    assert!(d.message.contains(&format!("rank {peer}")), "{}", d.message);
    assert!(d.message.contains("rank 2"), "{}", d.message);
    assert!(d.message.contains(&format!("tag {tag}")), "{}", d.message);
}

#[test]
fn swapped_tags_are_c001_naming_the_tags() {
    let mut plan = blocking_plan();
    // Swap the tags of rank 0's x-pass and y-pass sends (tags HALO_TAG
    // and HALO_TAG + 1, different peers): both channels now mismatch.
    let x = plan.ranks[0]
        .iter()
        .position(|o| matches!(o.kind, OpKind::Send { tag, .. } if tag == HALO_TAG))
        .expect("x-pass send");
    let y = plan.ranks[0]
        .iter()
        .position(|o| matches!(o.kind, OpKind::Send { tag, .. } if tag == HALO_TAG + 1))
        .expect("y-pass send");
    let retag = |kind: OpKind, new_tag: u64| match kind {
        OpKind::Send { peer, bytes, .. } => OpKind::Send {
            peer,
            tag: new_tag,
            bytes,
        },
        _ => unreachable!(),
    };
    plan.ranks[0][x].kind = retag(plan.ranks[0][x].kind, HALO_TAG + 1);
    plan.ranks[0][y].kind = retag(plan.ranks[0][y].kind, HALO_TAG);
    let report = plan.verify();
    assert!(
        report.diagnostics.iter().all(|d| d.code == "C001"),
        "{}",
        report.render("plan")
    );
    assert!(report.has_errors());
    // Both halves of the swap are named with their tags.
    let text = report.render("plan");
    assert!(text.contains(&format!("tag {HALO_TAG}")), "{text}");
    assert!(text.contains(&format!("tag {}", HALO_TAG + 1)), "{text}");
}

#[test]
fn skipped_waitall_is_c007_naming_rank_and_tag() {
    let mut plan = overlapped_plan();
    // Remove rank 1's first waitall: its epoch-e requests are now still
    // pending when epoch e+1 begins, even though a later waitall would
    // absorb them at runtime.
    let pos = plan.ranks[1]
        .iter()
        .position(|o| matches!(o.kind, OpKind::Waitall))
        .expect("overlapped schedules waitall");
    plan.ranks[1].remove(pos);
    let report = plan.verify();
    assert!(report.has_errors());
    assert!(
        report.diagnostics.iter().all(|d| d.code == "C007"),
        "{}",
        report.render("plan")
    );
    let d = &report.diagnostics[0];
    assert!(d.message.contains("rank 1"), "{}", d.message);
    assert!(
        d.message.contains(&format!("tag {HALO_TAG}")),
        "{}",
        d.message
    );
}

#[test]
fn reordered_reduce_is_c006_naming_rank_and_op() {
    let mut plan = overlapped_plan();
    // Swap rank 3's last reduce with the final barrier: its collective
    // sequence now disagrees with every other rank's.
    let red = plan.ranks[3]
        .iter()
        .rposition(|o| matches!(o.kind, OpKind::Reduce { .. }))
        .expect("per-step reduce");
    let bar = plan.ranks[3]
        .iter()
        .rposition(|o| matches!(o.kind, OpKind::Barrier))
        .expect("final barrier");
    plan.ranks[3].swap(red, bar);
    let report = plan.verify();
    let errors: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(errors, vec!["C006"], "{}", report.render("plan"));
    let d = &report.diagnostics[0];
    assert!(d.message.contains("rank 3"), "{}", d.message);
    assert_eq!(d.line, red + 1, "diagnostic anchors the diverging op");
}

#[test]
fn corrupted_payload_size_is_c002() {
    let mut plan = overlapped_plan();
    // Shrink one isend's payload: the FIFO-paired receive disagrees.
    let pos = plan.ranks[0]
        .iter()
        .position(|o| matches!(o.kind, OpKind::Isend { .. }))
        .expect("rank 0 sends");
    let OpKind::Isend { peer, tag, bytes } = plan.ranks[0][pos].kind else {
        unreachable!()
    };
    plan.ranks[0][pos].kind = OpKind::Isend {
        peer,
        tag,
        bytes: bytes - 8,
    };
    let report = plan.verify();
    let errors: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(errors, vec!["C002"], "{}", report.render("plan"));
    assert!(report.diagnostics[0].message.contains("rank 0"));
}
