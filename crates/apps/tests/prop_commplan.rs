//! Property-based coverage of the comm-plan domain: every halo topology
//! the decomposition can produce yields a schedule the static checker
//! accepts, and the plan interpreter reproduces the blocking reference
//! physics bit for bit at awkward rank counts.

use cca_apps::scaling::{decompose, run_scaling, ScalingConfig};
use cca_apps::schedule::comm_plan;
use cca_comm::ClusterModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any (P, box, schedule flavour): the emitted plan verifies clean —
    /// balanced channels, consistent collectives, no deadlock, no leaked
    /// requests.
    #[test]
    fn random_halo_topologies_verify_clean(
        n in 8i64..48,
        ranks in 1usize..9,
        steps in 1usize..3,
        stages_per_step in 1usize..4,
        flags in 0usize..8,
    ) {
        // Decode the three schedule flags from the bits of `flags` (the
        // vendored proptest stub has no bool strategy).
        let (per_rank, overlap, coalesce) =
            (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
        let cfg = ScalingConfig {
            n,
            per_rank,
            ranks,
            steps,
            stages_per_step,
            overlap,
            coalesce,
            ..ScalingConfig::default()
        };
        let report = comm_plan(&decompose(&cfg), &cfg).verify();
        prop_assert!(
            report.is_clean(),
            "cfg {cfg:?} rejected:\n{}",
            report.render("comm-plan")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Interpreted overlapped schedules (both coalescing modes, audited)
    /// stay bit-identical to the blocking reference at P in {1,2,3,5,6}
    /// for arbitrary problem sizes.
    #[test]
    fn interpreter_checksums_bit_identical_across_schedules(n in 16i64..30) {
        let base = ScalingConfig {
            n,
            per_rank: false,
            steps: 2,
            audit: true,
            ..ScalingConfig::default()
        };
        for p in [1usize, 2, 3, 5, 6] {
            let blocking =
                run_scaling(&ScalingConfig { ranks: p, ..base }, ClusterModel::cplant());
            for coalesce in [true, false] {
                let overlapped = run_scaling(
                    &ScalingConfig {
                        ranks: p,
                        overlap: true,
                        coalesce,
                        ..base
                    },
                    ClusterModel::cplant(),
                );
                prop_assert_eq!(
                    blocking.checksum.to_bits(),
                    overlapped.checksum.to_bits(),
                    "n={} P={} coalesce={}",
                    n,
                    p,
                    coalesce
                );
            }
        }
    }
}
