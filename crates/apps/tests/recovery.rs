//! Fault-injection recovery drills: kill a rank mid-run, restart from the
//! last complete checkpoint set — at the same rank count and at different
//! ones — and pin that the recovered final fields are bit-identical to a
//! run that was never interrupted. Also pins that checkpointing itself
//! never perturbs a single bit, and that a mid-snapshot death names its
//! checkpoint epoch in the poison report.

use cca_apps::recover::run_samr_recovering;
use cca_apps::samr::{run_samr, SamrConfig, SamrResult};
use cca_ckpt::FaultPlan;
use cca_comm::ClusterModel;

fn drill_cfg() -> SamrConfig {
    SamrConfig {
        ranks: 4,
        steps: 6,
        ckpt_interval: 2,
        audit: true,
        ..SamrConfig::default()
    }
}

/// The ground truth: the same experiment, never interrupted and never
/// checkpointing.
fn uninterrupted() -> SamrResult {
    run_samr(
        &SamrConfig {
            ckpt_interval: 0,
            ..drill_cfg()
        },
        ClusterModel::zero(),
    )
}

fn assert_bits_match(got: &SamrResult, want: &SamrResult, what: &str) {
    assert_eq!(
        got.checksum.to_bits(),
        want.checksum.to_bits(),
        "{what}: checksum drifted: {} vs {}",
        got.checksum,
        want.checksum
    );
    assert_eq!(
        got.final_max.to_bits(),
        want.final_max.to_bits(),
        "{what}: final max drifted"
    );
    assert_eq!(
        got.fine_cells, want.fine_cells,
        "{what}: fine cells drifted"
    );
}

#[test]
fn checkpointing_never_perturbs_the_run() {
    let base = uninterrupted();
    let with_ckpt = run_samr(&drill_cfg(), ClusterModel::zero());
    assert!(with_ckpt.checkpoints >= 2, "cadence must fire");
    assert_bits_match(&with_ckpt, &base, "checkpointing run");
}

#[test]
fn kill_and_same_rank_restart_is_bit_identical() {
    let base = uninterrupted();
    let fault = FaultPlan {
        rank: 1,
        step: 3,
        mid_snapshot: false,
    };
    let out = run_samr_recovering(&drill_cfg(), ClusterModel::zero(), fault, 4);
    let failure = out.failure.expect("the armed fault must fire");
    assert!(
        failure.contains("killed at step 3"),
        "poison must name the kill: {failure}"
    );
    assert_eq!(out.resumed_from, 2, "last complete set is the step-2 one");
    assert!(out.checkpoints_before_kill >= 1);
    assert_bits_match(&out.result, &base, "recovered at P=4");
}

#[test]
fn elastic_restart_is_bit_identical_at_other_rank_counts() {
    let base = uninterrupted();
    let fault = FaultPlan {
        rank: 1,
        step: 3,
        mid_snapshot: false,
    };
    for restart_ranks in [1usize, 2, 6] {
        let out = run_samr_recovering(&drill_cfg(), ClusterModel::zero(), fault, restart_ranks);
        assert!(out.failure.is_some());
        assert_eq!(out.resumed_from, 2);
        assert_bits_match(
            &out.result,
            &base,
            &format!("killed at P=4, recovered at P'={restart_ranks}"),
        );
    }
}

#[test]
fn mid_snapshot_death_names_the_checkpoint_epoch_and_recovers() {
    let base = uninterrupted();
    let fault = FaultPlan {
        rank: 1,
        step: 3,
        mid_snapshot: true,
    };
    let out = run_samr_recovering(&drill_cfg(), ClusterModel::zero(), fault, 2);
    let failure = out.failure.expect("the armed fault must fire");
    assert!(
        failure.contains("during checkpoint epoch 4"),
        "mid-snapshot poison must name the checkpoint epoch: {failure}"
    );
    assert!(failure.contains("injected fault"), "{failure}");
    // The step-4 set never completed; recovery falls back to the step-2 one.
    assert_eq!(out.resumed_from, 2);
    assert_bits_match(&out.result, &base, "recovered after mid-snapshot death");
}

#[test]
fn fault_beyond_the_last_step_never_fires() {
    let fault = FaultPlan {
        rank: 0,
        step: 99,
        mid_snapshot: false,
    };
    let out = run_samr_recovering(&drill_cfg(), ClusterModel::zero(), fault, 4);
    assert!(out.failure.is_none());
    assert_eq!(out.resumed_from, 0);
    assert_bits_match(&out.result, &uninterrupted(), "fault never fired");
}
