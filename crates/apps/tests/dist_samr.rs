//! Distributed SAMR acceptance: the full moving-source run is
//! bit-identical at P ∈ {1, 2, 4, 6}, the comm plan verifies and the
//! trace audits clean at every P, and regrid-time rebalancing actually
//! migrates patches at some P > 1.

use cca_apps::samr::{run_samr, SamrConfig, SamrResult};
use cca_comm::ClusterModel;

fn sweep() -> Vec<(usize, SamrResult)> {
    [1usize, 2, 4, 6]
        .iter()
        .map(|&ranks| {
            let cfg = SamrConfig {
                ranks,
                audit: true,
                ..SamrConfig::default()
            };
            (ranks, run_samr(&cfg, ClusterModel::zero()))
        })
        .collect()
}

#[test]
fn p_sweep_is_bit_identical_and_exercises_rebalancing() {
    let results = sweep();
    let (_, base) = &results[0];
    assert!(base.fine_cells > 0, "the estimator never refined anything");
    assert!(
        base.regrids >= 2,
        "only {} regrid(s); periodic regridding never ran",
        base.regrids
    );
    for (ranks, r) in &results[1..] {
        assert_eq!(
            r.checksum.to_bits(),
            base.checksum.to_bits(),
            "checksum drift at P={ranks}: {} vs {} at P=1",
            r.checksum,
            base.checksum
        );
        assert_eq!(
            r.final_max.to_bits(),
            base.final_max.to_bits(),
            "stability-probe drift at P={ranks}"
        );
        assert_eq!(
            r.fine_cells, base.fine_cells,
            "hierarchy drift at P={ranks}"
        );
        assert_eq!(r.regrids, base.regrids);
    }
    let migrated: usize = results
        .iter()
        .filter(|(ranks, _)| *ranks > 1)
        .map(|(_, r)| r.migrations)
        .sum();
    assert!(
        migrated > 0,
        "no P > 1 run migrated a patch; rebalancing was never exercised"
    );
}

#[test]
fn distributed_runs_actually_communicate() {
    let cfg = SamrConfig {
        ranks: 4,
        steps: 2,
        audit: true,
        ..SamrConfig::default()
    };
    let r = run_samr(&cfg, ClusterModel::cplant());
    assert!(r.messages > 0, "4-rank SAMR sent no messages");
    assert!(r.bytes > 0);
    assert!(
        r.messages_coalesced > 0,
        "ghost exchanges never coalesced messages"
    );
    assert!(r.modeled_time > 0.0);
}
