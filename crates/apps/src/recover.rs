//! The recovery driver: run the distributed SAMR experiment with a
//! deterministic fault armed, catch the cohort's death, and restart from
//! the last complete checkpoint set — at any rank count. Because restore
//! rebuilds the saved hierarchy bit-exactly (fresh-id watermark included)
//! and replays the deterministic LPT assignment at the new cohort size,
//! the recovered run's final fields are bit-identical to a run that was
//! never interrupted, whether it restarts at the same P or a different
//! P'. Fault-injection tests pin exactly that.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::samr::{run_samr_harnessed, CkptHarness, SamrConfig, SamrResult};
use cca_ckpt::{CkptStore, FaultPlan};
use cca_comm::ClusterModel;

/// What a kill-and-recover drill observed.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    /// The poison message of the killed run, `None` if the fault never
    /// fired (e.g. armed beyond the last step).
    pub failure: Option<String>,
    /// Macro step the recovered run resumed from (0 if no recovery was
    /// needed).
    pub resumed_from: u64,
    /// Complete sets the interrupted run committed before dying.
    pub checkpoints_before_kill: usize,
    /// The final result — of the recovered run, or of the original run
    /// when the fault never fired.
    pub result: SamrResult,
}

/// Run `cfg` with `fault` armed; on cohort death, restart from the last
/// complete set with `restart_ranks` ranks (the elastic-restart path when
/// it differs from `cfg.ranks`). Panics if the run dies with no complete
/// set in the store — a drill misconfiguration, since checkpointing must
/// be enabled (`cfg.ckpt_interval > 0`) and fire before the fault.
pub fn run_samr_recovering(
    cfg: &SamrConfig,
    model: ClusterModel,
    fault: FaultPlan,
    restart_ranks: usize,
) -> RecoveryOutcome {
    assert!(
        cfg.ckpt_interval > 0,
        "recovery drill needs checkpointing enabled"
    );
    let store = Arc::new(CkptStore::new());
    let doomed = CkptHarness {
        store: Some(Arc::clone(&store)),
        fault: Some(fault),
        restore: None,
    };
    // The injected panic is expected: silence the default hook's
    // backtrace spew for the duration of the doomed attempt.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let attempt = catch_unwind(AssertUnwindSafe(|| run_samr_harnessed(cfg, model, doomed)));
    std::panic::set_hook(prev);
    match attempt {
        Ok(result) => RecoveryOutcome {
            failure: None,
            resumed_from: 0,
            checkpoints_before_kill: store.len(),
            result,
        },
        Err(payload) => {
            let failure = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "unknown panic".to_string());
            let set = store
                .latest()
                .expect("cohort died before the first complete checkpoint");
            let resumed_from = set.meta.step;
            let checkpoints_before_kill = store.len();
            let recovered = CkptHarness {
                store: None,
                fault: None,
                restore: Some(set),
            };
            let restart_cfg = SamrConfig {
                ranks: restart_ranks,
                ..*cfg
            };
            let result = run_samr_harnessed(&restart_cfg, model, recovered);
            RecoveryOutcome {
                failure: Some(failure),
                resumed_from,
                checkpoints_before_kill,
                result,
            }
        }
    }
}
