//! The §5.2 scaling configuration: the reaction–diffusion code with
//! adaptivity off, SCMD-distributed over `P` ranks, measured under the
//! CPlant cluster performance model.
//!
//! Each rank owns one tile of the global uniform mesh (9 variables per
//! mesh point), runs the same per-step physics, exchanges ghost strips
//! with its neighbours through real messages, and participates in the
//! global spectral-radius reduction the `MaxDiffCoeffEvaluator` needs.
//! Wall-clock parallelism cannot be observed on this build host (1 core),
//! so runtimes are *modeled*: each rank's virtual clock advances by
//! `work × seconds_per_work_unit` for compute and by the LogP message law
//! for communication (see `cca-comm::model`). The calibration
//! (`ClusterModel::cplant`, 1 work unit = 1 cell-variable update per step)
//! reproduces the magnitude of Table 5: 5 steps on a 100×100 tile ≈ 162 s
//! of 433 MHz-Alpha time.

use cca_comm::{scmd, ClusterModel, Communicator, RecvRequest};
use cca_mesh::boxes::IntBox;
use cca_mesh::data::PatchData;
use cca_mesh::decomp::UniformDecomp;

/// Variables per mesh point ("Each mesh point has 9 variables on it").
pub const NVARS: usize = 9;

/// Tag of the halo exchange (the blocking two-pass protocol also uses
/// `HALO_TAG + 1` for its y pass).
pub const HALO_TAG: u64 = 10;

/// One scaling experiment.
#[derive(Clone, Copy, Debug)]
pub struct ScalingConfig {
    /// Global mesh extent along each axis (constant-global-size mode) or
    /// per-rank extent (constant-per-rank mode).
    pub n: i64,
    /// Is `n` the per-rank tile size (weak scaling, Fig. 8/Table 5) or
    /// the global size (strong scaling, Fig. 9)?
    pub per_rank: bool,
    /// Number of ranks.
    pub ranks: usize,
    /// Macro steps (paper: 5 steps of 1e-7 s).
    pub steps: usize,
    /// RKC stages per macro step (each stage = one ghost exchange + one
    /// RHS sweep); the flame runs near s = 2–4.
    pub stages_per_step: usize,
    /// Modeled compute work (work units) per cell-variable per stage.
    /// 1.0 reproduces Table 5's magnitudes with `ClusterModel::cplant()`.
    pub work_per_cell_var: f64,
    /// Overlap communication with computation: nonblocking single-pass
    /// halo exchange, interior sweep while messages are in flight,
    /// boundary ring after `waitall`. Bit-identical physics to the
    /// blocking path (the 5-point stencil never reads the corner ghosts
    /// that only the blocking two-pass protocol fills).
    pub overlap: bool,
    /// With `overlap`: pack all [`NVARS`] variables of a halo strip into
    /// one message per neighbour (`true`, production behaviour) or send
    /// one message per variable (`false`, the pre-coalescing comparator).
    pub coalesce: bool,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            n: 50,
            per_rank: true,
            ranks: 4,
            steps: 5,
            stages_per_step: 2,
            work_per_cell_var: 0.5,
            overlap: false,
            coalesce: true,
        }
    }
}

/// Per-experiment outcome.
#[derive(Clone, Debug)]
pub struct ScalingResult {
    /// Modeled job runtime: the slowest rank's virtual clock, s.
    pub modeled_time: f64,
    /// Every rank's virtual clock, s.
    pub per_rank_time: Vec<f64>,
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Halo-exchange messages across all ranks (tags [`HALO_TAG`] and
    /// `HALO_TAG + 1`), from the per-tag [`cca_comm::CommStats`].
    pub halo_messages: u64,
    /// Halo-exchange payload bytes across all ranks.
    pub halo_bytes: u64,
    /// Messages saved by coalescing across all ranks (zero when each
    /// logical transfer travelled as its own message).
    pub messages_coalesced: u64,
    /// Checksum of the final field (all ranks' interior sums), for
    /// cross-`P` determinism checks.
    pub checksum: f64,
}

/// Run the distributed diffusion workload and return modeled timings.
pub fn run_scaling(cfg: &ScalingConfig, model: ClusterModel) -> ScalingResult {
    let global = if cfg.per_rank {
        // Build a global mesh whose tiles are exactly n × n per rank.
        let d = UniformDecomp::new(IntBox::sized(cfg.n, cfg.n), cfg.ranks);
        IntBox::sized(cfg.n * d.px as i64, cfg.n * d.py as i64)
    } else {
        IntBox::sized(cfg.n, cfg.n)
    };
    let decomp = UniformDecomp::new(global, cfg.ranks);
    let cfg = *cfg;
    let reports = scmd::run_reported(cfg.ranks, model, move |comm: &Communicator| {
        rank_main(comm, &decomp, &cfg)
    });
    let per_rank_time: Vec<f64> = reports.iter().map(|r| r.vtime).collect();
    let halo = |r: &scmd::RankReport<f64>| {
        let a = r.stats.tag(HALO_TAG);
        let b = r.stats.tag(HALO_TAG + 1);
        (a.messages + b.messages, a.bytes + b.bytes)
    };
    ScalingResult {
        modeled_time: scmd::modeled_runtime(&reports),
        per_rank_time,
        messages: reports.iter().map(|r| r.messages_sent).sum(),
        bytes: reports.iter().map(|r| r.bytes_sent).sum(),
        halo_messages: reports.iter().map(|r| halo(r).0).sum(),
        halo_bytes: reports.iter().map(|r| halo(r).1).sum(),
        messages_coalesced: reports.iter().map(|r| r.stats.messages_coalesced).sum(),
        checksum: reports.iter().map(|r| r.result).sum(),
    }
}

/// The per-rank program: the "single component" of SCMD.
fn rank_main(comm: &Communicator, decomp: &UniformDecomp, cfg: &ScalingConfig) -> f64 {
    let tile = decomp.tile(comm.rank());
    let mut pd = PatchData::new(tile, NVARS, 1);
    // Deterministic initial condition: a smooth bump in variable 0
    // (temperature-like), uniform mixture elsewhere.
    let global = decomp.global;
    for (i, j) in tile.cells() {
        let x = (i as f64 + 0.5) / global.nx() as f64;
        let y = (j as f64 + 0.5) / global.ny() as f64;
        let bump = (-((x - 0.5).powi(2) + (y - 0.5).powi(2)) / 0.02).exp();
        pd.set(0, i, j, 300.0 + 1000.0 * bump);
        for v in 1..NVARS {
            pd.set(v, i, j, 0.1 * v as f64);
        }
    }
    let mut rhs = PatchData::new(tile, NVARS, 0);

    for _step in 0..cfg.steps {
        // Global spectral-radius reduction (the MaxDiffCoeffEvaluator's
        // allreduce), once per macro step.
        let local_max = pd.interior_max_abs(0);
        let _rho = comm.allreduce_max(&[local_max]);
        for _stage in 0..cfg.stages_per_step {
            // Modeled cost of the *real* physics (transport properties +
            // RKC stage + the amortized point-chemistry BDF work) for this
            // stage. Properties are evaluated on the ghost-inclusive box —
            // exactly as DiffusionPhysics does — so small tiles pay a
            // genuine surface-to-volume penalty.
            let stage_work = tile.grow(1).count() as f64 * NVARS as f64 * cfg.work_per_cell_var;
            if cfg.overlap {
                overlapped_stage(comm, decomp, cfg, &mut pd, &mut rhs, &global, stage_work);
            } else {
                // Blocking reference schedule: exchange, then compute.
                decomp.exchange_ghosts(comm, &mut pd, HALO_TAG);
                zero_gradient_walls(&mut pd, &global);
                eval_rhs(&pd, &mut rhs, &tile, STAGE_ALPHA);
                comm.charge_compute(stage_work);
            }
            // Apply the stage update — identical in both schedules.
            for var in 0..NVARS {
                for (i, j) in tile.cells() {
                    pd.add(var, i, j, rhs.get(var, i, j));
                }
            }
        }
    }
    // Final consistency barrier mirrors the per-step synchronization of
    // the paper's runs.
    comm.barrier();
    pd.interior_sum(0)
}

/// One overlapped stage: post irecvs, pack + isend the halo (one coalesced
/// message per neighbour, or one per variable with `coalesce` off), sweep
/// the interior while the messages are modeled in flight, `waitall`, then
/// sweep the boundary ring.
///
/// The RHS values written are bit-identical to the blocking path: every
/// cell's Laplacian reads the same pre-update field (the stage update is
/// applied only after both sweeps), the halo strips carry the same values
/// the two-pass protocol ships, and the 5-point stencil never reads the
/// corner ghosts that only the blocking protocol fills.
#[allow(clippy::too_many_arguments)]
fn overlapped_stage(
    comm: &Communicator,
    decomp: &UniformDecomp,
    cfg: &ScalingConfig,
    pd: &mut PatchData,
    rhs: &mut PatchData,
    global: &IntBox,
    stage_work: f64,
) {
    let tile = pd.interior;
    let alpha = STAGE_ALPHA;
    let links = decomp.halo_links(comm.rank(), 1);
    // Post every receive up front (message order within a link is FIFO,
    // so the per-variable mode needs no per-variable tags).
    let mut recvs: Vec<RecvRequest<f64>> = Vec::new();
    for link in &links {
        let per_link = if cfg.coalesce { 1 } else { NVARS };
        for _ in 0..per_link {
            recvs.push(comm.irecv(link.nbr, HALO_TAG));
        }
    }
    // Pack and launch the sends: exactly one wire message per neighbour
    // when coalescing (all strips of all NVARS variables in one buffer).
    let mut var_buf = vec![0.0; links.iter().map(|l| l.send.count()).max().unwrap_or(0) as usize];
    for link in &links {
        if cfg.coalesce {
            let buf = pd.pack(&link.send);
            comm.isend(link.nbr, HALO_TAG, &buf);
            comm.note_coalesced(NVARS as u64);
        } else {
            let n = link.send.count() as usize;
            for var in 0..NVARS {
                pd.pack_var_into(var, &link.send, &mut var_buf[..n]);
                comm.isend(link.nbr, HALO_TAG, &var_buf[..n]);
            }
        }
    }
    // While the halo is in flight: physical walls (ghosts outside the
    // global domain — disjoint from every exchanged strip) and the
    // interior sweep, whose stencils stay clear of any ghost cell.
    zero_gradient_walls(pd, global);
    let core = tile.interior_shrink(1);
    if let Some(core) = core {
        eval_rhs(pd, rhs, &core, alpha);
    }
    // Charge the interior's share of the stage work before draining the
    // halo — this is the compute the model credits against the transfers.
    let core_cells = core.map_or(0, |c| c.count());
    let interior_work = stage_work * core_cells as f64 / tile.count() as f64;
    comm.charge_compute(interior_work);
    // Drain the halo and fill the ghost strips.
    let payloads = comm.waitall(recvs);
    let mut k = 0;
    for link in &links {
        if cfg.coalesce {
            pd.unpack(&link.recv, &payloads[k]);
            k += 1;
        } else {
            for var in 0..NVARS {
                pd.unpack_var(var, &link.recv, &payloads[k]);
                k += 1;
            }
        }
    }
    // Boundary ring, now that its ghost neighbours are fresh.
    for strip in tile.halo_ring(1) {
        eval_rhs(pd, rhs, &strip, alpha);
    }
    comm.charge_compute(stage_work - interior_work);
}

/// Diffusion number per stage (stability-safe for the 5-point stencil).
const STAGE_ALPHA: f64 = 0.2;

/// One explicit diffusion RHS over `region` (all [`NVARS`] variables):
/// `rhs = α · ∇²pd`, reading only `pd` — cell-independent, so evaluating
/// the region in any strip decomposition yields bit-identical values.
fn eval_rhs(pd: &PatchData, rhs: &mut PatchData, region: &IntBox, alpha: f64) {
    for var in 0..NVARS {
        for (i, j) in region.cells() {
            let lap = pd.get(var, i + 1, j)
                + pd.get(var, i - 1, j)
                + pd.get(var, i, j + 1)
                + pd.get(var, i, j - 1)
                - 4.0 * pd.get(var, i, j);
            rhs.set(var, i, j, alpha * lap);
        }
    }
}

fn zero_gradient_walls(pd: &mut PatchData, global: &IntBox) {
    let interior = pd.interior;
    let total = pd.total_box();
    for var in 0..pd.nvars {
        for (i, j) in total.cells() {
            if interior.contains(i, j) || global.contains(i, j) {
                continue;
            }
            let ii = i.clamp(interior.lo[0], interior.hi[0]);
            let jj = j.clamp(interior.lo[1], interior.hi[1]);
            let v = pd.get(var, ii, jj);
            pd.set(var, i, j, v);
        }
    }
}

/// Mean, median, standard deviation of a sample — Table 5's columns.
pub fn stats(samples: &[f64]) -> (f64, f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
    };
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, median, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_runtime_is_flat() {
        // Constant per-rank work: modeled runtime must grow only weakly
        // with P (Fig. 8's flat lines).
        let t1 = run_scaling(
            &ScalingConfig {
                n: 20,
                per_rank: true,
                ranks: 1,
                ..ScalingConfig::default()
            },
            ClusterModel::cplant(),
        );
        let t8 = run_scaling(
            &ScalingConfig {
                n: 20,
                per_rank: true,
                ranks: 8,
                ..ScalingConfig::default()
            },
            ClusterModel::cplant(),
        );
        let growth = t8.modeled_time / t1.modeled_time;
        assert!(growth < 1.25, "weak scaling broke: {growth}");
    }

    #[test]
    fn strong_scaling_speeds_up() {
        let base = ScalingConfig {
            n: 64,
            per_rank: false,
            ranks: 1,
            ..ScalingConfig::default()
        };
        let t1 = run_scaling(&base, ClusterModel::cplant());
        let t4 = run_scaling(&ScalingConfig { ranks: 4, ..base }, ClusterModel::cplant());
        let speedup = t1.modeled_time / t4.modeled_time;
        assert!(speedup > 2.5, "speedup = {speedup}");
        assert!(speedup <= 4.01);
    }

    #[test]
    fn result_is_deterministic_across_rank_counts() {
        // The distributed field must match the single-rank field: the
        // checksum (sum of variable 0) is decomposition-invariant.
        let base = ScalingConfig {
            n: 32,
            per_rank: false,
            steps: 3,
            ..ScalingConfig::default()
        };
        let sums: Vec<f64> = [1usize, 2, 4]
            .iter()
            .map(|&p| {
                run_scaling(&ScalingConfig { ranks: p, ..base }, ClusterModel::zero()).checksum
            })
            .collect();
        assert!((sums[0] - sums[1]).abs() < 1e-6 * sums[0].abs(), "{sums:?}");
        assert!((sums[0] - sums[2]).abs() < 1e-6 * sums[0].abs(), "{sums:?}");
    }

    #[test]
    fn table5_magnitudes_with_cplant_calibration() {
        // 100x100 per rank, 5 steps: the paper's Table 5 reports a mean
        // of 161.7 s. The calibrated model must land in the same decade
        // and preserve the ordering 50² < 100² < 175².
        let model = ClusterModel::cplant();
        let t50 = run_scaling(
            &ScalingConfig {
                n: 50,
                per_rank: true,
                ranks: 2,
                stages_per_step: 2,
                work_per_cell_var: 1.0,
                ..ScalingConfig::default()
            },
            model,
        );
        let t100 = run_scaling(
            &ScalingConfig {
                n: 100,
                per_rank: true,
                ranks: 2,
                stages_per_step: 2,
                work_per_cell_var: 1.0,
                ..ScalingConfig::default()
            },
            model,
        );
        assert!(t50.modeled_time < t100.modeled_time);
        assert!(
            t100.modeled_time > 80.0 && t100.modeled_time < 400.0,
            "modeled 100² runtime = {}",
            t100.modeled_time
        );
        // Roughly the tile-area ratio (the paper's "run times scale as
        // the single-processor problem size").
        let ratio = t100.modeled_time / t50.modeled_time;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn overlap_is_bit_identical_to_blocking() {
        for ranks in [1usize, 4, 6] {
            let base = ScalingConfig {
                n: 24,
                per_rank: false,
                ranks,
                steps: 3,
                ..ScalingConfig::default()
            };
            let blocking = run_scaling(&base, ClusterModel::cplant());
            for coalesce in [true, false] {
                let overlapped = run_scaling(
                    &ScalingConfig {
                        overlap: true,
                        coalesce,
                        ..base
                    },
                    ClusterModel::cplant(),
                );
                assert_eq!(
                    blocking.checksum.to_bits(),
                    overlapped.checksum.to_bits(),
                    "ranks = {ranks}, coalesce = {coalesce}"
                );
            }
        }
    }

    #[test]
    fn coalescing_sends_one_message_per_neighbor_per_stage() {
        // 2×2 grid: 8 directed neighbour links; 3 steps × 2 stages.
        let base = ScalingConfig {
            n: 24,
            per_rank: false,
            ranks: 4,
            steps: 3,
            overlap: true,
            ..ScalingConfig::default()
        };
        let coalesced = run_scaling(&base, ClusterModel::zero());
        let exchanges = (base.steps * base.stages_per_step) as u64;
        assert_eq!(coalesced.halo_messages, 8 * exchanges);
        assert_eq!(
            coalesced.messages_coalesced,
            8 * exchanges * (NVARS as u64 - 1)
        );
        // Without coalescing every variable travels alone: 9× the
        // messages, same bytes, nothing saved.
        let naive = run_scaling(
            &ScalingConfig {
                coalesce: false,
                ..base
            },
            ClusterModel::zero(),
        );
        assert_eq!(naive.halo_messages, 8 * exchanges * NVARS as u64);
        assert_eq!(naive.messages_coalesced, 0);
        assert_eq!(naive.halo_bytes, coalesced.halo_bytes);
    }

    #[test]
    fn stats_helper() {
        let (mean, median, sigma) = stats(&[1.0, 2.0, 3.0, 4.0]);
        assert!((mean - 2.5).abs() < 1e-12);
        assert!((median - 2.5).abs() < 1e-12);
        assert!((sigma - (1.25f64).sqrt()).abs() < 1e-12);
    }
}
