//! The §5.2 scaling configuration: the reaction–diffusion code with
//! adaptivity off, SCMD-distributed over `P` ranks, measured under the
//! CPlant cluster performance model.
//!
//! Each rank owns one tile of the global uniform mesh (9 variables per
//! mesh point), runs the same per-step physics, exchanges ghost strips
//! with its neighbours through real messages, and participates in the
//! global spectral-radius reduction the `MaxDiffCoeffEvaluator` needs.
//! Wall-clock parallelism cannot be observed on this build host (1 core),
//! so runtimes are *modeled*: each rank's virtual clock advances by
//! `work × seconds_per_work_unit` for compute and by the LogP message law
//! for communication (see `cca-comm::model`). The calibration
//! (`ClusterModel::cplant`, 1 work unit = 1 cell-variable update per step)
//! reproduces the magnitude of Table 5: 5 steps on a 100×100 tile ≈ 162 s
//! of 433 MHz-Alpha time.

use crate::schedule::{self, Binding, ComputeKind, Instr};
use cca_analyze::commplan::OpKind;
use cca_comm::{scmd, ClusterModel, Communicator, RecvRequest};
use cca_mesh::boxes::IntBox;
use cca_mesh::data::PatchData;
use cca_mesh::decomp::UniformDecomp;

/// Variables per mesh point ("Each mesh point has 9 variables on it").
pub const NVARS: usize = 9;

/// Tag of the halo exchange (the blocking two-pass protocol also uses
/// `HALO_TAG + 1` for its y pass).
pub const HALO_TAG: u64 = 10;

/// One scaling experiment.
#[derive(Clone, Copy, Debug)]
pub struct ScalingConfig {
    /// Global mesh extent along each axis (constant-global-size mode) or
    /// per-rank extent (constant-per-rank mode).
    pub n: i64,
    /// Is `n` the per-rank tile size (weak scaling, Fig. 8/Table 5) or
    /// the global size (strong scaling, Fig. 9)?
    pub per_rank: bool,
    /// Number of ranks.
    pub ranks: usize,
    /// Macro steps (paper: 5 steps of 1e-7 s).
    pub steps: usize,
    /// RKC stages per macro step (each stage = one ghost exchange + one
    /// RHS sweep); the flame runs near s = 2–4.
    pub stages_per_step: usize,
    /// Modeled compute work (work units) per cell-variable per stage.
    /// 1.0 reproduces Table 5's magnitudes with `ClusterModel::cplant()`.
    pub work_per_cell_var: f64,
    /// Overlap communication with computation: nonblocking single-pass
    /// halo exchange, interior sweep while messages are in flight,
    /// boundary ring after `waitall`. Bit-identical physics to the
    /// blocking path (the 5-point stencil never reads the corner ghosts
    /// that only the blocking two-pass protocol fills).
    pub overlap: bool,
    /// With `overlap`: pack all [`NVARS`] variables of a halo strip into
    /// one message per neighbour (`true`, production behaviour) or send
    /// one message per variable (`false`, the pre-coalescing comparator).
    pub coalesce: bool,
    /// Run the comm sanitizer: statically verify the emitted comm plan,
    /// record the execution trace, and assert the trace refines the plan
    /// (`cca-analyze` C-codes). Tracing never touches the virtual clocks,
    /// so audited runs are bit-identical to unaudited ones.
    pub audit: bool,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            n: 50,
            per_rank: true,
            ranks: 4,
            steps: 5,
            stages_per_step: 2,
            work_per_cell_var: 0.5,
            overlap: false,
            coalesce: true,
            audit: false,
        }
    }
}

/// Per-experiment outcome.
#[derive(Clone, Debug)]
pub struct ScalingResult {
    /// Modeled job runtime: the slowest rank's virtual clock, s.
    pub modeled_time: f64,
    /// Every rank's virtual clock, s.
    pub per_rank_time: Vec<f64>,
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Halo-exchange messages across all ranks (tags [`HALO_TAG`] and
    /// `HALO_TAG + 1`), from the per-tag [`cca_comm::CommStats`].
    pub halo_messages: u64,
    /// Halo-exchange payload bytes across all ranks.
    pub halo_bytes: u64,
    /// Messages saved by coalescing across all ranks (zero when each
    /// logical transfer travelled as its own message).
    pub messages_coalesced: u64,
    /// Checksum of the final field (all ranks' interior sums), for
    /// cross-`P` determinism checks.
    pub checksum: f64,
}

/// The decomposition a scaling run uses: per-rank mode builds a global
/// mesh whose tiles are exactly `n × n`, global mode splits an `n × n`
/// domain. Exposed so callers (lint, admission gates) can emit and verify
/// the run's comm plan without running it.
pub fn decompose(cfg: &ScalingConfig) -> UniformDecomp {
    let global = if cfg.per_rank {
        let d = UniformDecomp::new(IntBox::sized(cfg.n, cfg.n), cfg.ranks);
        IntBox::sized(cfg.n * d.px as i64, cfg.n * d.py as i64)
    } else {
        IntBox::sized(cfg.n, cfg.n)
    };
    UniformDecomp::new(global, cfg.ranks)
}

/// Run the distributed diffusion workload and return modeled timings.
pub fn run_scaling(cfg: &ScalingConfig, model: ClusterModel) -> ScalingResult {
    let decomp = decompose(cfg);
    let cfg = *cfg;
    let rank_program = move |comm: &Communicator| rank_main(comm, &decomp, &cfg);
    let reports = if cfg.audit {
        let (reports, trace) = scmd::run_reported_traced(cfg.ranks, model, rank_program);
        let plan = schedule::comm_plan(&decomp, &cfg);
        let verdict = plan.verify();
        assert!(
            verdict.is_clean(),
            "comm-plan verification failed:\n{}",
            verdict.render("comm-plan")
        );
        let conformance = plan.audit(&trace);
        assert!(
            conformance.is_clean(),
            "comm-trace conformance failed:\n{}",
            conformance.render("comm-trace")
        );
        reports
    } else {
        scmd::run_reported(cfg.ranks, model, rank_program)
    };
    let per_rank_time: Vec<f64> = reports.iter().map(|r| r.vtime).collect();
    let halo = |r: &scmd::RankReport<f64>| {
        let a = r.stats.tag(HALO_TAG);
        let b = r.stats.tag(HALO_TAG + 1);
        (a.messages + b.messages, a.bytes + b.bytes)
    };
    ScalingResult {
        modeled_time: scmd::modeled_runtime(&reports),
        per_rank_time,
        messages: reports.iter().map(|r| r.messages_sent).sum(),
        bytes: reports.iter().map(|r| r.bytes_sent).sum(),
        halo_messages: reports.iter().map(|r| halo(r).0).sum(),
        halo_bytes: reports.iter().map(|r| halo(r).1).sum(),
        messages_coalesced: reports.iter().map(|r| r.stats.messages_coalesced).sum(),
        checksum: reports.iter().map(|r| r.result).sum(),
    }
}

/// The per-rank program: the "single component" of SCMD. Emits the rank's
/// instruction stream ([`schedule::rank_schedule`]) and interprets it —
/// the schedule is data, and the same data, stripped to its comm ops, is
/// what the static checker verified.
fn rank_main(comm: &Communicator, decomp: &UniformDecomp, cfg: &ScalingConfig) -> f64 {
    let tile = decomp.tile(comm.rank());
    let mut pd = PatchData::new(tile, NVARS, 1);
    // Deterministic initial condition: a smooth bump in variable 0
    // (temperature-like), uniform mixture elsewhere.
    let global = decomp.global;
    for (i, j) in tile.cells() {
        let x = (i as f64 + 0.5) / global.nx() as f64;
        let y = (j as f64 + 0.5) / global.ny() as f64;
        let bump = (-((x - 0.5).powi(2) + (y - 0.5).powi(2)) / 0.02).exp();
        pd.set(0, i, j, 300.0 + 1000.0 * bump);
        for v in 1..NVARS {
            pd.set(v, i, j, 0.1 * v as f64);
        }
    }
    let mut rhs = PatchData::new(tile, NVARS, 0);
    let program = schedule::rank_schedule(decomp, cfg, comm.rank());
    interpret(comm, &program, &mut pd, &mut rhs, &global);
    pd.interior_sum(0)
}

/// A posted receive awaiting its wait/waitall, with the binding that will
/// place its payload.
struct PendingRecv {
    req: RecvRequest<f64>,
    peer: usize,
    tag: u64,
    binding: Binding,
}

/// Execute one rank's instruction stream.
///
/// The interpreter preserves the PR 5 hand-written schedules' exact call
/// order and arithmetic — post every irecv first, pack + isend per link
/// (coalesced messages tallied via `note_coalesced`), walls and interior
/// sweep between the sends and the waitall, FIFO payload placement — so
/// results and modeled clocks are bit-identical to the pre-IR control
/// flow.
fn interpret(
    comm: &Communicator,
    program: &[Instr],
    pd: &mut PatchData,
    rhs: &mut PatchData,
    global: &IntBox,
) {
    let tile = pd.interior;
    let mut pending: Vec<PendingRecv> = Vec::new();
    let mut scratch: Vec<f64> = Vec::new();
    for instr in program {
        match instr {
            Instr::Comm(op, binding) => match op.kind {
                OpKind::Irecv { peer, tag, .. } => pending.push(PendingRecv {
                    req: comm.irecv(peer, tag),
                    peer,
                    tag,
                    binding: *binding,
                }),
                OpKind::Isend { peer, tag, .. } => match binding {
                    Binding::PackAll(region) => {
                        let buf = pd.pack(region);
                        comm.isend(peer, tag, &buf);
                        comm.note_coalesced(NVARS as u64);
                    }
                    Binding::PackVar(var, region) => {
                        let n = region.count() as usize;
                        if scratch.len() < n {
                            scratch.resize(n, 0.0);
                        }
                        pd.pack_var_into(*var, region, &mut scratch[..n]);
                        comm.isend(peer, tag, &scratch[..n]);
                    }
                    other => unreachable!("isend bound to {other:?}"),
                },
                OpKind::Wait { peer, tag } => {
                    let pos = pending
                        .iter()
                        .position(|p| p.peer == peer && p.tag == tag)
                        .expect("verified plans wait only on posted requests");
                    let p = pending.remove(pos);
                    let payload = comm.wait(p.req);
                    unpack_payload(pd, &p.binding, &payload);
                }
                OpKind::Waitall => {
                    let (reqs, bindings): (Vec<_>, Vec<_>) =
                        pending.drain(..).map(|p| (p.req, p.binding)).unzip();
                    let payloads = comm.waitall(reqs);
                    for (payload, binding) in payloads.iter().zip(&bindings) {
                        unpack_payload(pd, binding, payload);
                    }
                }
                OpKind::Send { peer, tag, .. } => {
                    let Binding::PackAll(region) = binding else {
                        unreachable!("send bound to {binding:?}")
                    };
                    let buf = pd.pack(region);
                    comm.send(peer, tag, &buf);
                }
                OpKind::Recv { peer, tag, .. } => {
                    let got: Vec<f64> = comm.recv(peer, tag);
                    unpack_payload(pd, binding, &got);
                }
                OpKind::Reduce { .. } => {
                    // Global spectral-radius reduction (the
                    // MaxDiffCoeffEvaluator's allreduce).
                    let local_max = pd.interior_max_abs(0);
                    let _rho = comm.allreduce_max(&[local_max]);
                }
                OpKind::Barrier => comm.barrier(),
            },
            Instr::Compute(kind) => match kind {
                ComputeKind::Walls => zero_gradient_walls(pd, global),
                ComputeKind::SweepFull { work } => {
                    eval_rhs(pd, rhs, &tile, STAGE_ALPHA);
                    comm.charge_compute(*work);
                }
                ComputeKind::SweepInterior { work } => {
                    // Stencils in the shrunken core stay clear of every
                    // ghost cell, so this sweep is safe while the halo is
                    // still in flight.
                    if let Some(core) = tile.interior_shrink(1) {
                        eval_rhs(pd, rhs, &core, STAGE_ALPHA);
                    }
                    comm.charge_compute(*work);
                }
                ComputeKind::SweepHalo { work } => {
                    for strip in tile.halo_ring(1) {
                        eval_rhs(pd, rhs, &strip, STAGE_ALPHA);
                    }
                    comm.charge_compute(*work);
                }
                ComputeKind::StageUpdate => {
                    for var in 0..NVARS {
                        for (i, j) in tile.cells() {
                            pd.add(var, i, j, rhs.get(var, i, j));
                        }
                    }
                }
            },
        }
    }
    assert!(pending.is_empty(), "schedule left receive requests pending");
}

/// Place a received payload according to its binding.
fn unpack_payload(pd: &mut PatchData, binding: &Binding, payload: &[f64]) {
    match binding {
        Binding::UnpackAll(region) => pd.unpack(region, payload),
        Binding::UnpackVar(var, region) => pd.unpack_var(*var, region, payload),
        other => unreachable!("receive bound to {other:?}"),
    }
}

/// Diffusion number per stage (stability-safe for the 5-point stencil).
const STAGE_ALPHA: f64 = 0.2;

/// One explicit diffusion RHS over `region` (all [`NVARS`] variables):
/// `rhs = α · ∇²pd`, reading only `pd` — cell-independent, so evaluating
/// the region in any strip decomposition yields bit-identical values.
fn eval_rhs(pd: &PatchData, rhs: &mut PatchData, region: &IntBox, alpha: f64) {
    let w = region.nx() as usize;
    let si = (region.lo[0] - pd.total_box().lo[0]) as usize;
    let di = (region.lo[0] - rhs.total_box().lo[0]) as usize;
    for var in 0..NVARS {
        for j in region.lo[1]..=region.hi[1] {
            let (below, mid, above) = pd.rows3(var, j);
            let out = &mut rhs.row_mut(var, j)[di..di + w];
            for (k, o) in out.iter_mut().enumerate() {
                let s = si + k;
                let lap = mid[s + 1] + mid[s - 1] + above[s] + below[s] - 4.0 * mid[s];
                *o = alpha * lap;
            }
        }
    }
}

fn zero_gradient_walls(pd: &mut PatchData, global: &IntBox) {
    let interior = pd.interior;
    let total = pd.total_box();
    for var in 0..pd.nvars {
        for (i, j) in total.cells() {
            if interior.contains(i, j) || global.contains(i, j) {
                continue;
            }
            let ii = i.clamp(interior.lo[0], interior.hi[0]);
            let jj = j.clamp(interior.lo[1], interior.hi[1]);
            let v = pd.get(var, ii, jj);
            pd.set(var, i, j, v);
        }
    }
}

/// Mean, median, standard deviation of a sample — Table 5's columns.
pub fn stats(samples: &[f64]) -> (f64, f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
    };
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, median, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_runtime_is_flat() {
        // Constant per-rank work: modeled runtime must grow only weakly
        // with P (Fig. 8's flat lines).
        let t1 = run_scaling(
            &ScalingConfig {
                n: 20,
                per_rank: true,
                ranks: 1,
                ..ScalingConfig::default()
            },
            ClusterModel::cplant(),
        );
        let t8 = run_scaling(
            &ScalingConfig {
                n: 20,
                per_rank: true,
                ranks: 8,
                ..ScalingConfig::default()
            },
            ClusterModel::cplant(),
        );
        let growth = t8.modeled_time / t1.modeled_time;
        assert!(growth < 1.25, "weak scaling broke: {growth}");
    }

    #[test]
    fn strong_scaling_speeds_up() {
        let base = ScalingConfig {
            n: 64,
            per_rank: false,
            ranks: 1,
            ..ScalingConfig::default()
        };
        let t1 = run_scaling(&base, ClusterModel::cplant());
        let t4 = run_scaling(&ScalingConfig { ranks: 4, ..base }, ClusterModel::cplant());
        let speedup = t1.modeled_time / t4.modeled_time;
        assert!(speedup > 2.5, "speedup = {speedup}");
        assert!(speedup <= 4.01);
    }

    #[test]
    fn result_is_deterministic_across_rank_counts() {
        // The distributed field must match the single-rank field: the
        // checksum (sum of variable 0) is decomposition-invariant.
        let base = ScalingConfig {
            n: 32,
            per_rank: false,
            steps: 3,
            ..ScalingConfig::default()
        };
        let sums: Vec<f64> = [1usize, 2, 4]
            .iter()
            .map(|&p| {
                run_scaling(&ScalingConfig { ranks: p, ..base }, ClusterModel::zero()).checksum
            })
            .collect();
        assert!((sums[0] - sums[1]).abs() < 1e-6 * sums[0].abs(), "{sums:?}");
        assert!((sums[0] - sums[2]).abs() < 1e-6 * sums[0].abs(), "{sums:?}");
    }

    #[test]
    fn table5_magnitudes_with_cplant_calibration() {
        // 100x100 per rank, 5 steps: the paper's Table 5 reports a mean
        // of 161.7 s. The calibrated model must land in the same decade
        // and preserve the ordering 50² < 100² < 175².
        let model = ClusterModel::cplant();
        let t50 = run_scaling(
            &ScalingConfig {
                n: 50,
                per_rank: true,
                ranks: 2,
                stages_per_step: 2,
                work_per_cell_var: 1.0,
                ..ScalingConfig::default()
            },
            model,
        );
        let t100 = run_scaling(
            &ScalingConfig {
                n: 100,
                per_rank: true,
                ranks: 2,
                stages_per_step: 2,
                work_per_cell_var: 1.0,
                ..ScalingConfig::default()
            },
            model,
        );
        assert!(t50.modeled_time < t100.modeled_time);
        assert!(
            t100.modeled_time > 80.0 && t100.modeled_time < 400.0,
            "modeled 100² runtime = {}",
            t100.modeled_time
        );
        // Roughly the tile-area ratio (the paper's "run times scale as
        // the single-processor problem size").
        let ratio = t100.modeled_time / t50.modeled_time;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn overlap_is_bit_identical_to_blocking() {
        for ranks in [1usize, 4, 6] {
            let base = ScalingConfig {
                n: 24,
                per_rank: false,
                ranks,
                steps: 3,
                ..ScalingConfig::default()
            };
            let blocking = run_scaling(&base, ClusterModel::cplant());
            for coalesce in [true, false] {
                let overlapped = run_scaling(
                    &ScalingConfig {
                        overlap: true,
                        coalesce,
                        ..base
                    },
                    ClusterModel::cplant(),
                );
                assert_eq!(
                    blocking.checksum.to_bits(),
                    overlapped.checksum.to_bits(),
                    "ranks = {ranks}, coalesce = {coalesce}"
                );
            }
        }
    }

    #[test]
    fn coalescing_sends_one_message_per_neighbor_per_stage() {
        // 2×2 grid: 8 directed neighbour links; 3 steps × 2 stages.
        let base = ScalingConfig {
            n: 24,
            per_rank: false,
            ranks: 4,
            steps: 3,
            overlap: true,
            ..ScalingConfig::default()
        };
        let coalesced = run_scaling(&base, ClusterModel::zero());
        let exchanges = (base.steps * base.stages_per_step) as u64;
        assert_eq!(coalesced.halo_messages, 8 * exchanges);
        assert_eq!(
            coalesced.messages_coalesced,
            8 * exchanges * (NVARS as u64 - 1)
        );
        // Without coalescing every variable travels alone: 9× the
        // messages, same bytes, nothing saved.
        let naive = run_scaling(
            &ScalingConfig {
                coalesce: false,
                ..base
            },
            ClusterModel::zero(),
        );
        assert_eq!(naive.halo_messages, 8 * exchanges * NVARS as u64);
        assert_eq!(naive.messages_coalesced, 0);
        assert_eq!(naive.halo_bytes, coalesced.halo_bytes);
    }

    #[test]
    fn stats_helper() {
        let (mean, median, sigma) = stats(&[1.0, 2.0, 3.0, 4.0]);
        assert!((mean - 2.5).abs() < 1e-12);
        assert!((median - 2.5).abs() < 1e-12);
        assert!((sigma - (1.25f64).sqrt()).abs() < 1e-12);
    }
}
