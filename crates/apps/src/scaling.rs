//! The §5.2 scaling configuration: the reaction–diffusion code with
//! adaptivity off, SCMD-distributed over `P` ranks, measured under the
//! CPlant cluster performance model.
//!
//! Each rank owns one tile of the global uniform mesh (9 variables per
//! mesh point), runs the same per-step physics, exchanges ghost strips
//! with its neighbours through real messages, and participates in the
//! global spectral-radius reduction the `MaxDiffCoeffEvaluator` needs.
//! Wall-clock parallelism cannot be observed on this build host (1 core),
//! so runtimes are *modeled*: each rank's virtual clock advances by
//! `work × seconds_per_work_unit` for compute and by the LogP message law
//! for communication (see `cca-comm::model`). The calibration
//! (`ClusterModel::cplant`, 1 work unit = 1 cell-variable update per step)
//! reproduces the magnitude of Table 5: 5 steps on a 100×100 tile ≈ 162 s
//! of 433 MHz-Alpha time.

use cca_comm::{scmd, ClusterModel, Communicator};
use cca_mesh::boxes::IntBox;
use cca_mesh::data::PatchData;
use cca_mesh::decomp::UniformDecomp;

/// Variables per mesh point ("Each mesh point has 9 variables on it").
pub const NVARS: usize = 9;

/// One scaling experiment.
#[derive(Clone, Copy, Debug)]
pub struct ScalingConfig {
    /// Global mesh extent along each axis (constant-global-size mode) or
    /// per-rank extent (constant-per-rank mode).
    pub n: i64,
    /// Is `n` the per-rank tile size (weak scaling, Fig. 8/Table 5) or
    /// the global size (strong scaling, Fig. 9)?
    pub per_rank: bool,
    /// Number of ranks.
    pub ranks: usize,
    /// Macro steps (paper: 5 steps of 1e-7 s).
    pub steps: usize,
    /// RKC stages per macro step (each stage = one ghost exchange + one
    /// RHS sweep); the flame runs near s = 2–4.
    pub stages_per_step: usize,
    /// Modeled compute work (work units) per cell-variable per stage.
    /// 1.0 reproduces Table 5's magnitudes with `ClusterModel::cplant()`.
    pub work_per_cell_var: f64,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            n: 50,
            per_rank: true,
            ranks: 4,
            steps: 5,
            stages_per_step: 2,
            work_per_cell_var: 0.5,
        }
    }
}

/// Per-experiment outcome.
#[derive(Clone, Debug)]
pub struct ScalingResult {
    /// Modeled job runtime: the slowest rank's virtual clock, s.
    pub modeled_time: f64,
    /// Every rank's virtual clock, s.
    pub per_rank_time: Vec<f64>,
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Checksum of the final field (all ranks' interior sums), for
    /// cross-`P` determinism checks.
    pub checksum: f64,
}

/// Run the distributed diffusion workload and return modeled timings.
pub fn run_scaling(cfg: &ScalingConfig, model: ClusterModel) -> ScalingResult {
    let global = if cfg.per_rank {
        // Build a global mesh whose tiles are exactly n × n per rank.
        let d = UniformDecomp::new(IntBox::sized(cfg.n, cfg.n), cfg.ranks);
        IntBox::sized(cfg.n * d.px as i64, cfg.n * d.py as i64)
    } else {
        IntBox::sized(cfg.n, cfg.n)
    };
    let decomp = UniformDecomp::new(global, cfg.ranks);
    let cfg = *cfg;
    let reports = scmd::run_reported(cfg.ranks, model, move |comm: &Communicator| {
        rank_main(comm, &decomp, &cfg)
    });
    let per_rank_time: Vec<f64> = reports.iter().map(|r| r.vtime).collect();
    ScalingResult {
        modeled_time: scmd::modeled_runtime(&reports),
        per_rank_time,
        messages: reports.iter().map(|r| r.messages_sent).sum(),
        bytes: reports.iter().map(|r| r.bytes_sent).sum(),
        checksum: reports.iter().map(|r| r.result).sum(),
    }
}

/// The per-rank program: the "single component" of SCMD.
fn rank_main(comm: &Communicator, decomp: &UniformDecomp, cfg: &ScalingConfig) -> f64 {
    let tile = decomp.tile(comm.rank());
    let mut pd = PatchData::new(tile, NVARS, 1);
    // Deterministic initial condition: a smooth bump in variable 0
    // (temperature-like), uniform mixture elsewhere.
    let global = decomp.global;
    for (i, j) in tile.cells() {
        let x = (i as f64 + 0.5) / global.nx() as f64;
        let y = (j as f64 + 0.5) / global.ny() as f64;
        let bump = (-((x - 0.5).powi(2) + (y - 0.5).powi(2)) / 0.02).exp();
        pd.set(0, i, j, 300.0 + 1000.0 * bump);
        for v in 1..NVARS {
            pd.set(v, i, j, 0.1 * v as f64);
        }
    }
    let mut rhs = PatchData::new(tile, NVARS, 0);
    let alpha = 0.2; // diffusion number per stage (stability-safe)

    for _step in 0..cfg.steps {
        // Global spectral-radius reduction (the MaxDiffCoeffEvaluator's
        // allreduce), once per macro step.
        let local_max = pd.interior_max_abs(0);
        let _rho = comm.allreduce_max(&[local_max]);
        for _stage in 0..cfg.stages_per_step {
            // Real ghost exchange with the 4 neighbours.
            decomp.exchange_ghosts(comm, &mut pd, 10);
            // Physical boundary: zero gradient at the global walls.
            zero_gradient_walls(&mut pd, &global);
            // One explicit diffusion stage on all 9 variables.
            let interior = pd.interior;
            for var in 0..NVARS {
                for (i, j) in interior.cells() {
                    let lap = pd.get(var, i + 1, j)
                        + pd.get(var, i - 1, j)
                        + pd.get(var, i, j + 1)
                        + pd.get(var, i, j - 1)
                        - 4.0 * pd.get(var, i, j);
                    rhs.set(var, i, j, alpha * lap);
                }
            }
            for var in 0..NVARS {
                for (i, j) in interior.cells() {
                    pd.add(var, i, j, rhs.get(var, i, j));
                }
            }
            // Charge the modeled cost of the *real* physics (transport
            // properties + RKC stage + the amortized point-chemistry BDF
            // work) for this stage. Properties are evaluated on the
            // ghost-inclusive box — exactly as DiffusionPhysics does — so
            // small tiles pay a genuine surface-to-volume penalty.
            let cells_with_ring = tile.grow(1).count() as f64;
            comm.charge_compute(cells_with_ring * NVARS as f64 * cfg.work_per_cell_var);
        }
    }
    // Final consistency barrier mirrors the per-step synchronization of
    // the paper's runs.
    comm.barrier();
    pd.interior_sum(0)
}

fn zero_gradient_walls(pd: &mut PatchData, global: &IntBox) {
    let interior = pd.interior;
    let total = pd.total_box();
    for var in 0..pd.nvars {
        for (i, j) in total.cells() {
            if interior.contains(i, j) || global.contains(i, j) {
                continue;
            }
            let ii = i.clamp(interior.lo[0], interior.hi[0]);
            let jj = j.clamp(interior.lo[1], interior.hi[1]);
            let v = pd.get(var, ii, jj);
            pd.set(var, i, j, v);
        }
    }
}

/// Mean, median, standard deviation of a sample — Table 5's columns.
pub fn stats(samples: &[f64]) -> (f64, f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
    };
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, median, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_runtime_is_flat() {
        // Constant per-rank work: modeled runtime must grow only weakly
        // with P (Fig. 8's flat lines).
        let t1 = run_scaling(
            &ScalingConfig {
                n: 20,
                per_rank: true,
                ranks: 1,
                ..ScalingConfig::default()
            },
            ClusterModel::cplant(),
        );
        let t8 = run_scaling(
            &ScalingConfig {
                n: 20,
                per_rank: true,
                ranks: 8,
                ..ScalingConfig::default()
            },
            ClusterModel::cplant(),
        );
        let growth = t8.modeled_time / t1.modeled_time;
        assert!(growth < 1.25, "weak scaling broke: {growth}");
    }

    #[test]
    fn strong_scaling_speeds_up() {
        let base = ScalingConfig {
            n: 64,
            per_rank: false,
            ranks: 1,
            ..ScalingConfig::default()
        };
        let t1 = run_scaling(&base, ClusterModel::cplant());
        let t4 = run_scaling(&ScalingConfig { ranks: 4, ..base }, ClusterModel::cplant());
        let speedup = t1.modeled_time / t4.modeled_time;
        assert!(speedup > 2.5, "speedup = {speedup}");
        assert!(speedup <= 4.01);
    }

    #[test]
    fn result_is_deterministic_across_rank_counts() {
        // The distributed field must match the single-rank field: the
        // checksum (sum of variable 0) is decomposition-invariant.
        let base = ScalingConfig {
            n: 32,
            per_rank: false,
            steps: 3,
            ..ScalingConfig::default()
        };
        let sums: Vec<f64> = [1usize, 2, 4]
            .iter()
            .map(|&p| {
                run_scaling(&ScalingConfig { ranks: p, ..base }, ClusterModel::zero()).checksum
            })
            .collect();
        assert!((sums[0] - sums[1]).abs() < 1e-6 * sums[0].abs(), "{sums:?}");
        assert!((sums[0] - sums[2]).abs() < 1e-6 * sums[0].abs(), "{sums:?}");
    }

    #[test]
    fn table5_magnitudes_with_cplant_calibration() {
        // 100x100 per rank, 5 steps: the paper's Table 5 reports a mean
        // of 161.7 s. The calibrated model must land in the same decade
        // and preserve the ordering 50² < 100² < 175².
        let model = ClusterModel::cplant();
        let t50 = run_scaling(
            &ScalingConfig {
                n: 50,
                per_rank: true,
                ranks: 2,
                stages_per_step: 2,
                work_per_cell_var: 1.0,
                ..ScalingConfig::default()
            },
            model,
        );
        let t100 = run_scaling(
            &ScalingConfig {
                n: 100,
                per_rank: true,
                ranks: 2,
                stages_per_step: 2,
                work_per_cell_var: 1.0,
                ..ScalingConfig::default()
            },
            model,
        );
        assert!(t50.modeled_time < t100.modeled_time);
        assert!(
            t100.modeled_time > 80.0 && t100.modeled_time < 400.0,
            "modeled 100² runtime = {}",
            t100.modeled_time
        );
        // Roughly the tile-area ratio (the paper's "run times scale as
        // the single-processor problem size").
        let ratio = t100.modeled_time / t50.modeled_time;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn stats_helper() {
        let (mean, median, sigma) = stats(&[1.0, 2.0, 3.0, 4.0]);
        assert!((mean - 2.5).abs() < 1e-12);
        assert!((median - 2.5).abs() < 1e-12);
        assert!((sigma - (1.25f64).sqrt()).abs() < 1e-12);
    }
}
