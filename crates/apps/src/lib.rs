//! `cca-apps` — the three component assemblies of the paper, built from
//! the `cca-components` palette through framework scripts:
//!
//! * [`ignition0d`] — §4.1, the 0D homogeneous-ignition code of Fig. 1 /
//!   Table 1;
//! * [`reaction_diffusion`] — §4.2, the 2D reaction–diffusion flame on
//!   SAMR of Fig. 2 / Table 2 (operator-split RKC diffusion + implicit
//!   point chemistry);
//! * [`shock_interface`] — §4.3, the shock/density-interface interaction
//!   of Fig. 5 / Table 3 (MUSCL-Godunov or EFM on a multilevel mesh);
//! * [`palette`] — the component palette shared by all assemblies (the
//!   analogue of CCAFFEINE's directory of `.so` components);
//! * [`scaling`] — the distributed (SCMD) uniform-mesh configuration of
//!   the §5.2 scaling studies, with the CPlant cluster performance model;
//! * [`samr`] — the distributed *adaptive* configuration: reaction–
//!   diffusion on a two-level SAMR hierarchy whose storage is spread
//!   across ranks, with regrid-time rebalancing and patch migration,
//!   bit-identical at every rank count;
//! * [`recover`] — the checkpoint/restart recovery driver: kill a rank
//!   mid-run deterministically, then restart from the last complete
//!   `cca-ckpt` set at any rank count with bit-identical final fields.

pub mod ignition0d;
pub mod palette;
pub mod reaction_diffusion;
pub mod recover;
pub mod samr;
pub mod scaling;
pub mod schedule;
pub mod shock_interface;
