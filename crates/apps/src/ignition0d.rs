//! The 0D homogeneous ignition assembly (paper §4.1, Fig. 1, Table 1):
//! `Initializer` → `CvodeComponent` → `problemModeler` → `ThermoChemistry`
//! plus `dPdt`, integrating `Φ = {T, Y₁..Y_{N−1}, P}` in a rigid adiabatic
//! vessel.

use cca_components::ports::SolutionPort;
use cca_core::{script::run_script, CcaError};
use std::rc::Rc;

/// Outcome of the 0D run.
#[derive(Clone, Debug)]
pub struct IgnitionResult {
    /// Final `Φ = {T, Y₁..Y_{N−1}, P}`.
    pub state: Vec<f64>,
    /// Final time reached, s.
    pub time: f64,
    /// Arena rendering of the assembly (the Fig. 1 stand-in).
    pub arena: String,
    /// Species count of the mechanism used.
    pub n_species: usize,
}

impl IgnitionResult {
    /// Final temperature, K.
    pub fn temperature(&self) -> f64 {
        self.state[0]
    }

    /// Final pressure, Pa.
    pub fn pressure(&self) -> f64 {
        *self.state.last().expect("non-empty state")
    }

    /// Full mass-fraction vector (bulk species closed to ΣY = 1).
    pub fn mass_fractions(&self) -> Vec<f64> {
        let n = self.n_species;
        let mut y: Vec<f64> = self.state[1..n].to_vec();
        y.push(1.0 - y.iter().sum::<f64>());
        y
    }
}

/// The assembly script (the analogue of the CCAFFEINE rc file that the
/// GUI of Fig. 1 generates).
pub fn ignition_script(reduced: bool, t0: f64, p0: f64, t_end: f64) -> String {
    let chem_class = if reduced {
        "ThermoChemistryReduced"
    } else {
        "ThermoChemistry"
    };
    format!(
        "# 0D ignition code (paper Fig. 1)\n\
         instantiate {chem_class} chem\n\
         instantiate CvodeComponent cvode\n\
         instantiate dPdt dpdt\n\
         instantiate problemModeler modeler\n\
         instantiate Initializer init\n\
         connect dpdt chemistry chem chemistry\n\
         connect modeler chemistry chem chemistry\n\
         connect modeler dpdt dpdt dpdt\n\
         connect init chemistry chem chemistry\n\
         connect init rhs modeler rhs\n\
         connect init integrator cvode integrator\n\
         connect init modeler-config modeler config\n\
         parameter init T0 {t0}\n\
         parameter init P0 {p0}\n\
         parameter init t_end {t_end:e}\n\
         arena\n\
         go init go\n"
    )
}

/// The framework `ignition_script` assumes — the standard palette, which
/// already contains every class the 0D assembly names. Exposed for
/// symmetry with the other assemblies so static tools can vet the script.
pub fn ignition_framework() -> cca_core::Framework {
    crate::palette::standard_palette()
}

/// Assemble and run the 0D ignition code.
///
/// Defaults reproduce the paper: stoichiometric H₂–air, `T0 = 1000 K`,
/// `P0 = 1 atm`, integrated to `t_end = 1 ms` ("The code integrates up to
/// 1 ms").
pub fn run_ignition_0d(
    reduced: bool,
    t0: f64,
    p0: f64,
    t_end: f64,
) -> Result<IgnitionResult, CcaError> {
    let mut fw = ignition_framework();
    let transcript = run_script(&mut fw, &ignition_script(reduced, t0, p0, t_end))?;
    let solution: Rc<dyn SolutionPort> = fw.get_provides_port("init", "solution")?;
    let state = solution.solution();
    let n_species = if reduced { 8 } else { 9 };
    Ok(IgnitionResult {
        state,
        time: solution.time(),
        arena: transcript.arenas.first().cloned().unwrap_or_default(),
        n_species,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §4.1 headline: the mixture ignites within 1 ms.
    #[test]
    fn paper_case_ignites() {
        let r = run_ignition_0d(false, 1000.0, 101_325.0, 1.0e-3).unwrap();
        assert!(
            r.temperature() > 2500.0 && r.temperature() < 3800.0,
            "T = {}",
            r.temperature()
        );
        // Rigid vessel: pressure rises with temperature.
        assert!(r.pressure() > 2.0 * 101_325.0);
        let y = r.mass_fractions();
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(y[0] < 0.01, "H2 still unburned: {}", y[0]);
        // The arena shows the Fig. 1 wiring.
        assert!(r.arena.contains("[init : Initializer]"), "{}", r.arena);
        assert!(r.arena.contains("rhs -> modeler.rhs"));
        assert!(r.arena.contains("dpdt -> dpdt.dpdt"));
    }

    /// The reduced 8-species/5-reaction mechanism also runs through the
    /// same assembly (Table 4's configuration) — chain carriers are
    /// produced but the 5-step skeleton lacks the recombination steps that
    /// release most of the heat, so no thermal runaway is required.
    #[test]
    fn reduced_mechanism_runs() {
        let r = run_ignition_0d(true, 1100.0, 101_325.0, 1.0e-4).unwrap();
        assert_eq!(r.n_species, 8);
        assert!(r.temperature().is_finite());
        let y = r.mass_fractions();
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Cold mixture: nothing happens (negative control).
    #[test]
    fn cold_mixture_stays_cold() {
        let r = run_ignition_0d(false, 300.0, 101_325.0, 1.0e-4).unwrap();
        assert!(
            (r.temperature() - 300.0).abs() < 1.0,
            "T = {}",
            r.temperature()
        );
        assert!((r.pressure() - 101_325.0).abs() < 500.0);
    }
}
