//! The 2D shock/density-interface assembly (paper §4.3, Fig. 5, Table 3):
//! a Mach-1.5 (or stronger) shock in Air rupturing an oblique interface
//! with a heavy gas, on a multilevel mesh, with the interfacial
//! circulation Γ(t) as the convergence diagnostic (Fig. 7).

use cca_components::ports::{
    DataPort, EigenEstimatePort, InitialConditionPort, MeshPort, RegridPort, StatisticsPort,
    TimeIntegratorPort,
};
use cca_core::{script::run_script, CcaError};
use cca_core::{Component, GoPort, ParameterPort, ParameterStore, Services};
use std::cell::RefCell;
use std::rc::Rc;

/// Which interface flux the assembly instantiates — the paper's
/// script-level swap ("simply replacing the GodunovFlux component with
/// EFMFlux... Recompilation/relinking of the code was not required").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FluxChoice {
    /// Exact-Riemann Godunov flux.
    Godunov,
    /// Pullin's Equilibrium Flux Method.
    Efm,
}

/// Configuration of one shock-interface run.
#[derive(Clone, Copy, Debug)]
pub struct ShockConfig {
    /// Coarse cells along x.
    pub nx: i64,
    /// Coarse cells along y.
    pub ny: i64,
    /// Refinement ratio.
    pub ratio: i64,
    /// Number of mesh levels (Fig. 7 sweeps 1, 2, 3).
    pub max_levels: usize,
    /// CFL number.
    pub cfl: f64,
    /// End time in units of τ (shock transit time of the interface);
    /// Fig. 6 shows t/τ = 2.096.
    pub t_end_over_tau: f64,
    /// Incident shock Mach number (1.5 baseline, ≈3.5 for the EFM case).
    pub mach: f64,
    /// Air/heavy-gas density ratio (paper: 3).
    pub density_ratio: f64,
    /// Interface angle from the vertical, degrees (paper: 30).
    pub angle_deg: f64,
    /// Steps between regrids.
    pub regrid_interval: usize,
    /// Undivided density-gradient threshold for refinement.
    pub threshold: f64,
    /// Flux scheme.
    pub flux: FluxChoice,
    /// Slope limiter for the `States` component (0 = first-order,
    /// 1 = minmod, 2 = van Leer, 3 = MC, 4 = superbee). Deep hierarchies
    /// resolve shocks sharply enough that the more dissipative minmod is
    /// the robust choice with RK2.
    pub limiter: i64,
}

impl Default for ShockConfig {
    fn default() -> Self {
        ShockConfig {
            nx: 48,
            ny: 24,
            ratio: 2,
            max_levels: 2,
            cfl: 0.4,
            t_end_over_tau: 1.0,
            mach: 1.5,
            density_ratio: 3.0,
            angle_deg: 30.0,
            regrid_interval: 4,
            threshold: 0.08,
            flux: FluxChoice::Godunov,
            limiter: 2,
        }
    }
}

/// Results of a shock-interface run.
#[derive(Clone, Debug, Default)]
pub struct ShockReport {
    /// `(t/τ, Γ)` interfacial circulation series (Fig. 7).
    pub circulation_series: Vec<(f64, f64)>,
    /// Final density field samples `(x, y, rho, zeta, level)`, finest
    /// covering only (Fig. 6's data).
    pub final_density: Vec<(f64, f64, f64, f64, usize)>,
    /// Patch boxes per level at the end.
    pub final_patches: Vec<(usize, [i64; 2], [i64; 2])>,
    /// Cells per level at the end.
    pub cells_per_level: Vec<i64>,
    /// Steps taken.
    pub steps: usize,
    /// Global density extrema over the run (positivity check).
    pub rho_min: f64,
    /// See [`ShockReport::rho_min`].
    pub rho_max: f64,
}

struct DriverInner {
    services: Services,
    params: Rc<ParameterStore>,
    report: Rc<RefCell<ShockReport>>,
}

impl DriverInner {
    fn p(&self, key: &str, default: f64) -> f64 {
        self.params.get_parameter(key).unwrap_or(default)
    }
}

impl GoPort for DriverInner {
    fn go(&self) -> Result<(), String> {
        let mesh = self
            .services
            .get_port::<Rc<dyn MeshPort>>("mesh")
            .map_err(|e| e.to_string())?;
        let data = self
            .services
            .get_port::<Rc<dyn DataPort>>("data")
            .map_err(|e| e.to_string())?;
        let ic = self
            .services
            .get_port::<Rc<dyn InitialConditionPort>>("ic")
            .map_err(|e| e.to_string())?;
        let integ = self
            .services
            .get_port::<Rc<dyn TimeIntegratorPort>>("time-integrator")
            .map_err(|e| e.to_string())?;
        let eigen = self
            .services
            .get_port::<Rc<dyn EigenEstimatePort>>("eigen-estimate")
            .map_err(|e| e.to_string())?;
        let regrid = self
            .services
            .get_port::<Rc<dyn RegridPort>>("regrid")
            .map_err(|e| e.to_string())?;
        let stats = self
            .services
            .get_port::<Rc<dyn StatisticsPort>>("statistics")
            .map_err(|e| e.to_string())?;

        let nx = self.p("nx", 48.0) as i64;
        let ny = self.p("ny", 24.0) as i64;
        let ratio = self.p("ratio", 2.0) as i64;
        let max_levels = self.p("max_levels", 2.0) as usize;
        let cfl = self.p("cfl", 0.4);
        let t_end_over_tau = self.p("t_end_over_tau", 1.0);
        let mach = self.p("mach", 1.5);
        let regrid_interval = (self.p("regrid_interval", 4.0) as usize).max(1);
        let threshold = self.p("threshold", 0.08);
        let max_steps = self.p("max_steps", 100_000.0) as usize;

        // Domain: 2:1 shock tube of height 1.
        let ly = 1.0;
        let lx = ly * nx as f64 / ny as f64;
        mesh.create(nx, ny, lx, ly, ratio);
        data.create_data_object("U", 5, 2);
        ic.apply("U");
        for level in 0..max_levels.saturating_sub(1) {
            regrid.estimate_and_regrid("U", level, 0, threshold);
            ic.apply("U");
        }

        // Shock kinematics: speed Ws = Ms (pre-shock c = 1). τ = the time
        // the shock needs to traverse the oblique interface's horizontal
        // extent; t is counted from first shock/interface contact.
        let ws = mach;
        let x_shock = self.p("x_shock", 0.15 * lx);
        let x_interface = self.p("x_interface", 0.35 * lx);
        let angle = self.p("angle_deg", 30.0).to_radians();
        let t_contact = (x_interface - x_shock) / ws;
        let tau = ly * angle.tan() / ws;
        let t_end = t_contact + t_end_over_tau * tau;

        let mut report = self.report.borrow_mut();
        report.rho_min = f64::INFINITY;
        let mut t = 0.0;
        let mut step = 0usize;
        report
            .circulation_series
            .push(((t - t_contact) / tau, stats.circulation("U", 0.001, 0.999)));
        while t < t_end && step < max_steps {
            if max_levels > 1 && step > 0 && step.is_multiple_of(regrid_interval) {
                let top = mesh.n_levels().min(max_levels - 1);
                for level in 0..top {
                    regrid.estimate_and_regrid("U", level, 0, threshold);
                }
            }
            let smax = eigen.estimate("U");
            if smax.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!("non-positive wave speed at t = {t:e}"));
            }
            let dt = (cfl / smax).min(t_end - t);
            integ
                .advance("U", t, dt)
                .map_err(|e| format!("RK2 step failed: {e}"))?;
            data.restrict_down("U");
            t += dt;
            step += 1;
            report
                .circulation_series
                .push(((t - t_contact) / tau, stats.circulation("U", 0.001, 0.999)));
            let rmin = stats.min_var("U", 0);
            let rmax = stats.max_var("U", 0);
            report.rho_min = report.rho_min.min(rmin);
            report.rho_max = report.rho_max.max(rmax);
            if rmin <= 0.0 {
                return Err(format!("density positivity lost at t = {t:e}"));
            }
        }
        report.steps = step;

        // Final snapshot: density/zeta at the finest covering.
        for level in 0..mesh.n_levels() {
            for (id, interior, _) in mesh.patches(level) {
                report.final_patches.push((level, interior.lo, interior.hi));
                data.with_patch("U", level, id, &mut |pd| {
                    let interior = pd.interior;
                    for (i, j) in interior.cells() {
                        if mesh.covered_by_finer(level, i, j) {
                            continue;
                        }
                        let [x, y] = mesh.cell_center(level, i, j);
                        let rho = pd.get(0, i, j);
                        let zeta = pd.get(4, i, j) / rho;
                        report.final_density.push((x, y, rho, zeta, level));
                    }
                });
            }
        }
        report.cells_per_level = (0..mesh.n_levels())
            .map(|l| {
                mesh.patches(l)
                    .iter()
                    .map(|(_, b, _)| b.count())
                    .sum::<i64>()
            })
            .collect();
        Ok(())
    }
}

/// The shock driver component: provides `go`, `setup`, `report`; uses all
/// Table 3 subsystems.
#[derive(Default)]
pub struct ShockDriver;

impl Component for ShockDriver {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.register_uses_port::<Rc<dyn InitialConditionPort>>("ic");
        s.register_uses_port::<Rc<dyn TimeIntegratorPort>>("time-integrator");
        s.register_uses_port::<Rc<dyn EigenEstimatePort>>("eigen-estimate");
        s.register_uses_port::<Rc<dyn RegridPort>>("regrid");
        s.register_uses_port::<Rc<dyn StatisticsPort>>("statistics");
        let params = Rc::new(ParameterStore::new());
        let report = Rc::new(RefCell::new(ShockReport::default()));
        let inner = Rc::new(DriverInner {
            services: s.clone(),
            params: params.clone(),
            report: report.clone(),
        });
        s.add_provides_port::<Rc<dyn GoPort>>("go", inner);
        s.add_provides_port::<Rc<dyn ParameterPort>>("setup", params);
        s.add_provides_port::<Rc<RefCell<ShockReport>>>("report", report);
    }
}

/// The assembly script (Fig. 5's wiring). The flux class name is the only
/// difference between the Godunov and EFM variants.
pub fn shock_script(cfg: &ShockConfig) -> String {
    let flux_class = match cfg.flux {
        FluxChoice::Godunov => "GodunovFlux",
        FluxChoice::Efm => "EFMFlux",
    };
    format!(
        "# 2D shock-interface code (paper Fig. 5)\n\
         instantiate GrACEComponent grace\n\
         instantiate GasProperties gas\n\
         instantiate States states\n\
         instantiate {flux_class} flux\n\
         instantiate InviscidFlux inviscid\n\
         instantiate CharacteristicQuantities characteristics\n\
         instantiate BoundaryConditions bc\n\
         instantiate ExplicitIntegratorRK2 rk2\n\
         instantiate ConicalInterfaceIC ic\n\
         instantiate ErrorEstAndRegrid regrid\n\
         instantiate ProlongRestrict interp\n\
         instantiate StatisticsComponent statistics\n\
         instantiate ShockDriver driver\n\
         connect inviscid states states states\n\
         connect inviscid flux flux flux\n\
         connect inviscid gas gas gas\n\
         connect characteristics mesh grace mesh\n\
         connect characteristics data grace data\n\
         connect characteristics gas gas gas\n\
         connect rk2 mesh grace mesh\n\
         connect rk2 data grace data\n\
         connect rk2 patch-rhs inviscid patch-rhs\n\
         connect rk2 bc bc bc\n\
         connect ic mesh grace mesh\n\
         connect ic data grace data\n\
         connect ic gas gas gas\n\
         connect regrid mesh grace mesh\n\
         connect regrid data grace data\n\
         connect regrid bc bc bc\n\
         connect interp mesh grace mesh\n\
         connect interp data grace data\n\
         connect statistics mesh grace mesh\n\
         connect statistics data grace data\n\
         connect driver mesh grace mesh\n\
         connect driver data grace data\n\
         connect driver ic ic ic\n\
         connect driver time-integrator rk2 time-integrator\n\
         connect driver eigen-estimate characteristics eigen-estimate\n\
         connect driver regrid regrid regrid\n\
         connect driver statistics statistics statistics\n\
         parameter ic mach {}\n\
         parameter ic density_ratio {}\n\
         parameter ic angle_deg {}\n\
         parameter states limiter {}\n\
         parameter driver nx {}\n\
         parameter driver ny {}\n\
         parameter driver ratio {}\n\
         parameter driver max_levels {}\n\
         parameter driver cfl {}\n\
         parameter driver t_end_over_tau {}\n\
         parameter driver mach {}\n\
         parameter driver angle_deg {}\n\
         parameter driver regrid_interval {}\n\
         parameter driver threshold {}\n\
         arena\n\
         go driver go\n",
        cfg.mach,
        cfg.density_ratio,
        cfg.angle_deg,
        cfg.limiter,
        cfg.nx,
        cfg.ny,
        cfg.ratio,
        cfg.max_levels,
        cfg.cfl,
        cfg.t_end_over_tau,
        cfg.mach,
        cfg.angle_deg,
        cfg.regrid_interval,
        cfg.threshold,
    )
}

/// Assemble and run; returns the report and the arena rendering.
pub fn run_shock_interface(cfg: &ShockConfig) -> Result<(ShockReport, String), CcaError> {
    let (report, arena, _) = run_shock_interface_impl(cfg, false)?;
    Ok((report, arena))
}

/// Like [`run_shock_interface`] but with the framework profiler enabled:
/// additionally returns the TAU-style per-component timing report (paper
/// future-work item (4)).
pub fn run_shock_interface_profiled(
    cfg: &ShockConfig,
) -> Result<(ShockReport, String, String), CcaError> {
    run_shock_interface_impl(cfg, true)
}

/// The framework `shock_script` assumes: the standard palette plus this
/// assembly's `ShockDriver`. Exposed so static tools (the `cca-analyze`
/// linter) can vet the script against the exact palette it runs in.
pub fn shock_framework() -> cca_core::Framework {
    let mut fw = crate::palette::standard_palette();
    fw.register_class("ShockDriver", || Box::<ShockDriver>::default());
    fw
}

fn run_shock_interface_impl(
    cfg: &ShockConfig,
    profile: bool,
) -> Result<(ShockReport, String, String), CcaError> {
    let mut fw = shock_framework();
    fw.profiler().set_enabled(profile);
    let transcript = run_script(&mut fw, &shock_script(cfg))?;
    let report: Rc<RefCell<ShockReport>> = fw.get_provides_port("driver", "report")?;
    let report = report.borrow().clone();
    Ok((
        report,
        transcript.arenas.first().cloned().unwrap_or_default(),
        fw.profiler().report(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Baseline Mach-1.5 run on a single level: the shock deposits
    /// negative circulation on the interface (baroclinic torque with
    /// light-to-heavy geometry), density stays positive, compression
    /// stays bounded by the strong-shock limit.
    #[test]
    fn mach_1_5_deposits_negative_circulation() {
        let cfg = ShockConfig {
            nx: 40,
            ny: 20,
            max_levels: 1,
            t_end_over_tau: 0.8,
            ..ShockConfig::default()
        };
        let (report, arena) = run_shock_interface(&cfg).unwrap();
        assert!(report.steps > 3);
        let last = report.circulation_series.last().unwrap().1;
        assert!(last < -1e-4, "Γ = {last} should be negative");
        assert!(report.rho_min > 0.0);
        // gamma = 1.4: max compression across any single shock is 6x.
        assert!(
            report.rho_max < 6.0 * 4.2 * 1.4,
            "rho_max = {}",
            report.rho_max
        );
        assert!(arena.contains("[flux : GodunovFlux]"));
    }

    /// The Godunov→EFM swap is script-only and both run the same case.
    #[test]
    fn flux_swap_without_recompilation() {
        let base = ShockConfig {
            nx: 24,
            ny: 12,
            max_levels: 1,
            t_end_over_tau: 0.3,
            ..ShockConfig::default()
        };
        let (g, arena_g) = run_shock_interface(&base).unwrap();
        let efm = ShockConfig {
            flux: FluxChoice::Efm,
            ..base
        };
        let (e, arena_e) = run_shock_interface(&efm).unwrap();
        assert!(arena_g.contains("GodunovFlux"));
        assert!(arena_e.contains("EFMFlux"));
        // Same physics, same sign and order of magnitude of circulation.
        let gg = g.circulation_series.last().unwrap().1;
        let ge = e.circulation_series.last().unwrap().1;
        assert!(gg < 0.0 && ge < 0.0, "Γ: godunov {gg}, efm {ge}");
        assert!(
            (gg - ge).abs() < 0.5 * gg.abs().max(ge.abs()).max(1e-3),
            "schemes diverged: {gg} vs {ge}"
        );
    }

    /// AMR run refines the shock and interface.
    #[test]
    fn two_level_run_refines_features() {
        let cfg = ShockConfig {
            nx: 32,
            ny: 16,
            max_levels: 2,
            t_end_over_tau: 0.3,
            ..ShockConfig::default()
        };
        let (report, _) = run_shock_interface(&cfg).unwrap();
        assert!(
            report.cells_per_level.len() == 2,
            "{:?}",
            report.cells_per_level
        );
        assert!(report.cells_per_level[1] > 0);
        // Fine cells cover a minority of the domain (adaptivity pays).
        let coarse_equiv = report.cells_per_level[1] / 4;
        assert!(coarse_equiv < report.cells_per_level[0]);
    }
}
