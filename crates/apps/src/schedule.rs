//! Schedule-as-data for the SCMD scaling runs: the halo topology and the
//! overlap/coalesce configuration *emit* a per-rank instruction stream,
//! and `scaling::rank_main` *interprets* it.
//!
//! Each instruction is either a communication op — carrying both the pure
//! [`PlanOp`] the static checker consumes and a [`Binding`] that ties the
//! payload to mesh regions — or a compute action ([`ComputeKind`]). The
//! comm ops, stripped of bindings, form the [`CommPlan`] that
//! `cca-analyze` verifies before any rank runs ([`comm_plan`]) and that
//! the runtime conformance auditor replays recorded traces against. The
//! emitted order mirrors the PR 5 hand-written schedules instruction for
//! instruction, so interpretation is bit-identical in results *and*
//! modeled timings.

use crate::scaling::{ScalingConfig, HALO_TAG, NVARS};
use cca_analyze::commplan::{CommPlan, OpKind, PlanOp};
use cca_mesh::boxes::IntBox;
use cca_mesh::decomp::UniformDecomp;

/// How a comm op's payload maps onto the rank's patch data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Binding {
    /// No payload binding (barrier, waitall).
    None,
    /// Reduce the max |variable 0| over the interior (the spectral-radius
    /// allreduce of the `MaxDiffCoeffEvaluator`).
    SpectralRadius,
    /// Pack all [`NVARS`] variables of the region into one buffer.
    PackAll(IntBox),
    /// Pack a single variable of the region.
    PackVar(usize, IntBox),
    /// Unpack a received buffer into all [`NVARS`] variables of the region.
    UnpackAll(IntBox),
    /// Unpack a received buffer into a single variable of the region.
    UnpackVar(usize, IntBox),
}

/// Compute actions interleaved with the comm ops of a stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ComputeKind {
    /// Zero-gradient physical-wall ghost fill.
    Walls,
    /// Blocking schedule: RHS sweep over the whole tile, then charge
    /// `work` units to the clock.
    SweepFull {
        /// Modeled work units to charge.
        work: f64,
    },
    /// Overlapped schedule: RHS sweep over the tile interior (one cell in
    /// from every edge) while halo messages are in flight, then charge
    /// the interior's share of the stage work.
    SweepInterior {
        /// Modeled work units to charge.
        work: f64,
    },
    /// Overlapped schedule: RHS sweep over the one-cell boundary ring
    /// after the halo has drained, then charge the remaining stage work.
    SweepHalo {
        /// Modeled work units to charge.
        work: f64,
    },
    /// Apply the accumulated RHS to the field (end of a stage).
    StageUpdate,
}

/// One step of a rank's program: a communication op with its payload
/// binding, or a compute action.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// Communication: the checkable op plus its mesh binding.
    Comm(PlanOp, Binding),
    /// Computation (never enters the comm plan).
    Compute(ComputeKind),
}

/// Emit rank `rank`'s full instruction stream for one scaling run.
///
/// The stream reproduces the PR 5 schedules exactly: per macro step one
/// spectral-radius reduce, then per stage either the blocking two-pass
/// exchange followed by a full sweep, or the overlapped
/// irecv/isend/interior-sweep/waitall/halo-sweep sequence; one barrier
/// closes the run. Every comm op carries an epoch — one per reduce, one
/// per exchange stage, one for the final barrier — that all ranks compute
/// identically.
pub fn rank_schedule(decomp: &UniformDecomp, cfg: &ScalingConfig, rank: usize) -> Vec<Instr> {
    let tile = decomp.tile(rank);
    let stage_work = tile.grow(1).count() as f64 * NVARS as f64 * cfg.work_per_cell_var;
    let mut out = Vec::new();
    let mut epoch = 0u32;
    for _step in 0..cfg.steps {
        out.push(Instr::Comm(
            PlanOp::new(epoch, OpKind::Reduce { bytes: 8 }),
            Binding::SpectralRadius,
        ));
        epoch += 1;
        for _stage in 0..cfg.stages_per_step {
            if cfg.overlap {
                emit_overlapped_stage(&mut out, decomp, cfg, rank, epoch, stage_work);
            } else {
                emit_blocking_stage(&mut out, decomp, rank, epoch, stage_work);
            }
            epoch += 1;
            out.push(Instr::Compute(ComputeKind::StageUpdate));
        }
    }
    out.push(Instr::Comm(
        PlanOp::new(epoch, OpKind::Barrier),
        Binding::None,
    ));
    out
}

/// The overlapped single-pass exchange: post every receive up front, pack
/// and launch the sends (one coalesced message per neighbour, or one per
/// variable), sweep the interior while messages are in flight, drain with
/// one waitall, then sweep the boundary ring.
fn emit_overlapped_stage(
    out: &mut Vec<Instr>,
    decomp: &UniformDecomp,
    cfg: &ScalingConfig,
    rank: usize,
    epoch: u32,
    stage_work: f64,
) {
    let tile = decomp.tile(rank);
    let links = decomp.halo_links(rank, 1);
    for link in &links {
        if cfg.coalesce {
            out.push(Instr::Comm(
                PlanOp::new(
                    epoch,
                    OpKind::Irecv {
                        peer: link.nbr,
                        tag: HALO_TAG,
                        bytes: link.recv.count() as u64 * NVARS as u64 * 8,
                    },
                ),
                Binding::UnpackAll(link.recv),
            ));
        } else {
            for var in 0..NVARS {
                out.push(Instr::Comm(
                    PlanOp::new(
                        epoch,
                        OpKind::Irecv {
                            peer: link.nbr,
                            tag: HALO_TAG,
                            bytes: link.recv.count() as u64 * 8,
                        },
                    ),
                    Binding::UnpackVar(var, link.recv),
                ));
            }
        }
    }
    for link in &links {
        if cfg.coalesce {
            out.push(Instr::Comm(
                PlanOp::new(
                    epoch,
                    OpKind::Isend {
                        peer: link.nbr,
                        tag: HALO_TAG,
                        bytes: link.send.count() as u64 * NVARS as u64 * 8,
                    },
                ),
                Binding::PackAll(link.send),
            ));
        } else {
            for var in 0..NVARS {
                out.push(Instr::Comm(
                    PlanOp::new(
                        epoch,
                        OpKind::Isend {
                            peer: link.nbr,
                            tag: HALO_TAG,
                            bytes: link.send.count() as u64 * 8,
                        },
                    ),
                    Binding::PackVar(var, link.send),
                ));
            }
        }
    }
    out.push(Instr::Compute(ComputeKind::Walls));
    let core_cells = tile.interior_shrink(1).map_or(0, |c| c.count());
    let interior_work = stage_work * core_cells as f64 / tile.count() as f64;
    out.push(Instr::Compute(ComputeKind::SweepInterior {
        work: interior_work,
    }));
    out.push(Instr::Comm(
        PlanOp::new(epoch, OpKind::Waitall),
        Binding::None,
    ));
    out.push(Instr::Compute(ComputeKind::SweepHalo {
        work: stage_work - interior_work,
    }));
}

/// The blocking two-pass exchange of `UniformDecomp::exchange_ghosts`:
/// x strips under [`HALO_TAG`], then full-width y strips (corners
/// included) under `HALO_TAG + 1`, each as a buffered send followed by a
/// blocking receive; then walls and one full-tile sweep.
fn emit_blocking_stage(
    out: &mut Vec<Instr>,
    decomp: &UniformDecomp,
    rank: usize,
    epoch: u32,
    stage_work: f64,
) {
    let me = decomp.tile(rank);
    let g = 1i64;
    let [xlo, xhi, ylo, yhi] = decomp.neighbors(rank);
    let pairs = [
        (
            xlo,
            IntBox::new([me.lo[0], me.lo[1]], [me.lo[0] + g - 1, me.hi[1]]),
            IntBox::new([me.lo[0] - g, me.lo[1]], [me.lo[0] - 1, me.hi[1]]),
            HALO_TAG,
        ),
        (
            xhi,
            IntBox::new([me.hi[0] - g + 1, me.lo[1]], [me.hi[0], me.hi[1]]),
            IntBox::new([me.hi[0] + 1, me.lo[1]], [me.hi[0] + g, me.hi[1]]),
            HALO_TAG,
        ),
        (
            ylo,
            IntBox::new([me.lo[0] - g, me.lo[1]], [me.hi[0] + g, me.lo[1] + g - 1]),
            IntBox::new([me.lo[0] - g, me.lo[1] - g], [me.hi[0] + g, me.lo[1] - 1]),
            HALO_TAG + 1,
        ),
        (
            yhi,
            IntBox::new([me.lo[0] - g, me.hi[1] - g + 1], [me.hi[0] + g, me.hi[1]]),
            IntBox::new([me.lo[0] - g, me.hi[1] + 1], [me.hi[0] + g, me.hi[1] + g]),
            HALO_TAG + 1,
        ),
    ];
    for (nbr, send, recv, tag) in pairs {
        let Some(nbr) = nbr else { continue };
        out.push(Instr::Comm(
            PlanOp::new(
                epoch,
                OpKind::Send {
                    peer: nbr,
                    tag,
                    bytes: send.count() as u64 * NVARS as u64 * 8,
                },
            ),
            Binding::PackAll(send),
        ));
        out.push(Instr::Comm(
            PlanOp::new(
                epoch,
                OpKind::Recv {
                    peer: nbr,
                    tag,
                    bytes: recv.count() as u64 * NVARS as u64 * 8,
                },
            ),
            Binding::UnpackAll(recv),
        ));
    }
    out.push(Instr::Compute(ComputeKind::Walls));
    out.push(Instr::Compute(ComputeKind::SweepFull { work: stage_work }));
}

/// The pure comm plan of a scaling run: every rank's [`rank_schedule`]
/// with the compute instructions and mesh bindings stripped. This is what
/// [`CommPlan::verify`] checks statically and what recorded traces are
/// audited against.
pub fn comm_plan(decomp: &UniformDecomp, cfg: &ScalingConfig) -> CommPlan {
    CommPlan {
        ranks: (0..decomp.nranks())
            .map(|rank| {
                rank_schedule(decomp, cfg, rank)
                    .into_iter()
                    .filter_map(|instr| match instr {
                        Instr::Comm(op, _) => Some(op),
                        Instr::Compute(_) => None,
                    })
                    .collect()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::decompose;

    #[test]
    fn all_shipped_schedules_verify_clean() {
        for ranks in [1usize, 2, 4, 6] {
            for (overlap, coalesce) in [(false, true), (true, true), (true, false)] {
                let cfg = ScalingConfig {
                    n: 24,
                    per_rank: false,
                    ranks,
                    steps: 2,
                    overlap,
                    coalesce,
                    ..ScalingConfig::default()
                };
                let decomp = decompose(&cfg);
                let report = comm_plan(&decomp, &cfg).verify();
                assert!(
                    report.is_clean(),
                    "ranks={ranks} overlap={overlap} coalesce={coalesce}:\n{}",
                    report.render("comm-plan")
                );
            }
        }
    }

    #[test]
    fn coalesced_plan_has_one_message_per_link_per_stage() {
        let cfg = ScalingConfig {
            n: 24,
            per_rank: false,
            ranks: 4,
            steps: 1,
            stages_per_step: 1,
            overlap: true,
            ..ScalingConfig::default()
        };
        let decomp = decompose(&cfg);
        let plan = comm_plan(&decomp, &cfg);
        // 2 x 2 grid: every rank has exactly 2 links, so 2 isends each.
        for ops in &plan.ranks {
            let isends = ops
                .iter()
                .filter(|o| matches!(o.kind, OpKind::Isend { .. }))
                .count();
            assert_eq!(isends, 2);
        }
        // Per-variable mode multiplies both sides by NVARS.
        let naive = comm_plan(
            &decomp,
            &ScalingConfig {
                coalesce: false,
                ..cfg
            },
        );
        for ops in &naive.ranks {
            let isends = ops
                .iter()
                .filter(|o| matches!(o.kind, OpKind::Isend { .. }))
                .count();
            assert_eq!(isends, 2 * NVARS);
        }
    }
}
