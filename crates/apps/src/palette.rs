//! The component palette: every class the assemblies can instantiate,
//! registered under its paper name. In CCAFFEINE this is the directory of
//! dynamically loadable component libraries; which classes an application
//! actually uses is decided at run time by its script — that is what makes
//! the Godunov→EFM swap of §4.3 a script-only change.

use cca_components::adaptors::{DpdtComponent, ImplicitIntegrator, ProblemModeler};
use cca_components::balancer_comp::{
    GreedyLoadBalancer, RoundRobinLoadBalancer, SpaceFillingLoadBalancer,
};
use cca_components::bc_comp::{AdiabaticWallsBc, BoundaryConditions};
use cca_components::cvode::CvodeComponent;
use cca_components::diffusion::DiffusionPhysics;
use cca_components::euler::{
    CharacteristicQuantities, EfmFluxComponent, GasProperties, GodunovFluxComponent,
    InviscidFluxComponent, StatesComponent,
};
use cca_components::grace::GraceComponent;
use cca_components::ic::{ConicalInterfaceIC, HotSpotsIC, Initializer0D};
use cca_components::interp_comp::ProlongRestrict;
use cca_components::regrid_comp::ErrorEstAndRegrid;
use cca_components::rk2_integrator::ExplicitIntegratorRk2;
use cca_components::rkc_integrator::ExplicitIntegratorRkc;
use cca_components::stats::StatisticsComponent;
use cca_components::thermochem::ThermoChemistry;
use cca_components::transport_comp::{DrfmComponent, MaxDiffCoeffEvaluator};
use cca_core::Framework;

/// A framework pre-loaded with the full component palette.
pub fn standard_palette() -> Framework {
    let mut fw = Framework::new();
    fw.register_class("ThermoChemistry", || Box::new(ThermoChemistry::full()));
    fw.register_class("ThermoChemistryReduced", || {
        Box::new(ThermoChemistry::reduced())
    });
    fw.register_class("CvodeComponent", || Box::<CvodeComponent>::default());
    fw.register_class("dPdt", || Box::<DpdtComponent>::default());
    fw.register_class("problemModeler", || Box::<ProblemModeler>::default());
    fw.register_class("Initializer", || Box::<Initializer0D>::default());
    fw.register_class("GrACEComponent", || Box::<GraceComponent>::default());
    fw.register_class("InitialCondition", || Box::<HotSpotsIC>::default());
    fw.register_class("ConicalInterfaceIC", || {
        Box::<ConicalInterfaceIC>::default()
    });
    fw.register_class("DRFMComponent", || Box::<DrfmComponent>::default());
    fw.register_class("MaxDiffCoeffEvaluator", || {
        Box::<MaxDiffCoeffEvaluator>::default()
    });
    fw.register_class("DiffusionPhysics", || Box::<DiffusionPhysics>::default());
    fw.register_class("ExplicitIntegrator", || {
        Box::<ExplicitIntegratorRkc>::default()
    });
    fw.register_class("ImplicitIntegrator", || {
        Box::<ImplicitIntegrator>::default()
    });
    fw.register_class("ExplicitIntegratorRK2", || {
        Box::<ExplicitIntegratorRk2>::default()
    });
    fw.register_class("States", || Box::<StatesComponent>::default());
    fw.register_class("GodunovFlux", || Box::<GodunovFluxComponent>::default());
    fw.register_class("EFMFlux", || Box::<EfmFluxComponent>::default());
    fw.register_class("InviscidFlux", || Box::<InviscidFluxComponent>::default());
    fw.register_class("CharacteristicQuantities", || {
        Box::<CharacteristicQuantities>::default()
    });
    fw.register_class("GasProperties", || Box::<GasProperties>::default());
    fw.register_class("BoundaryConditions", || {
        Box::<BoundaryConditions>::default()
    });
    fw.register_class("AdiabaticWalls", || Box::<AdiabaticWallsBc>::default());
    fw.register_class("ErrorEstAndRegrid", || Box::<ErrorEstAndRegrid>::default());
    fw.register_class("ProlongRestrict", || Box::<ProlongRestrict>::default());
    fw.register_class("StatisticsComponent", || {
        Box::<StatisticsComponent>::default()
    });
    fw.register_class("GreedyLoadBalancer", || {
        Box::<GreedyLoadBalancer>::default()
    });
    fw.register_class("RoundRobinLoadBalancer", || {
        Box::<RoundRobinLoadBalancer>::default()
    });
    fw.register_class("SpaceFillingLoadBalancer", || {
        Box::<SpaceFillingLoadBalancer>::default()
    });
    fw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_has_all_paper_classes() {
        let fw = standard_palette();
        let classes = fw.palette_classes();
        for name in [
            "ThermoChemistry",
            "CvodeComponent",
            "dPdt",
            "problemModeler",
            "Initializer",
            "GrACEComponent",
            "InitialCondition",
            "ConicalInterfaceIC",
            "DRFMComponent",
            "MaxDiffCoeffEvaluator",
            "DiffusionPhysics",
            "ExplicitIntegrator",
            "ImplicitIntegrator",
            "ExplicitIntegratorRK2",
            "States",
            "GodunovFlux",
            "EFMFlux",
            "InviscidFlux",
            "CharacteristicQuantities",
            "GasProperties",
            "BoundaryConditions",
            "ErrorEstAndRegrid",
            "ProlongRestrict",
            "StatisticsComponent",
        ] {
            assert!(classes.contains(&name.to_string()), "missing {name}");
        }
    }
}
