//! Distributed reaction–diffusion SAMR: the paper's adaptive flame proxy
//! run across SCMD ranks on a patch hierarchy whose *metadata* is
//! replicated and whose *storage* is distributed (`cca-mesh::dist`).
//!
//! A moving Gaussian source drags a steep feature across the domain; the
//! error estimator flags its footprint, Berger–Rigoutsos clustering
//! rebuilds level 1 every `regrid_interval` steps, and regrid-time
//! rebalancing migrates surviving patches between ranks as the refined
//! region (and its owner-computes load) moves. Every cross-rank byte —
//! same-level ghost strips, coarse-fine donor ships, restriction windows,
//! regrid prolongation/copy traffic, migration records — rides the
//! nonblocking coalesced layer and is mirrored into comm-plan IR
//! (`cca-analyze::distplan`), so audited runs statically verify the
//! schedule and check the execution trace against it.
//!
//! The headline invariant, pinned by tests and the `cca-bench samr`
//! baseline: the final checksum is **bit-identical for every rank count**.
//! Ghost values are exact copies or prolongations from donors whose full
//! ghost-padded boxes travel with them, restriction is pre-averaged with
//! the rank-local arithmetic, the merged flag set is canonicalized before
//! clustering, and the checksum is summed in fixed `(level, id)` order on
//! rank 0 — so no floating-point result ever depends on P.

use cca_analyze::commplan::CommPlan;
use cca_analyze::distplan::PlanBuilder;
use cca_comm::{scmd, ClusterModel, Communicator};
use cca_mesh::boxes::IntBox;
use cca_mesh::data::DataObject;
use cca_mesh::dist::{self, DistributedHierarchy};
use cca_mesh::hierarchy::{Hierarchy, Patch};
use cca_mesh::regrid::RegridParams;

/// Variables per mesh point (temperature plus a reduced species set).
pub const NVARS: usize = 5;

/// Ghost ring width; the 5-point stencil and limited prolongation need 1.
pub const NGHOST: i64 = 1;

/// Fine-level affinity tolerance before falling back to greedy LPT.
const AFFINITY_TOL: f64 = 1.5;

/// Explicit diffusion coefficient (index-space).
const ALPHA: f64 = 0.15;

/// Pseudo time step scaling the source injection.
const DT: f64 = 0.05;

/// One distributed SAMR experiment.
#[derive(Clone, Copy, Debug)]
pub struct SamrConfig {
    /// Level-0 domain extent (cells per axis, square).
    pub nx: i64,
    /// Split level 0 into `patch_split × patch_split` patches.
    pub patch_split: i64,
    /// Number of SCMD ranks.
    pub ranks: usize,
    /// Macro steps.
    pub steps: usize,
    /// Stages per step (each stage = ghost fill + sweep + restriction).
    pub stages_per_step: usize,
    /// Regrid every this many steps (plus once before stepping starts).
    pub regrid_interval: usize,
    /// Flag threshold on the undivided gradient of variable 0.
    pub threshold: f64,
    /// Work multiplier of a fine cell relative to a coarse cell; also the
    /// owner-computes surcharge a coarse patch pays per overlying fine
    /// cell, which is what makes the LPT assignment *move* as the refined
    /// region moves.
    pub fine_weight: f64,
    /// Modeled work units per cell-variable per stage.
    pub work_per_cell_var: f64,
    /// Verify the emitted comm plan and audit the execution trace against
    /// it. Bit-identical results either way.
    pub audit: bool,
    /// Take a coordinated checkpoint every this many macro steps
    /// (0 disables checkpointing).
    pub ckpt_interval: usize,
}

impl Default for SamrConfig {
    fn default() -> Self {
        SamrConfig {
            nx: 40,
            patch_split: 4,
            ranks: 4,
            steps: 6,
            stages_per_step: 2,
            regrid_interval: 2,
            threshold: 30.0,
            fine_weight: 4.0,
            work_per_cell_var: 0.5,
            audit: false,
            ckpt_interval: 0,
        }
    }
}

impl SamrConfig {
    /// RNG-free hash of the physics-bearing configuration. Checkpoint
    /// sets carry it and restore refuses a mismatch. Rank count, audit
    /// mode, checkpoint cadence, and the modeled compute cost are
    /// excluded: none of them influences a single field bit, and an
    /// elastic restart changes `ranks` by design.
    pub fn state_hash(&self) -> u64 {
        use cca_mesh::checkpoint::{fnv1a64, FNV1A_INIT};
        let mut h = FNV1A_INIT;
        for word in [
            self.nx as u64,
            self.patch_split as u64,
            self.steps as u64,
            self.stages_per_step as u64,
            self.regrid_interval as u64,
            self.threshold.to_bits(),
            self.fine_weight.to_bits(),
        ] {
            h = fnv1a64(h, &word.to_le_bytes());
        }
        h
    }
}

/// Outcome of a distributed SAMR run.
#[derive(Clone, Debug)]
pub struct SamrResult {
    /// Modeled job runtime: slowest rank's virtual clock, s.
    pub modeled_time: f64,
    /// Total messages sent across ranks.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Messages saved by per-rank-pair coalescing.
    pub messages_coalesced: u64,
    /// Regrid epochs executed (including the initial one).
    pub regrids: usize,
    /// Patch migrations performed by regrid-time rebalancing.
    pub migrations: usize,
    /// Final fine-level (level 1) cell count.
    pub fine_cells: i64,
    /// Final step's global max |variable 0| (the stability probe).
    pub final_max: f64,
    /// Final-field checksum, summed in fixed `(level, id)` order — the
    /// cross-P bit-identity witness.
    pub checksum: f64,
    /// Coordinated checkpoints taken during the run.
    pub checkpoints: usize,
}

/// Checkpoint/restart harness threaded through a run: an optional store
/// that receives every complete set, an optional deterministic fault, and
/// an optional set to resume from instead of the initial condition.
#[derive(Clone, Default)]
pub struct CkptHarness {
    /// Every complete set is committed here (rank 0 writes).
    pub store: Option<std::sync::Arc<cca_ckpt::CkptStore>>,
    /// Deterministic kill switch for recovery drills.
    pub fault: Option<cca_ckpt::FaultPlan>,
    /// Resume from this set instead of running the initial condition.
    pub restore: Option<std::sync::Arc<cca_ckpt::CheckpointSet>>,
}

/// Per-rank return value of the SCMD closure.
struct RankOut {
    checksum: f64,
    regrids: usize,
    migrations: usize,
    fine_cells: i64,
    final_max: f64,
    ckpts: usize,
    plan: Option<CommPlan>,
}

/// Driver counters carried as a component-state part in every set, so a
/// resumed run reports cumulative totals rather than restarting its
/// bookkeeping from zero. (Post-restart *migration* counts can still
/// legitimately differ across cohort sizes — rebalancing at P' moves
/// different patches — which is why recovery equivalence is asserted on
/// field bits, never on these counters.)
fn driver_part(regrids: usize, migrations: usize) -> (String, Vec<u8>) {
    let mut blob = Vec::with_capacity(16);
    blob.extend_from_slice(&(regrids as u64).to_le_bytes());
    blob.extend_from_slice(&(migrations as u64).to_le_bytes());
    ("driver".to_string(), blob)
}

fn read_driver_part(set: &cca_ckpt::CheckpointSet) -> (usize, usize) {
    let blob = set.part("driver").expect("samr sets carry driver state");
    let word = |k: usize| u64::from_le_bytes(blob[8 * k..8 * k + 8].try_into().expect("8 bytes"));
    (word(0) as usize, word(1) as usize)
}

/// The level-0 hierarchy: `nx × nx` cells tiled into
/// `patch_split × patch_split` patches, refinement ratio 2.
pub fn base_hierarchy(cfg: &SamrConfig) -> Hierarchy {
    let mut h = Hierarchy::new(
        IntBox::sized(cfg.nx, cfg.nx),
        [0.0, 0.0],
        [1.0 / cfg.nx as f64; 2],
        2,
    );
    let s = cfg.patch_split;
    let edge = |k: i64| k * cfg.nx / s;
    let mut boxes = Vec::new();
    for bj in 0..s {
        for bi in 0..s {
            boxes.push(IntBox::new(
                [edge(bi), edge(bj)],
                [edge(bi + 1) - 1, edge(bj + 1) - 1],
            ));
        }
    }
    h.set_level_boxes(0, &boxes);
    h
}

/// The owner-computes cost model: a coarse patch pays for its own cells
/// plus `fine_weight` per overlying fine cell (coarse-fine fill locality);
/// a fine patch costs `fine_weight` per cell.
fn patch_work(fine_weight: f64) -> impl Fn(&Hierarchy, usize, &Patch) -> f64 {
    move |h, level, p| {
        if level == 0 {
            let over: i64 = match h.levels.get(1) {
                Some(l1) => l1
                    .patches
                    .iter()
                    .filter_map(|f| {
                        f.interior
                            .intersect(&p.interior.refine(h.ratio))
                            .map(|ov| ov.count())
                    })
                    .sum(),
                None => 0,
            };
            p.interior.count() as f64 + fine_weight * over as f64
        } else {
            fine_weight * p.interior.count() as f64
        }
    }
}

/// The moving Gaussian source feeding variable 0: its center tracks the
/// step counter, dragging the refined region across the domain.
fn source(x: f64, y: f64, step: usize, steps: usize) -> f64 {
    let t = (step as f64 + 1.0) / steps as f64;
    let cx = 0.3 + 0.4 * t;
    let cy = 0.3 + 0.4 * t;
    400.0 * (-((x - cx).powi(2) + (y - cy).powi(2)) / 0.004).exp()
}

/// Deterministic initial condition: a hot bump in variable 0, graded
/// mixture fractions elsewhere. Pure function of the physical cell center.
fn init_patch(pd: &mut cca_mesh::data::PatchData, hier: &Hierarchy, level: usize) {
    let interior = pd.interior;
    for (i, j) in interior.cells() {
        let [x, y] = hier.cell_center(level, i, j);
        let bump = (-((x - 0.3).powi(2) + (y - 0.3).powi(2)) / 0.01).exp();
        pd.set(0, i, j, 300.0 + 900.0 * bump);
        for v in 1..NVARS {
            pd.set(v, i, j, 0.1 * v as f64 + 0.2 * x * y);
        }
    }
}

/// Zero-gradient physical walls: ghost cells outside the level domain
/// copy the nearest interior cell of their own patch. Purely local.
fn apply_walls(dobj: &mut DataObject, dh: &DistributedHierarchy, level: usize, rank: usize) {
    let domain = dh.hier.level_domain(level);
    for p in &dh.hier.levels[level].patches {
        if p.owner != rank {
            continue;
        }
        let pd = dobj.patch_mut(level, p.id).expect("owned patch stored");
        let total = pd.total_box();
        let interior = pd.interior;
        for (i, j) in total.cells() {
            if domain.contains(i, j) {
                continue;
            }
            let ii = i.clamp(interior.lo[0], interior.hi[0]);
            let jj = j.clamp(interior.lo[1], interior.hi[1]);
            for var in 0..pd.nvars {
                let v = pd.get(var, ii, jj);
                pd.set(var, i, j, v);
            }
        }
    }
}

/// Same-level ghost fill for `level`: derive the manifest, mirror it into
/// the plan, execute it.
fn fill_level(
    comm: &Communicator,
    plan: &mut PlanBuilder,
    dh: &DistributedHierarchy,
    dobj: &mut DataObject,
    level: usize,
) {
    let xfers = dh.same_level_xfers(level, NGHOST);
    let groups = dist::region_groups(&xfers, NVARS);
    plan.exchange(&dist::group_wire_msgs(&groups, dist::TAG_SAME_LEVEL, 8));
    dist::exchange_same_level(comm, dobj, level, &xfers, &groups);
}

/// Coarse-fine ghost fill for `level`: donor ships plus local limited
/// prolongation, plan-mirrored.
fn fill_coarse_fine(
    comm: &Communicator,
    plan: &mut PlanBuilder,
    dh: &DistributedHierarchy,
    dobj: &mut DataObject,
    level: usize,
) {
    let cf = dh.coarse_fine_plan(level, NGHOST);
    let groups = dist::ship_groups(dh, &cf.ships, level - 1, NVARS, NGHOST);
    plan.exchange(&dist::group_wire_msgs(&groups, dist::TAG_COARSE_FINE, 8));
    dist::exchange_coarse_fine(comm, dh, dobj, level, &cf, &groups);
}

/// One explicit diffusion + source stage on every owned patch, coarse
/// level first. Reads the ghost ring filled this stage; writes interiors
/// only.
fn sweep(
    comm: &Communicator,
    dh: &DistributedHierarchy,
    dobj: &mut DataObject,
    cfg: &SamrConfig,
    step: usize,
    rank: usize,
) {
    for level in 0..dh.hier.n_levels() {
        for p in &dh.hier.levels[level].patches {
            if p.owner != rank {
                continue;
            }
            let pd = dobj.patch(level, p.id).expect("owned patch stored");
            let interior = pd.interior;
            let si = (interior.lo[0] - pd.total_box().lo[0]) as usize;
            let w = interior.nx() as usize;
            let mut newv = Vec::with_capacity(NVARS * interior.count() as usize);
            for var in 0..NVARS {
                for j in interior.lo[1]..=interior.hi[1] {
                    let (below, mid, above) = pd.rows3(var, j);
                    for k in 0..w {
                        let s = si + k;
                        let c = mid[s];
                        let lap = mid[s - 1] + mid[s + 1] + below[s] + above[s] - 4.0 * c;
                        let mut v = c + ALPHA * lap;
                        if var == 0 {
                            let i = interior.lo[0] + k as i64;
                            let [x, y] = dh.hier.cell_center(level, i, j);
                            v += DT * source(x, y, step, cfg.steps);
                        }
                        newv.push(v);
                    }
                }
            }
            dobj.patch_mut(level, p.id)
                .expect("owned patch stored")
                .unpack(&interior, &newv);
            comm.charge_compute(cfg.work_per_cell_var * (interior.count() as usize * NVARS) as f64);
        }
    }
}

/// Flag owned level-0 interior cells whose undivided gradient of variable
/// 0 exceeds the threshold. Ghosts must be freshly filled.
fn compute_flags(
    dobj: &DataObject,
    dh: &DistributedHierarchy,
    rank: usize,
    threshold: f64,
) -> Vec<(i64, i64)> {
    let mut flags = Vec::new();
    for p in &dh.hier.levels[0].patches {
        if p.owner != rank {
            continue;
        }
        let pd = dobj.patch(0, p.id).expect("owned patch stored");
        let interior = pd.interior;
        let si = (interior.lo[0] - pd.total_box().lo[0]) as usize;
        let w = interior.nx() as usize;
        for j in interior.lo[1]..=interior.hi[1] {
            let (below, mid, above) = pd.rows3(0, j);
            for k in 0..w {
                let s = si + k;
                let c = mid[s];
                let g = (mid[s - 1] - c)
                    .abs()
                    .max((mid[s + 1] - c).abs())
                    .max((below[s] - c).abs())
                    .max((above[s] - c).abs());
                if g > threshold {
                    flags.push((interior.lo[0] + k as i64, j));
                }
            }
        }
    }
    flags
}

/// One full regrid: flag, all-gather, plan (identically on every rank),
/// mirror the migrate/ship/copy epochs into the comm plan, execute. The
/// first epoch's number names the regrid in poison reports
/// ([`Communicator::set_phase`]). Returns `(migrations, fine_cells)`.
fn do_regrid(
    comm: &Communicator,
    plan: &mut PlanBuilder,
    dh: &mut DistributedHierarchy,
    dobj: &mut DataObject,
    cfg: &SamrConfig,
    rank: usize,
) -> (usize, i64) {
    let flags = compute_flags(dobj, dh, rank, cfg.threshold);
    // Untraced collective: flag metadata, not field data — no plan entry.
    let merged: Vec<(i64, i64)> = comm.allgather(&flags).into_iter().flatten().collect();
    let params = RegridParams::default();
    let rp = dist::plan_regrid(
        dh,
        0,
        &merged,
        &params,
        patch_work(cfg.fine_weight),
        AFFINITY_TOL,
    );
    let mig = dist::migration_groups(dh, &rp.moves, NVARS, NGHOST);
    let epoch = plan.exchange(&dist::group_wire_msgs(&mig, dist::TAG_MIGRATE, 1));
    let ships = dist::ship_groups(dh, &rp.prolong_ships, 0, NVARS, NGHOST);
    plan.exchange(&dist::group_wire_msgs(&ships, dist::TAG_PROLONG, 8));
    let copies = dist::region_groups(&rp.old_copies, NVARS);
    plan.exchange(&dist::group_wire_msgs(&copies, dist::TAG_OLD_COPY, 8));
    comm.set_phase(&format!("regrid epoch {epoch}"));
    dist::execute_regrid(comm, dh, dobj, &rp);
    comm.clear_phase();
    let fine_cells = dh
        .hier
        .levels
        .get(1)
        .map(|l| l.patches.iter().map(|p| p.interior.count()).sum())
        .unwrap_or(0);
    (rp.moves.len(), fine_cells)
}

/// Conservative restriction of level 1 into level 0, plan-mirrored.
fn restrict(
    comm: &Communicator,
    plan: &mut PlanBuilder,
    dh: &DistributedHierarchy,
    dobj: &mut DataObject,
) {
    let xfers = dh.restrict_xfers(1);
    let groups = dist::restrict_groups(&xfers, NVARS);
    plan.exchange(&dist::group_wire_msgs(&groups, dist::TAG_RESTRICT, 8));
    dist::exchange_restrict(comm, dobj, 1, dh.hier.ratio, &xfers, &groups);
}

/// Checksum in fixed `(level, id)` order: gather per-patch interior sums
/// to rank 0 (untraced metadata collective), sort, fold, broadcast. The
/// summation order never depends on ownership, so neither do the bits.
fn checksum(comm: &Communicator, dobj: &DataObject, dh: &DistributedHierarchy, rank: usize) -> f64 {
    let mut triples: Vec<(u64, u64, f64)> = Vec::new();
    for (level, l) in dh.hier.levels.iter().enumerate() {
        for p in &l.patches {
            if p.owner != rank {
                continue;
            }
            let pd = dobj.patch(level, p.id).expect("owned patch stored");
            let mut s = 0.0;
            for var in 0..NVARS {
                s += pd.interior_sum(var);
            }
            triples.push((level as u64, p.id as u64, s));
        }
    }
    let total = match comm.gather(0, &triples) {
        Some(parts) => {
            let mut all: Vec<(u64, u64, f64)> = parts.into_iter().flatten().collect();
            all.sort_by_key(|t| (t.0, t.1));
            all.iter().fold(0.0, |acc, t| acc + t.2)
        }
        None => 0.0,
    };
    comm.bcast(0, &[total])[0]
}

/// The per-rank SCMD program.
fn rank_main(comm: &Communicator, cfg: &SamrConfig, harness: &CkptHarness) -> RankOut {
    let rank = comm.rank();
    let mut plan = PlanBuilder::new(cfg.ranks);
    let mut regrids = 0usize;
    let mut migrations = 0usize;
    let mut final_max = 0.0f64;
    let mut ckpts = 0usize;
    let config_hash = cfg.state_hash();

    let (mut dh, mut dobj, start_step, mut fine_cells) = match &harness.restore {
        Some(set) => {
            // Elastic restart: rebuild the saved hierarchy bit-exactly,
            // replay the LPT assignment at *this* rank count, and pick up
            // the step counter where the interrupted run left off.
            assert_eq!(
                set.meta.config_hash, config_hash,
                "checkpoint set belongs to a different configuration"
            );
            assert_eq!((set.meta.nvars, set.meta.nghost), (NVARS, NGHOST));
            let (dh, dobj) = cca_ckpt::restore(
                comm,
                &mut plan,
                set,
                cfg.ranks,
                patch_work(cfg.fine_weight),
                AFFINITY_TOL,
            );
            let fc = dh
                .hier
                .levels
                .get(1)
                .map(|l| l.patches.iter().map(|p| p.interior.count()).sum())
                .unwrap_or(0);
            let (r, m) = read_driver_part(set);
            regrids = r;
            migrations = m;
            (dh, dobj, set.meta.step as usize, fc)
        }
        None => {
            let mut dh = DistributedHierarchy::new(base_hierarchy(cfg), cfg.ranks);
            dh.assign_owners(patch_work(cfg.fine_weight), AFFINITY_TOL);
            let mut dobj = DataObject::new(NVARS, NGHOST);
            dh.allocate_owned(&mut dobj, rank);
            for p in &dh.hier.levels[0].patches {
                if p.owner == rank {
                    init_patch(
                        dobj.patch_mut(0, p.id).expect("just allocated"),
                        &dh.hier,
                        0,
                    );
                }
            }
            // Initial refinement from the initial condition.
            fill_level(comm, &mut plan, &dh, &mut dobj, 0);
            apply_walls(&mut dobj, &dh, 0, rank);
            let (m, fc) = do_regrid(comm, &mut plan, &mut dh, &mut dobj, cfg, rank);
            regrids += 1;
            migrations += m;
            (dh, dobj, 0, fc)
        }
    };

    for step in start_step..cfg.steps {
        if let Some(f) = harness.fault {
            if !f.mid_snapshot && f.rank == rank && f.step == step {
                panic!("injected fault: rank {rank} killed at step {step}");
            }
        }
        // Stability probe: the global spectral-radius style reduction.
        let mut local_max = 0.0f64;
        for (level, l) in dh.hier.levels.iter().enumerate() {
            for p in &l.patches {
                if p.owner == rank {
                    let pd = dobj.patch(level, p.id).expect("owned patch stored");
                    local_max = local_max.max(pd.interior_max_abs(0));
                }
            }
        }
        final_max = comm.allreduce_max(&[local_max])[0];
        plan.reduce(8);

        for _stage in 0..cfg.stages_per_step {
            fill_level(comm, &mut plan, &dh, &mut dobj, 0);
            apply_walls(&mut dobj, &dh, 0, rank);
            if dh.hier.n_levels() > 1 {
                fill_level(comm, &mut plan, &dh, &mut dobj, 1);
                fill_coarse_fine(comm, &mut plan, &dh, &mut dobj, 1);
                apply_walls(&mut dobj, &dh, 1, rank);
            }
            sweep(comm, &dh, &mut dobj, cfg, step, rank);
            if dh.hier.n_levels() > 1 {
                restrict(comm, &mut plan, &dh, &mut dobj);
            }
        }

        if (step + 1) % cfg.regrid_interval == 0 && step + 1 < cfg.steps {
            // Fresh ghosts for the error estimator, then rebuild level 1.
            fill_level(comm, &mut plan, &dh, &mut dobj, 0);
            apply_walls(&mut dobj, &dh, 0, rank);
            let (m, fc) = do_regrid(comm, &mut plan, &mut dh, &mut dobj, cfg, rank);
            regrids += 1;
            migrations += m;
            fine_cells = fc;
        }

        if cfg.ckpt_interval > 0 && (step + 1) % cfg.ckpt_interval == 0 && step + 1 < cfg.steps {
            // Coordinated snapshot at the macro-step barrier, after any
            // regrid — the set captures the post-regrid state. The epoch
            // is the resume step, monotonic across restarts.
            let epoch = (step + 1) as u64;
            let meta = cca_ckpt::CkptMeta {
                step: epoch,
                config_hash,
                nvars: NVARS,
                nghost: NGHOST,
            };
            let kill = harness
                .fault
                .filter(|f| f.mid_snapshot && f.step == step)
                .map(|f| f.rank);
            let parts = vec![driver_part(regrids, migrations)];
            let set = cca_ckpt::snapshot(comm, &mut plan, &dh, &dobj, meta, epoch, parts, kill);
            ckpts += 1;
            if let (Some(set), Some(store)) = (set, &harness.store) {
                store.commit(set).expect("validated set commits");
            }
        }
    }

    let sum = checksum(comm, &dobj, &dh, rank);
    comm.barrier();
    plan.barrier();
    RankOut {
        checksum: sum,
        regrids,
        migrations,
        fine_cells,
        final_max,
        ckpts,
        plan: (rank == 0).then(|| plan.build()),
    }
}

/// Run the distributed SAMR experiment under `model`. With `cfg.audit`,
/// statically verifies the emitted comm plan and audits the execution
/// trace against it (results are bit-identical either way).
pub fn run_samr(cfg: &SamrConfig, model: ClusterModel) -> SamrResult {
    run_samr_harnessed(cfg, model, CkptHarness::default())
}

/// [`run_samr`] with a checkpoint/restart harness: commit sets to a
/// store, resume from a set, and/or inject a deterministic fault. Audited
/// runs cover the checkpoint and restore exchanges with the same static
/// verification and trace conformance as every other epoch.
pub fn run_samr_harnessed(
    cfg: &SamrConfig,
    model: ClusterModel,
    harness: CkptHarness,
) -> SamrResult {
    let cfg = *cfg;
    let program = move |comm: &Communicator| rank_main(comm, &cfg, &harness);
    let reports = if cfg.audit {
        let (reports, trace) = scmd::run_reported_traced(cfg.ranks, model, program);
        let plan = reports[0]
            .result
            .plan
            .as_ref()
            .expect("rank 0 built the plan");
        let verdict = plan.verify();
        assert!(
            verdict.is_clean(),
            "comm-plan verification failed:\n{}",
            verdict.render("samr comm-plan")
        );
        let conformance = plan.audit(&trace);
        assert!(
            conformance.is_clean(),
            "comm-trace conformance failed:\n{}",
            conformance.render("samr comm-trace")
        );
        reports
    } else {
        scmd::run_reported(cfg.ranks, model, program)
    };
    let r0 = &reports[0].result;
    SamrResult {
        modeled_time: scmd::modeled_runtime(&reports),
        messages: reports.iter().map(|r| r.messages_sent).sum(),
        bytes: reports.iter().map(|r| r.bytes_sent).sum(),
        messages_coalesced: reports.iter().map(|r| r.stats.messages_coalesced).sum(),
        regrids: r0.regrids,
        migrations: r0.migrations,
        fine_cells: r0.fine_cells,
        final_max: r0.final_max,
        checksum: r0.checksum,
        checkpoints: r0.ckpts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_run_refines_and_checks_out() {
        let cfg = SamrConfig {
            ranks: 1,
            steps: 2,
            audit: true,
            ..SamrConfig::default()
        };
        let r = run_samr(&cfg, ClusterModel::zero());
        assert!(r.regrids >= 1);
        assert!(r.fine_cells > 0, "no refinement happened");
        assert!(r.checksum.is_finite());
        assert_eq!(r.migrations, 0, "one rank cannot migrate");
    }

    #[test]
    fn two_ranks_match_one_rank_bitwise() {
        let base = SamrConfig {
            steps: 2,
            audit: true,
            ..SamrConfig::default()
        };
        let r1 = run_samr(&SamrConfig { ranks: 1, ..base }, ClusterModel::zero());
        let r2 = run_samr(&SamrConfig { ranks: 2, ..base }, ClusterModel::zero());
        assert_eq!(
            r1.checksum.to_bits(),
            r2.checksum.to_bits(),
            "P=2 drifted from P=1: {} vs {}",
            r2.checksum,
            r1.checksum
        );
        assert_eq!(r1.final_max.to_bits(), r2.final_max.to_bits());
        assert_eq!(r1.fine_cells, r2.fine_cells);
        assert_eq!(r1.regrids, r2.regrids);
    }
}
