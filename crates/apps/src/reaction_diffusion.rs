//! The 2D reaction–diffusion flame assembly (paper §4.2, Fig. 2, Table 2).
//!
//! Physics: `∂Φ/∂t = K ∇·(B∇Φ) + R` with `Φ = {T, Y₁..Y₈}` (9 variables
//! per mesh point, as in the paper's scaling runs), operator-split:
//! implicit point chemistry (CvodeComponent through the
//! ImplicitIntegrator adaptor) Strang-wrapped around explicit RKC
//! diffusion, on a SAMR hierarchy managed by GrACEComponent with
//! ErrorEstAndRegrid rebuilding the fine levels.

use cca_components::ports::{
    ChemistryAdvancePort, DataPort, InitialConditionPort, MeshPort, RegridPort, StatisticsPort,
    TimeIntegratorPort,
};
use cca_core::{script::run_script, CcaError};
use cca_core::{Component, GoPort, ParameterPort, ParameterStore, Services};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of one reaction–diffusion run.
#[derive(Clone, Copy, Debug)]
pub struct RdConfig {
    /// Coarse mesh cells per side (paper: 100).
    pub nx: i64,
    /// Domain side, m (paper: 10 mm).
    pub length: f64,
    /// Refinement ratio (paper: 2).
    pub ratio: i64,
    /// Maximum number of levels (1 = adaptivity off, §5.2 style).
    pub max_levels: usize,
    /// Fixed macro time step, s (paper's scaling runs: 1e-7).
    pub dt: f64,
    /// Number of macro steps.
    pub n_steps: usize,
    /// Steps between regrids.
    pub regrid_interval: usize,
    /// Undivided-gradient threshold on T (K per cell) for refinement.
    pub threshold: f64,
    /// Include the implicit chemistry half-steps?
    pub with_chemistry: bool,
    /// Hot-spot peak temperature, K (paper-like ignition kernels).
    pub t_hot: f64,
}

impl Default for RdConfig {
    fn default() -> Self {
        RdConfig {
            nx: 24,
            length: 0.01,
            ratio: 2,
            max_levels: 2,
            dt: 1.0e-6,
            n_steps: 4,
            regrid_interval: 2,
            threshold: 40.0,
            with_chemistry: true,
            t_hot: 1400.0,
        }
    }
}

/// What the run produced.
#[derive(Clone, Debug, Default)]
pub struct RdReport {
    /// `(t, max T)` after every macro step.
    pub t_max_series: Vec<(f64, f64)>,
    /// `(t, max Y_H2O2)` — the Fig. 4 tracer species.
    pub h2o2_max_series: Vec<(f64, f64)>,
    /// Patch boxes per level at the end: `(level, lo, hi)`.
    pub final_patches: Vec<(usize, [i64; 2], [i64; 2])>,
    /// Cells per level at the end.
    pub cells_per_level: Vec<i64>,
    /// Final coarse-level temperature field, `(x, y, T)` per cell.
    pub final_t_field: Vec<(f64, f64, f64)>,
    /// Total flagged cells across all regrids.
    pub total_flags: usize,
}

struct DriverInner {
    services: Services,
    params: Rc<ParameterStore>,
    report: Rc<RefCell<RdReport>>,
}

impl DriverInner {
    fn p(&self, key: &str, default: f64) -> f64 {
        self.params.get_parameter(key).unwrap_or(default)
    }
}

impl GoPort for DriverInner {
    fn go(&self) -> Result<(), String> {
        let mesh = self
            .services
            .get_port::<Rc<dyn MeshPort>>("mesh")
            .map_err(|e| e.to_string())?;
        let data = self
            .services
            .get_port::<Rc<dyn DataPort>>("data")
            .map_err(|e| e.to_string())?;
        let ic = self
            .services
            .get_port::<Rc<dyn InitialConditionPort>>("ic")
            .map_err(|e| e.to_string())?;
        let integ = self
            .services
            .get_port::<Rc<dyn TimeIntegratorPort>>("time-integrator")
            .map_err(|e| e.to_string())?;
        let chem_adv = self
            .services
            .get_port::<Rc<dyn ChemistryAdvancePort>>("chemistry-advance")
            .map_err(|e| e.to_string())?;
        let regrid = self
            .services
            .get_port::<Rc<dyn RegridPort>>("regrid")
            .map_err(|e| e.to_string())?;
        let stats = self
            .services
            .get_port::<Rc<dyn StatisticsPort>>("statistics")
            .map_err(|e| e.to_string())?;

        let nx = self.p("nx", 24.0) as i64;
        let length = self.p("length", 0.01);
        let ratio = self.p("ratio", 2.0) as i64;
        let max_levels = self.p("max_levels", 2.0) as usize;
        let dt = self.p("dt", 1.0e-6);
        let n_steps = self.p("n_steps", 4.0) as usize;
        let regrid_interval = (self.p("regrid_interval", 2.0) as usize).max(1);
        let threshold = self.p("threshold", 40.0);
        let with_chemistry = self.p("with_chemistry", 1.0) != 0.0;

        // --- setup ---
        mesh.create(nx, nx, length, length, ratio);
        data.create_data_object("state", 9, 2);
        ic.apply("state");
        let mut total_flags = 0usize;
        for level in 0..max_levels.saturating_sub(1) {
            total_flags += regrid.estimate_and_regrid("state", level, 0, threshold);
            // Re-impose the analytic IC so new fine patches carry the
            // sharp profile rather than its coarse interpolant.
            ic.apply("state");
        }

        // --- time loop: Strang-split chemistry / diffusion ---
        let mut report = self.report.borrow_mut();
        let mut t = 0.0;
        for step in 0..n_steps {
            if max_levels > 1 && step > 0 && step % regrid_interval == 0 {
                let top = (mesh.n_levels()).min(max_levels - 1);
                for level in 0..top {
                    total_flags += regrid.estimate_and_regrid("state", level, 0, threshold);
                }
            }
            if with_chemistry {
                chem_adv
                    .advance_chemistry("state", 0.5 * dt, 101_325.0)
                    .map_err(|e| format!("chemistry half-step failed: {e}"))?;
            }
            integ
                .advance("state", t, dt)
                .map_err(|e| format!("diffusion step failed: {e}"))?;
            if with_chemistry {
                chem_adv
                    .advance_chemistry("state", 0.5 * dt, 101_325.0)
                    .map_err(|e| format!("chemistry half-step failed: {e}"))?;
            }
            data.restrict_down("state");
            t += dt;
            report.t_max_series.push((t, stats.max_var("state", 0)));
            // H2O2 is stored species index 7 -> variable 8.
            report.h2o2_max_series.push((t, stats.max_var("state", 8)));
        }

        // --- final snapshot ---
        for level in 0..mesh.n_levels() {
            for (_, interior, _) in mesh.patches(level) {
                report.final_patches.push((level, interior.lo, interior.hi));
            }
        }
        report.cells_per_level = (0..mesh.n_levels())
            .map(|l| {
                mesh.patches(l)
                    .iter()
                    .map(|(_, b, _)| b.count())
                    .sum::<i64>()
            })
            .collect();
        let (id0, _, _) = mesh.patches(0)[0];
        data.with_patch("state", 0, id0, &mut |pd| {
            let interior = pd.interior;
            for (i, j) in interior.cells() {
                let [x, y] = mesh.cell_center(0, i, j);
                report.final_t_field.push((x, y, pd.get(0, i, j)));
            }
        });
        report.total_flags = total_flags;
        Ok(())
    }
}

/// The reaction–diffusion driver component (`RDDriver`): provides `go`,
/// `setup` (ParameterPort) and `report`; uses every subsystem of Table 2.
#[derive(Default)]
pub struct RdDriver;

impl Component for RdDriver {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.register_uses_port::<Rc<dyn InitialConditionPort>>("ic");
        s.register_uses_port::<Rc<dyn TimeIntegratorPort>>("time-integrator");
        s.register_uses_port::<Rc<dyn ChemistryAdvancePort>>("chemistry-advance");
        s.register_uses_port::<Rc<dyn RegridPort>>("regrid");
        s.register_uses_port::<Rc<dyn StatisticsPort>>("statistics");
        let params = Rc::new(ParameterStore::new());
        let report = Rc::new(RefCell::new(RdReport::default()));
        let inner = Rc::new(DriverInner {
            services: s.clone(),
            params: params.clone(),
            report: report.clone(),
        });
        s.add_provides_port::<Rc<dyn GoPort>>("go", inner);
        s.add_provides_port::<Rc<dyn ParameterPort>>("setup", params);
        s.add_provides_port::<Rc<RefCell<RdReport>>>("report", report);
    }
}

/// The assembly script (Fig. 2's wiring as text).
pub fn rd_script(cfg: &RdConfig) -> String {
    format!(
        "# 2D reaction-diffusion code (paper Fig. 2)\n\
         instantiate GrACEComponent grace\n\
         instantiate ThermoChemistry chem\n\
         instantiate CvodeComponent cvode\n\
         instantiate DRFMComponent drfm\n\
         instantiate DiffusionPhysics diffusion\n\
         instantiate MaxDiffCoeffEvaluator maxdiff\n\
         instantiate AdiabaticWalls walls\n\
         instantiate ExplicitIntegrator rkc\n\
         instantiate ImplicitIntegrator implicit\n\
         instantiate InitialCondition ic\n\
         instantiate ErrorEstAndRegrid regrid\n\
         instantiate StatisticsComponent statistics\n\
         instantiate RDDriver driver\n\
         connect diffusion chemistry chem chemistry\n\
         connect diffusion transport drfm transport\n\
         connect maxdiff transport drfm transport\n\
         connect maxdiff mesh grace mesh\n\
         connect maxdiff data grace data\n\
         connect rkc mesh grace mesh\n\
         connect rkc data grace data\n\
         connect rkc patch-rhs diffusion patch-rhs\n\
         connect rkc eigen-estimate maxdiff eigen-estimate\n\
         connect rkc bc walls bc\n\
         connect implicit chemistry chem chemistry\n\
         connect implicit integrator cvode integrator\n\
         connect implicit mesh grace mesh\n\
         connect implicit data grace data\n\
         connect ic mesh grace mesh\n\
         connect ic data grace data\n\
         connect ic chemistry chem chemistry\n\
         connect regrid mesh grace mesh\n\
         connect regrid data grace data\n\
         connect regrid bc walls bc\n\
         connect statistics mesh grace mesh\n\
         connect statistics data grace data\n\
         connect driver mesh grace mesh\n\
         connect driver data grace data\n\
         connect driver ic ic ic\n\
         connect driver time-integrator rkc time-integrator\n\
         connect driver chemistry-advance implicit chemistry-advance\n\
         connect driver regrid regrid regrid\n\
         connect driver statistics statistics statistics\n\
         parameter driver nx {}\n\
         parameter driver length {:e}\n\
         parameter driver ratio {}\n\
         parameter driver max_levels {}\n\
         parameter driver dt {:e}\n\
         parameter driver n_steps {}\n\
         parameter driver regrid_interval {}\n\
         parameter driver threshold {}\n\
         parameter driver with_chemistry {}\n\
         parameter ic T_hot {}\n\
         arena\n\
         go driver go\n",
        cfg.nx,
        cfg.length,
        cfg.ratio,
        cfg.max_levels,
        cfg.dt,
        cfg.n_steps,
        cfg.regrid_interval,
        cfg.threshold,
        if cfg.with_chemistry { 1 } else { 0 },
        cfg.t_hot,
    )
}

/// The framework `rd_script` assumes: the standard palette plus this
/// assembly's `RDDriver`. Exposed so static tools (the `cca-analyze`
/// linter) can vet the script against the exact palette it runs in.
pub fn rd_framework() -> cca_core::Framework {
    let mut fw = crate::palette::standard_palette();
    fw.register_class("RDDriver", || Box::<RdDriver>::default());
    fw
}

/// Assemble and run; returns the report and the arena rendering.
pub fn run_reaction_diffusion(cfg: &RdConfig) -> Result<(RdReport, String), CcaError> {
    let mut fw = rd_framework();
    let transcript = run_script(&mut fw, &rd_script(cfg))?;
    let report: Rc<RefCell<RdReport>> = fw.get_provides_port("driver", "report")?;
    let report = report.borrow().clone();
    Ok((
        report,
        transcript.arenas.first().cloned().unwrap_or_default(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small but complete flame run with AMR + chemistry: hot spots must
    /// stay hot or intensify, AMR must track them, mass fractions must
    /// stay physical.
    #[test]
    fn small_flame_run_with_amr() {
        let cfg = RdConfig {
            nx: 20,
            dt: 5.0e-7,
            n_steps: 2,
            max_levels: 2,
            threshold: 50.0,
            ..RdConfig::default()
        };
        let (report, arena) = run_reaction_diffusion(&cfg).unwrap();
        assert_eq!(report.t_max_series.len(), 2);
        let (_, t_max) = report.t_max_series[1];
        assert!(t_max > 1000.0 && t_max < 4000.0, "Tmax = {t_max}");
        // AMR created a fine level over the hot spots.
        assert!(
            report.cells_per_level.len() >= 2,
            "{:?}",
            report.cells_per_level
        );
        assert!(report.cells_per_level[1] > 0);
        // Arena wiring matches Fig. 2's reuse claims: same CvodeComponent
        // and ThermoChemistry classes as the 0D code.
        assert!(arena.contains("[cvode : CvodeComponent]"));
        assert!(arena.contains("[chem : ThermoChemistry]"));
        assert!(arena.contains("patch-rhs -> diffusion.patch-rhs"));
    }

    /// Diffusion-only configuration (the §5.2 scaling physics): heat
    /// spreads, peak T decreases, total enthalpy roughly conserved on a
    /// closed box.
    #[test]
    fn diffusion_only_spreads_heat() {
        let cfg = RdConfig {
            nx: 16,
            dt: 2.0e-6,
            n_steps: 3,
            max_levels: 1,
            with_chemistry: false,
            ..RdConfig::default()
        };
        let (report, _) = run_reaction_diffusion(&cfg).unwrap();
        let first = report.t_max_series.first().unwrap().1;
        let last = report.t_max_series.last().unwrap().1;
        assert!(
            last < first,
            "diffusion must smear the peak: {first} -> {last}"
        );
        assert!(last > 300.0);
    }
}
