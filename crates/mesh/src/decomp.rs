//! Uniform (single-level) domain decomposition and distributed ghost
//! exchange over `cca-comm` — the configuration of the paper's scaling
//! studies (§5.2: "Adaptivity was turned off since it renders scalability
//! extremely sensitive to the performance of the load-balancer").

use crate::boxes::IntBox;
use crate::data::PatchData;
use cca_comm::Communicator;

/// A `px × py` process grid tiling a global index box.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformDecomp {
    /// Global cell box.
    pub global: IntBox,
    /// Ranks along x.
    pub px: usize,
    /// Ranks along y.
    pub py: usize,
}

/// One neighbour's share of a single-pass halo exchange: the interior
/// strip this rank sends and the ghost strip it receives back, both in
/// global index space. Produced by [`UniformDecomp::halo_links`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HaloLink {
    /// The neighbouring rank on the other end of the link.
    pub nbr: usize,
    /// Interior cells of this rank that the neighbour needs as ghosts.
    pub send: IntBox,
    /// Ghost cells of this rank filled by the neighbour's matching send.
    pub recv: IntBox,
}

impl UniformDecomp {
    /// Choose a near-square process grid for `nranks` (minimizes the
    /// surface-to-volume communication the paper's Fig. 9 knee comes
    /// from).
    pub fn new(global: IntBox, nranks: usize) -> Self {
        assert!(nranks > 0);
        let mut best = (1usize, nranks);
        let mut best_cost = f64::INFINITY;
        for px in 1..=nranks {
            if !nranks.is_multiple_of(px) {
                continue;
            }
            let py = nranks / px;
            // Perimeter-to-area proxy for communication cost.
            let tile_nx = global.nx() as f64 / px as f64;
            let tile_ny = global.ny() as f64 / py as f64;
            let cost = tile_nx + tile_ny;
            if cost < best_cost {
                best_cost = cost;
                best = (px, py);
            }
        }
        UniformDecomp {
            global,
            px: best.0,
            py: best.1,
        }
    }

    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.px * self.py
    }

    /// Grid coordinates of `rank` (row-major: `rank = gy * px + gx`).
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank % self.px, rank / self.px)
    }

    /// The cell tile owned by `rank`. Remainders are spread one cell at a
    /// time over the first tiles, so sizes differ by at most one.
    pub fn tile(&self, rank: usize) -> IntBox {
        let (gx, gy) = self.coords(rank);
        let (lo_x, hi_x) = split_1d(self.global.lo[0], self.global.nx(), self.px, gx);
        let (lo_y, hi_y) = split_1d(self.global.lo[1], self.global.ny(), self.py, gy);
        IntBox::new([lo_x, lo_y], [hi_x, hi_y])
    }

    /// Neighbouring rank on each side (`[x-lo, x-hi, y-lo, y-hi]`),
    /// `None` at the physical boundary.
    pub fn neighbors(&self, rank: usize) -> [Option<usize>; 4] {
        let (gx, gy) = self.coords(rank);
        let at = |x: isize, y: isize| -> Option<usize> {
            if x < 0 || y < 0 || x >= self.px as isize || y >= self.py as isize {
                None
            } else {
                Some(y as usize * self.px + x as usize)
            }
        };
        [
            at(gx as isize - 1, gy as isize),
            at(gx as isize + 1, gy as isize),
            at(gx as isize, gy as isize - 1),
            at(gx as isize, gy as isize + 1),
        ]
    }

    /// The single-pass halo links of `rank`: for each existing neighbour,
    /// the interior strip to send and the ghost strip to receive, in the
    /// fixed order `[x-lo, x-hi, y-lo, y-hi]` (absent sides skipped).
    ///
    /// Unlike [`UniformDecomp::exchange_ghosts`]'s two-pass protocol the
    /// strips here are *cornerless*: y strips span only the interior
    /// width, so all four messages are independent and can be posted
    /// concurrently (irecv/isend) with no inter-pass ordering. Corner
    /// ghost cells are **not** filled — valid for stencils that never
    /// read diagonal neighbours, such as the 5-point Laplacian of the
    /// reaction–diffusion kernel.
    ///
    /// In a grid decomposition two ranks adjoin along exactly one axis,
    /// so each neighbouring rank appears in at most one link: packing a
    /// link's variables into one buffer yields exactly one message per
    /// (rank pair, exchange).
    pub fn halo_links(&self, rank: usize, g: i64) -> Vec<HaloLink> {
        debug_assert!(g > 0);
        let me = self.tile(rank);
        let [xlo, xhi, ylo, yhi] = self.neighbors(rank);
        let sides = [
            (
                xlo,
                IntBox::new([me.lo[0], me.lo[1]], [me.lo[0] + g - 1, me.hi[1]]),
                IntBox::new([me.lo[0] - g, me.lo[1]], [me.lo[0] - 1, me.hi[1]]),
            ),
            (
                xhi,
                IntBox::new([me.hi[0] - g + 1, me.lo[1]], [me.hi[0], me.hi[1]]),
                IntBox::new([me.hi[0] + 1, me.lo[1]], [me.hi[0] + g, me.hi[1]]),
            ),
            (
                ylo,
                IntBox::new([me.lo[0], me.lo[1]], [me.hi[0], me.lo[1] + g - 1]),
                IntBox::new([me.lo[0], me.lo[1] - g], [me.hi[0], me.lo[1] - 1]),
            ),
            (
                yhi,
                IntBox::new([me.lo[0], me.hi[1] - g + 1], [me.hi[0], me.hi[1]]),
                IntBox::new([me.lo[0], me.hi[1] + 1], [me.hi[0], me.hi[1] + g]),
            ),
        ];
        sides
            .into_iter()
            .filter_map(|(nbr, send, recv)| nbr.map(|nbr| HaloLink { nbr, send, recv }))
            .collect()
    }

    /// Exchange ghost strips of `pd` (whose interior must be this rank's
    /// tile) with the four neighbours. Two passes — x strips first, then y
    /// strips including the x-ghost columns — so corner ghosts arrive
    /// without diagonal messages. `tag_base` separates concurrent
    /// exchanges (one per Data Object).
    pub fn exchange_ghosts(&self, comm: &Communicator, pd: &mut PatchData, tag_base: u64) {
        let g = pd.nghost;
        debug_assert_eq!(pd.interior, self.tile(comm.rank()));
        let me = pd.interior;
        let [xlo, xhi, ylo, yhi] = self.neighbors(comm.rank());

        // --- x pass: interior-height strips of width g.
        let send_to = |pd: &PatchData, region: IntBox| pd.pack(&region);
        // Send my low-x interior strip to the low neighbour, receive my
        // low-x ghost strip from it (and symmetrically for high-x).
        // One tag per pass: partners are distinguished by source rank, and
        // a symmetric tag keeps the sendrecv pairs matched (an asymmetric
        // per-side tag would deadlock the mutual exchange).
        let x_pairs = [
            (
                xlo,
                IntBox::new([me.lo[0], me.lo[1]], [me.lo[0] + g - 1, me.hi[1]]),
                IntBox::new([me.lo[0] - g, me.lo[1]], [me.lo[0] - 1, me.hi[1]]),
                tag_base,
            ),
            (
                xhi,
                IntBox::new([me.hi[0] - g + 1, me.lo[1]], [me.hi[0], me.hi[1]]),
                IntBox::new([me.hi[0] + 1, me.lo[1]], [me.hi[0] + g, me.hi[1]]),
                tag_base,
            ),
        ];
        for (nbr, send_region, recv_region, tag) in x_pairs {
            if let Some(nbr) = nbr {
                let buf = send_to(pd, send_region);
                let got: Vec<f64> = comm.sendrecv(nbr, tag, &buf);
                pd.unpack(&recv_region, &got);
            }
        }

        // --- y pass: full-width strips including x ghosts (corners!).
        let y_pairs = [
            (
                ylo,
                IntBox::new([me.lo[0] - g, me.lo[1]], [me.hi[0] + g, me.lo[1] + g - 1]),
                IntBox::new([me.lo[0] - g, me.lo[1] - g], [me.hi[0] + g, me.lo[1] - 1]),
                tag_base + 1,
            ),
            (
                yhi,
                IntBox::new([me.lo[0] - g, me.hi[1] - g + 1], [me.hi[0] + g, me.hi[1]]),
                IntBox::new([me.lo[0] - g, me.hi[1] + 1], [me.hi[0] + g, me.hi[1] + g]),
                tag_base + 1,
            ),
        ];
        for (nbr, send_region, recv_region, tag) in y_pairs {
            if let Some(nbr) = nbr {
                let buf = send_to(pd, send_region);
                let got: Vec<f64> = comm.sendrecv(nbr, tag, &buf);
                pd.unpack(&recv_region, &got);
            }
        }
    }
}

fn split_1d(lo: i64, n: i64, parts: usize, which: usize) -> (i64, i64) {
    let parts = parts as i64;
    let which = which as i64;
    let base = n / parts;
    let rem = n % parts;
    let start = lo + which * base + which.min(rem);
    let len = base + if which < rem { 1 } else { 0 };
    (start, start + len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_comm::{scmd, ClusterModel};

    #[test]
    fn tiles_partition_the_domain() {
        for nranks in [1usize, 2, 3, 4, 6, 8, 12] {
            let d = UniformDecomp::new(IntBox::sized(50, 37), nranks);
            assert_eq!(d.nranks(), nranks);
            let mut total = 0;
            for r in 0..nranks {
                total += d.tile(r).count();
                // Tiles are disjoint.
                for r2 in 0..r {
                    assert!(d.tile(r).intersect(&d.tile(r2)).is_none());
                }
            }
            assert_eq!(total, 50 * 37, "nranks = {nranks}");
        }
    }

    #[test]
    fn near_square_grids_preferred() {
        let d = UniformDecomp::new(IntBox::sized(100, 100), 16);
        assert_eq!((d.px, d.py), (4, 4));
        let d = UniformDecomp::new(IntBox::sized(100, 100), 6);
        assert!(d.px * d.py == 6 && d.px >= 2 && d.py >= 2);
    }

    #[test]
    fn neighbors_are_mutual() {
        let d = UniformDecomp::new(IntBox::sized(64, 64), 6);
        for r in 0..6 {
            let [xlo, xhi, ylo, yhi] = d.neighbors(r);
            if let Some(n) = xlo {
                assert_eq!(d.neighbors(n)[1], Some(r));
            }
            if let Some(n) = xhi {
                assert_eq!(d.neighbors(n)[0], Some(r));
            }
            if let Some(n) = ylo {
                assert_eq!(d.neighbors(n)[3], Some(r));
            }
            if let Some(n) = yhi {
                assert_eq!(d.neighbors(n)[2], Some(r));
            }
        }
    }

    /// Each rank's send strip is exactly the matching recv strip of the
    /// neighbour's mirror link, and every neighbouring rank appears in at
    /// most one link (the structural basis for one coalesced message per
    /// rank pair).
    #[test]
    fn halo_links_are_mutual_and_unique_per_pair() {
        for nranks in [2usize, 4, 6, 12] {
            let d = UniformDecomp::new(IntBox::sized(40, 33), nranks);
            for r in 0..nranks {
                let links = d.halo_links(r, 2);
                let nbrs: Vec<usize> = links.iter().map(|l| l.nbr).collect();
                let mut dedup = nbrs.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(nbrs.len(), dedup.len(), "duplicate neighbour for {r}");
                for l in &links {
                    let back = d
                        .halo_links(l.nbr, 2)
                        .into_iter()
                        .find(|b| b.nbr == r)
                        .expect("links are mutual");
                    assert_eq!(l.send, back.recv);
                    assert_eq!(l.recv, back.send);
                    // Send strips live in my tile, recv strips in theirs.
                    assert!(d.tile(r).contains_box(&l.send));
                    assert!(d.tile(l.nbr).contains_box(&l.recv));
                }
            }
        }
    }

    /// The distributed exchange reproduces a globally smooth field's ghost
    /// values exactly, corners included.
    #[test]
    fn distributed_ghost_exchange_matches_global_field() {
        for nranks in [2usize, 4, 6] {
            let global = IntBox::sized(24, 18);
            let d = UniformDecomp::new(global, nranks);
            let field = |i: i64, j: i64| (i * 100 + j) as f64;
            scmd::run(nranks, ClusterModel::zero(), move |comm| {
                let tile = d.tile(comm.rank());
                let mut pd = PatchData::new(tile, 2, 2);
                for (i, j) in tile.cells() {
                    pd.set(0, i, j, field(i, j));
                    pd.set(1, i, j, -field(i, j));
                }
                d.exchange_ghosts(comm, &mut pd, 100);
                // Every ghost cell inside the global domain now matches.
                for (i, j) in pd.total_box().cells() {
                    if tile.contains(i, j) || !global.contains(i, j) {
                        continue;
                    }
                    assert_eq!(
                        pd.get(0, i, j),
                        field(i, j),
                        "rank {} ghost ({i},{j})",
                        comm.rank()
                    );
                    assert_eq!(pd.get(1, i, j), -field(i, j));
                }
            });
        }
    }

    /// Message volume per rank scales with the tile perimeter — the
    /// surface-to-volume law behind the paper's Fig. 9 efficiency knee.
    #[test]
    fn message_bytes_scale_with_perimeter() {
        let run = |n: i64| -> u64 {
            let global = IntBox::sized(n, n);
            let d = UniformDecomp::new(global, 4);
            let reports = scmd::run_reported(4, ClusterModel::zero(), move |comm| {
                let tile = d.tile(comm.rank());
                let mut pd = PatchData::new(tile, 1, 1);
                d.exchange_ghosts(comm, &mut pd, 0);
            });
            reports.iter().map(|r| r.bytes_sent).sum()
        };
        let small = run(32);
        let large = run(64);
        let ratio = large as f64 / small as f64;
        assert!(
            ratio > 1.8 && ratio < 2.3,
            "doubling the edge should double perimeter traffic, got {ratio}"
        );
    }
}
