//! Inter-level transfer operators: prolongation (coarse → fine) and
//! restriction (fine → coarse). The paper's **Interpolation components**
//! ("these implement various spatial and temporal interpolation
//! operators") and the cell-centered `ProlongRestrict` component of the
//! shock assembly are built on these kernels.

use crate::boxes::IntBox;
use crate::data::PatchData;

/// Piecewise-constant (injection) prolongation of all variables onto the
/// fine cells of `fine_region` (fine index space). The coarse patch must
/// cover `fine_region.coarsen(ratio)` (ghosts count).
pub fn prolong_constant(
    fine: &mut PatchData,
    coarse: &PatchData,
    fine_region: &IntBox,
    ratio: i64,
) {
    for var in 0..fine.nvars {
        for (i, j) in fine_region.cells() {
            let ci = i.div_euclid(ratio);
            let cj = j.div_euclid(ratio);
            let v = coarse.get(var, ci, cj);
            fine.set(var, i, j, v);
        }
    }
}

/// Bilinear prolongation: fine cell centers interpolate the four nearest
/// coarse cell centers. Coarse stencil indices are clamped to the coarse
/// patch's total (ghost-inclusive) box, degrading to constant
/// extrapolation at patch edges.
pub fn prolong_bilinear(
    fine: &mut PatchData,
    coarse: &PatchData,
    fine_region: &IntBox,
    ratio: i64,
) {
    let r = ratio as f64;
    let cbox = coarse.total_box();
    let clamp = |v: i64, lo: i64, hi: i64| v.max(lo).min(hi);
    for var in 0..fine.nvars {
        for (i, j) in fine_region.cells() {
            // Fine-cell center in coarse index coordinates.
            let xc = (i as f64 + 0.5) / r - 0.5;
            let yc = (j as f64 + 0.5) / r - 0.5;
            let i0 = xc.floor() as i64;
            let j0 = yc.floor() as i64;
            let tx = xc - i0 as f64;
            let ty = yc - j0 as f64;
            let i0c = clamp(i0, cbox.lo[0], cbox.hi[0]);
            let i1c = clamp(i0 + 1, cbox.lo[0], cbox.hi[0]);
            let j0c = clamp(j0, cbox.lo[1], cbox.hi[1]);
            let j1c = clamp(j0 + 1, cbox.lo[1], cbox.hi[1]);
            let v = (1.0 - tx) * (1.0 - ty) * coarse.get(var, i0c, j0c)
                + tx * (1.0 - ty) * coarse.get(var, i1c, j0c)
                + (1.0 - tx) * ty * coarse.get(var, i0c, j1c)
                + tx * ty * coarse.get(var, i1c, j1c);
            fine.set(var, i, j, v);
        }
    }
}

/// Slope-limited (minmod) prolongation: each coarse cell contributes a
/// linear profile whose slope is the minmod of its one-sided differences.
/// Exact for globally linear fields (like bilinear) but *monotone*: near
/// discontinuities the slopes flatten instead of overshooting — the right
/// choice for conserved hydrodynamic variables at coarse-fine boundaries.
/// The coarse patch must cover a one-cell halo of
/// `fine_region.coarsen(ratio)` (ghosts count); stencil indices are
/// clamped to the coarse total box.
pub fn prolong_limited(fine: &mut PatchData, coarse: &PatchData, fine_region: &IntBox, ratio: i64) {
    let r = ratio as f64;
    let cbox = coarse.total_box();
    let clamp = |v: i64, lo: i64, hi: i64| v.max(lo).min(hi);
    let minmod = |a: f64, b: f64| {
        if a * b <= 0.0 {
            0.0
        } else if a.abs() < b.abs() {
            a
        } else {
            b
        }
    };
    for var in 0..fine.nvars {
        for (i, j) in fine_region.cells() {
            let ci = i.div_euclid(ratio);
            let cj = j.div_euclid(ratio);
            let cic = clamp(ci, cbox.lo[0], cbox.hi[0]);
            let cjc = clamp(cj, cbox.lo[1], cbox.hi[1]);
            let c0 = coarse.get(var, cic, cjc);
            let cxm = coarse.get(var, clamp(cic - 1, cbox.lo[0], cbox.hi[0]), cjc);
            let cxp = coarse.get(var, clamp(cic + 1, cbox.lo[0], cbox.hi[0]), cjc);
            let cym = coarse.get(var, cic, clamp(cjc - 1, cbox.lo[1], cbox.hi[1]));
            let cyp = coarse.get(var, cic, clamp(cjc + 1, cbox.lo[1], cbox.hi[1]));
            let sx = minmod(c0 - cxm, cxp - c0);
            let sy = minmod(c0 - cym, cyp - c0);
            // Offset of the fine cell center inside the coarse cell,
            // in coarse-cell units, in (-1/2, 1/2).
            let fx = (i as f64 + 0.5) / r - (cic as f64 + 0.5);
            let fy = (j as f64 + 0.5) / r - (cjc as f64 + 0.5);
            fine.set(var, i, j, c0 + sx * fx + sy * fy);
        }
    }
}

/// Conservative restriction: each coarse cell of `coarse_region` (coarse
/// index space) becomes the average of its `ratio × ratio` fine children.
pub fn restrict_average(
    coarse: &mut PatchData,
    fine: &PatchData,
    coarse_region: &IntBox,
    ratio: i64,
) {
    let inv = 1.0 / (ratio * ratio) as f64;
    for var in 0..coarse.nvars {
        for (ci, cj) in coarse_region.cells() {
            let mut acc = 0.0;
            for dj in 0..ratio {
                for di in 0..ratio {
                    acc += fine.get(var, ci * ratio + di, cj * ratio + dj);
                }
            }
            coarse.set(var, ci, cj, acc * inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_field(pd: &mut PatchData, a: f64, b: f64, c: f64, dx: f64) {
        let t = pd.total_box();
        for (i, j) in t.cells() {
            let x = (i as f64 + 0.5) * dx;
            let y = (j as f64 + 0.5) * dx;
            pd.set(0, i, j, a + b * x + c * y);
        }
    }

    #[test]
    fn constant_prolongation_preserves_constants() {
        let mut coarse = PatchData::new(IntBox::sized(4, 4), 1, 1);
        coarse.fill_var(0, 3.25);
        let fine_box = IntBox::sized(8, 8);
        let mut fine = PatchData::new(fine_box, 1, 0);
        prolong_constant(&mut fine, &coarse, &fine_box, 2);
        for (i, j) in fine_box.cells() {
            assert_eq!(fine.get(0, i, j), 3.25);
        }
    }

    #[test]
    fn bilinear_prolongation_is_exact_for_linear_fields() {
        // Coarse spacing 1, fine spacing 0.5, same physical frame.
        let mut coarse = PatchData::new(IntBox::sized(8, 8), 1, 2);
        linear_field(&mut coarse, 1.0, 2.0, -0.5, 1.0);
        // Interior fine region away from clamped edges.
        let fine_region = IntBox::new([2, 2], [13, 13]);
        let mut fine = PatchData::new(IntBox::sized(16, 16), 1, 0);
        prolong_bilinear(&mut fine, &coarse, &fine_region, 2);
        for (i, j) in fine_region.cells() {
            let x = (i as f64 + 0.5) * 0.5;
            let y = (j as f64 + 0.5) * 0.5;
            let exact = 1.0 + 2.0 * x - 0.5 * y;
            assert!(
                (fine.get(0, i, j) - exact).abs() < 1e-12,
                "({i},{j}): {} vs {exact}",
                fine.get(0, i, j)
            );
        }
    }

    #[test]
    fn restriction_conserves_sums() {
        let fine_box = IntBox::sized(8, 8);
        let mut fine = PatchData::new(fine_box, 1, 0);
        for (k, (i, j)) in fine_box.cells().enumerate() {
            fine.set(0, i, j, (k % 7) as f64 - 3.0);
        }
        let coarse_box = IntBox::sized(4, 4);
        let mut coarse = PatchData::new(coarse_box, 1, 0);
        restrict_average(&mut coarse, &fine, &coarse_box, 2);
        // Cell-volume weighting: fine cells have 1/4 the area, so the
        // coarse sum (of averages) times 4 equals the fine sum.
        let fine_sum = fine.interior_sum(0);
        let coarse_sum = coarse.interior_sum(0);
        assert!((coarse_sum * 4.0 - fine_sum * 1.0).abs() < 1e-12);
    }

    #[test]
    fn restrict_then_prolong_constant_is_identity_on_constants() {
        let mut fine = PatchData::new(IntBox::sized(8, 8), 2, 0);
        fine.fill_var(0, 2.0);
        fine.fill_var(1, -1.0);
        let mut coarse = PatchData::new(IntBox::sized(4, 4), 2, 0);
        restrict_average(&mut coarse, &fine, &IntBox::sized(4, 4), 2);
        let mut fine2 = PatchData::new(IntBox::sized(8, 8), 2, 0);
        prolong_constant(&mut fine2, &coarse, &IntBox::sized(8, 8), 2);
        for (i, j) in IntBox::sized(8, 8).cells() {
            assert_eq!(fine2.get(0, i, j), 2.0);
            assert_eq!(fine2.get(1, i, j), -1.0);
        }
    }

    #[test]
    fn limited_prolongation_exact_for_linear_fields() {
        let mut coarse = PatchData::new(IntBox::sized(8, 8), 1, 2);
        linear_field(&mut coarse, 1.0, 2.0, -0.5, 1.0);
        let fine_region = IntBox::new([2, 2], [13, 13]);
        let mut fine = PatchData::new(IntBox::sized(16, 16), 1, 0);
        prolong_limited(&mut fine, &coarse, &fine_region, 2);
        for (i, j) in fine_region.cells() {
            let x = (i as f64 + 0.5) * 0.5;
            let y = (j as f64 + 0.5) * 0.5;
            let exact = 1.0 + 2.0 * x - 0.5 * y;
            assert!(
                (fine.get(0, i, j) - exact).abs() < 1e-12,
                "({i},{j}): {} vs {exact}",
                fine.get(0, i, j)
            );
        }
    }

    #[test]
    fn limited_prolongation_is_monotone_at_jumps() {
        // Step function in x: bilinear would overshoot at the fine cells
        // adjacent to the jump; limited slopes must stay within the
        // coarse data's range.
        let mut coarse = PatchData::new(IntBox::sized(8, 4), 1, 1);
        let t = coarse.total_box();
        for (i, j) in t.cells() {
            coarse.set(0, i, j, if i < 4 { 10.0 } else { 0.0 });
        }
        let fine_region = IntBox::sized(16, 8);
        let mut fine = PatchData::new(fine_region, 1, 0);
        prolong_limited(&mut fine, &coarse, &fine_region, 2);
        for (i, j) in fine_region.cells() {
            let v = fine.get(0, i, j);
            assert!((0.0..=10.0).contains(&v), "overshoot at ({i},{j}): {v}");
        }
    }

    #[test]
    fn ratio_four_supported() {
        let mut coarse = PatchData::new(IntBox::sized(2, 2), 1, 0);
        coarse.set(0, 0, 0, 1.0);
        coarse.set(0, 1, 0, 2.0);
        coarse.set(0, 0, 1, 3.0);
        coarse.set(0, 1, 1, 4.0);
        let fine_box = IntBox::sized(8, 8);
        let mut fine = PatchData::new(fine_box, 1, 0);
        prolong_constant(&mut fine, &coarse, &fine_box, 4);
        assert_eq!(fine.get(0, 0, 0), 1.0);
        assert_eq!(fine.get(0, 7, 0), 2.0);
        assert_eq!(fine.get(0, 0, 7), 3.0);
        assert_eq!(fine.get(0, 7, 7), 4.0);
        let mut back = PatchData::new(IntBox::sized(2, 2), 1, 0);
        restrict_average(&mut back, &fine, &IntBox::sized(2, 2), 4);
        assert_eq!(back.get(0, 0, 0), 1.0);
        assert_eq!(back.get(0, 1, 1), 4.0);
    }
}
