//! `cca-mesh` — the structured adaptive mesh refinement (SAMR) substrate:
//! this workspace's replacement for the GrACE library (Parashar & Browne,
//! HDDA/DAGH lineage) that the paper wraps as `GrACEComponent` to serve the
//! **Mesh** and **Data Object** subsystems.
//!
//! The machinery follows Berger & Colella (J. Comp. Phys. 82, 1989), the
//! paper's reference \[10\]:
//!
//! * a uniform coarse mesh covers the (logically rectangular) domain;
//! * cells where a user-supplied error estimator trips are **flagged**,
//!   buffered, and **clustered into rectangles** with the Berger–Rigoutsos
//!   signature algorithm ([`cluster`]);
//! * each rectangle, refined by a constant ratio, becomes a **patch** of
//!   the next finer level ([`hierarchy`]); patches nest properly inside
//!   their parent level;
//! * new fine data is **prolonged** from coarse parents (or copied from
//!   overlapping old patches), and after every step fine solutions are
//!   conservatively **restricted** back down ([`interp`]);
//! * ghost regions are filled from same-level neighbours, from
//!   coarse-fine interpolation, and from physical boundary conditions
//!   ([`ghost`], [`bc`]);
//! * patches are assigned to ranks by a work-aware load balancer that
//!   keeps children with their parents where possible ([`balance`]), and
//!   the uniform (adaptivity-off) decomposition used by the paper's
//!   scaling studies lives in [`decomp`].

pub mod balance;
pub mod bc;
pub mod boxes;
pub mod checkpoint;
pub mod cluster;
pub mod data;
pub mod decomp;
pub mod dist;
pub mod ghost;
pub mod hierarchy;
pub mod interp;
pub mod layout;
pub mod regrid;

pub use bc::{apply_physical_bc, BcKind, Side};
pub use boxes::IntBox;
pub use cluster::berger_rigoutsos;
pub use data::{DataObject, PatchData, VarView};
pub use decomp::UniformDecomp;
pub use dist::DistributedHierarchy;
pub use hierarchy::{Hierarchy, Level, Patch};
pub use layout::KernelConfig;
pub use regrid::{regrid_level, RegridParams};
