//! Load balancing and patch-to-rank assignment. Paper §3/§4.2: "Load
//! balancing and domain decomposition functionalities are implemented
//! here... Patches are collated and distributed among processors to
//! maximize load-balance while keeping parents and children on the same
//! processors."

use crate::hierarchy::Hierarchy;

/// Greedy LPT (longest processing time first): sort work descending,
/// always hand the next item to the least-loaded rank. Returns the rank of
/// each item, preserving input order.
pub fn assign_greedy(work: &[f64], nranks: usize) -> Vec<usize> {
    assert!(nranks > 0);
    let mut order: Vec<usize> = (0..work.len()).collect();
    order.sort_by(|&a, &b| work[b].partial_cmp(&work[a]).expect("finite work values"));
    let mut loads = vec![0.0f64; nranks];
    let mut owner = vec![0usize; work.len()];
    for idx in order {
        let r = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(r, _)| r)
            .expect("nranks > 0");
        owner[idx] = r;
        loads[r] += work[idx];
    }
    owner
}

/// Max-load over mean-load; 1.0 is perfect balance.
pub fn imbalance(loads: &[f64]) -> f64 {
    let max = loads.iter().cloned().fold(0.0, f64::max);
    let mean = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Assign every patch of every level to a rank.
///
/// Level 0 is balanced greedily by `work`. Finer levels first try the
/// affinity rule (each patch goes to the owner of the coarse patch it
/// overlaps most, keeping parent and child on one processor so
/// prolongation/restriction is rank-local); if the resulting imbalance
/// exceeds `affinity_tolerance`, the level falls back to greedy LPT.
///
/// `work(hier, level, patch)` prices one patch; it sees the whole
/// hierarchy so a cost model can, e.g., charge a coarse patch for the
/// fine cells overlying it (owner-computes coarse-fine locality).
///
/// Returns per-level per-rank loads.
pub fn assign_hierarchy(
    hier: &mut Hierarchy,
    work: impl Fn(&Hierarchy, usize, &crate::hierarchy::Patch) -> f64,
    nranks: usize,
    affinity_tolerance: f64,
) -> Vec<Vec<f64>> {
    let mut level_loads: Vec<Vec<f64>> = Vec::with_capacity(hier.n_levels());
    for level in 0..hier.n_levels() {
        let patches = hier.levels[level].patches.clone();
        let works: Vec<f64> = patches.iter().map(|p| work(hier, level, p)).collect();
        let owners: Vec<usize> = if level == 0 {
            assign_greedy(&works, nranks)
        } else {
            // Affinity pass: strongest-overlap parent's owner.
            let parent_patches = hier.levels[level - 1].patches.clone();
            let by_affinity: Vec<usize> = patches
                .iter()
                .map(|p| {
                    let coarse = p.interior.coarsen(hier.ratio);
                    parent_patches
                        .iter()
                        .filter_map(|q| {
                            coarse
                                .intersect(&q.interior)
                                .map(|ov| (ov.count(), q.owner))
                        })
                        .max_by_key(|&(area, _)| area)
                        .map(|(_, owner)| owner)
                        .unwrap_or(0)
                })
                .collect();
            let mut loads = vec![0.0; nranks];
            for (o, w) in by_affinity.iter().zip(&works) {
                loads[*o] += w;
            }
            if imbalance(&loads) <= affinity_tolerance {
                by_affinity
            } else {
                assign_greedy(&works, nranks)
            }
        };
        let mut loads = vec![0.0; nranks];
        for ((patch, owner), w) in hier.levels[level]
            .patches
            .iter_mut()
            .zip(&owners)
            .zip(&works)
        {
            patch.owner = *owner;
            loads[*owner] += w;
        }
        level_loads.push(loads);
    }
    level_loads
}

/// A patch whose owner changed during a rebalance: its stored bytes must
/// migrate `from → to` before the next exchange epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    /// Refinement level of the migrating patch.
    pub level: usize,
    /// Patch id within the hierarchy.
    pub id: usize,
    /// Rank that currently stores the patch.
    pub from: usize,
    /// Rank that owns (and must store) it after the rebalance.
    pub to: usize,
}

/// Re-run the full-hierarchy assignment at regrid time and report which
/// surviving patches changed owner relative to `prev_owner`.
///
/// `prev_owner` maps `(level, id)` to the rank that stored the patch before
/// the regrid; patches absent from it (freshly created by the regrid) are
/// assigned but never produce a [`Move`] — their data is born on the new
/// owner. The assignment itself is [`assign_hierarchy`], so level 0 gets
/// greedy LPT and finer levels keep parent affinity within tolerance;
/// determinism is inherited from those (stable sorts, first-minimum ties).
///
/// Returns `(per-level per-rank loads, moves sorted by (level, id))`.
pub fn rebalance_hierarchy(
    hier: &mut Hierarchy,
    work: impl Fn(&Hierarchy, usize, &crate::hierarchy::Patch) -> f64,
    nranks: usize,
    affinity_tolerance: f64,
    prev_owner: &[(usize, usize, usize)],
) -> (Vec<Vec<f64>>, Vec<Move>) {
    let level_loads = assign_hierarchy(hier, work, nranks, affinity_tolerance);
    let mut moves = Vec::new();
    for &(level, id, from) in prev_owner {
        let Some(patch) = hier
            .levels
            .get(level)
            .and_then(|l| l.patches.iter().find(|p| p.id == id))
        else {
            continue; // regrid dropped the patch; nothing to migrate
        };
        if patch.owner != from {
            moves.push(Move {
                level,
                id,
                from,
                to: patch.owner,
            });
        }
    }
    moves.sort_unstable_by_key(|m| (m.level, m.id));
    (level_loads, moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::IntBox;

    #[test]
    fn greedy_balances_equal_work() {
        let work = vec![1.0; 8];
        let owners = assign_greedy(&work, 4);
        let mut loads = vec![0.0; 4];
        for (o, w) in owners.iter().zip(&work) {
            loads[*o] += w;
        }
        assert!((imbalance(&loads) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_handles_skewed_work() {
        let work = vec![10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let owners = assign_greedy(&work, 2);
        let mut loads = vec![0.0; 2];
        for (o, w) in owners.iter().zip(&work) {
            loads[*o] += w;
        }
        // Optimal split is 10 vs 10; LPT achieves it here.
        assert!((loads[0] - loads[1]).abs() < 1e-12, "{loads:?}");
    }

    #[test]
    fn more_ranks_than_patches() {
        let owners = assign_greedy(&[3.0, 2.0], 5);
        assert_eq!(owners.len(), 2);
        assert_ne!(owners[0], owners[1]);
    }

    #[test]
    fn hierarchy_affinity_keeps_children_with_parents() {
        let mut h = Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [1.0; 2], 2);
        // Two coarse patches side by side, two fine patches each nested in
        // one parent.
        h.set_level_boxes(
            0,
            &[IntBox::new([0, 0], [7, 15]), IntBox::new([8, 0], [15, 15])],
        );
        h.set_level_boxes(
            1,
            &[
                IntBox::new([2, 2], [5, 5]).refine(2),
                IntBox::new([10, 10], [13, 13]).refine(2),
            ],
        );
        assign_hierarchy(&mut h, |_, _, p| p.interior.count() as f64, 2, 1.5);
        let l0 = &h.levels[0].patches;
        let l1 = &h.levels[1].patches;
        // Each fine patch shares its strongest parent's rank.
        for f in l1 {
            let parent = l0
                .iter()
                .find(|p| p.interior.contains_box(&f.interior.coarsen(2)))
                .unwrap();
            assert_eq!(f.owner, parent.owner, "child strayed from parent");
        }
        // And the coarse patches went to different ranks.
        assert_ne!(l0[0].owner, l0[1].owner);
    }

    #[test]
    fn affinity_falls_back_when_badly_imbalanced() {
        let mut h = Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [1.0; 2], 2);
        h.set_level_boxes(
            0,
            &[IntBox::new([0, 0], [7, 15]), IntBox::new([8, 0], [15, 15])],
        );
        // All fine patches under parent 0: affinity would pile everything
        // on one rank.
        h.set_level_boxes(
            1,
            &[
                IntBox::new([0, 0], [3, 3]).refine(2),
                IntBox::new([0, 4], [3, 7]).refine(2),
                IntBox::new([4, 0], [7, 3]).refine(2),
                IntBox::new([4, 4], [7, 7]).refine(2),
            ],
        );
        let loads = assign_hierarchy(&mut h, |_, _, p| p.interior.count() as f64, 2, 1.2);
        let fine_loads = &loads[1];
        assert!(
            imbalance(fine_loads) <= 1.2 + 1e-12,
            "fallback failed: {fine_loads:?}"
        );
    }

    #[test]
    fn rebalance_reports_only_surviving_owner_changes() {
        let mut h = Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [1.0; 2], 2);
        let ids = h.set_level_boxes(
            0,
            &[IntBox::new([0, 0], [7, 15]), IntBox::new([8, 0], [15, 15])],
        );
        // Pretend both patches used to live on rank 1, plus a stale record
        // for a patch the regrid deleted.
        let prev: Vec<(usize, usize, usize)> = vec![(0, ids[0], 1), (0, ids[1], 1), (0, 999, 0)];
        let (loads, moves) =
            rebalance_hierarchy(&mut h, |_, _, p| p.interior.count() as f64, 2, 1.5, &prev);
        assert_eq!(loads[0].len(), 2);
        // Exactly one of the two equal patches leaves rank 1 (LPT splits
        // them across the two ranks); the deleted id produces no move.
        assert_eq!(moves.len(), 1, "{moves:?}");
        assert_eq!(moves[0].from, 1);
        assert!(moves.iter().all(|m| m.id != 999));
        // Moves agree with the post-assignment owners.
        for m in &moves {
            let p = h.levels[m.level]
                .patches
                .iter()
                .find(|p| p.id == m.id)
                .unwrap();
            assert_eq!(p.owner, m.to);
        }
    }

    #[test]
    fn imbalance_degenerate_cases() {
        assert_eq!(imbalance(&[0.0, 0.0]), 1.0);
        assert!((imbalance(&[2.0, 0.0]) - 2.0).abs() < 1e-12);
    }
}
