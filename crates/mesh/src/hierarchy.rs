//! The patch hierarchy: geometric bookkeeping of levels, patches, and
//! parent/child/sibling relations — the paper's **Mesh** subsystem ("it
//! serves as a means of declaring and maintaining patches in the mesh
//! hierarchy... determines and administers the child-parent-sibling
//! relationships and the spatio-temporal location of patches").

use crate::boxes::IntBox;

/// One rectangular patch of one level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Patch {
    /// Hierarchy-unique id (stable across regrids of other levels).
    pub id: usize,
    /// Interior cells in this level's index space.
    pub interior: IntBox,
    /// Owning rank under the current domain decomposition.
    pub owner: usize,
}

/// One refinement level: a set of disjoint patches.
#[derive(Clone, Debug, Default)]
pub struct Level {
    /// The patches of this level.
    pub patches: Vec<Patch>,
}

impl Level {
    /// Total interior cells of the level.
    pub fn cell_count(&self) -> i64 {
        self.patches.iter().map(|p| p.interior.count()).sum()
    }
}

/// The SAMR hierarchy: geometry plus the level/patch structure.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Level-0 domain in index space.
    pub domain0: IntBox,
    /// Level-0 cell sizes (physical units).
    pub dx0: [f64; 2],
    /// Physical coordinates of the lower-left corner of the domain.
    pub origin: [f64; 2],
    /// Refinement ratio between consecutive levels.
    pub ratio: i64,
    /// The levels, coarsest first. Level 0 always covers `domain0`.
    pub levels: Vec<Level>,
    next_patch_id: usize,
}

impl Hierarchy {
    /// Create a single-level hierarchy whose level 0 is `domain0` split
    /// into one patch (decomposition happens separately).
    pub fn new(domain0: IntBox, origin: [f64; 2], dx0: [f64; 2], ratio: i64) -> Self {
        let mut h = Hierarchy {
            domain0,
            dx0,
            origin,
            ratio,
            levels: vec![Level::default()],
            next_patch_id: 0,
        };
        let id = h.fresh_id();
        h.levels[0].patches.push(Patch {
            id,
            interior: domain0,
            owner: 0,
        });
        h
    }

    /// Allocate a new unique patch id.
    pub fn fresh_id(&mut self) -> usize {
        let id = self.next_patch_id;
        self.next_patch_id += 1;
        id
    }

    /// Ensure future [`Hierarchy::fresh_id`] calls return at least
    /// `min_next` — used by checkpoint restart so restored patch ids are
    /// never reissued.
    pub fn reserve_ids(&mut self, min_next: usize) {
        self.next_patch_id = self.next_patch_id.max(min_next);
    }

    /// The id the next [`Hierarchy::fresh_id`] call would return.
    ///
    /// Checkpointing must save this exact watermark (not `max(id) + 1`
    /// over the surviving patches): regrids destroy patches, so the
    /// largest live id can undershoot the counter, and a restart that
    /// guessed from live ids would reissue ids the interrupted run never
    /// reused — changing the `(level, id)` summation order of every
    /// subsequent checksum and breaking bit-identical restart.
    pub fn next_id_watermark(&self) -> usize {
        self.next_patch_id
    }

    /// Number of levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// The domain box of `level` (level 0 domain refined `level` times).
    pub fn level_domain(&self, level: usize) -> IntBox {
        let mut d = self.domain0;
        for _ in 0..level {
            d = d.refine(self.ratio);
        }
        d
    }

    /// Cell sizes on `level`.
    pub fn dx(&self, level: usize) -> [f64; 2] {
        let f = (self.ratio as f64).powi(level as i32);
        [self.dx0[0] / f, self.dx0[1] / f]
    }

    /// Physical coordinates of the center of cell `(i, j)` on `level`.
    pub fn cell_center(&self, level: usize, i: i64, j: i64) -> [f64; 2] {
        let dx = self.dx(level);
        [
            self.origin[0] + (i as f64 + 0.5) * dx[0],
            self.origin[1] + (j as f64 + 0.5) * dx[1],
        ]
    }

    /// Replace the patch set of `level` (regridding). Patches receive
    /// fresh ids; finer levels' nesting must be re-validated by the caller
    /// (regrid proceeds fine-to-coarse precisely to avoid stale nesting).
    pub fn set_level_boxes(&mut self, level: usize, boxes: &[IntBox]) -> Vec<usize> {
        while self.levels.len() <= level {
            self.levels.push(Level::default());
        }
        let ids: Vec<usize> = boxes.iter().map(|_| self.fresh_id()).collect();
        self.levels[level].patches = boxes
            .iter()
            .zip(&ids)
            .map(|(b, &id)| Patch {
                id,
                interior: *b,
                owner: 0,
            })
            .collect();
        ids
    }

    /// Drop levels finer than `level` (over-refined regions destroyed).
    pub fn truncate_levels(&mut self, n_levels: usize) {
        self.levels.truncate(n_levels.max(1));
    }

    /// Parent patches (level−1) overlapping patch `p` of `level`.
    pub fn parents_of(&self, level: usize, interior: &IntBox) -> Vec<&Patch> {
        if level == 0 {
            return Vec::new();
        }
        let coarse = interior.coarsen(self.ratio);
        self.levels[level - 1]
            .patches
            .iter()
            .filter(|q| q.interior.intersect(&coarse).is_some())
            .collect()
    }

    /// Child patches (level+1) overlapping patch `p` of `level`.
    pub fn children_of(&self, level: usize, interior: &IntBox) -> Vec<&Patch> {
        if level + 1 >= self.levels.len() {
            return Vec::new();
        }
        let fine = interior.refine(self.ratio);
        self.levels[level + 1]
            .patches
            .iter()
            .filter(|q| q.interior.intersect(&fine).is_some())
            .collect()
    }

    /// Are all patches of `level` disjoint? (Structural invariant.)
    pub fn level_disjoint(&self, level: usize) -> bool {
        let ps = &self.levels[level].patches;
        for (a, pa) in ps.iter().enumerate() {
            for pb in &ps[a + 1..] {
                if pa.interior.intersect(&pb.interior).is_some() {
                    return false;
                }
            }
        }
        true
    }

    /// Is every patch of `level` properly nested: contained in the union
    /// of the coarser level's patches (refined), and inside the level
    /// domain? A cell-by-cell check — O(cells), used in tests and debug
    /// assertions, not in the hot path.
    pub fn properly_nested(&self, level: usize) -> bool {
        if level == 0 {
            return self.levels[0]
                .patches
                .iter()
                .all(|p| self.domain0.contains_box(&p.interior));
        }
        let domain = self.level_domain(level);
        for p in &self.levels[level].patches {
            if !domain.contains_box(&p.interior) {
                return false;
            }
            let coarse = p.interior.coarsen(self.ratio);
            for (ci, cj) in coarse.cells() {
                let covered = self.levels[level - 1]
                    .patches
                    .iter()
                    .any(|q| q.interior.contains(ci, cj));
                if !covered {
                    return false;
                }
            }
        }
        true
    }

    /// Workload summary: cells per level.
    pub fn cells_per_level(&self) -> Vec<i64> {
        self.levels.iter().map(|l| l.cell_count()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Hierarchy {
        Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [1.0 / 16.0; 2], 2)
    }

    #[test]
    fn level_geometry() {
        let h = base();
        assert_eq!(h.level_domain(0), IntBox::sized(16, 16));
        assert_eq!(h.level_domain(2), IntBox::sized(64, 64));
        assert_eq!(h.dx(1), [1.0 / 32.0; 2]);
        let c = h.cell_center(0, 0, 0);
        assert!((c[0] - 0.03125).abs() < 1e-15);
    }

    #[test]
    fn set_level_and_relations() {
        let mut h = base();
        let fine_boxes = [IntBox::new([4, 4], [11, 11]).refine(2)];
        h.set_level_boxes(1, &fine_boxes);
        assert!(h.properly_nested(1));
        assert!(h.level_disjoint(1));
        let parents = h.parents_of(1, &h.levels[1].patches[0].interior);
        assert_eq!(parents.len(), 1);
        let children = h.children_of(0, &h.levels[0].patches[0].interior);
        assert_eq!(children.len(), 1);
    }

    #[test]
    fn nesting_violation_detected() {
        let mut h = base();
        // Level 1 box poking outside the refined level-0 patch union is
        // impossible here (level 0 covers the domain), so instead build a
        // level-2 box outside level 1's union.
        h.set_level_boxes(1, &[IntBox::new([0, 0], [7, 7]).refine(2)]);
        assert!(h.properly_nested(1));
        h.set_level_boxes(2, &[IntBox::new([50, 50], [59, 59])]);
        assert!(!h.properly_nested(2));
        h.set_level_boxes(2, &[IntBox::new([4, 4], [11, 11])]);
        assert!(h.properly_nested(2));
    }

    #[test]
    fn overlapping_patches_fail_disjointness() {
        let mut h = base();
        h.set_level_boxes(1, &[IntBox::sized(8, 8), IntBox::new([4, 4], [11, 11])]);
        assert!(!h.level_disjoint(1));
    }

    #[test]
    fn ids_are_unique_across_regrids() {
        let mut h = base();
        let a = h.set_level_boxes(1, &[IntBox::sized(4, 4)]);
        let b = h.set_level_boxes(1, &[IntBox::sized(4, 4)]);
        assert_ne!(a, b);
    }

    #[test]
    fn truncate_keeps_coarsest() {
        let mut h = base();
        h.set_level_boxes(1, &[IntBox::sized(8, 8)]);
        h.set_level_boxes(2, &[IntBox::sized(8, 8)]);
        h.truncate_levels(1);
        assert_eq!(h.n_levels(), 1);
        h.truncate_levels(0); // never drops level 0
        assert_eq!(h.n_levels(), 1);
    }
}
