//! Distributed SAMR: the ownership/storage split that lets one adaptive
//! hierarchy span SCMD ranks.
//!
//! The paper's GrACE layer manages a *distributed* adaptive mesh under the
//! component architecture; this module is our equivalent. The design rule
//! is the one every production AMR framework (FLASH, Chombo, waLBerla's
//! block forest) converges on:
//!
//! * **metadata is replicated** — every rank holds the full [`Hierarchy`]
//!   (patch boxes, ids, owners) and keeps it bit-identical by construction:
//!   regridding runs on an all-gathered, canonically sorted flag set with
//!   [`cluster_deterministic`], so no broadcast is needed;
//! * **storage is owner-local** — each rank's [`DataObject`] holds only
//!   the patches it owns; everything that crosses a rank boundary moves
//!   through explicit, deterministically ordered *manifests* (same-level
//!   ghost strips, coarse-fine donor ships, restriction windows, regrid
//!   prolongation/copy windows, migration records).
//!
//! Manifests are pure metadata: every rank derives the identical list from
//! the replicated hierarchy, then executes only its own sends/receives.
//! The same manifests drive comm-plan IR emission (see
//! `cca-analyze::distplan`), so the static verifier and the runtime audit
//! cover every distributed exchange with no extra bookkeeping.
//!
//! Bit-identity across P: ghost strips are exact copies of disjoint
//! regions; coarse-fine donors ship their *entire* ghost-padded box so the
//! receiver's limited prolongation sees exactly the stencil (and exactly
//! the clamping) a rank-local fill would; restriction is computed on the
//! sending rank with the same arithmetic `restrict_average` uses locally.
//! Hence field values never depend on which rank computed them.

use crate::balance::{assign_hierarchy, rebalance_hierarchy, Move};
use crate::boxes::IntBox;
use crate::checkpoint::{patch_from_bytes, patch_record_len, patch_to_bytes};
use crate::cluster::cluster_deterministic;
use crate::data::{DataObject, PatchData};
use crate::hierarchy::Hierarchy;
use crate::interp::prolong_limited;
use crate::regrid::RegridParams;
use cca_comm::Communicator;
use std::collections::BTreeMap;

/// Tag for coalesced same-level ghost-strip messages.
pub const TAG_SAME_LEVEL: u64 = 40;
/// Tag for coarse-fine donor-patch ships (full ghost-padded boxes).
pub const TAG_COARSE_FINE: u64 = 41;
/// Tag for restriction windows (pre-averaged on the fine owner).
pub const TAG_RESTRICT: u64 = 42;
/// Tag for regrid prolongation donor ships.
pub const TAG_PROLONG: u64 = 43;
/// Tag for regrid old-data copy windows.
pub const TAG_OLD_COPY: u64 = 44;
/// Tag for patch migration records.
pub const TAG_MIGRATE: u64 = 45;

/// A replicated adaptive hierarchy whose patch storage is distributed:
/// `hier` (metadata, identical on every rank) plus the rank count the
/// owner assignment targets.
#[derive(Clone, Debug)]
pub struct DistributedHierarchy {
    /// Replicated hierarchy metadata; `Patch::owner` is the storing rank.
    pub hier: Hierarchy,
    /// Number of SCMD ranks patches are distributed over.
    pub nranks: usize,
}

/// One same-level or regrid-copy window: copy `region` (a box in the
/// common index space of the level) from patch `donor` stored on rank
/// `src` into patch `recv` stored on rank `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionXfer {
    /// Rank storing the donor patch.
    pub src: usize,
    /// Rank storing the receiving patch.
    pub dst: usize,
    /// Donor patch id.
    pub donor: usize,
    /// Receiving patch id.
    pub recv: usize,
    /// Cells copied (donor interior ∩ receiver ghost box, or regrid
    /// overlap window).
    pub region: IntBox,
}

/// A whole coarse donor patch shipped `src → dst` (its full ghost-padded
/// box), so the receiver can run the limited prolongation stencil exactly
/// as if the donor were local.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DonorShip {
    /// Rank storing the donor.
    pub src: usize,
    /// Rank needing the donor's data.
    pub dst: usize,
    /// Donor patch id (on the coarse level).
    pub donor: usize,
}

/// Ghost cells of one fine patch served by one coarse donor, in the exact
/// discovery order the rank-local fill (`ghost::fill_coarse_fine_ghosts`)
/// would visit them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfFill {
    /// Fine patch whose ghosts are filled.
    pub fine: usize,
    /// Coarse donor patch id.
    pub donor: usize,
    /// Fine-index ghost cells, discovery order (row-major over the ghost
    /// box).
    pub cells: Vec<(i64, i64)>,
}

/// The complete coarse-fine fill manifest for one level: per-donor cell
/// lists, donor ships that cross ranks, and the clamp-filled orphans with
/// no coarse coverage at all.
#[derive(Clone, Debug, Default)]
pub struct CoarseFinePlan {
    /// Prolongation work items, fine patches in level order, donors
    /// ascending per patch.
    pub fills: Vec<CfFill>,
    /// Cross-rank donor ships, deduped and sorted by `(src, dst, donor)`.
    pub ships: Vec<DonorShip>,
    /// Per fine patch: ghost cells with no coarse donor, filled
    /// zero-gradient from the patch's own interior.
    pub clamps: Vec<(usize, Vec<(i64, i64)>)>,
}

/// One restriction window: fine patch `fine` (stored on `src`) underlies
/// coarse patch `coarse` (stored on `dst`) over `region` in *coarse* index
/// space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestrictXfer {
    /// Rank storing the fine patch.
    pub src: usize,
    /// Rank storing the coarse patch.
    pub dst: usize,
    /// Fine patch id.
    pub fine: usize,
    /// Coarse patch id.
    pub coarse: usize,
    /// Restricted cells, coarse index space.
    pub region: IntBox,
}

/// A coalesced wire message: every manifest entry between one `(src, dst)`
/// pair rides one isend/irecv, exactly like the PR 5 halo coalescing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsgGroup {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Total payload elements (`f64`s for field exchanges, bytes for
    /// migration records).
    pub elems: usize,
    /// Indices into the originating manifest, in manifest order.
    pub xfers: Vec<usize>,
}

/// Coalesce manifest entries into per-`(src, dst)` wire messages. Input:
/// one `(src, dst, elems)` triple per manifest entry, manifest order.
/// Entries with `src == dst` are rank-local and excluded. Output is sorted
/// by `(src, dst)` with each group's `xfers` in manifest order — every
/// rank derives the identical grouping.
pub fn group_xfers(ends: &[(usize, usize, usize)]) -> Vec<MsgGroup> {
    let mut by_pair: BTreeMap<(usize, usize), MsgGroup> = BTreeMap::new();
    for (idx, &(src, dst, elems)) in ends.iter().enumerate() {
        if src == dst {
            continue;
        }
        let g = by_pair.entry((src, dst)).or_insert(MsgGroup {
            src,
            dst,
            elems: 0,
            xfers: Vec::new(),
        });
        g.elems += elems;
        g.xfers.push(idx);
    }
    by_pair.into_values().collect()
}

/// Wire-level `(src, dst, tag, bytes)` tuples for a group list — the exact
/// shape `cca-analyze`'s plan builder consumes. `elem_bytes` is 8 for
/// `f64` payloads and 1 for raw migration bytes.
pub fn group_wire_msgs(
    groups: &[MsgGroup],
    tag: u64,
    elem_bytes: usize,
) -> Vec<(usize, usize, u64, u64)> {
    groups
        .iter()
        .map(|g| (g.src, g.dst, tag, (g.elems * elem_bytes) as u64))
        .collect()
}

/// The patch → owner map and every derived manifest.
impl DistributedHierarchy {
    /// Wrap replicated hierarchy metadata for distribution over `nranks`.
    pub fn new(hier: Hierarchy, nranks: usize) -> Self {
        assert!(nranks > 0, "need at least one rank");
        DistributedHierarchy { hier, nranks }
    }

    /// Owner rank of patch `id` on `level`, if the patch exists.
    pub fn owner(&self, level: usize, id: usize) -> Option<usize> {
        self.hier
            .levels
            .get(level)?
            .patches
            .iter()
            .find(|p| p.id == id)
            .map(|p| p.owner)
    }

    /// `(level, id, owner)` for every patch — the `prev_owner` input of a
    /// later rebalance.
    pub fn owner_snapshot(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for (level, l) in self.hier.levels.iter().enumerate() {
            for p in &l.patches {
                out.push((level, p.id, p.owner));
            }
        }
        out
    }

    /// Run the full-hierarchy owner assignment (level 0 greedy LPT, finer
    /// levels parent-affinity within `affinity_tolerance`). Returns
    /// per-level per-rank loads. Deterministic, so every rank may call it
    /// independently on identical metadata.
    pub fn assign_owners(
        &mut self,
        work: impl Fn(&Hierarchy, usize, &crate::hierarchy::Patch) -> f64,
        affinity_tolerance: f64,
    ) -> Vec<Vec<f64>> {
        assign_hierarchy(&mut self.hier, work, self.nranks, affinity_tolerance)
    }

    /// Allocate storage in `dobj` for every patch `rank` owns (all
    /// levels). The ownership/storage split in one line: metadata is
    /// everywhere, field memory only here.
    pub fn allocate_owned(&self, dobj: &mut DataObject, rank: usize) {
        dobj.ensure_levels(self.hier.n_levels());
        for (level, l) in self.hier.levels.iter().enumerate() {
            for p in &l.patches {
                if p.owner == rank {
                    dobj.allocate(level, p.id, p.interior);
                }
            }
        }
    }

    /// Same-level ghost manifest for `level`: every (receiver ghost box ∩
    /// donor interior) window, receivers in level order, donors in level
    /// order per receiver — the iteration order of the rank-local fill.
    pub fn same_level_xfers(&self, level: usize, nghost: i64) -> Vec<RegionXfer> {
        let patches = &self.hier.levels[level].patches;
        let mut out = Vec::new();
        for p in patches {
            let total = p.interior.grow(nghost);
            for q in patches {
                if q.id == p.id {
                    continue;
                }
                if let Some(region) = total.intersect(&q.interior) {
                    out.push(RegionXfer {
                        src: q.owner,
                        dst: p.owner,
                        donor: q.id,
                        recv: p.id,
                        region,
                    });
                }
            }
        }
        out
    }

    /// Coarse-fine fill manifest for `level` (> 0): which coarse donor
    /// serves each orphan ghost cell, which donors must be shipped across
    /// ranks, and which cells have no donor. Mirrors the donor-selection
    /// rules of `ghost::fill_coarse_fine_ghosts` cell for cell.
    pub fn coarse_fine_plan(&self, level: usize, nghost: i64) -> CoarseFinePlan {
        let mut plan = CoarseFinePlan::default();
        if level == 0 {
            return plan;
        }
        let ratio = self.hier.ratio;
        let domain = self.hier.level_domain(level);
        let patches = &self.hier.levels[level].patches;
        let coarse = &self.hier.levels[level - 1].patches;
        for p in patches {
            let total = p.interior.grow(nghost);
            let near: Vec<usize> = patches
                .iter()
                .enumerate()
                .filter_map(|(qi, q)| {
                    (q.id != p.id && q.interior.intersect(&total).is_some()).then_some(qi)
                })
                .collect();
            // (donor id, i, j) in discovery order, exactly like the local
            // fill's flattened cell list.
            let mut cells: Vec<(usize, i64, i64)> = Vec::new();
            let mut orphans: Vec<(i64, i64)> = Vec::new();
            for (i, j) in total.cells() {
                if p.interior.contains(i, j) || !domain.contains(i, j) {
                    continue;
                }
                if near.iter().any(|&qi| patches[qi].interior.contains(i, j)) {
                    continue;
                }
                let ci = i.div_euclid(ratio);
                let cj = j.div_euclid(ratio);
                let donor = coarse
                    .iter()
                    .find(|q| q.interior.contains(ci, cj))
                    .or_else(|| {
                        coarse
                            .iter()
                            .find(|q| q.interior.grow(nghost).contains(ci, cj))
                    });
                if let Some(d) = donor {
                    cells.push((d.id, i, j));
                } else {
                    orphans.push((i, j));
                }
            }
            let mut donors: Vec<usize> = cells.iter().map(|t| t.0).collect();
            donors.sort_unstable();
            donors.dedup();
            for donor in donors {
                let fill_cells: Vec<(i64, i64)> = cells
                    .iter()
                    .filter(|t| t.0 == donor)
                    .map(|t| (t.1, t.2))
                    .collect();
                let donor_owner = coarse
                    .iter()
                    .find(|q| q.id == donor)
                    .expect("donor came from this list")
                    .owner;
                if donor_owner != p.owner {
                    plan.ships.push(DonorShip {
                        src: donor_owner,
                        dst: p.owner,
                        donor,
                    });
                }
                plan.fills.push(CfFill {
                    fine: p.id,
                    donor,
                    cells: fill_cells,
                });
            }
            if !orphans.is_empty() {
                plan.clamps.push((p.id, orphans));
            }
        }
        plan.ships.sort_unstable();
        plan.ships.dedup();
        plan
    }

    /// Restriction manifest: every (coarse interior ∩ coarsened fine
    /// interior) window of `fine_level`, coarse patches outermost — the
    /// iteration order of a rank-local restriction sweep.
    pub fn restrict_xfers(&self, fine_level: usize) -> Vec<RestrictXfer> {
        assert!(fine_level > 0, "level 0 has no parent to restrict into");
        let ratio = self.hier.ratio;
        let coarse = &self.hier.levels[fine_level - 1].patches;
        let fine = &self.hier.levels[fine_level].patches;
        let mut out = Vec::new();
        for c in coarse {
            for f in fine {
                if let Some(region) = c.interior.intersect(&f.interior.coarsen(ratio)) {
                    out.push(RestrictXfer {
                        src: f.owner,
                        dst: c.owner,
                        fine: f.id,
                        coarse: c.id,
                        region,
                    });
                }
            }
        }
        out
    }
}

/// Coalesced wire groups for a same-level (or regrid-copy) manifest.
pub fn region_groups(xfers: &[RegionXfer], nvars: usize) -> Vec<MsgGroup> {
    let ends: Vec<(usize, usize, usize)> = xfers
        .iter()
        .map(|x| (x.src, x.dst, nvars * x.region.count() as usize))
        .collect();
    group_xfers(&ends)
}

/// Coalesced wire groups for coarse-fine / prolongation donor ships: each
/// ship carries the donor's full ghost-padded box.
pub fn ship_groups(
    dh: &DistributedHierarchy,
    ships: &[DonorShip],
    donor_level: usize,
    nvars: usize,
    nghost: i64,
) -> Vec<MsgGroup> {
    let ends: Vec<(usize, usize, usize)> = ships
        .iter()
        .map(|s| {
            let interior = dh.hier.levels[donor_level]
                .patches
                .iter()
                .find(|p| p.id == s.donor)
                .expect("shipped donor exists")
                .interior;
            let total = interior.grow(nghost);
            (s.src, s.dst, nvars * total.count() as usize)
        })
        .collect();
    group_xfers(&ends)
}

/// Coalesced wire groups for a restriction manifest.
pub fn restrict_groups(xfers: &[RestrictXfer], nvars: usize) -> Vec<MsgGroup> {
    let ends: Vec<(usize, usize, usize)> = xfers
        .iter()
        .map(|x| (x.src, x.dst, nvars * x.region.count() as usize))
        .collect();
    group_xfers(&ends)
}

/// Post one irecv per group destined for `rank` (group order), send one
/// packed isend per group sourced at `rank` (group order, payload packed
/// by `pack` per manifest index), then waitall. Returns the received
/// payloads in group order. This call order — irecvs, isends, waitall —
/// is exactly what the plan builder emits, so traces audit clean.
fn exchange_f64(
    comm: &Communicator,
    groups: &[MsgGroup],
    tag: u64,
    mut pack: impl FnMut(usize, &mut Vec<f64>),
) -> BTreeMap<usize, Vec<f64>> {
    let rank = comm.rank();
    let mut reqs = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        if g.dst == rank {
            reqs.push((gi, comm.irecv::<f64>(g.src, tag)));
        }
    }
    for g in groups.iter().filter(|g| g.src == rank) {
        let mut buf = Vec::with_capacity(g.elems);
        for &xi in &g.xfers {
            pack(xi, &mut buf);
        }
        debug_assert_eq!(buf.len(), g.elems);
        comm.isend(g.dst, tag, &buf);
        comm.note_coalesced(g.xfers.len() as u64);
    }
    let mut received = BTreeMap::new();
    for (gi, req) in reqs {
        received.insert(gi, comm.wait(req));
    }
    received
}

/// Distributed same-level ghost fill: rank-local windows are copied
/// directly, cross-rank windows ride one coalesced message per rank pair.
/// Ghost regions from distinct donors are disjoint, so the fill is
/// value-identical to the rank-local `ghost::fill_same_level_ghosts`.
pub fn exchange_same_level(
    comm: &Communicator,
    dobj: &mut DataObject,
    level: usize,
    xfers: &[RegionXfer],
    groups: &[MsgGroup],
) {
    let rank = comm.rank();
    let received = exchange_f64(comm, groups, TAG_SAME_LEVEL, |xi, buf| {
        let x = &xfers[xi];
        let donor = dobj.patch(level, x.donor).expect("donor stored locally");
        let n = donor.nvars * x.region.count() as usize;
        let off = buf.len();
        buf.resize(off + n, 0.0);
        donor.pack_into(&x.region, &mut buf[off..]);
    });
    // Local windows, manifest order.
    for x in xfers.iter().filter(|x| x.src == rank && x.dst == rank) {
        let strip = dobj
            .patch(level, x.donor)
            .expect("donor stored locally")
            .pack(&x.region);
        dobj.patch_mut(level, x.recv)
            .expect("receiver stored locally")
            .unpack(&x.region, &strip);
    }
    // Remote windows, group order then manifest order within the group.
    for (gi, payload) in received {
        let g = &groups[gi];
        let mut off = 0usize;
        for &xi in &g.xfers {
            let x = &xfers[xi];
            let pd = dobj
                .patch_mut(level, x.recv)
                .expect("receiver stored locally");
            let n = pd.nvars * x.region.count() as usize;
            pd.unpack(&x.region, &payload[off..off + n]);
            off += n;
        }
    }
}

/// Distributed coarse-fine ghost fill: ship the cross-rank coarse donors
/// whole, then run the limited per-cell prolongation locally against
/// either the stored or the shipped donor. Clamp-fill orphans last, like
/// the rank-local path.
pub fn exchange_coarse_fine(
    comm: &Communicator,
    dh: &DistributedHierarchy,
    dobj: &mut DataObject,
    level: usize,
    plan: &CoarseFinePlan,
    groups: &[MsgGroup],
) {
    let rank = comm.rank();
    let ratio = dh.hier.ratio;
    let nghost = dobj.nghost;
    let nvars = dobj.nvars;
    let received = exchange_f64(comm, groups, TAG_COARSE_FINE, |xi, buf| {
        let ship = &plan.ships[xi];
        let donor = dobj
            .patch(level - 1, ship.donor)
            .expect("shipped donor stored locally");
        let total = donor.total_box();
        let n = nvars * total.count() as usize;
        let off = buf.len();
        buf.resize(off + n, 0.0);
        donor.pack_into(&total, &mut buf[off..]);
    });
    // Reconstruct shipped donors as full PatchData so prolongation clamps
    // against the identical ghost-padded box a local donor presents.
    let mut remote: BTreeMap<usize, PatchData> = BTreeMap::new();
    for (gi, payload) in received {
        let g = &groups[gi];
        let mut off = 0usize;
        for &xi in &g.xfers {
            let ship = &plan.ships[xi];
            let interior = dh.hier.levels[level - 1]
                .patches
                .iter()
                .find(|p| p.id == ship.donor)
                .expect("shipped donor exists")
                .interior;
            let mut pd = PatchData::new(interior, nvars, nghost);
            let total = pd.total_box();
            let n = nvars * total.count() as usize;
            pd.unpack(&total, &payload[off..off + n]);
            off += n;
            remote.insert(ship.donor, pd);
        }
    }
    for fill in &plan.fills {
        if dh.owner(level, fill.fine) != Some(rank) {
            continue;
        }
        let donor_local = dh.owner(level - 1, fill.donor) == Some(rank);
        for &(i, j) in &fill.cells {
            let cell = IntBox::new([i, j], [i, j]);
            if donor_local {
                let (fine_pd, coarse_pd) = dobj
                    .patch_pair_mut(level, fill.fine, level - 1, fill.donor)
                    .expect("both stored locally");
                prolong_limited(fine_pd, coarse_pd, &cell, ratio);
            } else {
                let coarse_pd = remote.get(&fill.donor).expect("donor was shipped");
                let fine_pd = dobj
                    .patch_mut(level, fill.fine)
                    .expect("fine patch stored locally");
                prolong_limited(fine_pd, coarse_pd, &cell, ratio);
            }
        }
    }
    for (fine, orphans) in &plan.clamps {
        if dh.owner(level, *fine) != Some(rank) {
            continue;
        }
        let pd = dobj
            .patch_mut(level, *fine)
            .expect("fine patch stored locally");
        let interior = pd.interior;
        for &(i, j) in orphans {
            let ii = i.clamp(interior.lo[0], interior.hi[0]);
            let jj = j.clamp(interior.lo[1], interior.hi[1]);
            for var in 0..pd.nvars {
                let v = pd.get(var, ii, jj);
                pd.set(var, i, j, v);
            }
        }
    }
}

/// Distributed conservative restriction: windows whose fine patch lives
/// elsewhere arrive pre-averaged from the fine owner (same arithmetic as
/// `interp::restrict_average`, so values are bit-identical to a local
/// sweep); local windows restrict in place.
pub fn exchange_restrict(
    comm: &Communicator,
    dobj: &mut DataObject,
    fine_level: usize,
    ratio: i64,
    xfers: &[RestrictXfer],
    groups: &[MsgGroup],
) {
    let rank = comm.rank();
    let nvars = dobj.nvars;
    let inv = 1.0 / (ratio * ratio) as f64;
    let received = exchange_f64(comm, groups, TAG_RESTRICT, |xi, buf| {
        let x = &xfers[xi];
        let fine = dobj.patch(fine_level, x.fine).expect("fine stored locally");
        for var in 0..nvars {
            for (ci, cj) in x.region.cells() {
                let mut acc = 0.0;
                for dj in 0..ratio {
                    for di in 0..ratio {
                        acc += fine.get(var, ci * ratio + di, cj * ratio + dj);
                    }
                }
                buf.push(acc * inv);
            }
        }
    });
    for x in xfers.iter().filter(|x| x.src == rank && x.dst == rank) {
        let (coarse_pd, fine_pd) = dobj
            .patch_pair_mut(fine_level - 1, x.coarse, fine_level, x.fine)
            .expect("both stored locally");
        crate::interp::restrict_average(coarse_pd, fine_pd, &x.region, ratio);
    }
    for (gi, payload) in received {
        let g = &groups[gi];
        let mut off = 0usize;
        for &xi in &g.xfers {
            let x = &xfers[xi];
            let pd = dobj
                .patch_mut(fine_level - 1, x.coarse)
                .expect("coarse stored locally");
            let n = nvars * x.region.count() as usize;
            pd.unpack(&x.region, &payload[off..off + n]);
            off += n;
        }
    }
}

/// Coalesced wire groups for a migration: one message per `(src, dst)`
/// pair, `elems` in **bytes** (migration records are raw bytes, not
/// `f64`s), moves in `(level, id)` order within each group.
pub fn migration_groups(
    dh: &DistributedHierarchy,
    moves: &[Move],
    nvars: usize,
    nghost: i64,
) -> Vec<MsgGroup> {
    let ends: Vec<(usize, usize, usize)> = moves
        .iter()
        .map(|m| {
            let interior = dh.hier.levels[m.level]
                .patches
                .iter()
                .find(|p| p.id == m.id)
                .expect("moved patch exists")
                .interior;
            (m.from, m.to, patch_record_len(&interior, nvars, nghost))
        })
        .collect();
    group_xfers(&ends)
}

/// Execute a migration: senders serialize and *remove* each moved patch,
/// receivers parse and insert. Payloads are concatenated
/// `checkpoint::patch_to_bytes` records, so a migrated patch arrives
/// bit-identical, ghosts included.
pub fn migrate_patches(
    comm: &Communicator,
    dobj: &mut DataObject,
    moves: &[Move],
    groups: &[MsgGroup],
) {
    let rank = comm.rank();
    let nvars = dobj.nvars;
    let nghost = dobj.nghost;
    let mut reqs = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        if g.dst == rank {
            reqs.push((gi, comm.irecv::<u8>(g.src, TAG_MIGRATE)));
        }
    }
    for g in groups.iter().filter(|g| g.src == rank) {
        let mut buf: Vec<u8> = Vec::with_capacity(g.elems);
        for &mi in &g.xfers {
            let m = &moves[mi];
            let pd = dobj
                .take_patch(m.level, m.id)
                .expect("moved patch stored locally");
            patch_to_bytes(m.level, m.id, &pd, &mut buf);
        }
        debug_assert_eq!(buf.len(), g.elems);
        comm.isend(g.dst, TAG_MIGRATE, &buf);
        comm.note_coalesced(g.xfers.len() as u64);
    }
    for (gi, req) in reqs {
        let payload = comm.wait(req);
        let g = &groups[gi];
        let mut r = payload.as_slice();
        for _ in &g.xfers {
            let (level, id, pd) =
                patch_from_bytes(&mut r, nvars, nghost).expect("well-formed migration record");
            dobj.ensure_levels(level + 1);
            dobj.insert(level, id, pd);
        }
        debug_assert!(r.is_empty(), "trailing bytes in migration payload");
    }
}

/// One regrid prolongation window: initialize `region` (fine index space)
/// of new patch `fine` from coarse donor `donor`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProlongFill {
    /// Newly created fine patch id.
    pub fine: usize,
    /// Coarse donor patch id.
    pub donor: usize,
    /// Initialized cells, fine index space.
    pub region: IntBox,
}

/// Everything a distributed regrid epoch needs, derived identically on
/// every rank from the merged flag set: the rebuilt level's geometry, the
/// data-movement manifests, and the rebalancing moves.
#[derive(Clone, Debug)]
pub struct RegridPlan {
    /// Coarse level that was flagged (`level + 1` was rebuilt).
    pub level: usize,
    /// Ids of the new fine patches, in box order.
    pub new_ids: Vec<usize>,
    /// Interiors of the new fine patches, same order as `new_ids`.
    pub fine_boxes: Vec<IntBox>,
    /// `(id, interior, owner)` of the destroyed fine patches; their data
    /// still sits on the old owners until the copy epoch drains it.
    pub old_patches: Vec<(usize, IntBox, usize)>,
    /// Prolongation windows, new patches outermost, donors in level order.
    pub prolong: Vec<ProlongFill>,
    /// Coarse donors shipped cross-rank for prolongation (post-rebalance
    /// owners), deduped and sorted.
    pub prolong_ships: Vec<DonorShip>,
    /// Old-fine → new-fine overlap copies (`src` = old owner, `dst` = new
    /// owner); applied after prolongation, like the rank-local regrid.
    pub old_copies: Vec<RegionXfer>,
    /// Owner changes of *surviving* patches (regrid-time rebalancing).
    pub moves: Vec<Move>,
    /// Per-level per-rank loads after rebalancing.
    pub level_loads: Vec<Vec<f64>>,
}

/// Plan a distributed regrid of `level + 1` from the *merged* (all-rank)
/// flag set. Pure metadata: mutates only the replicated hierarchy, so
/// every rank calls this with the identical flag set and lands on the
/// identical plan — patch ids included, because `set_level_boxes` draws
/// from the replicated id counter.
///
/// Mirrors `regrid::regrid_level` step for step (buffering, deeper-level
/// nesting enforcement, clustering, rebuild) with two deltas: clustering
/// is [`cluster_deterministic`] (canonical box order), and data movement
/// is returned as manifests instead of performed.
pub fn plan_regrid(
    dh: &mut DistributedHierarchy,
    level: usize,
    flags: &[(i64, i64)],
    params: &RegridParams,
    work: impl Fn(&Hierarchy, usize, &crate::hierarchy::Patch) -> f64,
    affinity_tolerance: f64,
) -> RegridPlan {
    let patch_union: Vec<IntBox> = dh.hier.levels[level]
        .patches
        .iter()
        .map(|p| p.interior)
        .collect();
    // Buffer + clip, Vec-canonical instead of hash-set so iteration order
    // is fixed by construction (determinism lint covers this module).
    let mut buffered: Vec<(i64, i64)> = Vec::new();
    for &(i, j) in flags {
        for dj in -params.buffer..=params.buffer {
            for di in -params.buffer..=params.buffer {
                let (bi, bj) = (i + di, j + dj);
                if patch_union.iter().any(|b| b.contains(bi, bj)) {
                    buffered.push((bi, bj));
                }
            }
        }
    }
    if dh.hier.n_levels() > level + 2 {
        let margin = params.buffer.max(1);
        for p in &dh.hier.levels[level + 2].patches {
            let foot = p
                .interior
                .coarsen(dh.hier.ratio)
                .coarsen(dh.hier.ratio)
                .grow(margin);
            for (bi, bj) in foot.cells() {
                if patch_union.iter().any(|b| b.contains(bi, bj)) {
                    buffered.push((bi, bj));
                }
            }
        }
    }
    buffered.sort_unstable();
    buffered.dedup();

    let coarse_boxes = cluster_deterministic(&buffered, params.efficiency, params.min_width);
    let fine_boxes: Vec<IntBox> = coarse_boxes
        .iter()
        .map(|b| b.refine(dh.hier.ratio))
        .collect();

    let old_patches: Vec<(usize, IntBox, usize)> = if dh.hier.n_levels() > level + 1 {
        dh.hier.levels[level + 1]
            .patches
            .iter()
            .map(|p| (p.id, p.interior, p.owner))
            .collect()
    } else {
        Vec::new()
    };
    let prev_owner = dh.owner_snapshot();

    let new_ids = if fine_boxes.is_empty() {
        dh.hier.truncate_levels(level + 1);
        Vec::new()
    } else {
        dh.hier.set_level_boxes(level + 1, &fine_boxes)
    };
    debug_assert!(fine_boxes.is_empty() || dh.hier.properly_nested(level + 1));

    let nranks = dh.nranks;
    let (level_loads, moves) =
        rebalance_hierarchy(&mut dh.hier, work, nranks, affinity_tolerance, &prev_owner);

    let mut prolong = Vec::new();
    let mut prolong_ships = Vec::new();
    let mut old_copies = Vec::new();
    for (new_id, fine_box) in new_ids.iter().zip(&fine_boxes) {
        let new_owner = dh.owner(level + 1, *new_id).expect("just created");
        for q in &dh.hier.levels[level].patches {
            let Some(ov) = fine_box.coarsen(dh.hier.ratio).intersect(&q.interior) else {
                continue;
            };
            let fine_region = ov
                .refine(dh.hier.ratio)
                .intersect(fine_box)
                .expect("refined overlap intersects the fine box");
            prolong.push(ProlongFill {
                fine: *new_id,
                donor: q.id,
                region: fine_region,
            });
            if q.owner != new_owner {
                prolong_ships.push(DonorShip {
                    src: q.owner,
                    dst: new_owner,
                    donor: q.id,
                });
            }
        }
        for &(old_id, old_interior, old_owner) in &old_patches {
            if let Some(region) = fine_box.intersect(&old_interior) {
                old_copies.push(RegionXfer {
                    src: old_owner,
                    dst: new_owner,
                    donor: old_id,
                    recv: *new_id,
                    region,
                });
            }
        }
    }
    prolong_ships.sort_unstable();
    prolong_ships.dedup();

    RegridPlan {
        level,
        new_ids,
        fine_boxes,
        old_patches,
        prolong,
        prolong_ships,
        old_copies,
        moves,
        level_loads,
    }
}

/// Execute a [`RegridPlan`] on this rank's storage, in three comm epochs
/// that every rank enters in lockstep:
///
/// 1. **migrate** — surviving patches move to their post-rebalance owners
///    (serialized whole, ghosts included);
/// 2. **prolong ships** — cross-rank coarse donors arrive whole, then new
///    fine patches are initialized by limited prolongation;
/// 3. **old copies** — surviving same-resolution data overwrites the
///    prolonged initialization, exactly like the rank-local regrid.
///
/// Old fine-level storage is drained into a side map first so epoch 3 can
/// source it even though the hierarchy no longer lists those patches.
pub fn execute_regrid(
    comm: &Communicator,
    dh: &DistributedHierarchy,
    dobj: &mut DataObject,
    plan: &RegridPlan,
) {
    let rank = comm.rank();
    let nvars = dobj.nvars;
    let nghost = dobj.nghost;
    let ratio = dh.hier.ratio;
    let fine_level = plan.level + 1;

    // Drain destroyed-level storage before anything else: migration may
    // deliver patches into the rebuilt level, and ids must not mix.
    let old_fine: BTreeMap<usize, PatchData> = if dobj.n_levels() > fine_level {
        dobj.take_level(fine_level)
    } else {
        BTreeMap::new()
    };

    // Epoch 1: migrate surviving patches to their new owners.
    let mig_groups = migration_groups(dh, &plan.moves, nvars, nghost);
    migrate_patches(comm, dobj, &plan.moves, &mig_groups);

    // Allocate the rebuilt level's local patches.
    dobj.ensure_levels(dh.hier.n_levels());
    for (new_id, fine_box) in plan.new_ids.iter().zip(&plan.fine_boxes) {
        if dh.owner(fine_level, *new_id) == Some(rank) {
            dobj.allocate(fine_level, *new_id, *fine_box);
        }
    }

    // Epoch 2: ship cross-rank coarse donors, then prolong.
    let ship_gs = ship_groups(dh, &plan.prolong_ships, plan.level, nvars, nghost);
    let received = exchange_f64(comm, &ship_gs, TAG_PROLONG, |xi, buf| {
        let ship = &plan.prolong_ships[xi];
        let donor = dobj
            .patch(plan.level, ship.donor)
            .expect("shipped donor stored locally");
        let total = donor.total_box();
        let n = nvars * total.count() as usize;
        let off = buf.len();
        buf.resize(off + n, 0.0);
        donor.pack_into(&total, &mut buf[off..]);
    });
    let mut remote: BTreeMap<usize, PatchData> = BTreeMap::new();
    for (gi, payload) in received {
        let g = &ship_gs[gi];
        let mut off = 0usize;
        for &xi in &g.xfers {
            let ship = &plan.prolong_ships[xi];
            let interior = dh.hier.levels[plan.level]
                .patches
                .iter()
                .find(|p| p.id == ship.donor)
                .expect("shipped donor exists")
                .interior;
            let mut pd = PatchData::new(interior, nvars, nghost);
            let total = pd.total_box();
            let n = nvars * total.count() as usize;
            pd.unpack(&total, &payload[off..off + n]);
            off += n;
            remote.insert(ship.donor, pd);
        }
    }
    for fill in &plan.prolong {
        if dh.owner(fine_level, fill.fine) != Some(rank) {
            continue;
        }
        if dh.owner(plan.level, fill.donor) == Some(rank) {
            let (fine_pd, coarse_pd) = dobj
                .patch_pair_mut(fine_level, fill.fine, plan.level, fill.donor)
                .expect("both stored locally");
            prolong_limited(fine_pd, coarse_pd, &fill.region, ratio);
        } else {
            let coarse_pd = remote.get(&fill.donor).expect("donor was shipped");
            let fine_pd = dobj
                .patch_mut(fine_level, fill.fine)
                .expect("fine patch stored locally");
            prolong_limited(fine_pd, coarse_pd, &fill.region, ratio);
        }
    }

    // Epoch 3: overwrite with surviving same-resolution data.
    let copy_gs = region_groups(&plan.old_copies, nvars);
    let received = exchange_f64(comm, &copy_gs, TAG_OLD_COPY, |xi, buf| {
        let x = &plan.old_copies[xi];
        let old = old_fine.get(&x.donor).expect("old patch stored locally");
        let n = nvars * x.region.count() as usize;
        let off = buf.len();
        buf.resize(off + n, 0.0);
        old.pack_into(&x.region, &mut buf[off..]);
    });
    for x in plan
        .old_copies
        .iter()
        .filter(|x| x.src == rank && x.dst == rank)
    {
        let old = old_fine.get(&x.donor).expect("old patch stored locally");
        dobj.patch_mut(fine_level, x.recv)
            .expect("receiver stored locally")
            .copy_from(old, &x.region);
    }
    for (gi, payload) in received {
        let g = &copy_gs[gi];
        let mut off = 0usize;
        for &xi in &g.xfers {
            let x = &plan.old_copies[xi];
            let pd = dobj
                .patch_mut(fine_level, x.recv)
                .expect("receiver stored locally");
            let n = nvars * x.region.count() as usize;
            pd.unpack(&x.region, &payload[off..off + n]);
            off += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_comm::{scmd, ClusterModel};

    fn two_patch_hier() -> Hierarchy {
        let mut h = Hierarchy::new(IntBox::sized(16, 8), [0.0, 0.0], [1.0; 2], 2);
        h.set_level_boxes(
            0,
            &[IntBox::new([0, 0], [7, 7]), IntBox::new([8, 0], [15, 7])],
        );
        h
    }

    #[test]
    fn manifests_are_replicable_and_ordered() {
        let mut dh = DistributedHierarchy::new(two_patch_hier(), 2);
        dh.assign_owners(|_, _, p| p.interior.count() as f64, 1.5);
        let xfers = dh.same_level_xfers(0, 2);
        assert_eq!(xfers.len(), 2); // each patch reads the other's edge
        let groups = region_groups(&xfers, 3);
        // Both windows cross ranks (LPT split the two patches).
        assert_eq!(groups.len(), 2);
        assert!(groups
            .windows(2)
            .all(|w| (w[0].src, w[0].dst) <= (w[1].src, w[1].dst)));
        let wire = group_wire_msgs(&groups, TAG_SAME_LEVEL, 8);
        for ((src, dst, tag, bytes), g) in wire.iter().zip(&groups) {
            assert_eq!((*src, *dst, *tag), (g.src, g.dst, TAG_SAME_LEVEL));
            assert_eq!(*bytes as usize, g.elems * 8);
        }
    }

    #[test]
    fn distributed_same_level_fill_matches_local_fill() {
        let mut dh = DistributedHierarchy::new(two_patch_hier(), 2);
        dh.assign_owners(|_, _, p| p.interior.count() as f64, 1.5);
        let nghost = 2;
        let seed = |pd: &mut PatchData| {
            let t = pd.total_box();
            for (i, j) in t.cells() {
                pd.set(0, i, j, (3 * i - 7 * j) as f64);
                pd.set(1, i, j, (i * j) as f64 * 0.25);
            }
        };
        // Reference: rank-local fill with all patches stored.
        let mut reference = DataObject::new(2, nghost);
        for p in &dh.hier.levels[0].patches {
            reference.allocate(0, p.id, p.interior);
            seed(reference.patch_mut(0, p.id).unwrap());
        }
        crate::ghost::fill_same_level_ghosts(&mut reference, &dh.hier, 0);

        let xfers = dh.same_level_xfers(0, nghost);
        let groups = region_groups(&xfers, 2);
        let dh = std::sync::Arc::new(dh);
        let results = scmd::run(2, ClusterModel::zero(), move |comm| {
            let mut dobj = DataObject::new(2, nghost);
            dh.allocate_owned(&mut dobj, comm.rank());
            for p in &dh.hier.levels[0].patches {
                if p.owner == comm.rank() {
                    seed(dobj.patch_mut(0, p.id).unwrap());
                }
            }
            exchange_same_level(comm, &mut dobj, 0, &xfers, &groups);
            // Return every owned patch's full data for comparison.
            dh.hier.levels[0]
                .patches
                .iter()
                .filter(|p| p.owner == comm.rank())
                .map(|p| {
                    let pd = dobj.patch(0, p.id).unwrap();
                    (p.id, pd.pack(&pd.total_box()))
                })
                .collect::<Vec<_>>()
        });
        for (id, data) in results.into_iter().flatten() {
            let ref_pd = reference.patch(0, id).unwrap();
            let expect = ref_pd.pack(&ref_pd.total_box());
            let same = data
                .iter()
                .zip(&expect)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "patch {id} ghost fill diverged from local fill");
        }
    }

    #[test]
    fn plan_regrid_metadata_is_independent_of_rank_count() {
        let flags: Vec<(i64, i64)> = IntBox::new([3, 2], [9, 6]).cells().collect();
        let params = RegridParams::default();
        let plan_for = |nranks: usize| {
            let mut dh = DistributedHierarchy::new(two_patch_hier(), nranks);
            dh.assign_owners(|_, _, p| p.interior.count() as f64, 1.5);
            plan_regrid(
                &mut dh,
                0,
                &flags,
                &params,
                |_, _, p| p.interior.count() as f64,
                1.5,
            )
        };
        let p1 = plan_for(1);
        let p4 = plan_for(4);
        assert_eq!(p1.new_ids, p4.new_ids);
        assert_eq!(p1.fine_boxes, p4.fine_boxes);
        assert!(!p1.new_ids.is_empty());
    }

    #[test]
    fn migration_roundtrip_is_bit_identical() {
        // Rank 0 owns both patches; move one to rank 1 and back.
        let mut h = two_patch_hier();
        for p in &mut h.levels[0].patches {
            p.owner = 0;
        }
        let ids: Vec<usize> = h.levels[0].patches.iter().map(|p| p.id).collect();
        let dh = std::sync::Arc::new(DistributedHierarchy::new(h, 2));
        let moved = ids[1];
        let results = scmd::run(2, ClusterModel::zero(), move |comm| {
            let mut dobj = DataObject::new(2, 1);
            dh.allocate_owned(&mut dobj, comm.rank());
            let mut original = Vec::new();
            if comm.rank() == 0 {
                let pd = dobj.patch_mut(0, moved).unwrap();
                let t = pd.total_box();
                for (k, (i, j)) in t.cells().enumerate() {
                    pd.set(0, i, j, k as f64 * 1.5);
                    pd.set(1, i, j, -(k as f64));
                }
                original = pd.pack(&t);
            }
            let there = vec![Move {
                level: 0,
                id: moved,
                from: 0,
                to: 1,
            }];
            let back = vec![Move {
                level: 0,
                id: moved,
                from: 1,
                to: 0,
            }];
            let g_there = migration_groups(&dh, &there, 2, 1);
            let g_back = migration_groups(&dh, &back, 2, 1);
            migrate_patches(comm, &mut dobj, &there, &g_there);
            if comm.rank() == 0 {
                assert!(dobj.patch(0, moved).is_none(), "sender kept the patch");
            } else {
                assert!(dobj.patch(0, moved).is_some(), "receiver missing the patch");
            }
            migrate_patches(comm, &mut dobj, &back, &g_back);
            if comm.rank() == 0 {
                let pd = dobj.patch(0, moved).unwrap();
                let now = pd.pack(&pd.total_box());
                assert_eq!(now.len(), original.len());
                assert!(
                    now.iter()
                        .zip(&original)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "round-tripped patch data drifted"
                );
            }
        });
        assert_eq!(results.len(), 2);
    }
}
