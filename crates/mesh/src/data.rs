//! Patch-resident field storage: the paper's **Data Object** subsystem
//! ("it maintains the collection of arrays which contain data declared on
//! patches, 1 array per patch. Typically a number of related variables are
//! stored together in a Data Object").
//!
//! Layout is an explicit padded structure-of-arrays (DESIGN.md §13): one
//! contiguous *plane* per variable, row-major inside the plane, with the
//! row **pitch** rounded up to the [`crate::layout::pitch_quantum`] so
//! every row starts at an aligned element offset and kernels see
//! unit-stride, branch-free row slices. Padding is invisible to values:
//! every accessor that reads or writes data ([`PatchData::row`], pack/
//! unpack, reductions, equality) iterates **dense** rows only, so results
//! and wire bytes are bit-identical at any pitch.

use crate::boxes::IntBox;
use crate::layout;
use std::collections::BTreeMap;

/// The field data of one patch: `nvars` variables over the patch interior
/// plus `nghost` ghost cells on every side, stored as padded-SoA planes.
#[derive(Clone, Debug)]
pub struct PatchData {
    /// Interior cell box, in the patch's level index space.
    pub interior: IntBox,
    /// Number of variables stored together.
    pub nvars: usize,
    /// Ghost width on each side.
    pub nghost: i64,
    /// Elements per stored row (≥ the dense row length `total.nx()`).
    pitch: usize,
    data: Vec<f64>,
}

impl PatchData {
    /// Allocate zero-initialized storage with the process-default pitch
    /// quantum ([`crate::layout::pitch_quantum`]).
    pub fn new(interior: IntBox, nvars: usize, nghost: i64) -> Self {
        Self::with_pitch_quantum(interior, nvars, nghost, layout::pitch_quantum())
    }

    /// Allocate zero-initialized storage with an explicit pitch quantum
    /// (rows padded to a multiple of `quantum` elements). A quantum of 1
    /// gives the dense layout; values are identical at any quantum.
    pub fn with_pitch_quantum(interior: IntBox, nvars: usize, nghost: i64, quantum: usize) -> Self {
        let total = interior.grow(nghost);
        let pitch = layout::pad_to_quantum(total.nx() as usize, quantum);
        let len = nvars * pitch * total.ny() as usize;
        PatchData {
            interior,
            nvars,
            nghost,
            pitch,
            data: vec![0.0; len],
        }
    }

    /// Interior-plus-ghost box.
    pub fn total_box(&self) -> IntBox {
        self.interior.grow(self.nghost)
    }

    /// Elements per stored row (dense row length rounded up to the pitch
    /// quantum this patch was allocated with).
    #[inline]
    pub fn pitch(&self) -> usize {
        self.pitch
    }

    /// Elements per variable plane (`pitch × total rows`).
    #[inline]
    fn plane(&self) -> usize {
        self.pitch * self.total_box().ny() as usize
    }

    /// Flat index of `(var, i, j)`; `(i, j)` are level coordinates and may
    /// lie in the ghost region.
    #[inline]
    pub fn idx(&self, var: usize, i: i64, j: i64) -> usize {
        let t = self.total_box();
        debug_assert!(t.contains(i, j), "({i},{j}) outside {t:?}");
        debug_assert!(var < self.nvars);
        let ii = (i - t.lo[0]) as usize;
        let jj = (j - t.lo[1]) as usize;
        (var * t.ny() as usize + jj) * self.pitch + ii
    }

    /// Read one value.
    #[inline]
    pub fn get(&self, var: usize, i: i64, j: i64) -> f64 {
        self.data[self.idx(var, i, j)]
    }

    /// Write one value.
    #[inline]
    pub fn set(&mut self, var: usize, i: i64, j: i64, v: f64) {
        let k = self.idx(var, i, j);
        self.data[k] = v;
    }

    /// Add to one value.
    #[inline]
    pub fn add(&mut self, var: usize, i: i64, j: i64, v: f64) {
        let k = self.idx(var, i, j);
        self.data[k] += v;
    }

    /// Start of row `j` (level coordinate) inside variable `var`'s plane.
    #[inline]
    fn row_start(&self, var: usize, j: i64) -> usize {
        let t = self.total_box();
        debug_assert!(var < self.nvars);
        debug_assert!((t.lo[1]..=t.hi[1]).contains(&j), "row {j} outside {t:?}");
        let jj = (j - t.lo[1]) as usize;
        (var * t.ny() as usize + jj) * self.pitch
    }

    /// Dense row `j` of variable `var`: the `total.nx()` stored values
    /// (ghosts included), padding excluded. The preferred kernel accessor:
    /// bounds-check once per row, then iterate a unit-stride slice.
    #[inline]
    pub fn row(&self, var: usize, j: i64) -> &[f64] {
        let s = self.row_start(var, j);
        let nx = self.total_box().nx() as usize;
        &self.data[s..s + nx]
    }

    /// Mutable dense row `j` of variable `var`.
    #[inline]
    pub fn row_mut(&mut self, var: usize, j: i64) -> &mut [f64] {
        let s = self.row_start(var, j);
        let nx = self.total_box().nx() as usize;
        &mut self.data[s..s + nx]
    }

    /// The three stencil rows `j-1, j, j+1` of one variable — the 5-point
    /// kernels' working set, borrowed in one call.
    #[inline]
    pub fn rows3(&self, var: usize, j: i64) -> (&[f64], &[f64], &[f64]) {
        (self.row(var, j - 1), self.row(var, j), self.row(var, j + 1))
    }

    /// Two *distinct* mutable rows of one variable (`ja != jb`), e.g. the
    /// two accumulation targets of a y-interface flux.
    pub fn row_pair_mut(&mut self, var: usize, ja: i64, jb: i64) -> (&mut [f64], &mut [f64]) {
        assert_ne!(ja, jb, "row_pair_mut needs distinct rows");
        let nx = self.total_box().nx() as usize;
        let (sa, sb) = (self.row_start(var, ja), self.row_start(var, jb));
        if sa < sb {
            let (lo, hi) = self.data.split_at_mut(sb);
            (&mut lo[sa..sa + nx], &mut hi[..nx])
        } else {
            let (lo, hi) = self.data.split_at_mut(sa);
            let b = &mut lo[sb..sb + nx];
            (&mut hi[..nx], b)
        }
    }

    /// Read-only flat view of one variable's plane: pitch-aware row and
    /// point access with the plane base and `var` offset hoisted.
    #[inline]
    pub fn view(&self, var: usize) -> VarView<'_> {
        let t = self.total_box();
        let plane = self.plane();
        VarView {
            data: &self.data[var * plane..(var + 1) * plane],
            pitch: self.pitch,
            nx: t.nx() as usize,
            ny: t.ny() as usize,
            lo: t.lo,
        }
    }

    /// Fill a whole variable (interior, ghosts, and padding) with a
    /// constant.
    pub fn fill_var(&mut self, var: usize, v: f64) {
        let per = self.plane();
        self.data[var * per..(var + 1) * per].fill(v);
    }

    /// Raw storage of one variable's plane, **including row padding**:
    /// rows start every [`PatchData::pitch`] elements. Use
    /// [`PatchData::row`] for value iteration; this exists for whole-plane
    /// comparisons and diagnostics that are pitch-aware.
    pub fn var_slice(&self, var: usize) -> &[f64] {
        let per = self.plane();
        &self.data[var * per..(var + 1) * per]
    }

    /// Mutable raw plane of one variable (padding included; see
    /// [`PatchData::var_slice`]).
    pub fn var_slice_mut(&mut self, var: usize) -> &mut [f64] {
        let per = self.plane();
        &mut self.data[var * per..(var + 1) * per]
    }

    /// Copy variable values over `region` (level coordinates) from
    /// another patch's data. The region must be valid in both.
    pub fn copy_from(&mut self, other: &PatchData, region: &IntBox) {
        debug_assert_eq!(self.nvars, other.nvars);
        let w = region.nx() as usize;
        let di = (region.lo[0] - self.total_box().lo[0]) as usize;
        let si = (region.lo[0] - other.total_box().lo[0]) as usize;
        for var in 0..self.nvars {
            for j in region.lo[1]..=region.hi[1] {
                let src = &other.row(var, j)[si..si + w];
                self.row_mut(var, j)[di..di + w].copy_from_slice(src);
            }
        }
    }

    /// Pack `region` of all variables into a flat buffer (for message
    /// passing), row-major per variable — the Data Object's
    /// "packing/unpacking of data before/after message passing". Always
    /// dense: padding never reaches the wire.
    pub fn pack(&self, region: &IntBox) -> Vec<f64> {
        let mut out = vec![0.0; self.nvars * region.count() as usize];
        self.pack_into(region, &mut out);
        out
    }

    /// Allocation-free form of [`PatchData::pack`]: fill a caller-owned
    /// buffer of exactly `nvars * region.count()` elements. Ghost
    /// exchange calls this with pooled scratch so the steady-state
    /// exchange never touches the heap.
    pub fn pack_into(&self, region: &IntBox, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.nvars * region.count() as usize);
        let w = region.nx() as usize;
        let si = (region.lo[0] - self.total_box().lo[0]) as usize;
        let mut k = 0;
        for var in 0..self.nvars {
            for j in region.lo[1]..=region.hi[1] {
                out[k..k + w].copy_from_slice(&self.row(var, j)[si..si + w]);
                k += w;
            }
        }
    }

    /// Pack `region` of a *single* variable into `out` (row-major, dense),
    /// `region.count()` elements. The uncoalesced halo path sends one
    /// such buffer per variable; the coalesced path uses
    /// [`PatchData::pack_into`] to ship all variables in one message.
    pub fn pack_var_into(&self, var: usize, region: &IntBox, out: &mut [f64]) {
        debug_assert_eq!(out.len(), region.count() as usize);
        let w = region.nx() as usize;
        let si = (region.lo[0] - self.total_box().lo[0]) as usize;
        let mut k = 0;
        for j in region.lo[1]..=region.hi[1] {
            out[k..k + w].copy_from_slice(&self.row(var, j)[si..si + w]);
            k += w;
        }
    }

    /// Unpack a single-variable buffer produced by
    /// [`PatchData::pack_var_into`] over the same region shape.
    pub fn unpack_var(&mut self, var: usize, region: &IntBox, buf: &[f64]) {
        debug_assert_eq!(buf.len(), region.count() as usize);
        let w = region.nx() as usize;
        let di = (region.lo[0] - self.total_box().lo[0]) as usize;
        let mut k = 0;
        for j in region.lo[1]..=region.hi[1] {
            self.row_mut(var, j)[di..di + w].copy_from_slice(&buf[k..k + w]);
            k += w;
        }
    }

    /// Unpack a buffer produced by [`PatchData::pack`] over the same
    /// (translated) region shape.
    pub fn unpack(&mut self, region: &IntBox, buf: &[f64]) {
        debug_assert_eq!(buf.len(), self.nvars * region.count() as usize);
        let w = region.nx() as usize;
        let di = (region.lo[0] - self.total_box().lo[0]) as usize;
        let mut k = 0;
        for var in 0..self.nvars {
            for j in region.lo[1]..=region.hi[1] {
                self.row_mut(var, j)[di..di + w].copy_from_slice(&buf[k..k + w]);
                k += w;
            }
        }
    }

    /// Sum of one variable over the interior (diagnostics, conservation
    /// tests). One running accumulator in dense row-major order — the
    /// exact rounding sequence of a flat cell loop, pitch-independent.
    pub fn interior_sum(&self, var: usize) -> f64 {
        let int = self.interior;
        let w = int.nx() as usize;
        let si = (int.lo[0] - self.total_box().lo[0]) as usize;
        let mut acc = 0.0;
        for j in int.lo[1]..=int.hi[1] {
            for &x in &self.row(var, j)[si..si + w] {
                acc += x;
            }
        }
        acc
    }

    /// Max-norm of one variable over the interior.
    pub fn interior_max_abs(&self, var: usize) -> f64 {
        let int = self.interior;
        let w = int.nx() as usize;
        let si = (int.lo[0] - self.total_box().lo[0]) as usize;
        let mut m: f64 = 0.0;
        for j in int.lo[1]..=int.hi[1] {
            m = self.row(var, j)[si..si + w]
                .iter()
                .fold(m, |a, v| a.max(v.abs()));
        }
        m
    }
}

/// Logical equality: same geometry and the same *dense* values. Two
/// patches allocated at different pitch quanta compare equal when their
/// stored fields match — padding is an address-space artifact, never
/// state (the checkpoint pitch-independence tests rely on this).
impl PartialEq for PatchData {
    fn eq(&self, other: &Self) -> bool {
        if self.interior != other.interior
            || self.nvars != other.nvars
            || self.nghost != other.nghost
        {
            return false;
        }
        let t = self.total_box();
        (0..self.nvars)
            .all(|var| (t.lo[1]..=t.hi[1]).all(|j| self.row(var, j) == other.row(var, j)))
    }
}

/// Read-only view of one variable's plane with the plane base hoisted:
/// the flat accessor stencil kernels index through instead of
/// recomputing `var * plane` per touch.
#[derive(Clone, Copy)]
pub struct VarView<'a> {
    data: &'a [f64],
    pitch: usize,
    nx: usize,
    ny: usize,
    lo: [i64; 2],
}

impl<'a> VarView<'a> {
    /// Dense row `j` (level coordinate), valid for the view's lifetime —
    /// several rows of the same view can be held at once.
    #[inline]
    pub fn row(&self, j: i64) -> &'a [f64] {
        let jj = (j - self.lo[1]) as usize;
        debug_assert!(jj < self.ny, "row {j} outside view");
        &self.data[jj * self.pitch..jj * self.pitch + self.nx]
    }

    /// Local column index of level coordinate `i`.
    #[inline]
    pub fn col(&self, i: i64) -> usize {
        debug_assert!(i >= self.lo[0] && ((i - self.lo[0]) as usize) < self.nx);
        (i - self.lo[0]) as usize
    }

    /// Point read (bounds-checked via the row slice).
    #[inline]
    pub fn at(&self, i: i64, j: i64) -> f64 {
        self.row(j)[self.col(i)]
    }
}

/// A named set of per-patch arrays across a whole hierarchy: one
/// [`PatchData`] per patch id per level. "Typically... a simulation would
/// contain 2–3 Data Objects" (e.g. conserved variables, transport
/// coefficients, RHS accumulators).
#[derive(Clone, Debug, Default)]
pub struct DataObject {
    /// `levels[l][patch_id] -> PatchData`.
    levels: Vec<BTreeMap<usize, PatchData>>,
    /// Variables per patch.
    pub nvars: usize,
    /// Ghost width.
    pub nghost: i64,
}

impl DataObject {
    /// Empty data object with the given shape parameters.
    pub fn new(nvars: usize, nghost: i64) -> Self {
        DataObject {
            levels: Vec::new(),
            nvars,
            nghost,
        }
    }

    /// Ensure storage exists for `nlevels` levels.
    pub fn ensure_levels(&mut self, nlevels: usize) {
        while self.levels.len() < nlevels {
            self.levels.push(BTreeMap::new());
        }
    }

    /// Number of levels currently held.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Allocate (zeroed) data for a patch.
    pub fn allocate(&mut self, level: usize, patch_id: usize, interior: IntBox) {
        self.ensure_levels(level + 1);
        self.levels[level].insert(patch_id, PatchData::new(interior, self.nvars, self.nghost));
    }

    /// Drop a patch's data (patch destroyed in regridding).
    pub fn deallocate(&mut self, level: usize, patch_id: usize) {
        if let Some(l) = self.levels.get_mut(level) {
            l.remove(&patch_id);
        }
    }

    /// Remove an entire level (and any finer bookkeeping the caller does).
    pub fn clear_level(&mut self, level: usize) {
        if let Some(l) = self.levels.get_mut(level) {
            l.clear();
        }
    }

    /// Shared access to a patch's data.
    pub fn patch(&self, level: usize, patch_id: usize) -> Option<&PatchData> {
        self.levels.get(level).and_then(|l| l.get(&patch_id))
    }

    /// Mutable access to a patch's data.
    pub fn patch_mut(&mut self, level: usize, patch_id: usize) -> Option<&mut PatchData> {
        self.levels
            .get_mut(level)
            .and_then(|l| l.get_mut(&patch_id))
    }

    /// Take a patch's data out (used when rebuilding a level keeps old
    /// data around for copy-initialization).
    pub fn take_level(&mut self, level: usize) -> BTreeMap<usize, PatchData> {
        if let Some(l) = self.levels.get_mut(level) {
            std::mem::take(l)
        } else {
            BTreeMap::new()
        }
    }

    /// Insert pre-built patch data.
    pub fn insert(&mut self, level: usize, patch_id: usize, data: PatchData) {
        self.ensure_levels(level + 1);
        self.levels[level].insert(patch_id, data);
    }

    /// Move one patch's data out (the disjoint-ownership handoff of the
    /// parallel patch executor); re-attach with [`DataObject::insert`].
    pub fn take_patch(&mut self, level: usize, patch_id: usize) -> Option<PatchData> {
        self.levels.get_mut(level).and_then(|l| l.remove(&patch_id))
    }

    /// Ids of patches with data on `level`.
    pub fn patch_ids(&self, level: usize) -> Vec<usize> {
        self.levels
            .get(level)
            .map(|l| l.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Two disjoint mutable borrows: a level-`lf` patch and a level-`lc`
    /// patch (`lf != lc`), for coarse-fine transfer without cloning.
    pub fn patch_pair_mut(
        &mut self,
        level_a: usize,
        id_a: usize,
        level_b: usize,
        id_b: usize,
    ) -> Option<(&mut PatchData, &PatchData)> {
        assert_ne!(level_a, level_b, "use same-level copy for {level_a}");
        let (la, lb) = if level_a < level_b {
            let (lo, hi) = self.levels.split_at_mut(level_b);
            (&mut lo[level_a], &mut hi[0])
        } else {
            let (lo, hi) = self.levels.split_at_mut(level_a);
            (&mut hi[0], &mut lo[level_b])
        };
        let a = la.get_mut(&id_a)?;
        let b = lb.get(&id_b)?;
        Some((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_with_ghosts() {
        let mut pd = PatchData::new(IntBox::sized(4, 3), 2, 2);
        pd.set(1, -2, -2, 7.0); // far ghost corner
        pd.set(0, 3, 2, 1.5); // interior far corner
        assert_eq!(pd.get(1, -2, -2), 7.0);
        assert_eq!(pd.get(0, 3, 2), 1.5);
        assert_eq!(pd.get(0, 0, 0), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_debug_panics() {
        let pd = PatchData::new(IntBox::sized(2, 2), 1, 1);
        let _ = pd.get(0, 4, 0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut a = PatchData::new(IntBox::sized(5, 5), 3, 1);
        for (k, (i, j)) in IntBox::sized(5, 5).cells().enumerate() {
            for v in 0..3 {
                a.set(v, i, j, (k * 3 + v) as f64);
            }
        }
        let region = IntBox::new([1, 1], [3, 2]);
        let buf = a.pack(&region);
        assert_eq!(buf.len(), 3 * 6);
        let mut b = PatchData::new(IntBox::sized(5, 5), 3, 1);
        b.unpack(&region, &buf);
        for (i, j) in region.cells() {
            for v in 0..3 {
                assert_eq!(b.get(v, i, j), a.get(v, i, j));
            }
        }
        // Outside the region b is untouched.
        assert_eq!(b.get(0, 0, 0), 0.0);
    }

    #[test]
    fn copy_from_region() {
        let mut src = PatchData::new(IntBox::sized(3, 3), 1, 0);
        src.fill_var(0, 4.0);
        let mut dst = PatchData::new(IntBox::new([2, 0], [5, 2]), 1, 0);
        let overlap = src.interior.intersect(&dst.interior).unwrap();
        dst.copy_from(&src, &overlap);
        assert_eq!(dst.get(0, 2, 1), 4.0);
        assert_eq!(dst.get(0, 3, 1), 0.0);
    }

    #[test]
    fn data_object_lifecycle() {
        let mut dobj = DataObject::new(2, 1);
        dobj.allocate(0, 0, IntBox::sized(4, 4));
        dobj.allocate(1, 10, IntBox::sized(8, 8));
        assert_eq!(dobj.patch_ids(0), vec![0]);
        assert_eq!(dobj.patch_ids(1), vec![10]);
        dobj.patch_mut(1, 10).unwrap().fill_var(0, 2.0);
        assert_eq!(dobj.patch(1, 10).unwrap().get(0, 3, 3), 2.0);
        dobj.deallocate(1, 10);
        assert!(dobj.patch(1, 10).is_none());
    }

    #[test]
    fn patch_pair_mut_cross_level() {
        let mut dobj = DataObject::new(1, 0);
        dobj.allocate(0, 0, IntBox::sized(2, 2));
        dobj.allocate(1, 1, IntBox::sized(4, 4));
        {
            let (fine, coarse) = dobj.patch_pair_mut(1, 1, 0, 0).unwrap();
            fine.set(0, 0, 0, coarse.get(0, 0, 0) + 5.0);
        }
        assert_eq!(dobj.patch(1, 1).unwrap().get(0, 0, 0), 5.0);
    }

    #[test]
    fn interior_reductions_ignore_ghosts() {
        let mut pd = PatchData::new(IntBox::sized(2, 2), 1, 1);
        pd.fill_var(0, 1.0); // fills ghosts too
        assert_eq!(pd.interior_sum(0), 4.0);
        pd.set(0, -1, -1, -100.0);
        assert_eq!(pd.interior_max_abs(0), 1.0);
    }

    /// Fill a patch with a deterministic per-cell pattern (dense values
    /// only, so it is identical at any pitch).
    fn pattern(pd: &mut PatchData) {
        let t = pd.total_box();
        for var in 0..pd.nvars {
            for (k, (i, j)) in t.cells().enumerate() {
                pd.set(var, i, j, (var * 1000 + k) as f64 * 0.5 - 7.0);
            }
        }
    }

    #[test]
    fn values_are_pitch_independent() {
        // The same logical content at quantum 1 (dense), 8, and 16:
        // every accessor must agree bit-for-bit.
        let boxes = [
            IntBox::sized(5, 3),
            IntBox::sized(8, 8),
            IntBox::sized(13, 2),
        ];
        for ib in boxes {
            let mut dense = PatchData::with_pitch_quantum(ib, 2, 2, 1);
            pattern(&mut dense);
            for q in [8usize, 16] {
                let mut padded = PatchData::with_pitch_quantum(ib, 2, 2, q);
                pattern(&mut padded);
                assert_eq!(padded, dense, "quantum {q} changed values");
                assert_eq!(
                    padded.interior_sum(0).to_bits(),
                    dense.interior_sum(0).to_bits()
                );
                assert_eq!(
                    padded.interior_max_abs(1).to_bits(),
                    dense.interior_max_abs(1).to_bits()
                );
                let region = ib; // interior, no ghosts
                assert_eq!(padded.pack(&region), dense.pack(&region));
                let t = dense.total_box();
                for var in 0..2 {
                    for j in t.lo[1]..=t.hi[1] {
                        assert_eq!(padded.row(var, j), dense.row(var, j));
                    }
                }
            }
        }
    }

    #[test]
    fn row_starts_honor_alignment_quantum() {
        // The layout contract without `#[repr(align)]`: every row of every
        // variable plane starts at an element offset that is a multiple of
        // the quantum the patch was allocated with.
        for q in [1usize, 4, 8, 16] {
            for ib in [
                IntBox::sized(5, 3),
                IntBox::sized(17, 6),
                IntBox::new([-3, 2], [9, 7]),
            ] {
                let pd = PatchData::with_pitch_quantum(ib, 3, 2, q);
                assert_eq!(pd.pitch() % q, 0, "pitch {} vs quantum {q}", pd.pitch());
                assert!(pd.pitch() >= pd.total_box().nx() as usize);
                let base = pd.var_slice(0).as_ptr() as usize;
                let t = pd.total_box();
                for var in 0..pd.nvars {
                    for j in t.lo[1]..=t.hi[1] {
                        let off =
                            (pd.row(var, j).as_ptr() as usize - base) / std::mem::size_of::<f64>();
                        assert_eq!(off % q, 0, "row ({var},{j}) starts at element {off}");
                    }
                }
            }
        }
    }

    #[test]
    fn rows3_and_view_agree_with_get() {
        let mut pd = PatchData::new(IntBox::sized(6, 4), 2, 1);
        pattern(&mut pd);
        let (below, mid, above) = pd.rows3(1, 2);
        let v = pd.view(1);
        let c = v.col(3);
        assert_eq!(below[c], pd.get(1, 3, 1));
        assert_eq!(mid[c], pd.get(1, 3, 2));
        assert_eq!(above[c], pd.get(1, 3, 3));
        assert_eq!(v.at(3, 2), pd.get(1, 3, 2));
        assert_eq!(v.row(2)[c], pd.get(1, 3, 2));
    }

    #[test]
    fn row_pair_mut_borrows_disjoint_rows() {
        let mut pd = PatchData::new(IntBox::sized(4, 4), 1, 0);
        {
            let (a, b) = pd.row_pair_mut(0, 1, 2);
            a.fill(1.0);
            b.fill(2.0);
        }
        {
            // Reversed order works too.
            let (a, b) = pd.row_pair_mut(0, 3, 0);
            a.fill(3.0);
            b.fill(0.5);
        }
        assert_eq!(pd.get(0, 2, 1), 1.0);
        assert_eq!(pd.get(0, 2, 2), 2.0);
        assert_eq!(pd.get(0, 2, 3), 3.0);
        assert_eq!(pd.get(0, 2, 0), 0.5);
    }

    #[test]
    fn equality_ignores_pitch_but_not_values() {
        let ib = IntBox::sized(5, 4);
        let mut a = PatchData::with_pitch_quantum(ib, 1, 1, 1);
        let mut b = PatchData::with_pitch_quantum(ib, 1, 1, 16);
        pattern(&mut a);
        pattern(&mut b);
        assert_eq!(a, b);
        b.set(0, 2, 2, 42.0);
        assert_ne!(a, b);
    }
}
