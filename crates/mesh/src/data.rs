//! Patch-resident field storage: the paper's **Data Object** subsystem
//! ("it maintains the collection of arrays which contain data declared on
//! patches, 1 array per patch. Typically a number of related variables are
//! stored together in a Data Object").

use crate::boxes::IntBox;
use std::collections::BTreeMap;

/// The field data of one patch: `nvars` variables over the patch interior
/// plus `nghost` ghost cells on every side. Layout is variable-major,
/// row-major within a variable (cache-friendly for sweeps over one field).
#[derive(Clone, Debug, PartialEq)]
pub struct PatchData {
    /// Interior cell box, in the patch's level index space.
    pub interior: IntBox,
    /// Number of variables stored together.
    pub nvars: usize,
    /// Ghost width on each side.
    pub nghost: i64,
    data: Vec<f64>,
}

impl PatchData {
    /// Allocate zero-initialized storage.
    pub fn new(interior: IntBox, nvars: usize, nghost: i64) -> Self {
        let total = interior.grow(nghost);
        let len = nvars * (total.count() as usize);
        PatchData {
            interior,
            nvars,
            nghost,
            data: vec![0.0; len],
        }
    }

    /// Interior-plus-ghost box.
    pub fn total_box(&self) -> IntBox {
        self.interior.grow(self.nghost)
    }

    /// Flat index of `(var, i, j)`; `(i, j)` are level coordinates and may
    /// lie in the ghost region.
    #[inline]
    pub fn idx(&self, var: usize, i: i64, j: i64) -> usize {
        let t = self.total_box();
        debug_assert!(t.contains(i, j), "({i},{j}) outside {t:?}");
        debug_assert!(var < self.nvars);
        let nx = t.nx() as usize;
        let ny = t.ny() as usize;
        let ii = (i - t.lo[0]) as usize;
        let jj = (j - t.lo[1]) as usize;
        var * nx * ny + jj * nx + ii
    }

    /// Read one value.
    #[inline]
    pub fn get(&self, var: usize, i: i64, j: i64) -> f64 {
        self.data[self.idx(var, i, j)]
    }

    /// Write one value.
    #[inline]
    pub fn set(&mut self, var: usize, i: i64, j: i64, v: f64) {
        let k = self.idx(var, i, j);
        self.data[k] = v;
    }

    /// Add to one value.
    #[inline]
    pub fn add(&mut self, var: usize, i: i64, j: i64, v: f64) {
        let k = self.idx(var, i, j);
        self.data[k] += v;
    }

    /// Fill a whole variable (interior and ghosts) with a constant.
    pub fn fill_var(&mut self, var: usize, v: f64) {
        let t = self.total_box();
        let per = (t.count()) as usize;
        self.data[var * per..(var + 1) * per].fill(v);
    }

    /// Raw slice of one variable (interior and ghosts, row-major over the
    /// total box).
    pub fn var_slice(&self, var: usize) -> &[f64] {
        let per = self.total_box().count() as usize;
        &self.data[var * per..(var + 1) * per]
    }

    /// Mutable raw slice of one variable.
    pub fn var_slice_mut(&mut self, var: usize) -> &mut [f64] {
        let per = self.total_box().count() as usize;
        &mut self.data[var * per..(var + 1) * per]
    }

    /// Copy variable values over `region` (level coordinates) from
    /// another patch's data. The region must be valid in both.
    pub fn copy_from(&mut self, other: &PatchData, region: &IntBox) {
        debug_assert_eq!(self.nvars, other.nvars);
        for var in 0..self.nvars {
            for (i, j) in region.cells() {
                let v = other.get(var, i, j);
                self.set(var, i, j, v);
            }
        }
    }

    /// Pack `region` of all variables into a flat buffer (for message
    /// passing), row-major per variable — the Data Object's
    /// "packing/unpacking of data before/after message passing".
    pub fn pack(&self, region: &IntBox) -> Vec<f64> {
        let mut out = vec![0.0; self.nvars * region.count() as usize];
        self.pack_into(region, &mut out);
        out
    }

    /// Allocation-free form of [`PatchData::pack`]: fill a caller-owned
    /// buffer of exactly `nvars * region.count()` elements. Ghost
    /// exchange calls this with pooled scratch so the steady-state
    /// exchange never touches the heap.
    pub fn pack_into(&self, region: &IntBox, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.nvars * region.count() as usize);
        let mut k = 0;
        for var in 0..self.nvars {
            for (i, j) in region.cells() {
                out[k] = self.get(var, i, j);
                k += 1;
            }
        }
    }

    /// Pack `region` of a *single* variable into `out` (row-major),
    /// `region.count()` elements. The uncoalesced halo path sends one
    /// such buffer per variable; the coalesced path uses
    /// [`PatchData::pack_into`] to ship all variables in one message.
    pub fn pack_var_into(&self, var: usize, region: &IntBox, out: &mut [f64]) {
        debug_assert_eq!(out.len(), region.count() as usize);
        for (k, (i, j)) in region.cells().enumerate() {
            out[k] = self.get(var, i, j);
        }
    }

    /// Unpack a single-variable buffer produced by
    /// [`PatchData::pack_var_into`] over the same region shape.
    pub fn unpack_var(&mut self, var: usize, region: &IntBox, buf: &[f64]) {
        debug_assert_eq!(buf.len(), region.count() as usize);
        for (k, (i, j)) in region.cells().enumerate() {
            self.set(var, i, j, buf[k]);
        }
    }

    /// Unpack a buffer produced by [`PatchData::pack`] over the same
    /// (translated) region shape.
    pub fn unpack(&mut self, region: &IntBox, buf: &[f64]) {
        debug_assert_eq!(buf.len(), self.nvars * region.count() as usize);
        let mut k = 0;
        for var in 0..self.nvars {
            for (i, j) in region.cells() {
                self.set(var, i, j, buf[k]);
                k += 1;
            }
        }
    }

    /// Sum of one variable over the interior (diagnostics, conservation
    /// tests).
    pub fn interior_sum(&self, var: usize) -> f64 {
        self.interior
            .cells()
            .map(|(i, j)| self.get(var, i, j))
            .sum()
    }

    /// Max-norm of one variable over the interior.
    pub fn interior_max_abs(&self, var: usize) -> f64 {
        self.interior
            .cells()
            .map(|(i, j)| self.get(var, i, j).abs())
            .fold(0.0, f64::max)
    }
}

/// A named set of per-patch arrays across a whole hierarchy: one
/// [`PatchData`] per patch id per level. "Typically... a simulation would
/// contain 2–3 Data Objects" (e.g. conserved variables, transport
/// coefficients, RHS accumulators).
#[derive(Clone, Debug, Default)]
pub struct DataObject {
    /// `levels[l][patch_id] -> PatchData`.
    levels: Vec<BTreeMap<usize, PatchData>>,
    /// Variables per patch.
    pub nvars: usize,
    /// Ghost width.
    pub nghost: i64,
}

impl DataObject {
    /// Empty data object with the given shape parameters.
    pub fn new(nvars: usize, nghost: i64) -> Self {
        DataObject {
            levels: Vec::new(),
            nvars,
            nghost,
        }
    }

    /// Ensure storage exists for `nlevels` levels.
    pub fn ensure_levels(&mut self, nlevels: usize) {
        while self.levels.len() < nlevels {
            self.levels.push(BTreeMap::new());
        }
    }

    /// Number of levels currently held.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Allocate (zeroed) data for a patch.
    pub fn allocate(&mut self, level: usize, patch_id: usize, interior: IntBox) {
        self.ensure_levels(level + 1);
        self.levels[level].insert(patch_id, PatchData::new(interior, self.nvars, self.nghost));
    }

    /// Drop a patch's data (patch destroyed in regridding).
    pub fn deallocate(&mut self, level: usize, patch_id: usize) {
        if let Some(l) = self.levels.get_mut(level) {
            l.remove(&patch_id);
        }
    }

    /// Remove an entire level (and any finer bookkeeping the caller does).
    pub fn clear_level(&mut self, level: usize) {
        if let Some(l) = self.levels.get_mut(level) {
            l.clear();
        }
    }

    /// Shared access to a patch's data.
    pub fn patch(&self, level: usize, patch_id: usize) -> Option<&PatchData> {
        self.levels.get(level).and_then(|l| l.get(&patch_id))
    }

    /// Mutable access to a patch's data.
    pub fn patch_mut(&mut self, level: usize, patch_id: usize) -> Option<&mut PatchData> {
        self.levels
            .get_mut(level)
            .and_then(|l| l.get_mut(&patch_id))
    }

    /// Take a patch's data out (used when rebuilding a level keeps old
    /// data around for copy-initialization).
    pub fn take_level(&mut self, level: usize) -> BTreeMap<usize, PatchData> {
        if let Some(l) = self.levels.get_mut(level) {
            std::mem::take(l)
        } else {
            BTreeMap::new()
        }
    }

    /// Insert pre-built patch data.
    pub fn insert(&mut self, level: usize, patch_id: usize, data: PatchData) {
        self.ensure_levels(level + 1);
        self.levels[level].insert(patch_id, data);
    }

    /// Move one patch's data out (the disjoint-ownership handoff of the
    /// parallel patch executor); re-attach with [`DataObject::insert`].
    pub fn take_patch(&mut self, level: usize, patch_id: usize) -> Option<PatchData> {
        self.levels.get_mut(level).and_then(|l| l.remove(&patch_id))
    }

    /// Ids of patches with data on `level`.
    pub fn patch_ids(&self, level: usize) -> Vec<usize> {
        self.levels
            .get(level)
            .map(|l| l.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Two disjoint mutable borrows: a level-`lf` patch and a level-`lc`
    /// patch (`lf != lc`), for coarse-fine transfer without cloning.
    pub fn patch_pair_mut(
        &mut self,
        level_a: usize,
        id_a: usize,
        level_b: usize,
        id_b: usize,
    ) -> Option<(&mut PatchData, &PatchData)> {
        assert_ne!(level_a, level_b, "use same-level copy for {level_a}");
        let (la, lb) = if level_a < level_b {
            let (lo, hi) = self.levels.split_at_mut(level_b);
            (&mut lo[level_a], &mut hi[0])
        } else {
            let (lo, hi) = self.levels.split_at_mut(level_a);
            (&mut hi[0], &mut lo[level_b])
        };
        let a = la.get_mut(&id_a)?;
        let b = lb.get(&id_b)?;
        Some((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_with_ghosts() {
        let mut pd = PatchData::new(IntBox::sized(4, 3), 2, 2);
        pd.set(1, -2, -2, 7.0); // far ghost corner
        pd.set(0, 3, 2, 1.5); // interior far corner
        assert_eq!(pd.get(1, -2, -2), 7.0);
        assert_eq!(pd.get(0, 3, 2), 1.5);
        assert_eq!(pd.get(0, 0, 0), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_debug_panics() {
        let pd = PatchData::new(IntBox::sized(2, 2), 1, 1);
        let _ = pd.get(0, 4, 0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut a = PatchData::new(IntBox::sized(5, 5), 3, 1);
        for (k, (i, j)) in IntBox::sized(5, 5).cells().enumerate() {
            for v in 0..3 {
                a.set(v, i, j, (k * 3 + v) as f64);
            }
        }
        let region = IntBox::new([1, 1], [3, 2]);
        let buf = a.pack(&region);
        assert_eq!(buf.len(), 3 * 6);
        let mut b = PatchData::new(IntBox::sized(5, 5), 3, 1);
        b.unpack(&region, &buf);
        for (i, j) in region.cells() {
            for v in 0..3 {
                assert_eq!(b.get(v, i, j), a.get(v, i, j));
            }
        }
        // Outside the region b is untouched.
        assert_eq!(b.get(0, 0, 0), 0.0);
    }

    #[test]
    fn copy_from_region() {
        let mut src = PatchData::new(IntBox::sized(3, 3), 1, 0);
        src.fill_var(0, 4.0);
        let mut dst = PatchData::new(IntBox::new([2, 0], [5, 2]), 1, 0);
        let overlap = src.interior.intersect(&dst.interior).unwrap();
        dst.copy_from(&src, &overlap);
        assert_eq!(dst.get(0, 2, 1), 4.0);
        assert_eq!(dst.get(0, 3, 1), 0.0);
    }

    #[test]
    fn data_object_lifecycle() {
        let mut dobj = DataObject::new(2, 1);
        dobj.allocate(0, 0, IntBox::sized(4, 4));
        dobj.allocate(1, 10, IntBox::sized(8, 8));
        assert_eq!(dobj.patch_ids(0), vec![0]);
        assert_eq!(dobj.patch_ids(1), vec![10]);
        dobj.patch_mut(1, 10).unwrap().fill_var(0, 2.0);
        assert_eq!(dobj.patch(1, 10).unwrap().get(0, 3, 3), 2.0);
        dobj.deallocate(1, 10);
        assert!(dobj.patch(1, 10).is_none());
    }

    #[test]
    fn patch_pair_mut_cross_level() {
        let mut dobj = DataObject::new(1, 0);
        dobj.allocate(0, 0, IntBox::sized(2, 2));
        dobj.allocate(1, 1, IntBox::sized(4, 4));
        {
            let (fine, coarse) = dobj.patch_pair_mut(1, 1, 0, 0).unwrap();
            fine.set(0, 0, 0, coarse.get(0, 0, 0) + 5.0);
        }
        assert_eq!(dobj.patch(1, 1).unwrap().get(0, 0, 0), 5.0);
    }

    #[test]
    fn interior_reductions_ignore_ghosts() {
        let mut pd = PatchData::new(IntBox::sized(2, 2), 1, 1);
        pd.fill_var(0, 1.0); // fills ghosts too
        assert_eq!(pd.interior_sum(0), 4.0);
        pd.set(0, -1, -1, -100.0);
        assert_eq!(pd.interior_max_abs(0), 1.0);
    }
}
