//! Berger–Rigoutsos point clustering: turn a cloud of flagged cells into a
//! small set of rectangles with bounded wasted area. This is the "collated
//! into rectangles" step of the paper's §3 regridding description.

use crate::boxes::IntBox;
use std::collections::HashSet;

/// Cluster `flags` into boxes with fill efficiency ≥ `efficiency` where
/// possible. `min_width` prevents slivers (no split creates a box thinner
/// than this).
///
/// Guarantees (tested, including by property tests):
/// * every flagged cell is inside exactly one returned box;
/// * returned boxes are pairwise disjoint;
/// * every returned box contains at least one flag.
pub fn berger_rigoutsos(flags: &[(i64, i64)], efficiency: f64, min_width: i64) -> Vec<IntBox> {
    if flags.is_empty() {
        return Vec::new();
    }
    let set: HashSet<(i64, i64)> = flags.iter().copied().collect();
    let bbox = bounding_box(&set).expect("non-empty");
    let mut out = Vec::new();
    recurse(&set, bbox, efficiency, min_width.max(1), &mut out, 0);
    out
}

/// [`berger_rigoutsos`] with an explicitly canonical result: input flags are
/// sorted and deduplicated before clustering and the returned boxes are
/// sorted by `(lo, hi)`. Every SCMD rank that feeds this the same flag *set*
/// — in any order, with any duplication — gets the same `Vec<IntBox>` in the
/// same order, which is what distributed regridding needs to keep replicated
/// hierarchy metadata bit-identical without a broadcast.
pub fn cluster_deterministic(flags: &[(i64, i64)], efficiency: f64, min_width: i64) -> Vec<IntBox> {
    let mut canon = flags.to_vec();
    canon.sort_unstable();
    canon.dedup();
    let mut boxes = berger_rigoutsos(&canon, efficiency, min_width);
    boxes.sort_unstable_by_key(|b| (b.lo, b.hi));
    boxes
}

fn bounding_box(flags: &HashSet<(i64, i64)>) -> Option<IntBox> {
    let mut it = flags.iter();
    let &(i0, j0) = it.next()?;
    let mut lo = [i0, j0];
    let mut hi = [i0, j0];
    for &(i, j) in it {
        lo[0] = lo[0].min(i);
        lo[1] = lo[1].min(j);
        hi[0] = hi[0].max(i);
        hi[1] = hi[1].max(j);
    }
    Some(IntBox::new(lo, hi))
}

fn count_in(flags: &HashSet<(i64, i64)>, b: &IntBox) -> i64 {
    // Count by whichever is cheaper: box area or flag count.
    if b.count() < flags.len() as i64 {
        b.cells().filter(|&(i, j)| flags.contains(&(i, j))).count() as i64
    } else {
        flags.iter().filter(|&&(i, j)| b.contains(i, j)).count() as i64
    }
}

fn shrink_to_flags(flags: &HashSet<(i64, i64)>, b: &IntBox) -> Option<IntBox> {
    let inside: HashSet<(i64, i64)> = flags
        .iter()
        .filter(|&&(i, j)| b.contains(i, j))
        .copied()
        .collect();
    bounding_box(&inside)
}

fn recurse(
    flags: &HashSet<(i64, i64)>,
    bbox: IntBox,
    efficiency: f64,
    min_width: i64,
    out: &mut Vec<IntBox>,
    depth: usize,
) {
    let Some(bbox) = shrink_to_flags(flags, &bbox) else {
        return; // no flags in this region
    };
    let nflags = count_in(flags, &bbox);
    let eff = nflags as f64 / bbox.count() as f64;
    let splittable_x = bbox.nx() >= 2 * min_width;
    let splittable_y = bbox.ny() >= 2 * min_width;
    if eff >= efficiency || (!splittable_x && !splittable_y) || depth > 64 {
        out.push(bbox);
        return;
    }

    // Column/row signatures.
    let sig_x: Vec<i64> = (bbox.lo[0]..=bbox.hi[0])
        .map(|i| {
            (bbox.lo[1]..=bbox.hi[1])
                .filter(|&j| flags.contains(&(i, j)))
                .count() as i64
        })
        .collect();
    let sig_y: Vec<i64> = (bbox.lo[1]..=bbox.hi[1])
        .map(|j| {
            (bbox.lo[0]..=bbox.hi[0])
                .filter(|&i| flags.contains(&(i, j)))
                .count() as i64
        })
        .collect();

    let split = find_hole(&sig_x, bbox.lo[0], min_width, splittable_x, bbox.nx())
        .map(|at| (0usize, at))
        .or_else(|| {
            find_hole(&sig_y, bbox.lo[1], min_width, splittable_y, bbox.ny()).map(|at| (1usize, at))
        })
        .or_else(|| {
            // Strongest inflection of the signature Laplacian, preferring
            // the longer axis.
            let ix = find_inflection(&sig_x, bbox.lo[0], min_width, splittable_x);
            let iy = find_inflection(&sig_y, bbox.lo[1], min_width, splittable_y);
            match (ix, iy) {
                (Some((ax, sx)), Some((ay, sy))) => {
                    if sx >= sy {
                        Some((0, ax))
                    } else {
                        let _ = (sx, sy);
                        Some((1, ay))
                    }
                }
                (Some((ax, _)), None) => Some((0, ax)),
                (None, Some((ay, _))) => Some((1, ay)),
                (None, None) => None,
            }
        })
        .or_else(|| {
            // Fall back to a midpoint bisection of the longest splittable
            // axis.
            if splittable_x && (bbox.nx() >= bbox.ny() || !splittable_y) {
                Some((0, bbox.lo[0] + bbox.nx() / 2 - 1))
            } else if splittable_y {
                Some((1, bbox.lo[1] + bbox.ny() / 2 - 1))
            } else {
                None
            }
        });

    match split.and_then(|(axis, at)| bbox.split_at(axis, at).map(|p| (axis, p))) {
        Some((_axis, (lo_box, hi_box))) => {
            recurse(flags, lo_box, efficiency, min_width, out, depth + 1);
            recurse(flags, hi_box, efficiency, min_width, out, depth + 1);
        }
        None => out.push(bbox),
    }
}

/// A zero in the signature strictly inside the admissible split range —
/// the ideal cut (separates disconnected flag clusters).
fn find_hole(sig: &[i64], lo: i64, min_width: i64, splittable: bool, n: i64) -> Option<i64> {
    if !splittable {
        return None;
    }
    let lo_k = min_width as usize;
    let hi_k = (n - min_width) as usize; // exclusive
    let mut best: Option<(i64, i64)> = None; // (distance to center, index)
    let center = n / 2;
    for (k, &s) in sig.iter().enumerate().take(hi_k).skip(lo_k) {
        if s == 0 {
            let d = (k as i64 - center).abs();
            if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                // Split below the hole cell: the hole column joins the
                // upper box and is trimmed away by shrink_to_flags.
                best = Some((d, lo + k as i64 - 1));
            }
        }
    }
    best.map(|(_, at)| at)
}

/// The strongest zero-crossing of Δ²sig in the admissible range; returns
/// `(split index, strength)`.
fn find_inflection(sig: &[i64], lo: i64, min_width: i64, splittable: bool) -> Option<(i64, i64)> {
    if !splittable || sig.len() < 4 {
        return None;
    }
    let n = sig.len();
    let lap: Vec<i64> = (0..n)
        .map(|k| {
            if k == 0 || k == n - 1 {
                0
            } else {
                sig[k + 1] - 2 * sig[k] + sig[k - 1]
            }
        })
        .collect();
    let mut best: Option<(i64, i64)> = None;
    for k in (min_width as usize)..(n - min_width as usize) {
        if k + 1 >= n {
            break;
        }
        if lap[k].signum() != lap[k + 1].signum() && lap[k] != lap[k + 1] {
            let strength = (lap[k] - lap[k + 1]).abs();
            if best.map(|(_, bs)| strength > bs).unwrap_or(true) {
                best = Some((lo + k as i64, strength));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(flags: &[(i64, i64)], boxes: &[IntBox]) {
        // Coverage.
        for &(i, j) in flags {
            let n = boxes.iter().filter(|b| b.contains(i, j)).count();
            assert_eq!(n, 1, "flag ({i},{j}) covered by {n} boxes");
        }
        // Disjointness.
        for (a, ba) in boxes.iter().enumerate() {
            for bb in &boxes[a + 1..] {
                assert!(ba.intersect(bb).is_none(), "{ba:?} overlaps {bb:?}");
            }
        }
        // Non-empty boxes.
        for b in boxes {
            assert!(flags.iter().any(|&(i, j)| b.contains(i, j)));
        }
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(berger_rigoutsos(&[], 0.7, 2).is_empty());
    }

    #[test]
    fn single_dense_block_is_one_box() {
        let flags: Vec<_> = IntBox::new([3, 4], [7, 9]).cells().collect();
        let boxes = berger_rigoutsos(&flags, 0.7, 2);
        assert_eq!(boxes, vec![IntBox::new([3, 4], [7, 9])]);
    }

    #[test]
    fn two_separated_clusters_become_two_boxes() {
        let mut flags: Vec<_> = IntBox::new([0, 0], [3, 3]).cells().collect();
        flags.extend(IntBox::new([20, 20], [23, 23]).cells());
        let boxes = berger_rigoutsos(&flags, 0.7, 2);
        assert_eq!(boxes.len(), 2, "{boxes:?}");
        check_invariants(&flags, &boxes);
        // Perfect efficiency after the hole split.
        for b in &boxes {
            assert_eq!(b.count(), 16);
        }
    }

    #[test]
    fn l_shaped_region_splits_efficiently() {
        // An L: a 12x3 bar plus a 3x12 bar.
        let mut flags: Vec<_> = IntBox::new([0, 0], [11, 2]).cells().collect();
        flags.extend(IntBox::new([0, 3], [2, 11]).cells());
        let boxes = berger_rigoutsos(&flags, 0.7, 2);
        check_invariants(&flags, &boxes);
        let total_area: i64 = boxes.iter().map(|b| b.count()).sum();
        let eff = flags.len() as f64 / total_area as f64;
        assert!(eff >= 0.7, "overall efficiency {eff}, boxes {boxes:?}");
    }

    #[test]
    fn diagonal_line_gets_tiled() {
        let flags: Vec<_> = (0..32).map(|k| (k, k)).collect();
        let boxes = berger_rigoutsos(&flags, 0.5, 2);
        check_invariants(&flags, &boxes);
        assert!(boxes.len() > 1);
    }

    #[test]
    fn min_width_respected() {
        let flags: Vec<_> = (0..40).map(|k| (k, k)).collect();
        for b in berger_rigoutsos(&flags, 0.9, 4) {
            // Boxes can be smaller only if the shrink-to-flags trimmed
            // them; the *split* never produced a side < 4 before trimming.
            // A robust observable invariant: every box holds >= 1 flag and
            // boxes are disjoint (checked), and no box is empty.
            assert!(b.count() >= 1);
        }
    }

    #[test]
    fn efficiency_one_demands_exact_cover() {
        let mut flags: Vec<_> = IntBox::new([0, 0], [5, 1]).cells().collect();
        flags.extend(IntBox::new([0, 2], [1, 5]).cells());
        let boxes = berger_rigoutsos(&flags, 1.0, 1);
        check_invariants(&flags, &boxes);
        let total: i64 = boxes.iter().map(|b| b.count()).sum();
        assert_eq!(total as usize, flags.len(), "{boxes:?}");
    }

    #[test]
    fn deterministic_clustering_is_order_and_duplicate_insensitive() {
        let mut flags: Vec<_> = IntBox::new([0, 0], [7, 3]).cells().collect();
        flags.extend(IntBox::new([12, 10], [15, 18]).cells());
        let canonical = cluster_deterministic(&flags, 0.8, 2);
        check_invariants(&flags, &canonical);
        assert!(canonical
            .windows(2)
            .all(|w| (w[0].lo, w[0].hi) <= (w[1].lo, w[1].hi)));
        // Reversed and duplicated input: identical boxes in identical order.
        let mut shuffled: Vec<_> = flags.iter().rev().copied().collect();
        shuffled.extend_from_slice(&flags[..5]);
        assert_eq!(cluster_deterministic(&shuffled, 0.8, 2), canonical);
    }
}
