//! Ghost-region filling: same-level neighbour exchange and coarse-fine
//! interpolation. Together with [`crate::bc`] this implements "the actual
//! movement/copying of data between patches" that the paper assigns to the
//! **Data Object** subsystem.
//!
//! Fill order per level (coarsest level first across the hierarchy):
//! 1. same-level copies from neighbouring patches,
//! 2. coarse-fine bilinear interpolation for ghost cells no sibling
//!    covers,
//! 3. physical boundary conditions for ghost cells outside the domain
//!    (caller-supplied, see [`crate::bc::apply_physical_bc`]).

use crate::boxes::IntBox;
use crate::data::DataObject;
use crate::hierarchy::Hierarchy;
use crate::interp::prolong_limited;
use cca_core::scratch;

/// Copy ghost values from same-level neighbours for every patch of
/// `level`. Interiors are disjoint, so only ghost cells are written.
///
/// Donor copies are *batched per receiver*, mirroring the coalesced
/// distributed exchange: all of a patch's donor strips are discovered
/// first (into a pooled region list), packed back-to-back into one pooled
/// batch buffer, then unpacked into the receiver in a single pass — two
/// scratch checkouts per receiving patch instead of one per donor pair,
/// and the receiver's `patch_mut` lookup happens once rather than once
/// per donor. Donor regions are disjoint (they lie in disjoint interiors)
/// and are visited in patch order, so the written values are identical to
/// the former pair-at-a-time loop. A warm exchange performs zero heap
/// allocations and zero patch-data copies.
pub fn fill_same_level_ghosts(dobj: &mut DataObject, hier: &Hierarchy, level: usize) {
    let patches = &hier.levels[level].patches;
    // Pooled donor list, reused across receivers: (donor_id, lo_x, lo_y,
    // hi_x, hi_y) per overlap region.
    let mut regions = scratch::take_i64(0);
    for p in patches {
        let p_total = p.interior.grow(dobj.nghost);
        regions.clear();
        let mut batch_len = 0usize;
        for q in patches {
            if q.id == p.id {
                continue;
            }
            if let Some(region) = p_total.intersect(&q.interior) {
                regions.extend([
                    q.id as i64, region.lo[0], region.lo[1], region.hi[0], region.hi[1],
                ]);
                batch_len += dobj.nvars * region.count() as usize;
            }
        }
        if regions.is_empty() {
            continue;
        }
        // Pack every donor strip into one batch buffer...
        let mut batch = scratch::take_f64(batch_len);
        let mut off = 0usize;
        for r in regions.chunks_exact(5) {
            let region = IntBox::new([r[1], r[2]], [r[3], r[4]]);
            let n = dobj.nvars * region.count() as usize;
            dobj.patch(level, r[0] as usize)
                .expect("neighbour data allocated")
                .pack_into(&region, &mut batch[off..off + n]);
            off += n;
        }
        // ...then deliver the whole batch to the receiver in one pass.
        let nvars = dobj.nvars;
        let pd = dobj.patch_mut(level, p.id).expect("patch data allocated");
        let mut off = 0usize;
        for r in regions.chunks_exact(5) {
            let region = IntBox::new([r[1], r[2]], [r[3], r[4]]);
            let n = nvars * region.count() as usize;
            pd.unpack(&region, &batch[off..off + n]);
            off += n;
        }
    }
}

/// Interpolate from `level - 1` into ghost cells of `level`'s patches that
/// are inside the level domain but not covered by any same-level patch.
/// Requires the coarse level's own ghosts to be already filled.
///
/// Orphan ghost cells are gathered per (fine patch, coarse donor) first so
/// each pair is borrowed exactly once — this routine runs once per stage
/// per level and must stay linear in the ghost-ring size.
pub fn fill_coarse_fine_ghosts(dobj: &mut DataObject, hier: &Hierarchy, level: usize) {
    if level == 0 {
        return;
    }
    let ratio = hier.ratio;
    let domain = hier.level_domain(level);
    let patches = &hier.levels[level].patches;
    let coarse_patches = &hier.levels[level - 1].patches;
    // Pooled index workspaces, reused across patches (and across calls via
    // the thread-local scratch pool) — this replaces a per-patch
    // `BTreeMap<donor, Vec<cell>>` plus two Vecs of per-call churn.
    let mut near = scratch::take_i64(0); // indices into `patches`
    let mut cells = scratch::take_i64(0); // (donor_id, i, j) triples, flattened
    let mut donors = scratch::take_i64(0); // unique donor ids
    let mut orphans = scratch::take_i64(0); // (i, j) pairs, flattened
    for p in patches {
        let total = p.interior.grow(dobj.nghost);
        // Same-level neighbours that can possibly cover this ghost ring.
        near.clear();
        near.extend(patches.iter().enumerate().filter_map(|(qi, q)| {
            (q.id != p.id && q.interior.intersect(&total).is_some()).then_some(qi as i64)
        }));
        // Bucket orphan ghost cells by coarse donor. `cells` keeps
        // discovery order; donor grouping happens below.
        cells.clear();
        // Cells with no coarse coverage at all (a transient nesting gap
        // right after a regrid): filled zero-gradient from this patch's
        // own interior rather than left stale.
        orphans.clear();
        for (i, j) in total.cells() {
            if p.interior.contains(i, j) || !domain.contains(i, j) {
                continue;
            }
            if near
                .iter()
                .any(|&qi| patches[qi as usize].interior.contains(i, j))
            {
                continue; // sibling data already copied
            }
            let ci = i.div_euclid(ratio);
            let cj = j.div_euclid(ratio);
            // Prefer a coarse patch holding the cell in its interior; fall
            // back to one holding it in (already filled) ghost storage.
            let donor = coarse_patches
                .iter()
                .find(|q| q.interior.contains(ci, cj))
                .or_else(|| {
                    coarse_patches
                        .iter()
                        .find(|q| q.interior.grow(dobj.nghost).contains(ci, cj))
                });
            if let Some(donor) = donor {
                cells.extend([donor.id as i64, i, j]);
            } else {
                orphans.extend([i, j]);
            }
        }
        // Visit donors in ascending id with cells in discovery order —
        // exactly the iteration order the former BTreeMap bucketing
        // produced, so the prolongation writes are order-identical.
        donors.clear();
        donors.extend(cells.chunks_exact(3).map(|t| t[0]));
        donors.sort_unstable();
        donors.dedup();
        for &donor_id in &*donors {
            let (fine_pd, coarse_pd) = dobj
                .patch_pair_mut(level, p.id, level - 1, donor_id as usize)
                .expect("both patches allocated");
            for t in cells.chunks_exact(3) {
                if t[0] != donor_id {
                    continue;
                }
                let cell_box = IntBox::new([t[1], t[2]], [t[1], t[2]]);
                // Limited slopes: monotone at shocks, exact on linears.
                prolong_limited(fine_pd, coarse_pd, &cell_box, ratio);
            }
        }
        if !orphans.is_empty() {
            let pd = dobj.patch_mut(level, p.id).expect("patch data allocated");
            let interior = pd.interior;
            for c in orphans.chunks_exact(2) {
                let (i, j) = (c[0], c[1]);
                let ii = i.clamp(interior.lo[0], interior.hi[0]);
                let jj = j.clamp(interior.lo[1], interior.hi[1]);
                for var in 0..pd.nvars {
                    let v = pd.get(var, ii, jj);
                    pd.set(var, i, j, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::IntBox;
    use crate::hierarchy::Hierarchy;

    /// Two abutting level-0 patches: ghosts must see the neighbour's data.
    #[test]
    fn same_level_exchange_between_abutting_patches() {
        let mut h = Hierarchy::new(IntBox::sized(8, 4), [0.0, 0.0], [1.0; 2], 2);
        h.set_level_boxes(
            0,
            &[IntBox::new([0, 0], [3, 3]), IntBox::new([4, 0], [7, 3])],
        );
        let ids: Vec<usize> = h.levels[0].patches.iter().map(|p| p.id).collect();
        let mut dobj = DataObject::new(1, 2);
        for p in &h.levels[0].patches {
            dobj.allocate(0, p.id, p.interior);
        }
        dobj.patch_mut(0, ids[0]).unwrap().fill_var(0, 1.0);
        dobj.patch_mut(0, ids[1]).unwrap().fill_var(0, 2.0);
        // fill_var wrote ghosts too; overwrite ghost values distinctly so
        // we can observe the exchange.
        fill_same_level_ghosts(&mut dobj, &h, 0);
        let left = dobj.patch(0, ids[0]).unwrap();
        // Left patch's right ghosts (i = 4, 5) read the right patch.
        assert_eq!(left.get(0, 4, 1), 2.0);
        assert_eq!(left.get(0, 5, 1), 2.0);
        let right = dobj.patch(0, ids[1]).unwrap();
        assert_eq!(right.get(0, 3, 2), 1.0);
        assert_eq!(right.get(0, 2, 2), 1.0);
        // Interiors untouched.
        assert_eq!(left.get(0, 3, 1), 1.0);
        assert_eq!(right.get(0, 4, 2), 2.0);
    }

    /// A fine patch in the middle of a coarse level pulls ghost data from
    /// the coarse grid where it has no fine sibling.
    #[test]
    fn coarse_fine_ghosts_interpolate_linear_fields() {
        let mut h = Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [1.0 / 16.0; 2], 2);
        let fine_box = IntBox::new([4, 4], [11, 11]).refine(2); // [8..23]^2
        h.set_level_boxes(1, &[fine_box]);
        assert!(h.properly_nested(1));
        let coarse_id = h.levels[0].patches[0].id;
        let fine_id = h.levels[1].patches[0].id;
        let mut dobj = DataObject::new(1, 2);
        dobj.allocate(0, coarse_id, h.levels[0].patches[0].interior);
        dobj.allocate(1, fine_id, fine_box);
        // Linear field on the coarse level (including its ghosts): value =
        // x + 2y with coarse dx = 1/16.
        {
            let pd = dobj.patch_mut(0, coarse_id).unwrap();
            let t = pd.total_box();
            for (i, j) in t.cells() {
                let x = (i as f64 + 0.5) / 16.0;
                let y = (j as f64 + 0.5) / 16.0;
                pd.set(0, i, j, x + 2.0 * y);
            }
        }
        fill_same_level_ghosts(&mut dobj, &h, 1); // no siblings: no-op
        fill_coarse_fine_ghosts(&mut dobj, &h, 1);
        let fine = dobj.patch(1, fine_id).unwrap();
        // Check a ghost cell left of the fine patch: (7, 12) in fine index
        // space, x = 7.5/32, y = 12.5/32.
        let exact = 7.5 / 32.0 + 2.0 * 12.5 / 32.0;
        let got = fine.get(0, 7, 12);
        assert!((got - exact).abs() < 1e-12, "{got} vs {exact}");
        // And a corner ghost.
        let exact = 7.5 / 32.0 + 2.0 * 7.5 / 32.0;
        let got = fine.get(0, 7, 7);
        assert!((got - exact).abs() < 1e-12, "{got} vs {exact}");
    }

    /// Two adjacent fine patches: the shared edge must come from the
    /// sibling (exact), not from coarse interpolation.
    #[test]
    fn sibling_data_preferred_over_coarse() {
        let mut h = Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [1.0 / 16.0; 2], 2);
        let a = IntBox::new([4, 4], [7, 11]).refine(2);
        let b = IntBox::new([8, 4], [11, 11]).refine(2);
        h.set_level_boxes(1, &[a, b]);
        let ids: Vec<usize> = h.levels[1].patches.iter().map(|p| p.id).collect();
        let coarse_id = h.levels[0].patches[0].id;
        let mut dobj = DataObject::new(1, 1);
        dobj.allocate(0, coarse_id, h.levels[0].patches[0].interior);
        dobj.allocate(1, ids[0], a);
        dobj.allocate(1, ids[1], b);
        dobj.patch_mut(0, coarse_id).unwrap().fill_var(0, -7.0);
        dobj.patch_mut(1, ids[0]).unwrap().fill_var(0, 1.0);
        dobj.patch_mut(1, ids[1]).unwrap().fill_var(0, 2.0);
        fill_same_level_ghosts(&mut dobj, &h, 1);
        fill_coarse_fine_ghosts(&mut dobj, &h, 1);
        let left = dobj.patch(1, ids[0]).unwrap();
        // Ghost to the right of patch a at the shared edge: sibling value.
        assert_eq!(left.get(0, 16, 12), 2.0);
        // Ghost above patch a: coarse value.
        assert_eq!(left.get(0, 10, 24), -7.0);
    }

    /// Regression for the defensive `patches.clone()` the exchange used to
    /// make: after one warm-up pass, a full same-level + coarse-fine
    /// exchange must not allocate at all — no patch-list copies, no fresh
    /// pack buffers, no per-patch bucket maps.
    #[test]
    fn warm_ghost_exchange_performs_zero_allocations() {
        let mut h = Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [1.0 / 16.0; 2], 2);
        let a = IntBox::new([4, 4], [7, 11]).refine(2);
        let b = IntBox::new([8, 4], [11, 11]).refine(2);
        h.set_level_boxes(1, &[a, b]);
        let coarse_id = h.levels[0].patches[0].id;
        let ids: Vec<usize> = h.levels[1].patches.iter().map(|p| p.id).collect();
        let mut dobj = DataObject::new(2, 2);
        dobj.allocate(0, coarse_id, h.levels[0].patches[0].interior);
        dobj.allocate(1, ids[0], a);
        dobj.allocate(1, ids[1], b);
        dobj.patch_mut(0, coarse_id).unwrap().fill_var(0, 1.0);
        let exchange = |dobj: &mut DataObject| {
            fill_same_level_ghosts(dobj, &h, 0);
            fill_same_level_ghosts(dobj, &h, 1);
            fill_coarse_fine_ghosts(dobj, &h, 1);
        };
        exchange(&mut dobj); // warm-up: populate the thread-local pool
        let before = cca_core::scratch::thread_alloc_events();
        for _ in 0..10 {
            exchange(&mut dobj);
        }
        let after = cca_core::scratch::thread_alloc_events();
        assert_eq!(after, before, "warm ghost exchange must not allocate");
    }
}
