//! Physical boundary conditions on ghost cells — the mesh-level mechanics
//! behind the paper's **Boundary Condition** subsystem ("applied on a
//! patch by patch basis... the granularity will be a patch").

use crate::boxes::IntBox;
use crate::data::PatchData;

/// Which physical boundary a ghost strip belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Low-x boundary.
    XLo,
    /// High-x boundary.
    XHi,
    /// Low-y boundary.
    YLo,
    /// High-y boundary.
    YHi,
}

/// Ghost-fill rule for one (side, variable) pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BcKind {
    /// Fixed value (e.g. isothermal wall temperature).
    Dirichlet(f64),
    /// Zero-gradient: copy the mirrored interior cell (outflow, adiabatic
    /// wall, symmetry for even variables).
    ZeroGradient,
    /// Mirror with a sign: `odd = true` negates (normal momentum at a
    /// reflecting wall), `odd = false` behaves like symmetry.
    Reflect {
        /// Negate the mirrored value?
        odd: bool,
    },
}

/// Fill every ghost cell of `pd` that lies outside `domain` (this level's
/// physical index box). `kind` maps `(side, var)` to a rule. Two passes
/// (x then y) so corner ghosts outside two boundaries are filled too.
pub fn apply_physical_bc(
    pd: &mut PatchData,
    domain: &IntBox,
    kind: &dyn Fn(Side, usize) -> BcKind,
) {
    let total = pd.total_box();
    let nvars = pd.nvars;
    // Pass 1: x-direction strips (all j of the total box).
    for var in 0..nvars {
        for j in total.lo[1]..=total.hi[1] {
            for i in total.lo[0]..domain.lo[0] {
                let mirror = 2 * domain.lo[0] - 1 - i;
                fill_cell(pd, kind(Side::XLo, var), var, i, j, mirror, j);
            }
            for i in (domain.hi[0] + 1)..=total.hi[0] {
                let mirror = 2 * domain.hi[0] + 1 - i;
                fill_cell(pd, kind(Side::XHi, var), var, i, j, mirror, j);
            }
        }
    }
    // Pass 2: y-direction strips (x already consistent, corners resolve).
    for var in 0..nvars {
        for i in total.lo[0]..=total.hi[0] {
            for j in total.lo[1]..domain.lo[1] {
                let mirror = 2 * domain.lo[1] - 1 - j;
                fill_cell(pd, kind(Side::YLo, var), var, i, j, i, mirror);
            }
            for j in (domain.hi[1] + 1)..=total.hi[1] {
                let mirror = 2 * domain.hi[1] + 1 - j;
                fill_cell(pd, kind(Side::YHi, var), var, i, j, i, mirror);
            }
        }
    }
}

fn fill_cell(pd: &mut PatchData, kind: BcKind, var: usize, i: i64, j: i64, mi: i64, mj: i64) {
    // Only fill if the ghost cell is actually inside this patch's storage
    // and the mirror source is too (patches away from the wall skip).
    let total = pd.total_box();
    if !total.contains(i, j) {
        return;
    }
    match kind {
        BcKind::Dirichlet(v) => pd.set(var, i, j, v),
        BcKind::ZeroGradient | BcKind::Reflect { .. } => {
            if !total.contains(mi, mj) {
                return;
            }
            let v = pd.get(var, mi, mj);
            let v = match kind {
                BcKind::Reflect { odd: true } => -v,
                _ => v,
            };
            pd.set(var, i, j, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patch_at_origin() -> PatchData {
        // Patch occupying the whole 4x4 domain with 2 ghosts.
        let mut pd = PatchData::new(IntBox::sized(4, 4), 2, 2);
        for (k, (i, j)) in IntBox::sized(4, 4).cells().enumerate() {
            pd.set(0, i, j, k as f64 + 1.0);
            pd.set(1, i, j, -(k as f64 + 1.0));
        }
        pd
    }

    #[test]
    fn zero_gradient_copies_mirror() {
        let mut pd = patch_at_origin();
        let domain = IntBox::sized(4, 4);
        apply_physical_bc(&mut pd, &domain, &|_, _| BcKind::ZeroGradient);
        // Ghost (-1, 0) mirrors (0, 0); ghost (-2, 0) mirrors (1, 0).
        assert_eq!(pd.get(0, -1, 0), pd.get(0, 0, 0));
        assert_eq!(pd.get(0, -2, 0), pd.get(0, 1, 0));
        assert_eq!(pd.get(0, 4, 3), pd.get(0, 3, 3));
        assert_eq!(pd.get(0, 2, 5), pd.get(0, 2, 2));
    }

    #[test]
    fn reflect_odd_negates_normal_component() {
        let mut pd = patch_at_origin();
        let domain = IntBox::sized(4, 4);
        apply_physical_bc(&mut pd, &domain, &|side, var| match (side, var) {
            (Side::XLo | Side::XHi, 1) => BcKind::Reflect { odd: true },
            _ => BcKind::Reflect { odd: false },
        });
        assert_eq!(pd.get(1, -1, 2), -pd.get(1, 0, 2));
        assert_eq!(pd.get(1, 4, 2), -pd.get(1, 3, 2));
        // Even variable unchanged in sign.
        assert_eq!(pd.get(0, -1, 2), pd.get(0, 0, 2));
    }

    #[test]
    fn dirichlet_sets_value() {
        let mut pd = patch_at_origin();
        let domain = IntBox::sized(4, 4);
        apply_physical_bc(&mut pd, &domain, &|side, _| match side {
            Side::YLo => BcKind::Dirichlet(300.0),
            _ => BcKind::ZeroGradient,
        });
        assert_eq!(pd.get(0, 1, -1), 300.0);
        assert_eq!(pd.get(0, 1, -2), 300.0);
    }

    #[test]
    fn corners_are_filled() {
        let mut pd = patch_at_origin();
        let domain = IntBox::sized(4, 4);
        apply_physical_bc(&mut pd, &domain, &|_, _| BcKind::ZeroGradient);
        // Corner (-1,-1): pass 1 fills (-1, -1)? No: pass 1 only fills
        // x-ghosts at any j by mirroring in x; (-1,-1) mirrors to (0,-1)
        // which is itself a y-ghost — then pass 2 overwrites (-1,-1) from
        // (-1, 0) which pass 1 set from (0, 0). Either way it is defined.
        assert_eq!(pd.get(0, -1, -1), pd.get(0, 0, 0));
        // Two-deep corner mirrors two cells in: (5,5) -> (2,2).
        assert_eq!(pd.get(0, 5, 5), pd.get(0, 2, 2));
    }

    #[test]
    fn interior_patch_untouched() {
        // A patch strictly inside the domain has no physical ghosts.
        let mut pd = PatchData::new(IntBox::new([4, 4], [7, 7]), 1, 1);
        pd.fill_var(0, 9.0);
        let before = pd.clone();
        let domain = IntBox::sized(64, 64);
        apply_physical_bc(&mut pd, &domain, &|_, _| BcKind::Dirichlet(0.0));
        assert_eq!(pd, before);
    }
}
