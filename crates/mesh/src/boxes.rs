//! Integer index-space rectangles ("boxes"), the coordinate vocabulary of
//! every SAMR operation. Bounds are **inclusive** on both ends, the
//! Berger–Colella convention.

/// A 2D rectangle of cells in a level's index space, `lo..=hi` per axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IntBox {
    /// Lower corner (inclusive).
    pub lo: [i64; 2],
    /// Upper corner (inclusive).
    pub hi: [i64; 2],
}

impl IntBox {
    /// Box from corners. `lo` must be ≤ `hi` component-wise.
    pub fn new(lo: [i64; 2], hi: [i64; 2]) -> Self {
        debug_assert!(
            lo[0] <= hi[0] && lo[1] <= hi[1],
            "inverted box {lo:?}..{hi:?}"
        );
        IntBox { lo, hi }
    }

    /// The `nx × ny` box with lower corner at the origin.
    pub fn sized(nx: i64, ny: i64) -> Self {
        IntBox::new([0, 0], [nx - 1, ny - 1])
    }

    /// Cells along x.
    pub fn nx(&self) -> i64 {
        self.hi[0] - self.lo[0] + 1
    }

    /// Cells along y.
    pub fn ny(&self) -> i64 {
        self.hi[1] - self.lo[1] + 1
    }

    /// Total cell count.
    pub fn count(&self) -> i64 {
        self.nx() * self.ny()
    }

    /// Does the box contain cell `(i, j)`?
    pub fn contains(&self, i: i64, j: i64) -> bool {
        i >= self.lo[0] && i <= self.hi[0] && j >= self.lo[1] && j <= self.hi[1]
    }

    /// Does `other` lie entirely inside `self`?
    pub fn contains_box(&self, other: &IntBox) -> bool {
        self.lo[0] <= other.lo[0]
            && self.lo[1] <= other.lo[1]
            && self.hi[0] >= other.hi[0]
            && self.hi[1] >= other.hi[1]
    }

    /// Intersection, if non-empty.
    pub fn intersect(&self, other: &IntBox) -> Option<IntBox> {
        let lo = [self.lo[0].max(other.lo[0]), self.lo[1].max(other.lo[1])];
        let hi = [self.hi[0].min(other.hi[0]), self.hi[1].min(other.hi[1])];
        if lo[0] <= hi[0] && lo[1] <= hi[1] {
            Some(IntBox { lo, hi })
        } else {
            None
        }
    }

    /// Grow by `g` cells on every side.
    pub fn grow(&self, g: i64) -> IntBox {
        IntBox {
            lo: [self.lo[0] - g, self.lo[1] - g],
            hi: [self.hi[0] + g, self.hi[1] + g],
        }
    }

    /// Map to the index space `ratio` times finer (cell `(i,j)` becomes the
    /// block `[ri, ri+r-1] × [rj, rj+r-1]`).
    pub fn refine(&self, ratio: i64) -> IntBox {
        IntBox {
            lo: [self.lo[0] * ratio, self.lo[1] * ratio],
            hi: [(self.hi[0] + 1) * ratio - 1, (self.hi[1] + 1) * ratio - 1],
        }
    }

    /// Map to the index space `ratio` times coarser (floor division, so the
    /// result covers every fine cell).
    pub fn coarsen(&self, ratio: i64) -> IntBox {
        IntBox {
            lo: [self.lo[0].div_euclid(ratio), self.lo[1].div_euclid(ratio)],
            hi: [self.hi[0].div_euclid(ratio), self.hi[1].div_euclid(ratio)],
        }
    }

    /// Iterate all `(i, j)` cells, row-major.
    pub fn cells(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        let b = *self;
        (b.lo[1]..=b.hi[1]).flat_map(move |j| (b.lo[0]..=b.hi[0]).map(move |i| (i, j)))
    }

    /// The box shrunk by `g` cells on every side — the cells whose
    /// `g`-wide stencil halo lies entirely inside `self`. `None` when no
    /// such cells exist (an axis has ≤ `2g` cells).
    ///
    /// Together with [`IntBox::halo_ring`] this is the geometric basis of
    /// the split sweep: interior cells can be updated while halo messages
    /// are in flight; ring cells must wait for them.
    pub fn interior_shrink(&self, g: i64) -> Option<IntBox> {
        debug_assert!(g >= 0);
        let lo = [self.lo[0] + g, self.lo[1] + g];
        let hi = [self.hi[0] - g, self.hi[1] - g];
        if lo[0] <= hi[0] && lo[1] <= hi[1] {
            Some(IntBox { lo, hi })
        } else {
            None
        }
    }

    /// The `g`-wide boundary ring of `self` as up to four disjoint strips
    /// (bottom and top full-width, then left and right between them), in
    /// that fixed order. The strips plus [`IntBox::interior_shrink`]
    /// exactly tile `self`: disjoint, covering, no overlap — the property
    /// pinned by `prop_mesh.rs`. For `g = 0` the ring is empty; when the
    /// shrunken interior is empty the whole box is returned as one strip.
    pub fn halo_ring(&self, g: i64) -> Vec<IntBox> {
        debug_assert!(g >= 0);
        if g == 0 {
            return Vec::new();
        }
        let Some(inner) = self.interior_shrink(g) else {
            return vec![*self];
        };
        vec![
            // Bottom: full width, g rows.
            IntBox::new([self.lo[0], self.lo[1]], [self.hi[0], self.lo[1] + g - 1]),
            // Top: full width, g rows.
            IntBox::new([self.lo[0], self.hi[1] - g + 1], [self.hi[0], self.hi[1]]),
            // Left and right: g columns, between bottom and top.
            IntBox::new([self.lo[0], inner.lo[1]], [self.lo[0] + g - 1, inner.hi[1]]),
            IntBox::new([self.hi[0] - g + 1, inner.lo[1]], [self.hi[0], inner.hi[1]]),
        ]
    }

    /// Split along `axis` (0 = x, 1 = y) so the lower part ends at `at`
    /// (inclusive). Returns `None` if `at` is outside the strict interior.
    pub fn split_at(&self, axis: usize, at: i64) -> Option<(IntBox, IntBox)> {
        if at < self.lo[axis] || at >= self.hi[axis] {
            return None;
        }
        let mut lo_box = *self;
        let mut hi_box = *self;
        lo_box.hi[axis] = at;
        hi_box.lo[axis] = at + 1;
        Some((lo_box, hi_box))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refine_coarsen_roundtrip() {
        let b = IntBox::new([2, 3], [5, 9]);
        assert_eq!(b.refine(2).coarsen(2), b);
        assert_eq!(b.refine(4).coarsen(4), b);
        // Refinement multiplies the cell count by ratio².
        assert_eq!(b.refine(2).count(), 4 * b.count());
    }

    #[test]
    fn coarsen_covers_all_fine_cells_with_negative_indices() {
        let b = IntBox::new([-3, -1], [2, 2]);
        let c = b.coarsen(2);
        for (i, j) in b.cells() {
            assert!(c.contains(i.div_euclid(2), j.div_euclid(2)));
        }
        assert_eq!(c.lo, [-2, -1]);
    }

    #[test]
    fn intersect_empty_and_nonempty() {
        let a = IntBox::sized(4, 4);
        let b = IntBox::new([2, 2], [6, 6]);
        assert_eq!(a.intersect(&b), Some(IntBox::new([2, 2], [3, 3])));
        let c = IntBox::new([10, 10], [12, 12]);
        assert_eq!(a.intersect(&c), None);
        // Touching at a corner still yields a 1-cell overlap (inclusive).
        let d = IntBox::new([3, 3], [5, 5]);
        assert_eq!(a.intersect(&d), Some(IntBox::new([3, 3], [3, 3])));
    }

    #[test]
    fn grow_and_contains() {
        let b = IntBox::sized(2, 2).grow(1);
        assert_eq!(b, IntBox::new([-1, -1], [2, 2]));
        assert!(b.contains(-1, 2));
        assert!(!b.contains(-2, 0));
        assert!(b.contains_box(&IntBox::sized(2, 2)));
        assert!(!IntBox::sized(2, 2).contains_box(&b));
    }

    #[test]
    fn split_at_partitions_cells() {
        let b = IntBox::sized(6, 3);
        let (lo, hi) = b.split_at(0, 2).unwrap();
        assert_eq!(lo, IntBox::new([0, 0], [2, 2]));
        assert_eq!(hi, IntBox::new([3, 0], [5, 2]));
        assert_eq!(lo.count() + hi.count(), b.count());
        assert!(b.split_at(0, 5).is_none()); // would leave empty upper part
        assert!(b.split_at(1, -1).is_none());
    }

    #[test]
    fn interior_and_ring_partition_the_box() {
        let b = IntBox::new([-2, 3], [7, 11]);
        for g in 0..=3 {
            let inner = b.interior_shrink(g);
            let ring = b.halo_ring(g);
            let covered: i64 =
                inner.map_or(0, |i| i.count()) + ring.iter().map(|s| s.count()).sum::<i64>();
            assert_eq!(covered, b.count(), "g = {g}");
            // Pairwise disjoint (ring strips and interior).
            let mut parts: Vec<IntBox> = ring.clone();
            parts.extend(inner);
            for (a, x) in parts.iter().enumerate() {
                for y in parts.iter().skip(a + 1) {
                    assert!(x.intersect(y).is_none(), "g = {g}: {x:?} overlaps {y:?}");
                }
            }
        }
    }

    #[test]
    fn thin_box_ring_swallows_everything() {
        let b = IntBox::sized(4, 2); // ny = 2 ≤ 2g for g = 1
        assert_eq!(b.interior_shrink(1), None);
        assert_eq!(b.halo_ring(1), vec![b]);
        assert_eq!(b.interior_shrink(0), Some(b));
        assert!(b.halo_ring(0).is_empty());
    }

    #[test]
    fn cells_iterates_row_major_exactly_once() {
        let b = IntBox::new([1, 1], [2, 3]);
        let v: Vec<_> = b.cells().collect();
        assert_eq!(v, vec![(1, 1), (2, 1), (1, 2), (2, 2), (1, 3), (2, 3)]);
    }
}
