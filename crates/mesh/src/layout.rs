//! Kernel layout and tiling knobs: the process-wide configuration behind
//! the padded structure-of-arrays patch layout ([`crate::data::PatchData`])
//! and the cache-tiled stencil/flux sweeps (DESIGN.md §13).
//!
//! Three knobs, all read through atomics so every executor worker sees
//! the same values within a run:
//!
//! * **pitch quantum** — row pitches are rounded up to a multiple of this
//!   many `f64`s, so every row of every variable plane starts at an
//!   element offset that is a multiple of the quantum (64 bytes at the
//!   default of 8: one cache line, and the natural AVX-512 vector width).
//!   Padding changes *addresses only*: every value-carrying loop iterates
//!   dense rows, so results are bit-identical at any quantum.
//! * **tile rows** — stencil and flux sweeps block their j-loop into
//!   bands of this many rows so a band plus its stencil halo stays cache
//!   resident; `0` disables tiling. Tiling reorders only whole-cell
//!   units of work whose arithmetic is cell-independent, so it is also
//!   bit-identical (see `KernelConfig`).
//! * **fast divide** — hoists per-cell divisions by the (loop-invariant)
//!   cell volume into a reciprocal multiplication. This genuinely changes
//!   rounding, so it is **off by default** and covered by tolerance-gated
//!   (`|Δ| ≤ 1e-12` relative) acceptance tests instead of bit-identity.
//!
//! Environment overrides (read once, then sticky): `CCA_PITCH_QUANTUM`,
//! `CCA_TILE_ROWS`, `CCA_FAST_DIV=1`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Once;

/// Default row-pitch quantum in `f64` elements (64 bytes).
pub const DEFAULT_PITCH_QUANTUM: usize = 8;

/// Default j-loop tile height in rows.
pub const DEFAULT_TILE_ROWS: usize = 16;

static PITCH_QUANTUM: AtomicUsize = AtomicUsize::new(DEFAULT_PITCH_QUANTUM);
static TILE_ROWS: AtomicUsize = AtomicUsize::new(DEFAULT_TILE_ROWS);
static FAST_DIV: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn ensure_env() {
    ENV_INIT.call_once(|| {
        if let Some(q) = std::env::var("CCA_PITCH_QUANTUM")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            PITCH_QUANTUM.store(q.max(1), Ordering::Relaxed);
        }
        if let Some(t) = std::env::var("CCA_TILE_ROWS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            TILE_ROWS.store(t, Ordering::Relaxed);
        }
        if std::env::var("CCA_FAST_DIV").is_ok_and(|v| v == "1") {
            FAST_DIV.store(true, Ordering::Relaxed);
        }
    });
}

/// Current row-pitch quantum (elements). Always ≥ 1.
pub fn pitch_quantum() -> usize {
    ensure_env();
    PITCH_QUANTUM.load(Ordering::Relaxed).max(1)
}

/// Set the row-pitch quantum for subsequently allocated patches (clamped
/// to ≥ 1). Existing patches keep their pitch; results are pitch-
/// independent either way.
pub fn set_pitch_quantum(quantum: usize) {
    ensure_env();
    PITCH_QUANTUM.store(quantum.max(1), Ordering::Relaxed);
}

/// Current default tile height in rows (`0` = untiled).
pub fn tile_rows() -> usize {
    ensure_env();
    TILE_ROWS.load(Ordering::Relaxed)
}

/// Set the default tile height (`0` disables tiling).
pub fn set_tile_rows(rows: usize) {
    ensure_env();
    TILE_ROWS.store(rows, Ordering::Relaxed);
}

/// Is the (order-changing, tolerance-gated) reciprocal-multiply mode on?
pub fn fast_div() -> bool {
    ensure_env();
    FAST_DIV.load(Ordering::Relaxed)
}

/// Enable or disable the reciprocal-multiply mode.
pub fn set_fast_div(enabled: bool) {
    ensure_env();
    FAST_DIV.store(enabled, Ordering::Relaxed);
}

/// Round `n` up to a multiple of `quantum` (≥ 1 enforced).
pub fn pad_to_quantum(n: usize, quantum: usize) -> usize {
    let q = quantum.max(1);
    n.div_ceil(q) * q
}

/// Snapshot of the tiling/arithmetic knobs a kernel call should honor.
/// Kernels take this by value (or read [`KernelConfig::current`] once per
/// call), so a single evaluation never mixes knob values even if another
/// thread changes the globals mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelConfig {
    /// j-loop tile height in rows; `0` = untiled single band.
    pub tile_rows: usize,
    /// Multiply by hoisted reciprocals instead of dividing per cell.
    /// Changes summation/rounding order: tolerance-gated, default off.
    pub fast_div: bool,
}

impl KernelConfig {
    /// The bit-identity reference configuration: no tiling, no reordered
    /// arithmetic.
    pub const UNTILED: KernelConfig = KernelConfig {
        tile_rows: 0,
        fast_div: false,
    };

    /// Snapshot of the process-wide knobs.
    pub fn current() -> Self {
        KernelConfig {
            tile_rows: tile_rows(),
            fast_div: fast_div(),
        }
    }

    /// A tiled, order-preserving configuration.
    pub fn tiled(rows: usize) -> Self {
        KernelConfig {
            tile_rows: rows,
            fast_div: false,
        }
    }

    /// Band height in rows for a sweep over `ny` rows: the tile height,
    /// or the whole sweep when untiled.
    pub fn band_rows(&self, ny: usize) -> usize {
        if self.tile_rows == 0 {
            ny.max(1)
        } else {
            self.tile_rows
        }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_rounds_up_to_quantum() {
        assert_eq!(pad_to_quantum(1, 8), 8);
        assert_eq!(pad_to_quantum(8, 8), 8);
        assert_eq!(pad_to_quantum(9, 8), 16);
        assert_eq!(pad_to_quantum(20, 1), 20);
        assert_eq!(pad_to_quantum(0, 4), 0);
        // Degenerate quantum clamps to 1 instead of dividing by zero.
        assert_eq!(pad_to_quantum(7, 0), 7);
    }

    #[test]
    fn band_rows_covers_untiled_and_tiled() {
        assert_eq!(KernelConfig::UNTILED.band_rows(40), 40);
        assert_eq!(KernelConfig::tiled(16).band_rows(40), 16);
        assert_eq!(KernelConfig::UNTILED.band_rows(0), 1);
    }

    #[test]
    fn default_knobs_are_sane() {
        // Whatever tests elsewhere set, the clamps hold.
        assert!(pitch_quantum() >= 1);
        let cfg = KernelConfig::current();
        let _ = cfg.band_rows(8);
    }
}
