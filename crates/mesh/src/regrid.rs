//! Regridding: flag → buffer → cluster → rebuild a finer level → move
//! data. The paper (§3): "The solution is passed through a filter to
//! determine regions needing finer meshes, whereby new patches are created
//! and initialized with data from the coarse meshes (provided there does
//! not exist a patch of the same resolution over that subdomain, wholly or
//! partly)... Regions which are deemed over-refined have fine patches
//! destroyed."

use crate::boxes::IntBox;
use crate::cluster::berger_rigoutsos;
use crate::data::DataObject;
use crate::hierarchy::Hierarchy;
use crate::interp::prolong_limited;
use std::collections::HashSet;

/// Regridding knobs.
#[derive(Clone, Copy, Debug)]
pub struct RegridParams {
    /// Berger–Rigoutsos fill-efficiency threshold.
    pub efficiency: f64,
    /// Buffer cells added around every flag before clustering.
    pub buffer: i64,
    /// Minimum patch width (coarse cells).
    pub min_width: i64,
}

impl Default for RegridParams {
    fn default() -> Self {
        RegridParams {
            efficiency: 0.7,
            buffer: 1,
            min_width: 4,
        }
    }
}

/// Rebuild level `level + 1` from cells flagged on `level`.
///
/// * `flags` are level-`level` cell indices tripping the error estimator
///   (the paper's `ErrorEstAndRegrid` component produces them);
/// * flags are buffered, clipped to the union of level-`level` patches
///   (guaranteeing proper nesting of the new fine patches), clustered, and
///   refined by the hierarchy ratio;
/// * if a [`DataObject`] is supplied, new fine patches are initialized by
///   bilinear prolongation from `level`, then overwritten with copies from
///   any old fine patches they overlap (the paper's rule: keep existing
///   same-resolution data);
/// * an empty flag set destroys the finer level (over-refined region).
///
/// Returns the new patch ids of level `level + 1`.
pub fn regrid_level(
    hier: &mut Hierarchy,
    level: usize,
    flags: &[(i64, i64)],
    params: &RegridParams,
    data: &mut [&mut DataObject],
) -> Vec<usize> {
    // 1. Buffer and clip the flags.
    let patch_union: Vec<IntBox> = hier.levels[level]
        .patches
        .iter()
        .map(|p| p.interior)
        .collect();
    let mut buffered: HashSet<(i64, i64)> = HashSet::new();
    for &(i, j) in flags {
        for dj in -params.buffer..=params.buffer {
            for di in -params.buffer..=params.buffer {
                let (bi, bj) = (i + di, j + dj);
                if patch_union.iter().any(|b| b.contains(bi, bj)) {
                    buffered.insert((bi, bj));
                }
            }
        }
    }
    // 1b. Proper-nesting enforcement (Berger–Colella): if a level
    // `level + 2` exists, the rebuilt `level + 1` must still contain it.
    // Project every level-(l+2) patch footprint down to this level (plus
    // a safety buffer) and add it to the flag set, so the clustering
    // cannot orphan existing finer patches.
    if hier.n_levels() > level + 2 {
        let margin = params.buffer.max(1);
        for p in hier.levels[level + 2].patches.clone() {
            let foot = p
                .interior
                .coarsen(hier.ratio)
                .coarsen(hier.ratio)
                .grow(margin);
            for (bi, bj) in foot.cells() {
                if patch_union.iter().any(|b| b.contains(bi, bj)) {
                    buffered.insert((bi, bj));
                }
            }
        }
    }
    let buffered: Vec<(i64, i64)> = buffered.into_iter().collect();

    // 2. Cluster on the coarse level and refine the boxes.
    let coarse_boxes = berger_rigoutsos(&buffered, params.efficiency, params.min_width);
    let fine_boxes: Vec<IntBox> = coarse_boxes.iter().map(|b| b.refine(hier.ratio)).collect();

    // 3. Preserve old fine data, rebuild the level.
    let old_patches = if hier.n_levels() > level + 1 {
        hier.levels[level + 1].patches.clone()
    } else {
        Vec::new()
    };
    let old_data: Vec<std::collections::BTreeMap<usize, crate::data::PatchData>> =
        data.iter_mut().map(|d| d.take_level(level + 1)).collect();

    if fine_boxes.is_empty() {
        hier.truncate_levels(level + 1);
        return Vec::new();
    }
    let new_ids = hier.set_level_boxes(level + 1, &fine_boxes);
    debug_assert!(hier.properly_nested(level + 1));
    debug_assert!(hier.level_disjoint(level + 1));

    // 4. Initialize data: prolong from coarse, then copy old overlaps.
    for (dobj, old_level_data) in data.iter_mut().zip(old_data) {
        for (new_id, fine_box) in new_ids.iter().zip(&fine_boxes) {
            dobj.allocate(level + 1, *new_id, *fine_box);
            // Prolongation from every overlapping coarse donor.
            let donors: Vec<_> = hier.levels[level]
                .patches
                .iter()
                .filter_map(|q| {
                    fine_box
                        .coarsen(hier.ratio)
                        .intersect(&q.interior)
                        .map(|ov| (q.id, ov))
                })
                .collect();
            for (donor_id, coarse_overlap) in donors {
                let fine_region = coarse_overlap
                    .refine(hier.ratio)
                    .intersect(fine_box)
                    .expect("refined overlap intersects the fine box");
                let (fine_pd, coarse_pd) = dobj
                    .patch_pair_mut(level + 1, *new_id, level, donor_id)
                    .expect("allocated above / donor exists");
                prolong_limited(fine_pd, coarse_pd, &fine_region, hier.ratio);
            }
            // Copy from old same-resolution patches where they overlap.
            for old in &old_patches {
                if let Some(old_pd) = old_level_data.get(&old.id) {
                    if let Some(region) = fine_box.intersect(&old.interior) {
                        dobj.patch_mut(level + 1, *new_id)
                            .expect("allocated above")
                            .copy_from(old_pd, &region);
                    }
                }
            }
        }
    }
    new_ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Hierarchy {
        Hierarchy::new(IntBox::sized(32, 32), [0.0, 0.0], [1.0 / 32.0; 2], 2)
    }

    #[test]
    fn flags_create_a_nested_fine_level() {
        let mut h = base();
        let flags: Vec<_> = IntBox::new([10, 10], [15, 14]).cells().collect();
        let ids = regrid_level(&mut h, 0, &flags, &RegridParams::default(), &mut []);
        assert!(!ids.is_empty());
        assert!(h.properly_nested(1));
        // All flags covered by the fine level (coarsened).
        for &(i, j) in &flags {
            let covered = h.levels[1]
                .patches
                .iter()
                .any(|p| p.interior.coarsen(2).contains(i, j));
            assert!(covered, "({i},{j}) not refined");
        }
    }

    #[test]
    fn empty_flags_destroy_fine_level() {
        let mut h = base();
        let flags: Vec<_> = IntBox::new([4, 4], [9, 9]).cells().collect();
        regrid_level(&mut h, 0, &flags, &RegridParams::default(), &mut []);
        assert_eq!(h.n_levels(), 2);
        let ids = regrid_level(&mut h, 0, &[], &RegridParams::default(), &mut []);
        assert!(ids.is_empty());
        assert_eq!(h.n_levels(), 1);
    }

    #[test]
    fn buffer_extends_refined_region() {
        let mut h = base();
        let flags = vec![(16, 16)];
        let params = RegridParams {
            buffer: 2,
            min_width: 2,
            ..RegridParams::default()
        };
        regrid_level(&mut h, 0, &flags, &params, &mut []);
        let p = h.levels[1].patches[0].interior.coarsen(2);
        // The buffered region [14..18]^2 must be inside the fine patch.
        assert!(p.contains_box(&IntBox::new([14, 14], [18, 18])));
    }

    #[test]
    fn data_initialized_by_prolongation_then_old_copy() {
        let mut h = base();
        let mut dobj = DataObject::new(1, 1);
        let coarse_id = h.levels[0].patches[0].id;
        dobj.allocate(0, coarse_id, h.levels[0].patches[0].interior);
        dobj.patch_mut(0, coarse_id).unwrap().fill_var(0, 5.0);

        // First regrid: fine data comes from prolongation (constant 5).
        let flags: Vec<_> = IntBox::new([8, 8], [15, 15]).cells().collect();
        let ids = {
            let mut refs: Vec<&mut DataObject> = vec![&mut dobj];
            regrid_level(&mut h, 0, &flags, &RegridParams::default(), &mut refs)
        };
        let fine = dobj.patch(1, ids[0]).unwrap();
        for (i, j) in fine.interior.cells() {
            assert_eq!(fine.get(0, i, j), 5.0);
        }

        // Mutate the fine data, regrid to a shifted region overlapping the
        // old one: overlap keeps the mutated values, fresh cells get 5.0.
        dobj.patch_mut(1, ids[0]).unwrap().fill_var(0, 9.0);
        let flags2: Vec<_> = IntBox::new([10, 10], [17, 17]).cells().collect();
        let ids2 = {
            let mut refs: Vec<&mut DataObject> = vec![&mut dobj];
            regrid_level(&mut h, 0, &flags2, &RegridParams::default(), &mut refs)
        };
        // The first regrid buffered [8..15]^2 by one cell -> coarse box
        // [7..16]^2 -> fine box [14..33]^2.
        let old_fine_box = IntBox::new([7, 7], [16, 16]).refine(2);
        for id in &ids2 {
            let pd = dobj.patch(1, *id).unwrap();
            for (i, j) in pd.interior.cells() {
                let v = pd.get(0, i, j);
                if old_fine_box.contains(i, j) {
                    assert_eq!(v, 9.0, "({i},{j}) lost old data");
                } else {
                    assert_eq!(v, 5.0, "({i},{j}) not prolonged");
                }
            }
        }
    }

    #[test]
    fn flags_outside_patches_are_ignored() {
        let mut h = base();
        let flags = vec![(100, 100), (-5, 0), (16, 16)];
        let ids = regrid_level(&mut h, 0, &flags, &RegridParams::default(), &mut []);
        assert_eq!(ids.len(), 1);
        assert!(h.properly_nested(1));
    }
}
