//! Checkpoint/restart of the SAMR state: hierarchy geometry plus any
//! number of named Data Objects, in a self-describing little-endian
//! binary format. Long SAMR campaigns (the paper's production flame run
//! took 58 hours on 28 CPUs) are not survivable without restart files;
//! GrACE/DAGH shipped the equivalent facility.
//!
//! Format: magic `CCAH`, version u32, hierarchy block, object count, then
//! per object: name, nvars, nghost, and per (level, patch) the interior
//! box plus the raw interior+ghost field data.

use crate::boxes::IntBox;
use crate::data::{DataObject, PatchData};
use crate::hierarchy::{Hierarchy, Patch};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CCAH";
const VERSION: u32 = 1;

/// FNV-1a initial offset basis (64-bit).
pub const FNV1A_INIT: u64 = 0xcbf2_9ce4_8422_2325;
const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Plain 64-bit FNV-1a over a byte stream, seedable for chaining.
/// The per-record and per-set integrity checksums of the checkpoint
/// subsystem all use this (deterministic, dependency-free).
pub fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV1A_PRIME);
    }
    h
}

/// Fixed bytes of one patch record besides the field data: length prefix,
/// level, id, interior box, trailing checksum.
const RECORD_OVERHEAD: usize = 8 + 8 + 8 + 32 + 8;

/// Upper bound accepted for a record's length prefix; anything larger is
/// reported as corruption instead of attempted as an allocation.
const RECORD_MAX: usize = 1 << 32;

/// Checkpoint errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a checkpoint, or a different format version.
    BadHeader(String),
    /// Structurally invalid payload.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadHeader(m) => write!(f, "bad checkpoint header: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_i64(w: &mut impl Write, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    put_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn get_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(r: &mut impl Read) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_i64(r: &mut impl Read) -> Result<i64, CheckpointError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}

fn get_f64(r: &mut impl Read) -> Result<f64, CheckpointError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn get_str(r: &mut impl Read) -> Result<String, CheckpointError> {
    let len = get_u64(r)? as usize;
    if len > 1 << 20 {
        return Err(CheckpointError::Corrupt(format!("string length {len}")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| CheckpointError::Corrupt(e.to_string()))
}

fn put_box(w: &mut impl Write, b: &IntBox) -> io::Result<()> {
    put_i64(w, b.lo[0])?;
    put_i64(w, b.lo[1])?;
    put_i64(w, b.hi[0])?;
    put_i64(w, b.hi[1])
}

fn get_box(r: &mut impl Read) -> Result<IntBox, CheckpointError> {
    let lo = [get_i64(r)?, get_i64(r)?];
    let hi = [get_i64(r)?, get_i64(r)?];
    if lo[0] > hi[0] || lo[1] > hi[1] {
        return Err(CheckpointError::Corrupt(format!(
            "inverted box {lo:?}..{hi:?}"
        )));
    }
    Ok(IntBox::new(lo, hi))
}

/// Serialize one stored patch as a self-describing migration record:
/// `u64 record length (whole record, length prefix and trailing checksum
/// included), u64 level, u64 id, interior box, raw f64 data (all vars,
/// interior + ghosts), u64 FNV-1a checksum of the body (level through
/// data)`. Little-endian, same conventions as the checkpoint body, so a
/// record is exactly [`patch_record_len`] bytes and a concatenation of
/// records is a valid migration payload — and every record carries enough
/// framing for [`patch_from_bytes`] to reject truncation or corruption
/// with a typed error instead of misparsing garbage.
pub fn patch_to_bytes(level: usize, id: usize, pd: &PatchData, out: &mut Vec<u8>) {
    let start = out.len();
    let len = patch_record_len(&pd.interior, pd.nvars, pd.nghost);
    put_u64(out, len as u64).expect("Vec writes are infallible");
    put_u64(out, level as u64).expect("Vec writes are infallible");
    put_u64(out, id as u64).expect("Vec writes are infallible");
    put_box(out, &pd.interior).expect("Vec writes are infallible");
    // Dense rows only: row padding is an in-memory artifact and must never
    // reach the wire (records stay byte-identical at any pitch quantum).
    let t = pd.total_box();
    for var in 0..pd.nvars {
        for j in t.lo[1]..=t.hi[1] {
            for v in pd.row(var, j) {
                put_f64(out, *v).expect("Vec writes are infallible");
            }
        }
    }
    let sum = fnv1a64(FNV1A_INIT, &out[start + 8..]);
    put_u64(out, sum).expect("Vec writes are infallible");
    debug_assert_eq!(out.len() - start, len);
}

/// Parse one migration record produced by [`patch_to_bytes`]. `nvars` and
/// `nghost` come from the receiving Data Object (the record stores only
/// geometry + raw data). Returns `(level, id, patch)`.
///
/// Every structural fault is a typed [`CheckpointError`], never a panic:
/// an implausible or geometry-inconsistent length prefix and a checksum
/// mismatch are `Corrupt`; a stream shorter than its own length prefix is
/// `Io` (unexpected EOF).
pub fn patch_from_bytes(
    r: &mut impl Read,
    nvars: usize,
    nghost: i64,
) -> Result<(usize, usize, PatchData), CheckpointError> {
    let len = get_u64(r)? as usize;
    if !(RECORD_OVERHEAD + 8..=RECORD_MAX).contains(&len) {
        return Err(CheckpointError::Corrupt(format!(
            "record length prefix {len} outside [{}, {RECORD_MAX}]",
            RECORD_OVERHEAD + 8
        )));
    }
    let mut body = vec![0u8; len - 8];
    r.read_exact(&mut body)?;
    let (payload, tail) = body.split_at(body.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    let computed = fnv1a64(FNV1A_INIT, payload);
    if stored != computed {
        return Err(CheckpointError::Corrupt(format!(
            "record checksum mismatch: stored {stored:016x}, computed {computed:016x}"
        )));
    }
    let mut p = payload;
    let level = get_u64(&mut p)? as usize;
    let id = get_u64(&mut p)? as usize;
    let interior = get_box(&mut p)?;
    let want = patch_record_len(&interior, nvars, nghost);
    if want != len {
        return Err(CheckpointError::Corrupt(format!(
            "record length {len} does not match geometry ({want} bytes for \
             box {:?}..{:?}, {nvars} vars, {nghost} ghosts)",
            interior.lo, interior.hi
        )));
    }
    let mut pd = PatchData::new(interior, nvars, nghost);
    let t = pd.total_box();
    for var in 0..nvars {
        for j in t.lo[1]..=t.hi[1] {
            for v in pd.row_mut(var, j).iter_mut() {
                *v = get_f64(&mut p)?;
            }
        }
    }
    Ok((level, id, pd))
}

/// Exact wire size of one [`patch_to_bytes`] record for a patch with the
/// given interior box: framing (length prefix + level + id + box +
/// checksum) plus the ghost-padded field data. Lets both sides of a
/// migration size buffers and comm plans without constructing the
/// payload.
pub fn patch_record_len(interior: &IntBox, nvars: usize, nghost: i64) -> usize {
    let total = interior.grow(nghost).count() as usize;
    RECORD_OVERHEAD + 8 * nvars * total
}

/// Write a checkpoint of `hier` and the given Data Objects.
pub fn write_checkpoint(
    hier: &Hierarchy,
    objects: &BTreeMap<String, DataObject>,
    w: &mut impl Write,
) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    put_u32(w, VERSION)?;
    // Hierarchy geometry.
    put_box(w, &hier.domain0)?;
    put_f64(w, hier.origin[0])?;
    put_f64(w, hier.origin[1])?;
    put_f64(w, hier.dx0[0])?;
    put_f64(w, hier.dx0[1])?;
    put_i64(w, hier.ratio)?;
    put_u64(w, hier.n_levels() as u64)?;
    for level in &hier.levels {
        put_u64(w, level.patches.len() as u64)?;
        for p in &level.patches {
            put_u64(w, p.id as u64)?;
            put_box(w, &p.interior)?;
            put_u64(w, p.owner as u64)?;
        }
    }
    // Data objects.
    put_u64(w, objects.len() as u64)?;
    for (name, dobj) in objects {
        put_str(w, name)?;
        put_u64(w, dobj.nvars as u64)?;
        put_i64(w, dobj.nghost)?;
        put_u64(w, dobj.n_levels() as u64)?;
        for level in 0..dobj.n_levels() {
            let ids = dobj.patch_ids(level);
            put_u64(w, ids.len() as u64)?;
            for id in ids {
                let pd = dobj.patch(level, id).expect("listed id");
                put_u64(w, id as u64)?;
                put_box(w, &pd.interior)?;
                let t = pd.total_box();
                for var in 0..pd.nvars {
                    for j in t.lo[1]..=t.hi[1] {
                        for v in pd.row(var, j) {
                            put_f64(w, *v)?;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Read a checkpoint back.
pub fn read_checkpoint(
    r: &mut impl Read,
) -> Result<(Hierarchy, BTreeMap<String, DataObject>), CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader(format!("magic {magic:?}")));
    }
    let version = get_u32(r)?;
    if version != VERSION {
        return Err(CheckpointError::BadHeader(format!("version {version}")));
    }
    let domain0 = get_box(r)?;
    let origin = [get_f64(r)?, get_f64(r)?];
    let dx0 = [get_f64(r)?, get_f64(r)?];
    let ratio = get_i64(r)?;
    if !(2..=16).contains(&ratio) {
        return Err(CheckpointError::Corrupt(format!("ratio {ratio}")));
    }
    let mut hier = Hierarchy::new(domain0, origin, dx0, ratio);
    let n_levels = get_u64(r)? as usize;
    if n_levels == 0 || n_levels > 64 {
        return Err(CheckpointError::Corrupt(format!("{n_levels} levels")));
    }
    hier.levels.clear();
    let mut max_id = 0usize;
    for _ in 0..n_levels {
        let n_patches = get_u64(r)? as usize;
        if n_patches > 1 << 24 {
            return Err(CheckpointError::Corrupt(format!("{n_patches} patches")));
        }
        let mut level = crate::hierarchy::Level::default();
        for _ in 0..n_patches {
            let id = get_u64(r)? as usize;
            let interior = get_box(r)?;
            let owner = get_u64(r)? as usize;
            max_id = max_id.max(id + 1);
            level.patches.push(Patch {
                id,
                interior,
                owner,
            });
        }
        hier.levels.push(level);
    }
    hier.reserve_ids(max_id);

    let n_objects = get_u64(r)? as usize;
    if n_objects > 1 << 16 {
        return Err(CheckpointError::Corrupt(format!("{n_objects} objects")));
    }
    let mut objects = BTreeMap::new();
    for _ in 0..n_objects {
        let name = get_str(r)?;
        let nvars = get_u64(r)? as usize;
        let nghost = get_i64(r)?;
        if nvars == 0 || nvars > 1 << 12 || !(0..=16).contains(&nghost) {
            return Err(CheckpointError::Corrupt(format!(
                "object '{name}': nvars {nvars}, nghost {nghost}"
            )));
        }
        let mut dobj = DataObject::new(nvars, nghost);
        let n_levels = get_u64(r)? as usize;
        for level in 0..n_levels {
            let n_patches = get_u64(r)? as usize;
            for _ in 0..n_patches {
                let id = get_u64(r)? as usize;
                let interior = get_box(r)?;
                let mut pd = PatchData::new(interior, nvars, nghost);
                let t = pd.total_box();
                for var in 0..nvars {
                    for j in t.lo[1]..=t.hi[1] {
                        for v in pd.row_mut(var, j).iter_mut() {
                            *v = get_f64(r)?;
                        }
                    }
                }
                dobj.insert(level, id, pd);
            }
        }
        objects.insert(name, dobj);
    }
    Ok((hier, objects))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Hierarchy, BTreeMap<String, DataObject>) {
        let mut hier = Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [1.0 / 16.0; 2], 2);
        hier.set_level_boxes(1, &[IntBox::new([4, 4], [11, 11]).refine(2)]);
        hier.levels[1].patches[0].owner = 3;
        let mut dobj = DataObject::new(2, 1);
        for (level, l) in hier.levels.iter().enumerate() {
            for p in &l.patches {
                dobj.allocate(level, p.id, p.interior);
            }
        }
        let id0 = hier.levels[0].patches[0].id;
        let pd = dobj.patch_mut(0, id0).unwrap();
        let interior = pd.interior;
        for (k, (i, j)) in interior.cells().enumerate() {
            pd.set(0, i, j, k as f64);
            pd.set(1, i, j, -(k as f64) * 0.5);
        }
        let mut objects = BTreeMap::new();
        objects.insert("state".to_string(), dobj);
        (hier, objects)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (hier, objects) = sample();
        let mut buf = Vec::new();
        write_checkpoint(&hier, &objects, &mut buf).unwrap();
        let (h2, o2) = read_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(h2.domain0, hier.domain0);
        assert_eq!(h2.ratio, hier.ratio);
        assert_eq!(h2.n_levels(), hier.n_levels());
        assert_eq!(h2.levels[1].patches[0].owner, 3);
        assert_eq!(
            h2.levels[1].patches[0].interior,
            hier.levels[1].patches[0].interior
        );
        let src = objects.get("state").unwrap();
        let dst = o2.get("state").unwrap();
        let id0 = hier.levels[0].patches[0].id;
        assert_eq!(src.patch(0, id0).unwrap(), dst.patch(0, id0).unwrap());
    }

    #[test]
    fn fresh_ids_do_not_collide_after_restart() {
        let (hier, objects) = sample();
        let mut buf = Vec::new();
        write_checkpoint(&hier, &objects, &mut buf).unwrap();
        let (mut h2, _) = read_checkpoint(&mut buf.as_slice()).unwrap();
        let existing: Vec<usize> = h2
            .levels
            .iter()
            .flat_map(|l| l.patches.iter().map(|p| p.id))
            .collect();
        let fresh = h2.fresh_id();
        assert!(!existing.contains(&fresh), "id {fresh} collides");
    }

    #[test]
    fn patch_record_roundtrip_is_bit_exact_and_sized() {
        let (hier, objects) = sample();
        let dobj = objects.get("state").unwrap();
        let id0 = hier.levels[0].patches[0].id;
        let pd = dobj.patch(0, id0).unwrap();
        let mut buf = Vec::new();
        patch_to_bytes(0, id0, pd, &mut buf);
        assert_eq!(buf.len(), patch_record_len(&pd.interior, pd.nvars, 1));
        let (level, id, back) = patch_from_bytes(&mut buf.as_slice(), pd.nvars, 1).unwrap();
        assert_eq!((level, id), (0, id0));
        assert_eq!(&back, pd);
    }

    #[test]
    fn record_bytes_and_restore_are_pitch_independent() {
        // The wire format strips row padding: a pitch-16 patch serializes
        // to the exact bytes of its dense twin, and restoring through a
        // different pitch quantum reproduces the values bit-identically.
        let interior = IntBox::sized(13, 7); // 13 + 2·2 ghosts = 17: pads at 8 and 16
        let mk = |quantum: usize| {
            let mut pd = PatchData::with_pitch_quantum(interior, 2, 2, quantum);
            let t = pd.total_box();
            for (k, (i, j)) in t.cells().enumerate() {
                pd.set(0, i, j, (k as f64).sin());
                pd.set(1, i, j, k as f64 * 0.25 - 3.0);
            }
            pd
        };
        let dense = mk(1);
        let wide = mk(16);
        assert_ne!(dense.pitch(), wide.pitch());
        let (mut b_dense, mut b_wide) = (Vec::new(), Vec::new());
        patch_to_bytes(2, 7, &dense, &mut b_dense);
        patch_to_bytes(2, 7, &wide, &mut b_wide);
        assert_eq!(b_dense, b_wide, "padding leaked into record bytes");
        assert_eq!(b_wide.len(), patch_record_len(&interior, 2, 2));
        // Restore with the process default quantum (8): values must match
        // the pitch-16 original bit-for-bit.
        let (level, id, back) = patch_from_bytes(&mut b_wide.as_slice(), 2, 2).unwrap();
        assert_eq!((level, id), (2, 7));
        assert_eq!(back, wide);
        let t = wide.total_box();
        for (i, j) in t.cells() {
            for var in 0..2 {
                assert_eq!(back.get(var, i, j).to_bits(), wide.get(var, i, j).to_bits());
            }
        }
    }

    #[test]
    fn concatenated_patch_records_parse_sequentially() {
        let (hier, objects) = sample();
        let dobj = objects.get("state").unwrap();
        let mut buf = Vec::new();
        let mut expect = Vec::new();
        for (level, l) in hier.levels.iter().enumerate() {
            for p in &l.patches {
                patch_to_bytes(level, p.id, dobj.patch(level, p.id).unwrap(), &mut buf);
                expect.push((level, p.id));
            }
        }
        let mut r = buf.as_slice();
        for &(level, id) in &expect {
            let (l, i, pd) = patch_from_bytes(&mut r, dobj.nvars, dobj.nghost).unwrap();
            assert_eq!((l, i), (level, id));
            assert_eq!(&pd, dobj.patch(level, id).unwrap());
        }
        assert!(r.is_empty(), "trailing bytes after last record");
    }

    #[test]
    fn corrupted_patch_record_data_rejected_by_checksum() {
        let (hier, objects) = sample();
        let dobj = objects.get("state").unwrap();
        let id0 = hier.levels[0].patches[0].id;
        let mut buf = Vec::new();
        patch_to_bytes(0, id0, dobj.patch(0, id0).unwrap(), &mut buf);
        // Flip one bit in the middle of the field data.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let err = patch_from_bytes(&mut buf.as_slice(), 2, 1).err().unwrap();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncated_patch_record_rejected_not_panicking() {
        let (hier, objects) = sample();
        let dobj = objects.get("state").unwrap();
        let id0 = hier.levels[0].patches[0].id;
        let mut buf = Vec::new();
        patch_to_bytes(0, id0, dobj.patch(0, id0).unwrap(), &mut buf);
        for keep in [4usize, 9, buf.len() / 2, buf.len() - 1] {
            let mut cut = buf.clone();
            cut.truncate(keep);
            let err = patch_from_bytes(&mut cut.as_slice(), 2, 1).err().unwrap();
            assert!(
                matches!(err, CheckpointError::Io(_) | CheckpointError::Corrupt(_)),
                "keep {keep}: {err}"
            );
        }
    }

    #[test]
    fn implausible_record_length_prefix_rejected() {
        // A length prefix far beyond RECORD_MAX must not be trusted as an
        // allocation size.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u64::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let err = patch_from_bytes(&mut buf.as_slice(), 2, 1).err().unwrap();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("length prefix"), "{err}");
    }

    #[test]
    fn geometry_inconsistent_length_rejected() {
        let (hier, objects) = sample();
        let dobj = objects.get("state").unwrap();
        let id0 = hier.levels[0].patches[0].id;
        let mut buf = Vec::new();
        patch_to_bytes(0, id0, dobj.patch(0, id0).unwrap(), &mut buf);
        // Parse with the wrong nvars: the record is intact (checksum
        // passes) but its length no longer matches the claimed geometry.
        let err = patch_from_bytes(&mut buf.as_slice(), 3, 1).err().unwrap();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("geometry"), "{err}");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_checkpoint(&mut &b"NOPE\x01\x00\x00\x00"[..])
            .err()
            .unwrap();
        assert!(matches!(err, CheckpointError::BadHeader(_)), "{err}");
    }

    #[test]
    fn truncated_stream_rejected() {
        let (hier, objects) = sample();
        let mut buf = Vec::new();
        write_checkpoint(&hier, &objects, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = read_checkpoint(&mut buf.as_slice()).err().unwrap();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn corrupted_ratio_rejected() {
        let (hier, objects) = sample();
        let mut buf = Vec::new();
        write_checkpoint(&hier, &objects, &mut buf).unwrap();
        // ratio sits after magic(4) + version(4) + box(32) + origin/dx(32).
        let off = 4 + 4 + 32 + 32;
        buf[off..off + 8].copy_from_slice(&999i64.to_le_bytes());
        let err = read_checkpoint(&mut buf.as_slice()).err().unwrap();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }
}
