//! Property-based tests of the SAMR substrate's invariants.

use cca_mesh::berger_rigoutsos;
use cca_mesh::boxes::IntBox;
use cca_mesh::data::PatchData;
use cca_mesh::hierarchy::Hierarchy;
use cca_mesh::interp::{prolong_bilinear, restrict_average};
use cca_mesh::regrid::{regrid_level, RegridParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clustering covers every flag exactly once with pairwise-disjoint,
    /// non-empty boxes — for arbitrary flag clouds and thresholds.
    #[test]
    fn clustering_invariants(
        flags in proptest::collection::hash_set((0i64..40, 0i64..40), 1..120),
        eff in 0.3f64..1.0,
        min_width in 1i64..5,
    ) {
        let flags: Vec<(i64, i64)> = flags.into_iter().collect();
        let boxes = berger_rigoutsos(&flags, eff, min_width);
        for &(i, j) in &flags {
            let n = boxes.iter().filter(|b| b.contains(i, j)).count();
            prop_assert_eq!(n, 1, "flag ({}, {}) in {} boxes", i, j, n);
        }
        for (a, ba) in boxes.iter().enumerate() {
            for bb in &boxes[a + 1..] {
                prop_assert!(ba.intersect(bb).is_none());
            }
            prop_assert!(flags.iter().any(|&(i, j)| ba.contains(i, j)));
        }
    }

    /// Box refine/coarsen roundtrip and area law for arbitrary boxes.
    #[test]
    fn box_refine_laws(
        lo_x in -50i64..50, lo_y in -50i64..50,
        nx in 1i64..30, ny in 1i64..30,
        ratio in 2i64..5,
    ) {
        let b = IntBox::new([lo_x, lo_y], [lo_x + nx - 1, lo_y + ny - 1]);
        prop_assert_eq!(b.refine(ratio).coarsen(ratio), b);
        prop_assert_eq!(b.refine(ratio).count(), b.count() * ratio * ratio);
        // Coarsening covers all cells.
        let c = b.coarsen(ratio);
        for (i, j) in b.cells() {
            prop_assert!(c.contains(i.div_euclid(ratio), j.div_euclid(ratio)));
        }
    }

    /// The split-sweep geometry: for any box grown by `nghost`,
    /// `interior_shrink` ∪ `halo_ring` strips exactly tile the grown box —
    /// every cell covered once, strips pairwise disjoint, all inside the
    /// box. This is the correctness bedrock of computing the interior
    /// while halo messages are in flight and the ring after `waitall`.
    #[test]
    fn interior_plus_halo_ring_tile_the_grown_box(
        lo_x in -40i64..40, lo_y in -40i64..40,
        nx in 1i64..25, ny in 1i64..25,
        nghost in 1i64..4,
    ) {
        let base = IntBox::new([lo_x, lo_y], [lo_x + nx - 1, lo_y + ny - 1]);
        let grown = base.grow(nghost);
        let mut parts: Vec<IntBox> = grown.halo_ring(nghost);
        parts.extend(grown.interior_shrink(nghost));
        // Pairwise disjoint ...
        for (a, x) in parts.iter().enumerate() {
            for y in parts.iter().skip(a + 1) {
                prop_assert!(x.intersect(y).is_none(), "{:?} overlaps {:?}", x, y);
            }
        }
        // ... contained ...
        for s in &parts {
            prop_assert!(grown.contains_box(s), "{:?} leaks out of {:?}", s, grown);
        }
        // ... and covering: disjoint + equal area ⇒ exact tiling.
        let covered: i64 = parts.iter().map(|s| s.count()).sum();
        prop_assert_eq!(covered, grown.count());
        // Spot-check membership (cheap belt-and-braces on top of the
        // area argument).
        for (i, j) in grown.cells().step_by(7) {
            let n = parts.iter().filter(|s| s.contains(i, j)).count();
            prop_assert_eq!(n, 1, "cell ({}, {}) in {} strips", i, j, n);
        }
    }

    /// Regridding from arbitrary flags always yields a properly nested,
    /// disjoint fine level that covers every in-domain flag.
    #[test]
    fn regrid_always_properly_nested(
        flags in proptest::collection::hash_set((0i64..32, 0i64..32), 0..60),
        buffer in 0i64..3,
        eff in 0.5f64..0.95,
    ) {
        let mut h = Hierarchy::new(IntBox::sized(32, 32), [0.0, 0.0], [1.0; 2], 2);
        let flags: Vec<(i64, i64)> = flags.into_iter().collect();
        let params = RegridParams { efficiency: eff, buffer, min_width: 2 };
        regrid_level(&mut h, 0, &flags, &params, &mut []);
        if h.n_levels() > 1 {
            prop_assert!(h.properly_nested(1));
            prop_assert!(h.level_disjoint(1));
            for &(i, j) in &flags {
                let covered = h.levels[1]
                    .patches
                    .iter()
                    .any(|p| p.interior.coarsen(2).contains(i, j));
                prop_assert!(covered, "flag ({}, {}) not refined", i, j);
            }
        } else {
            prop_assert!(flags.is_empty());
        }
    }

    /// Conservative restriction preserves the integral for arbitrary fine
    /// fields: coarse_sum * ratio² == fine_sum.
    #[test]
    fn restriction_conserves(
        vals in proptest::collection::vec(-100.0f64..100.0, 64),
        ratio in prop::sample::select(vec![2i64, 4]),
    ) {
        let fine_n = 8i64;
        prop_assume!(fine_n % ratio == 0);
        let mut fine = PatchData::new(IntBox::sized(fine_n, fine_n), 1, 0);
        for (k, (i, j)) in IntBox::sized(fine_n, fine_n).cells().enumerate() {
            fine.set(0, i, j, vals[k % vals.len()]);
        }
        let coarse_n = fine_n / ratio;
        let mut coarse = PatchData::new(IntBox::sized(coarse_n, coarse_n), 1, 0);
        restrict_average(&mut coarse, &fine, &IntBox::sized(coarse_n, coarse_n), ratio);
        let fine_sum = fine.interior_sum(0);
        let coarse_sum = coarse.interior_sum(0);
        prop_assert!(
            (coarse_sum * (ratio * ratio) as f64 - fine_sum).abs()
                < 1e-9 * (1.0 + fine_sum.abs()),
            "coarse {} vs fine {}", coarse_sum, fine_sum
        );
    }

    /// Bilinear prolongation then conservative restriction is the
    /// identity on the coarse field for linear data (exactness of both
    /// operators to second order).
    #[test]
    fn prolong_restrict_identity_on_linears(
        a in -5.0f64..5.0, b in -5.0f64..5.0, c in -5.0f64..5.0,
    ) {
        let mut coarse = PatchData::new(IntBox::sized(8, 8), 1, 2);
        let t = coarse.total_box();
        for (i, j) in t.cells() {
            coarse.set(0, i, j, a + b * (i as f64 + 0.5) + c * (j as f64 + 0.5));
        }
        let fine_box = IntBox::sized(16, 16);
        let mut fine = PatchData::new(fine_box, 1, 0);
        prolong_bilinear(&mut fine, &coarse, &fine_box, 2);
        let mut back = PatchData::new(IntBox::sized(8, 8), 1, 0);
        restrict_average(&mut back, &fine, &IntBox::sized(8, 8), 2);
        for (i, j) in IntBox::sized(8, 8).cells() {
            let expect = coarse.get(0, i, j);
            let got = back.get(0, i, j);
            prop_assert!((got - expect).abs() < 1e-10 * (1.0 + expect.abs()),
                "({}, {}): {} vs {}", i, j, got, expect);
        }
    }
}
