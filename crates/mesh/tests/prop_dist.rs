//! Property tests of the distributed-hierarchy layer: patch migration is
//! a bit-exact round trip for *arbitrary* patch subsets and field values,
//! and regrid planning lands on the identical hierarchy metadata no
//! matter how many ranks the storage is spread over.

use cca_comm::{scmd, ClusterModel, Communicator};
use cca_mesh::balance::Move;
use cca_mesh::boxes::IntBox;
use cca_mesh::dist::{self, DistributedHierarchy};
use cca_mesh::hierarchy::Hierarchy;
use cca_mesh::regrid::RegridParams;
use proptest::prelude::*;

const NVARS: usize = 3;
const NGHOST: i64 = 1;

/// A 16×16 level-0 hierarchy tiled into four 8×8 patches.
fn quad_hierarchy() -> Hierarchy {
    let mut h = Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [1.0; 2], 2);
    h.set_level_boxes(
        0,
        &[
            IntBox::new([0, 0], [7, 7]),
            IntBox::new([8, 0], [15, 7]),
            IntBox::new([0, 8], [7, 15]),
            IntBox::new([8, 8], [15, 15]),
        ],
    );
    h
}

/// Deterministic per-cell value: a pure function of the generator seed
/// and the cell coordinates, so ranks can recompute expectations locally.
fn cell_value(seed: u32, id: usize, var: usize, i: i64, j: i64) -> f64 {
    let h = seed as f64 + 31.0 * id as f64 + 7.0 * var as f64;
    (h + 0.001 * (i * 37 + j * 101) as f64) * 1.000_000_1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Migrating an arbitrary subset of patches to the other rank and
    /// straight back reproduces every stored byte, ghosts included.
    #[test]
    fn migration_roundtrip_is_bit_exact(
        mask in 0usize..16,
        seed in 0usize..10_000,
    ) {
        // The 4-bit mask selects which of the four patches migrate.
        let subset_arr: [bool; 4] = std::array::from_fn(|k| mask & (1 << k) != 0);
        let seed = seed as u32;
        let oks = scmd::run(2, ClusterModel::zero(), move |comm: &Communicator| {
            let rank = comm.rank();
            let mut dh = DistributedHierarchy::new(quad_hierarchy(), 2);
            dh.assign_owners(|_, _, p| p.interior.count() as f64, 1.5);
            let mut dobj = cca_mesh::data::DataObject::new(NVARS, NGHOST);
            dh.allocate_owned(&mut dobj, rank);
            // Fill owned patches (ghosts too) with seed-derived values and
            // snapshot their bits.
            let mut snapshot: Vec<(usize, Vec<u64>)> = Vec::new();
            for p in &dh.hier.levels[0].patches {
                if p.owner != rank {
                    continue;
                }
                let pd = dobj.patch_mut(0, p.id).expect("owned");
                let total = pd.total_box();
                for var in 0..NVARS {
                    for (i, j) in total.cells() {
                        pd.set(var, i, j, cell_value(seed, p.id, var, i, j));
                    }
                }
                let pd = dobj.patch(0, p.id).expect("owned");
                let mut bits = Vec::new();
                for var in 0..NVARS {
                    for (i, j) in total.cells() {
                        bits.push(pd.get(var, i, j).to_bits());
                    }
                }
                snapshot.push((p.id, bits));
            }
            // Outbound: every subset-selected patch hops to the other rank.
            let moves: Vec<Move> = dh.hier.levels[0]
                .patches
                .iter()
                .enumerate()
                .filter(|(k, _)| subset_arr[*k])
                .map(|(_, p)| Move { level: 0, id: p.id, from: p.owner, to: 1 - p.owner })
                .collect();
            let groups = dist::migration_groups(&dh, &moves, NVARS, NGHOST);
            dist::migrate_patches(comm, &mut dobj, &moves, &groups);
            // Return leg: identical manifest with the endpoints swapped.
            let back: Vec<Move> = moves
                .iter()
                .map(|m| Move { level: m.level, id: m.id, from: m.to, to: m.from })
                .collect();
            let groups = dist::migration_groups(&dh, &back, NVARS, NGHOST);
            dist::migrate_patches(comm, &mut dobj, &back, &groups);
            // Every originally-owned patch is back with identical bits.
            snapshot.iter().all(|(id, bits)| {
                let Some(pd) = dobj.patch(0, *id) else { return false };
                let mut k = 0;
                for var in 0..NVARS {
                    for (i, j) in pd.total_box().cells() {
                        if pd.get(var, i, j).to_bits() != bits[k] {
                            return false;
                        }
                        k += 1;
                    }
                }
                true
            })
        });
        prop_assert!(oks.into_iter().all(|ok| ok), "a rank saw corrupted bits");
    }

    /// Regrid planning is metadata-pure: for any flag cloud, the new fine
    /// level (ids and boxes) is identical whether the hierarchy is owned
    /// by 1 rank or spread over 4 — ownership never leaks into geometry.
    #[test]
    fn plan_regrid_geometry_ignores_rank_count(
        flags in proptest::collection::hash_set((0i64..16, 0i64..16), 0..40),
    ) {
        let flags: Vec<(i64, i64)> = flags.into_iter().collect();
        let params = RegridParams::default();
        let work = |_: &Hierarchy, _: usize, p: &cca_mesh::hierarchy::Patch| {
            p.interior.count() as f64
        };
        let mut dh1 = DistributedHierarchy::new(quad_hierarchy(), 1);
        dh1.assign_owners(work, 1.5);
        let p1 = dist::plan_regrid(&mut dh1, 0, &flags, &params, work, 1.5);
        let mut dh4 = DistributedHierarchy::new(quad_hierarchy(), 4);
        dh4.assign_owners(work, 1.5);
        let p4 = dist::plan_regrid(&mut dh4, 0, &flags, &params, work, 1.5);
        prop_assert_eq!(&p1.new_ids, &p4.new_ids, "patch ids depend on P");
        prop_assert_eq!(&p1.fine_boxes, &p4.fine_boxes, "fine boxes depend on P");
        // And the rebuilt hierarchies agree box-for-box.
        let boxes = |dh: &DistributedHierarchy| -> Vec<IntBox> {
            dh.hier.levels.get(1).map_or(Vec::new(), |l| {
                l.patches.iter().map(|p| p.interior).collect()
            })
        };
        prop_assert_eq!(boxes(&dh1), boxes(&dh4));
    }
}
