//! Property pin of job-key canonicalization (PR 3): formatting noise
//! (whitespace runs, indentation, `#` comments, blank lines) and override
//! order never change a job's content hash, while any physics-relevant
//! difference — a script token, an override value, the checkpoint flag,
//! the workload kind — always does.

use cca_serve::job::{canonical_script, JobKey, Override};
use proptest::prelude::*;

const LETTERS: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";

/// A script token: no whitespace, no `#`, so canonicalization can only
/// ever treat it as one atom.
fn ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..TAIL.len(), 1..7).prop_map(|ix| {
        let mut s = String::new();
        for (k, i) in ix.iter().enumerate() {
            let set = if k == 0 { LETTERS } else { TAIL };
            s.push(set[i % set.len()] as char);
        }
        s
    })
}

/// Tokenized script: a few lines of a few tokens each.
fn script_lines() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(proptest::collection::vec(ident(), 1..5), 1..8)
}

/// Per-line formatting noise: indentation depth, token separator choice,
/// and three bits — trailing comment, blank line before, comment line
/// before.
#[derive(Clone, Debug)]
struct Noise {
    lead: usize,
    sep: usize,
    bits: usize,
}

fn noise() -> impl Strategy<Value = Noise> {
    (0usize..4, 0usize..3, 0usize..8).prop_map(|(lead, sep, bits)| Noise { lead, sep, bits })
}

/// Reference rendering: single spaces, one line per entry.
fn render_clean(lines: &[Vec<String>]) -> String {
    let mut out = String::new();
    for toks in lines {
        out.push_str(&toks.join(" "));
        out.push('\n');
    }
    out
}

/// Noisy rendering of the *same* token stream: indentation, tab/space
/// runs, trailing comments, interleaved blank and comment lines.
fn render_noisy(lines: &[Vec<String>], noises: &[Noise]) -> String {
    const SEPS: [&str; 3] = [" ", "\t", "   "];
    let mut out = String::new();
    for (i, toks) in lines.iter().enumerate() {
        let n = &noises[i % noises.len()];
        if n.bits & 1 != 0 {
            out.push('\n');
        }
        if n.bits & 2 != 0 {
            out.push_str("# chatter that must not matter\n");
        }
        out.push_str(&" ".repeat(n.lead));
        out.push_str(&toks.join(SEPS[n.sep % SEPS.len()]));
        if n.bits & 4 != 0 {
            out.push_str("  # annotation");
        }
        out.push('\n');
    }
    out
}

/// A handful of typed overrides.
fn overrides() -> impl Strategy<Value = Vec<Override>> {
    proptest::collection::vec((ident(), ident(), -1.0e6f64..1.0e6), 1..6).prop_map(|v| {
        v.into_iter()
            .map(|(i, k, val)| Override::new(&i, &k, val))
            .collect()
    })
}

/// Fisher–Yates permutation driven by drawn swap seeds (the vendored
/// proptest stub has no `prop_shuffle`).
fn shuffled(ovs: &[Override], seeds: &[usize]) -> Vec<Override> {
    let mut v = ovs.to_vec();
    for i in (1..v.len()).rev() {
        let j = seeds[i % seeds.len()] % (i + 1);
        v.swap(i, j);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10_000))]

    #[test]
    fn formatting_noise_never_changes_the_key(
        lines in script_lines(),
        noises in proptest::collection::vec(noise(), 16),
    ) {
        let clean = render_clean(&lines);
        let noisy = render_noisy(&lines, &noises);
        prop_assert_eq!(canonical_script(&clean), canonical_script(&noisy));
        prop_assert_eq!(
            JobKey::compute("ign0d", &clean, &[], false),
            JobKey::compute("ign0d", &noisy, &[], false)
        );
    }

    #[test]
    fn override_order_never_changes_the_key(
        ovs in overrides(),
        seeds in proptest::collection::vec(0usize..1024, 8),
        lines in script_lines(),
    ) {
        let script = render_clean(&lines);
        let permuted = shuffled(&ovs, &seeds);
        prop_assert_eq!(
            JobKey::compute("rd2d", &script, &ovs, true),
            JobKey::compute("rd2d", &script, &permuted, true)
        );
    }

    #[test]
    fn physics_differences_always_change_the_key(
        ovs in overrides(),
        lines in script_lines(),
        idx in 0usize..64,
        bump in 1.0e-3f64..1.0e3,
    ) {
        let script = render_clean(&lines);
        let base = JobKey::compute("ign0d", &script, &ovs, false);

        // Perturb one override value (the bump is far above one ulp at
        // these magnitudes, so the bit pattern is guaranteed to change).
        let i = idx % ovs.len();
        let mut changed = ovs.clone();
        changed[i].value += bump;
        prop_assume!(changed[i].value.to_bits() != ovs[i].value.to_bits());
        prop_assert!(base != JobKey::compute("ign0d", &script, &changed, false),
            "value change at override {} did not change the key", i);

        // Add a script token.
        let longer = format!("{script}extra line\n");
        prop_assert!(base != JobKey::compute("ign0d", &longer, &ovs, false),
            "extra script line did not change the key");

        // Flip the checkpoint request or the workload kind.
        prop_assert!(base != JobKey::compute("ign0d", &script, &ovs, true),
            "checkpoint flag did not change the key");
        prop_assert!(base != JobKey::compute("rd2d", &script, &ovs, false),
            "workload kind did not change the key");
    }
}
