//! Property pins of the fleet's consistent-hash ring (PR 10):
//!
//! * **Bounded remap** — growing the fleet from N to N+1 shards remaps
//!   at most ~K/N of 10⁴ random job keys (within a 2× virtual-node
//!   variance allowance), and every remapped key lands on the *new*
//!   shard — adding capacity only ever pulls keys toward itself, it
//!   never shuffles keys between existing shards. Because
//!   `HashRing::new(n, v)` is exactly the (n+1)-shard ring minus the
//!   highest shard's points, the same bound covers shard removal.
//! * **Cross-run stability** — the ring is seeded from nothing but FNV
//!   constants and stable shard labels, so routing is identical across
//!   process runs and hosts; a handful of literal routes are pinned to
//!   catch any accidental introduction of process-seeded hashing.

use cca_serve::job::JobKey;
use cca_serve::HashRing;
use proptest::prelude::*;

const VIRTUAL_NODES: usize = 64;

/// 10⁴ well-spread synthetic job keys (FNV-mixed counter — the same
/// construction `JobKey` itself uses, so the distribution is realistic).
fn sample_keys() -> Vec<JobKey> {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut keys = Vec::with_capacity(10_000);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..10_000u64 {
        for b in i.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        keys.push(JobKey {
            hi: h,
            lo: h.rotate_left(17) ^ i,
        });
    }
    keys
}

#[test]
fn growing_the_fleet_remaps_at_most_a_shard_share_of_keys() {
    let keys = sample_keys();
    for n in [2usize, 3, 4, 8] {
        let before = HashRing::new(n, VIRTUAL_NODES);
        let after = HashRing::new(n + 1, VIRTUAL_NODES);
        let mut moved = 0usize;
        for key in &keys {
            let (a, b) = (before.route(*key), after.route(*key));
            if a != b {
                moved += 1;
                // Adding shard `n` may only pull keys onto itself.
                assert_eq!(
                    b,
                    n,
                    "growing {n}→{} moved a key between pre-existing shards ({a}→{b})",
                    n + 1
                );
            }
        }
        // Ideal share is K/(N+1); allow 2× for virtual-node variance.
        let bound = 2 * keys.len() / (n + 1);
        assert!(
            moved <= bound,
            "growing {n}→{} remapped {moved} of {} keys (bound {bound})",
            n + 1,
            keys.len()
        );
        // And the new shard must actually receive a nontrivial share —
        // an empty arc would mean the ring is not balancing at all.
        assert!(
            moved >= keys.len() / (4 * (n + 1)),
            "growing {n}→{} remapped only {moved} keys; new shard is starved",
            n + 1
        );
    }
}

#[test]
fn routing_is_pinned_across_process_runs() {
    // Literal (key, shard) pins: any process-seeded hashing sneaking
    // into the ring would break these on the next run.
    let ring = HashRing::new(4, VIRTUAL_NODES);
    let keys = sample_keys();
    let expect: Vec<usize> = keys.iter().take(16).map(|k| ring.route(*k)).collect();
    assert_eq!(expect, vec![0, 2, 2, 2, 0, 2, 0, 0, 2, 3, 2, 0, 3, 0, 2, 3]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2_000))]

    #[test]
    fn rebuilt_rings_route_identically_and_in_range(
        hi in i64::MIN..i64::MAX,
        lo in i64::MIN..i64::MAX,
        shards in 1usize..12,
    ) {
        let key = JobKey { hi: hi as u64, lo: lo as u64 };
        let ring = HashRing::new(shards, VIRTUAL_NODES);
        let home = ring.route(key);
        prop_assert!(home < shards);
        // A freshly built identical ring must agree — the ring state is
        // a pure function of (shards, virtual_nodes).
        prop_assert_eq!(HashRing::new(shards, VIRTUAL_NODES).route(key), home);
    }
}
