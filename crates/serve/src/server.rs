//! The job server: admission → queue → sessions → cache, scheduled on a
//! deterministic virtual clock.
//!
//! Job lifecycle (the DESIGN.md state machine):
//!
//! ```text
//! submit ──admission error──▶ Rejected(admission)
//!   │ ──queue full──────────▶ Rejected(full, retry-after hint)
//!   │ ──cache hit───────────▶ Cached
//!   │ ──duplicate queued────▶ Follower ──primary done──▶ Cached
//!   ▼                                  └─primary lost──▶ promoted to primary
//! Queued ──ready──▶ Running ──ok──────▶ Completed (+ cache insert)
//!   │                 │ ──budget/token─▶ Cancelled
//!   │                 │ ──solver error─▶ Failed
//!   │                 └──panic─────────▶ session poisoned + rebuilt,
//!   │                                    retry w/ backoff or Failed
//!   └──client cancel──▶ Cancelled
//! ```
//!
//! Time is counted in **virtual ticks**: dispatching an attempt costs
//! `1 + macro steps executed`. Queue waits, retry backoff, and the
//! retry-after hint are all tick arithmetic — the whole schedule is a
//! pure function of the submission sequence, which is what lets the
//! loadgen benchmark pin its latency distributions byte-for-byte.

use crate::cache::{Artifacts, ResultCache};
use crate::job::{JobId, JobKey, SimJob};
use crate::queue::{Entry, JobQueue};
use crate::session::{CancelReason, CancelToken, PaletteFn, RunOutcome, Session};
use crate::stats::{LatencyStat, ServerStats, SessionStat};
use cca_analyze::Analyzer;
use cca_core::{ExecutorStats, Profiler};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Server tuning knobs.
pub struct ServerConfig {
    /// Framework factory jobs assemble against (palette).
    pub palette: PaletteFn,
    /// Session pool size.
    pub sessions: usize,
    /// Queue capacity (hard bound; beyond it submissions are rejected).
    pub queue_capacity: usize,
    /// Result-cache capacity (completed results retained, LRU).
    pub cache_capacity: usize,
    /// Maximum retries after transient (panic) failures.
    pub max_retries: u32,
    /// Backoff base, ticks: retry `k` becomes ready after
    /// `backoff_ticks << (k-1)` ticks.
    pub backoff_ticks: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            palette: Rc::new(crate::workload::serve_palette),
            sessions: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            max_retries: 2,
            backoff_ticks: 4,
        }
    }
}

/// Why a submission was refused (no session time was spent on it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity: back off and resubmit after the hinted ticks.
    QueueFull {
        /// Queue depth at rejection time.
        depth: usize,
        /// Deterministic hint: ticks until a slot is plausibly free.
        retry_after: u64,
    },
    /// The static admission check found errors; rendered report attached.
    Admission {
        /// `cca-analyze` report rendered against the submitted script.
        report: String,
    },
    /// The fleet's cost model proved the deadline unreachable: even the
    /// globally earliest-free session would finish at `needed`, past
    /// `deadline`. Raised only by [`crate::fleet::Fleet`] for jobs with
    /// [`crate::cost::LatePolicy::Reject`].
    Deadline {
        /// Earliest provable completion tick (absolute).
        needed: u64,
        /// The requested deadline (absolute virtual tick).
        deadline: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth, retry_after } => {
                write!(
                    f,
                    "queue full (depth {depth}); retry after {retry_after} ticks"
                )
            }
            SubmitError::Admission { report } => {
                write!(f, "rejected by admission check:\n{report}")
            }
            SubmitError::Deadline { needed, deadline } => {
                write!(
                    f,
                    "deadline provably unreachable: earliest completion at tick {needed}, \
                     deadline at tick {deadline}"
                )
            }
        }
    }
}

/// Terminal state of an accepted submission.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Ran to completion on a session.
    Completed {
        /// The results.
        artifacts: Rc<Artifacts>,
        /// Ticks spent waiting in the queue.
        wait_ticks: u64,
        /// Ticks the (final) attempt cost.
        run_ticks: u64,
        /// Attempts consumed (1 = first try).
        attempts: u32,
        /// Session slot the final attempt ran on.
        session: usize,
    },
    /// Served from the result cache (submit-time hit or coalesced onto a
    /// completing duplicate).
    Cached {
        /// The results — bit-identical to a cold run.
        artifacts: Rc<Artifacts>,
        /// Ticks from submission to resolution.
        wait_ticks: u64,
    },
    /// Stopped cooperatively.
    Cancelled {
        /// Deadline or client token.
        reason: CancelReason,
        /// Ticks from submission to the stop.
        wait_ticks: u64,
        /// Macro steps executed before the stop.
        steps: u64,
    },
    /// Terminal failure (deterministic error, or retries exhausted).
    Failed {
        /// What went wrong.
        reason: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

impl JobOutcome {
    /// Short tag for outcome lines (`completed`, `cached`, ...).
    pub fn tag(&self) -> &'static str {
        match self {
            JobOutcome::Completed { .. } => "completed",
            JobOutcome::Cached { .. } => "cached",
            JobOutcome::Cancelled {
                reason: CancelReason::Deadline { .. },
                ..
            } => "cancelled-deadline",
            JobOutcome::Cancelled { .. } => "cancelled-user",
            JobOutcome::Failed { .. } => "failed",
        }
    }
}

/// A submission coalesced onto an identical queued job. It holds its own
/// copy of the job so it can be *promoted* to primary — with its own
/// fresh attempt budget — if the primary is lost to cancellation or
/// failure (duplicates never share a failure).
struct Follower {
    id: JobId,
    job: SimJob,
    submit_tick: u64,
    token: CancelToken,
}

/// The multi-session simulation job server.
pub struct Server {
    cfg: ServerConfig,
    analyzer: Analyzer,
    queue: JobQueue,
    cache: ResultCache,
    sessions: Vec<Session>,
    clock: u64,
    next_id: JobId,
    next_seq: u64,
    outcomes: BTreeMap<JobId, JobOutcome>,
    /// Queued-primary key → coalesced duplicate submissions.
    followers: BTreeMap<JobKey, Vec<Follower>>,
    /// Cancel tokens of unresolved submissions, by id.
    tokens: BTreeMap<JobId, CancelToken>,
    profiler: Profiler,
    exec_agg: ExecutorStats,
    submitted: u64,
    completed: u64,
    cached: u64,
    coalesced: u64,
    rejected_full: u64,
    rejected_admission: u64,
    admission_warnings: u64,
    retries: u64,
    poisonings: u64,
    failed: u64,
    cancelled_deadline: u64,
    cancelled_user: u64,
}

impl Server {
    /// Build a server; harvests the palette's class signatures once for
    /// the admission checker.
    pub fn new(cfg: ServerConfig) -> Self {
        let probe = (cfg.palette)();
        let analyzer = Analyzer::new(&probe);
        let sessions = (0..cfg.sessions.max(1))
            .map(|id| Session::new(id, &cfg.palette))
            .collect();
        let queue = JobQueue::new(cfg.queue_capacity);
        let cache = ResultCache::new(cfg.cache_capacity);
        Server {
            analyzer,
            queue,
            cache,
            sessions,
            cfg,
            clock: 0,
            next_id: 1,
            next_seq: 1,
            outcomes: BTreeMap::new(),
            followers: BTreeMap::new(),
            tokens: BTreeMap::new(),
            profiler: Profiler::new(),
            exec_agg: ExecutorStats::default(),
            submitted: 0,
            completed: 0,
            cached: 0,
            coalesced: 0,
            rejected_full: 0,
            rejected_admission: 0,
            admission_warnings: 0,
            retries: 0,
            poisonings: 0,
            failed: 0,
            cancelled_deadline: 0,
            cancelled_user: 0,
        }
    }

    /// Current virtual time, ticks.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Submit a job. On acceptance the returned id will eventually have
    /// an outcome; on rejection no session time is ever spent on it.
    pub fn submit(&mut self, job: SimJob) -> Result<JobId, SubmitError> {
        // 1. Admission: vet the script (plus overrides) statically so a
        //    doomed assembly never occupies a session.
        let admission_script = job.admission_script();
        let report = self.analyzer.analyze(&admission_script);
        if report.has_errors() {
            self.rejected_admission += 1;
            return Err(SubmitError::Admission {
                report: report.render(&admission_script),
            });
        }
        self.admission_warnings += report.warning_count() as u64;

        // 1b. Distributed jobs: verify the communication schedule too. A
        //     deadlocking or mismatched plan would hang (or corrupt) a
        //     whole rank team, so it is refused here with the C-code
        //     report instead of ever reaching a session.
        if let Some(spec) = &job.distributed {
            let plan_report = spec.effective_plan().verify();
            if plan_report.has_errors() {
                self.rejected_admission += 1;
                return Err(SubmitError::Admission {
                    report: plan_report.render("comm-plan"),
                });
            }
            self.admission_warnings += plan_report.warning_count() as u64;
        }

        let key = job.key();
        let id = self.next_id;
        let token = CancelToken::new();

        // 2. Result cache: identical completed work is returned at once.
        if let Some(artifacts) = self.cache.get(key) {
            self.next_id += 1;
            self.submitted += 1;
            self.cached += 1;
            self.outcomes.insert(
                id,
                JobOutcome::Cached {
                    artifacts,
                    wait_ticks: 0,
                },
            );
            return Ok(id);
        }

        // 3. Coalescing: an identical job is already queued — ride it.
        //    A follower occupies no queue slot and is answered from the
        //    primary's result the moment it lands in the cache.
        if self.queue.contains_key(key) {
            self.next_id += 1;
            self.submitted += 1;
            self.coalesced += 1;
            self.followers.entry(key).or_default().push(Follower {
                id,
                job,
                submit_tick: self.clock,
                token: token.clone(),
            });
            self.tokens.insert(id, token);
            return Ok(id);
        }

        // 4. Queue, with backpressure.
        let entry = Entry {
            id,
            seq: self.next_seq,
            key,
            job,
            submit_tick: self.clock,
            ready_at: self.clock,
            attempts: 0,
            token: token.clone(),
        };
        match self.queue.push(entry) {
            Ok(()) => {
                self.next_id += 1;
                self.next_seq += 1;
                self.submitted += 1;
                self.tokens.insert(id, token);
                Ok(id)
            }
            Err(full) => {
                self.rejected_full += 1;
                // Hint: queued work spread over the pool, plus one tick.
                let retry_after = (full.depth as u64 / self.sessions.len().max(1) as u64) + 1;
                Err(SubmitError::QueueFull {
                    depth: full.depth,
                    retry_after,
                })
            }
        }
    }

    /// Cancel an accepted submission. Queued primaries resolve
    /// immediately (a follower is promoted in their place); followers
    /// detach without touching the primary. Returns `false` if the id is
    /// unknown or already resolved.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if self.outcomes.contains_key(&id) {
            return false;
        }
        let Some(token) = self.tokens.get(&id) else {
            return false;
        };
        token.cancel();
        if let Some(entry) = self.queue.remove_by_id(id) {
            let wait = self.clock.saturating_sub(entry.submit_tick);
            self.resolve_cancelled(id, CancelReason::User, wait, 0);
            self.promote_followers(entry.key);
            return true;
        }
        let keys: Vec<JobKey> = self.followers.keys().copied().collect();
        for key in keys {
            let fs = self.followers.get_mut(&key).expect("key just listed");
            if let Some(pos) = fs.iter().position(|f| f.id == id) {
                let f = fs.remove(pos);
                if fs.is_empty() {
                    self.followers.remove(&key);
                }
                let wait = self.clock.saturating_sub(f.submit_tick);
                self.resolve_cancelled(id, CancelReason::User, wait, 0);
                return true;
            }
        }
        true
    }

    /// Drain the queue deterministically: repeatedly dispatch the ready
    /// entry with the highest priority (FIFO within a class) onto the
    /// earliest-free session, fast-forwarding the virtual clock over
    /// retry-backoff gaps.
    pub fn run_until_idle(&mut self) {
        loop {
            match self.queue.pop_ready(self.clock) {
                Some(entry) => self.dispatch(entry),
                None => match self.queue.next_ready_at() {
                    Some(t) if t > self.clock => self.clock = t,
                    _ => break,
                },
            }
        }
    }

    /// Resolved outcome of a submission, if terminal.
    pub fn outcome(&self, id: JobId) -> Option<&JobOutcome> {
        self.outcomes.get(&id)
    }

    /// All resolved outcomes (id-sorted).
    pub fn outcomes(&self) -> &BTreeMap<JobId, JobOutcome> {
        &self.outcomes
    }

    /// Coherent statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            clock: self.clock,
            submitted: self.submitted,
            completed: self.completed,
            cached: self.cached,
            coalesced: self.coalesced,
            rejected_full: self.rejected_full,
            rejected_admission: self.rejected_admission,
            admission_warnings: self.admission_warnings,
            retries: self.retries,
            poisonings: self.poisonings,
            failed: self.failed,
            cancelled_deadline: self.cancelled_deadline,
            cancelled_user: self.cancelled_user,
            queue_depth: self.queue.depth() as u64,
            cache: self.cache.stats(),
            queue_wait: LatencyStat::from_profiler(&self.profiler, "serve.queue_wait"),
            run_ticks: LatencyStat::from_profiler(&self.profiler, "serve.run"),
            executor: self.exec_agg,
            sessions: self
                .sessions
                .iter()
                .map(|s| SessionStat {
                    id: s.id,
                    epoch: s.epoch,
                    runs: s.runs,
                    free_at: s.free_at,
                })
                .collect(),
        }
    }

    // --- internals -----------------------------------------------------

    fn dispatch(&mut self, mut entry: Entry) {
        // Client cancelled while queued: resolve without spending a session.
        if entry.token.is_cancelled() {
            let wait = self.clock.saturating_sub(entry.submit_tick);
            self.resolve_cancelled(entry.id, CancelReason::User, wait, 0);
            self.promote_followers(entry.key);
            return;
        }
        // Defense in depth: a result may have landed since queueing.
        if let Some(artifacts) = self.cache.get(entry.key) {
            self.cached += 1;
            self.tokens.remove(&entry.id);
            let wait = self.clock.saturating_sub(entry.submit_tick);
            self.outcomes.insert(
                entry.id,
                JobOutcome::Cached {
                    artifacts,
                    wait_ticks: wait,
                },
            );
            self.resolve_followers_cached(entry.key, self.clock);
            return;
        }

        // Earliest-free session, lowest id as tiebreak (deterministic).
        let si = self
            .sessions
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.free_at, *i))
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        let start = self
            .clock
            .max(self.sessions[si].free_at)
            .max(entry.ready_at);
        let inject = entry.attempts < entry.job.fault.fail_attempts;
        let palette = self.cfg.palette.clone();
        let (outcome, steps, exec) =
            self.sessions[si].execute(&entry.job, entry.token.clone(), inject, &palette);
        self.exec_agg.absorb(&exec);
        entry.attempts += 1;
        let cost = 1 + steps;
        let finish = start + cost;
        self.sessions[si].free_at = finish;
        self.clock = start;
        let wait = start - entry.submit_tick;

        match outcome {
            RunOutcome::Done(artifacts) => {
                let rc = Rc::new(artifacts);
                self.cache.insert(entry.key, rc.clone());
                self.profiler.record("serve.queue_wait", wait as f64);
                self.profiler.record("serve.run", cost as f64);
                self.completed += 1;
                self.tokens.remove(&entry.id);
                self.outcomes.insert(
                    entry.id,
                    JobOutcome::Completed {
                        artifacts: rc,
                        wait_ticks: wait,
                        run_ticks: cost,
                        attempts: entry.attempts,
                        session: si,
                    },
                );
                self.resolve_followers_cached(entry.key, finish);
            }
            RunOutcome::Cancelled(reason) => {
                self.resolve_cancelled(entry.id, reason, wait, steps);
                self.promote_followers(entry.key);
            }
            RunOutcome::Failed(reason) => {
                self.failed += 1;
                self.tokens.remove(&entry.id);
                self.outcomes.insert(
                    entry.id,
                    JobOutcome::Failed {
                        reason,
                        attempts: entry.attempts,
                    },
                );
                self.promote_followers(entry.key);
            }
            RunOutcome::Preempted { .. } => {
                unreachable!("single-server dispatch never arms a preemption slice")
            }
            RunOutcome::Panicked(message) => {
                self.poisonings += 1;
                if entry.attempts <= self.cfg.max_retries {
                    self.retries += 1;
                    // Exponential backoff in virtual ticks.
                    entry.ready_at = finish + (self.cfg.backoff_ticks << (entry.attempts - 1));
                    self.queue
                        .push(entry)
                        .expect("re-queue into the slot this entry just freed");
                } else {
                    self.failed += 1;
                    self.tokens.remove(&entry.id);
                    self.outcomes.insert(
                        entry.id,
                        JobOutcome::Failed {
                            reason: format!(
                                "panicked after {} attempts: {message}",
                                entry.attempts
                            ),
                            attempts: entry.attempts,
                        },
                    );
                    self.promote_followers(entry.key);
                }
            }
        }
    }

    fn resolve_cancelled(&mut self, id: JobId, reason: CancelReason, wait: u64, steps: u64) {
        match reason {
            CancelReason::Deadline { .. } => self.cancelled_deadline += 1,
            CancelReason::User => self.cancelled_user += 1,
        }
        self.tokens.remove(&id);
        self.outcomes.insert(
            id,
            JobOutcome::Cancelled {
                reason,
                wait_ticks: wait,
                steps,
            },
        );
    }

    /// The primary for `key` completed: every follower is answered from
    /// the cache, bit-identical to the primary's result.
    fn resolve_followers_cached(&mut self, key: JobKey, resolve_tick: u64) {
        let Some(fs) = self.followers.remove(&key) else {
            return;
        };
        for f in fs {
            let artifacts = self
                .cache
                .get(key)
                .expect("primary result was just inserted");
            self.cached += 1;
            self.tokens.remove(&f.id);
            self.outcomes.insert(
                f.id,
                JobOutcome::Cached {
                    artifacts,
                    wait_ticks: resolve_tick.saturating_sub(f.submit_tick),
                },
            );
        }
    }

    /// The primary for `key` is gone without a cacheable result: promote
    /// the oldest live follower to primary — with its own fresh attempt
    /// budget — so duplicates never inherit a failure they didn't cause.
    fn promote_followers(&mut self, key: JobKey) {
        let Some(mut fs) = self.followers.remove(&key) else {
            return;
        };
        while !fs.is_empty() {
            let f = fs.remove(0);
            if f.token.is_cancelled() {
                let wait = self.clock.saturating_sub(f.submit_tick);
                self.resolve_cancelled(f.id, CancelReason::User, wait, 0);
                continue;
            }
            let promoted = Entry {
                id: f.id,
                seq: self.next_seq,
                key,
                job: f.job,
                submit_tick: f.submit_tick,
                ready_at: self.clock,
                attempts: 0,
                token: f.token,
            };
            self.next_seq += 1;
            // The primary's slot was just freed, so this cannot overflow.
            self.queue
                .push(promoted)
                .expect("promotion reuses the freed slot");
            if !fs.is_empty() {
                self.followers.insert(key, fs);
            }
            return;
        }
    }
}
