//! Serveable workloads: the two paper applications re-expressed as
//! *driverless* assemblies plus a server-side stepper.
//!
//! The batch codes in `cca-apps` put the time loop inside a driver
//! component invoked by `go` — an all-or-nothing call the server could
//! neither budget nor cancel. Here the same assemblies are built without
//! a driver; the server's stepper drives the ports directly and checks
//! the [`StepCtl`] between macro steps, which is what makes deadlines and
//! cooperative cancellation deterministic (step-counted, never timed).
//!
//! Run configuration travels *inside the script* through a [`JobConfig`]
//! component (a pure parameter holder, the paper's "Database component"):
//! the job really is just rc-script + overrides, and the content hash of
//! the script covers every physics-relevant knob.

use crate::cache::Artifacts;
use crate::job::{FaultSpec, SimJob, WorkloadKind};
use crate::session::{StepCtl, StepError};
use cca_components::ports::{
    CheckpointPort, ChemistryAdvancePort, ChemistrySourcePort, DataPort, InitialConditionPort,
    MeshPort, OdeIntegratorPort, OdeRhsPort, RegridPort, StatisticsPort, TimeIntegratorPort,
};
use cca_core::{Component, Framework, ParameterPort, ParameterStore, Services};
use std::rc::Rc;

/// A pure parameter-holder component: the typed configuration surface of
/// a served job. `parameter cfg <key> <value>` script lines land here and
/// the stepper reads them back — so every run knob is part of the script,
/// hence part of the job's content hash.
#[derive(Default)]
pub struct JobConfig;

impl Component for JobConfig {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn ParameterPort>>("config", Rc::new(ParameterStore::new()));
    }
}

/// The palette served jobs assemble against: the standard application
/// palette plus [`JobConfig`].
pub fn serve_palette() -> Framework {
    let mut fw = cca_apps::palette::standard_palette();
    fw.register_class("JobConfig", || Box::<JobConfig>::default());
    fw
}

/// 0D homogeneous ignition job parameters (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IgnitionSpec {
    /// Use the reduced 8-species/5-reaction mechanism?
    pub reduced: bool,
    /// Initial temperature, K.
    pub t0: f64,
    /// Initial pressure, Pa.
    pub p0: f64,
    /// Integration horizon, s.
    pub t_end: f64,
    /// Macro steps the horizon is split into (the deadline granularity).
    pub chunks: u64,
}

impl Default for IgnitionSpec {
    fn default() -> Self {
        IgnitionSpec {
            reduced: false,
            t0: 1000.0,
            p0: 101_325.0,
            t_end: 1.0e-5,
            chunks: 4,
        }
    }
}

impl IgnitionSpec {
    /// The driverless assembly script for this spec.
    pub fn script(&self) -> String {
        let chem_class = if self.reduced {
            "ThermoChemistryReduced"
        } else {
            "ThermoChemistry"
        };
        format!(
            "# serve: 0D ignition (paper Fig. 1, driverless)\n\
             instantiate {chem_class} chem\n\
             instantiate CvodeComponent cvode\n\
             instantiate dPdt dpdt\n\
             instantiate problemModeler modeler\n\
             instantiate JobConfig cfg\n\
             connect dpdt chemistry chem chemistry\n\
             connect modeler chemistry chem chemistry\n\
             connect modeler dpdt dpdt dpdt\n\
             parameter cfg T0 {:e}\n\
             parameter cfg P0 {:e}\n\
             parameter cfg t_end {:e}\n\
             parameter cfg chunks {}\n",
            self.t0, self.p0, self.t_end, self.chunks
        )
    }

    /// A submit-ready job with default scheduling attributes.
    pub fn job(&self) -> SimJob {
        SimJob {
            kind: WorkloadKind::Ignition0d,
            script: self.script(),
            overrides: Vec::new(),
            priority: 0,
            step_budget: None,
            want_checkpoint: false,
            fault: FaultSpec::default(),
            distributed: None,
            restore: None,
            tenant: 0,
            deadline: None,
            ckpt_interval: 0,
            on_late: crate::cost::LatePolicy::Reject,
        }
    }
}

/// 2D reaction–diffusion job parameters (paper §4.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RdSpec {
    /// Coarse cells per side.
    pub nx: i64,
    /// Domain side, m.
    pub length: f64,
    /// Refinement ratio.
    pub ratio: i64,
    /// Maximum SAMR levels (1 = adaptivity off).
    pub max_levels: usize,
    /// Macro time step, s.
    pub dt: f64,
    /// Macro steps.
    pub n_steps: usize,
    /// Steps between regrids.
    pub regrid_interval: usize,
    /// Refinement threshold on T (K per cell).
    pub threshold: f64,
    /// Include the implicit chemistry half-steps?
    pub with_chemistry: bool,
    /// Hot-spot peak temperature, K.
    pub t_hot: f64,
}

impl Default for RdSpec {
    fn default() -> Self {
        RdSpec {
            nx: 12,
            length: 0.01,
            ratio: 2,
            max_levels: 1,
            dt: 1.0e-6,
            n_steps: 2,
            regrid_interval: 2,
            threshold: 40.0,
            with_chemistry: false,
            t_hot: 1400.0,
        }
    }
}

impl RdSpec {
    /// The driverless assembly script for this spec (Fig. 2's wiring
    /// minus the driver component).
    pub fn script(&self) -> String {
        format!(
            "# serve: 2D reaction-diffusion (paper Fig. 2, driverless)\n\
             instantiate GrACEComponent grace\n\
             instantiate ThermoChemistry chem\n\
             instantiate CvodeComponent cvode\n\
             instantiate DRFMComponent drfm\n\
             instantiate DiffusionPhysics diffusion\n\
             instantiate MaxDiffCoeffEvaluator maxdiff\n\
             instantiate AdiabaticWalls walls\n\
             instantiate ExplicitIntegrator rkc\n\
             instantiate ImplicitIntegrator implicit\n\
             instantiate InitialCondition ic\n\
             instantiate ErrorEstAndRegrid regrid\n\
             instantiate StatisticsComponent statistics\n\
             instantiate JobConfig cfg\n\
             connect diffusion chemistry chem chemistry\n\
             connect diffusion transport drfm transport\n\
             connect maxdiff transport drfm transport\n\
             connect maxdiff mesh grace mesh\n\
             connect maxdiff data grace data\n\
             connect rkc mesh grace mesh\n\
             connect rkc data grace data\n\
             connect rkc patch-rhs diffusion patch-rhs\n\
             connect rkc eigen-estimate maxdiff eigen-estimate\n\
             connect rkc bc walls bc\n\
             connect implicit chemistry chem chemistry\n\
             connect implicit integrator cvode integrator\n\
             connect implicit mesh grace mesh\n\
             connect implicit data grace data\n\
             connect ic mesh grace mesh\n\
             connect ic data grace data\n\
             connect ic chemistry chem chemistry\n\
             connect regrid mesh grace mesh\n\
             connect regrid data grace data\n\
             connect regrid bc walls bc\n\
             connect statistics mesh grace mesh\n\
             connect statistics data grace data\n\
             parameter cfg nx {}\n\
             parameter cfg length {:e}\n\
             parameter cfg ratio {}\n\
             parameter cfg max_levels {}\n\
             parameter cfg dt {:e}\n\
             parameter cfg n_steps {}\n\
             parameter cfg regrid_interval {}\n\
             parameter cfg threshold {:e}\n\
             parameter cfg with_chemistry {}\n\
             parameter ic T_hot {:e}\n",
            self.nx,
            self.length,
            self.ratio,
            self.max_levels,
            self.dt,
            self.n_steps,
            self.regrid_interval,
            self.threshold,
            if self.with_chemistry { 1 } else { 0 },
            self.t_hot,
        )
    }

    /// A submit-ready job with default scheduling attributes.
    pub fn job(&self) -> SimJob {
        SimJob {
            kind: WorkloadKind::ReactionDiffusion,
            script: self.script(),
            overrides: Vec::new(),
            priority: 0,
            step_budget: None,
            want_checkpoint: false,
            fault: FaultSpec::default(),
            distributed: None,
            restore: None,
            tenant: 0,
            deadline: None,
            ckpt_interval: 0,
            on_late: crate::cost::LatePolicy::Reject,
        }
    }
}

fn port<P: Clone + 'static>(fw: &Framework, instance: &str, name: &str) -> Result<P, StepError> {
    fw.get_provides_port(instance, name)
        .map_err(|e| StepError::Failed(format!("missing port {instance}.{name}: {e}")))
}

/// Drive the assembled application to completion (or budget/cancel/
/// preemption).
pub(crate) fn execute(job: &SimJob, fw: &Framework, ctl: &StepCtl) -> Result<Artifacts, StepError> {
    match job.kind {
        WorkloadKind::Ignition0d => {
            if job.restore.is_some() {
                return Err(StepError::Failed(
                    "ignition jobs do not support checkpoint restore".into(),
                ));
            }
            run_ignition(fw, ctl)
        }
        WorkloadKind::ReactionDiffusion => run_rd(
            fw,
            ctl,
            job.want_checkpoint,
            job.restore.as_deref(),
            job.ckpt_interval,
        ),
    }
}

/// Stoichiometric H₂–air mass fractions in mechanism layout
/// (H₂ first, O₂ second, bulk N₂ last).
fn stoich(n: usize) -> Vec<f64> {
    let (w_h2, w_o2, w_n2) = (2.0 * 2.016, 31.998, 3.76 * 28.014);
    let total = w_h2 + w_o2 + w_n2;
    let mut y = vec![0.0; n];
    y[0] = w_h2 / total;
    y[1] = w_o2 / total;
    y[n - 1] = w_n2 / total;
    y
}

fn run_ignition(fw: &Framework, ctl: &StepCtl) -> Result<Artifacts, StepError> {
    let cfg: Rc<dyn ParameterPort> = port(fw, "cfg", "config")?;
    let p = |key: &str, default: f64| cfg.get_parameter(key).unwrap_or(default);
    let t0 = p("T0", 1000.0);
    let p0 = p("P0", 101_325.0);
    let t_end = p("t_end", 1.0e-5);
    let chunks = (p("chunks", 4.0) as u64).max(1);

    let chem: Rc<dyn ChemistrySourcePort> = port(fw, "chem", "chemistry")?;
    let rhs: Rc<dyn OdeRhsPort> = port(fw, "modeler", "rhs")?;
    let integ: Rc<dyn OdeIntegratorPort> = port(fw, "cvode", "integrator")?;

    let n = chem.n_species();
    let y0 = stoich(n);
    let rho = chem.density(t0, p0, &y0);
    fw.set_parameter("modeler", "density", rho)
        .map_err(|e| StepError::Failed(format!("setting density failed: {e}")))?;

    let mut state = Vec::with_capacity(n + 1);
    state.push(t0);
    state.extend_from_slice(&y0[..n - 1]);
    state.push(p0);
    integ.set_tolerances(1e-8, 1e-14);
    integ.set_initial_step(Some(1e-8));

    let mut t = 0.0;
    let mut rhs_evals = 0usize;
    for k in 0..chunks {
        begin_or_stop(ctl, None)?;
        let t1 = if k + 1 == chunks {
            t_end
        } else {
            t_end * (k + 1) as f64 / chunks as f64
        };
        let stats = integ
            .integrate(rhs.clone(), t, t1, &mut state)
            .map_err(|e| StepError::Failed(format!("integration failed: {e}")))?;
        rhs_evals += stats.rhs_evals;
        t = t1;
    }

    let l2 = state.iter().map(|v| v * v).sum::<f64>().sqrt();
    Ok(Artifacts {
        norms: vec![
            ("T_final".into(), state[0]),
            ("P_final".into(), *state.last().expect("non-empty state")),
            ("state_l2".into(), l2),
            ("rhs_evals".into(), rhs_evals as f64),
        ],
        transcript_digest: String::new(),
        checkpoint: None,
        steps: ctl.steps(),
    }
    .seal())
}

/// Periodic-commit bookkeeping for sliceable jobs: the last committed
/// component set and the one before it (the fallback a mid-snapshot
/// preemption resumes from).
#[derive(Default)]
struct CommitLog {
    last: Option<(u64, Vec<u8>)>,
    prev: Option<(u64, Vec<u8>)>,
}

impl CommitLog {
    fn push(&mut self, steps_abs: u64, set_bytes: Vec<u8>) {
        self.prev = self.last.take();
        self.last = Some((steps_abs, set_bytes));
    }

    /// The set a preemption at `executed_abs` completed steps hands back.
    /// A commit landing exactly on the yield step is discarded under the
    /// mid-snapshot drill (it is "still being written"), falling back to
    /// the prior set — at most `ckpt_interval` steps of re-execution.
    fn yield_set(&self, executed_abs: u64, mid_snapshot: bool) -> (Option<Vec<u8>>, u64) {
        let take = |c: &Option<(u64, Vec<u8>)>| match c {
            Some((steps, bytes)) => (Some(bytes.clone()), *steps),
            None => (None, 0),
        };
        match &self.last {
            Some((steps, _)) if mid_snapshot && *steps == executed_abs => take(&self.prev),
            _ => take(&self.last),
        }
    }
}

/// Poll the step controller, mapping the stop signals onto stepper
/// errors. `log` carries the periodic-commit state for workloads that
/// support preemptive yield; workloads without one are preempted with no
/// set (their continuation restarts from the initial condition).
fn begin_or_stop(ctl: &StepCtl, log: Option<(&CommitLog, u64)>) -> Result<(), StepError> {
    match ctl.begin_step() {
        Ok(()) => Ok(()),
        Err(crate::session::StepSignal::Cancel(reason)) => Err(StepError::Cancelled(reason)),
        Err(crate::session::StepSignal::Preempt) => {
            let mid_snapshot = ctl.preempt_spec().map(|p| p.mid_snapshot).unwrap_or(false);
            let (set, committed_steps) = match log {
                Some((log, executed_abs)) => log.yield_set(executed_abs, mid_snapshot),
                None => (None, 0),
            };
            Err(StepError::Preempted {
                set,
                committed_steps,
            })
        }
    }
}

/// RNG-free hash of the physics-bearing reaction–diffusion parameters,
/// given as canonical u64 words. `n_steps` is deliberately excluded: a
/// resumed leg runs *fewer* steps than the original submission, but it
/// is still the same simulation.
fn rd_config_hash(words: &[u64]) -> u64 {
    use crate::job::fnv1a64;
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for word in words {
        h = fnv1a64(h, &word.to_le_bytes());
    }
    h
}

fn run_rd(
    fw: &Framework,
    ctl: &StepCtl,
    want_checkpoint: bool,
    restore: Option<&[u8]>,
    ckpt_interval: u64,
) -> Result<Artifacts, StepError> {
    let cfg: Rc<dyn ParameterPort> = port(fw, "cfg", "config")?;
    let p = |key: &str, default: f64| cfg.get_parameter(key).unwrap_or(default);
    let nx = p("nx", 12.0) as i64;
    let length = p("length", 0.01);
    let ratio = p("ratio", 2.0) as i64;
    let max_levels = p("max_levels", 1.0) as usize;
    let dt = p("dt", 1.0e-6);
    let n_steps = p("n_steps", 2.0) as usize;
    let regrid_interval = (p("regrid_interval", 2.0) as usize).max(1);
    let threshold = p("threshold", 40.0);
    let with_chemistry = p("with_chemistry", 0.0) != 0.0;
    let config_hash = rd_config_hash(&[
        nx as u64,
        length.to_bits(),
        ratio as u64,
        max_levels as u64,
        dt.to_bits(),
        regrid_interval as u64,
        threshold.to_bits(),
        with_chemistry as u64,
    ]);

    let mesh: Rc<dyn MeshPort> = port(fw, "grace", "mesh")?;
    let data: Rc<dyn DataPort> = port(fw, "grace", "data")?;
    let ic: Rc<dyn InitialConditionPort> = port(fw, "ic", "ic")?;
    let integ: Rc<dyn TimeIntegratorPort> = port(fw, "rkc", "time-integrator")?;
    let chem_adv: Rc<dyn ChemistryAdvancePort> = port(fw, "implicit", "chemistry-advance")?;
    let regrid: Rc<dyn RegridPort> = port(fw, "regrid", "regrid")?;
    let stats: Rc<dyn StatisticsPort> = port(fw, "statistics", "statistics")?;

    // Setup (not step-counted: the deadline budgets *time evolution*).
    mesh.create(nx, nx, length, length, ratio);
    data.create_data_object("state", 9, 2);
    let steps_done = match restore {
        None => {
            ic.apply("state");
            for level in 0..max_levels.saturating_sub(1) {
                regrid.estimate_and_regrid("state", level, 0, threshold);
                ic.apply("state");
            }
            0usize
        }
        Some(bytes) => {
            // Resume: integrity-check the component set, refuse a set
            // from a different configuration, and replace the freshly
            // created state wholesale with the checkpointed one.
            let set = cca_ckpt::ComponentSet::from_bytes(bytes)
                .map_err(|e| StepError::Failed(format!("restore rejected: {e}")))?;
            if set.config_hash != config_hash {
                return Err(StepError::Failed(
                    "restore rejected: checkpoint belongs to a different configuration".into(),
                ));
            }
            let grace_bytes = set.part("grace").ok_or_else(|| {
                StepError::Failed("restore rejected: set has no grace state".into())
            })?;
            let ckpt: Rc<dyn CheckpointPort> = port(fw, "grace", "checkpoint")?;
            ckpt.restore_bytes(grace_bytes)
                .map_err(|e| StepError::Failed(format!("restore failed: {e}")))?;
            set.steps_done as usize
        }
    };

    // Bit-replay the time accumulation of the completed steps, so a
    // resumed leg's `t` is the exact float the interrupted run held.
    let mut t = 0.0;
    for _ in 0..steps_done {
        t += dt;
    }
    let ckpt_port: Option<Rc<dyn CheckpointPort>> = if ckpt_interval > 0 {
        Some(port(fw, "grace", "checkpoint")?)
    } else {
        None
    };
    let mut commits = CommitLog::default();
    for step in 0..n_steps {
        begin_or_stop(ctl, Some((&commits, (steps_done + step) as u64)))?;
        // Regrid cadence counts absolute steps across legs.
        let step_abs = steps_done + step;
        if max_levels > 1 && step_abs > 0 && step_abs % regrid_interval == 0 {
            let top = mesh.n_levels().min(max_levels - 1);
            for level in 0..top {
                regrid.estimate_and_regrid("state", level, 0, threshold);
            }
        }
        if with_chemistry {
            chem_adv
                .advance_chemistry("state", 0.5 * dt, 101_325.0)
                .map_err(|e| StepError::Failed(format!("chemistry half-step failed: {e}")))?;
        }
        integ
            .advance("state", t, dt)
            .map_err(|e| StepError::Failed(format!("diffusion step failed: {e}")))?;
        if with_chemistry {
            chem_adv
                .advance_chemistry("state", 0.5 * dt, 101_325.0)
                .map_err(|e| StepError::Failed(format!("chemistry half-step failed: {e}")))?;
        }
        data.restrict_down("state");
        t += dt;
        // Periodic commit: wrap the mesh state in a checksummed set so a
        // preemption (or migration) re-executes at most `ckpt_interval`
        // steps. Commits are pure observation — the physics above never
        // sees them, so a sliced run stays bit-identical to a straight
        // one.
        if let Some(ckpt) = &ckpt_port {
            let done_abs = (steps_done + step + 1) as u64;
            if done_abs.is_multiple_of(ckpt_interval) {
                let grace_bytes = ckpt
                    .save_bytes()
                    .map_err(|e| StepError::Failed(format!("periodic commit failed: {e}")))?;
                let set = cca_ckpt::ComponentSet {
                    config_hash,
                    steps_done: done_abs,
                    parts: vec![("grace".to_string(), grace_bytes)],
                };
                commits.push(done_abs, set.to_bytes());
            }
        }
    }

    let checkpoint = if want_checkpoint {
        // Wrap the raw CheckpointPort bytes in a versioned, checksummed
        // component set carrying the configuration hash and the absolute
        // step count — the artifact a preempted job resumes from.
        let ckpt: Rc<dyn CheckpointPort> = port(fw, "grace", "checkpoint")?;
        let grace_bytes = ckpt
            .save_bytes()
            .map_err(|e| StepError::Failed(format!("checkpoint failed: {e}")))?;
        let set = cca_ckpt::ComponentSet {
            config_hash,
            steps_done: (steps_done + ctl.steps() as usize) as u64,
            parts: vec![("grace".to_string(), grace_bytes)],
        };
        Some(set.to_bytes())
    } else {
        None
    };

    Ok(Artifacts {
        norms: vec![
            ("T_max".into(), stats.max_var("state", 0)),
            ("T_min".into(), stats.min_var("state", 0)),
            ("H2O2_max".into(), stats.max_var("state", 8)),
            ("T_integral".into(), stats.integral("state", 0)),
            ("levels".into(), mesh.n_levels() as f64),
        ],
        transcript_digest: String::new(),
        checkpoint,
        steps: ctl.steps(),
    }
    .seal())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{CancelToken, Session};

    fn palette_fn() -> crate::session::PaletteFn {
        Rc::new(serve_palette)
    }

    #[test]
    fn ignition_job_runs_and_heats_nothing_at_short_horizon() {
        let palette = palette_fn();
        let mut s = Session::new(0, &palette);
        let job = IgnitionSpec::default().job();
        let (outcome, steps, _) = s.execute(&job, CancelToken::new(), false, &palette);
        match outcome {
            crate::session::RunOutcome::Done(a) => {
                assert_eq!(steps, 4);
                assert_eq!(a.steps, 4);
                let t = a.norm("T_final").unwrap();
                assert!((999.0..3800.0).contains(&t), "T = {t}");
                assert!(a.norm("rhs_evals").unwrap() > 0.0);
            }
            _ => panic!("expected completion"),
        }
    }

    #[test]
    fn rd_job_respects_step_budget_exactly() {
        let palette = palette_fn();
        let mut s = Session::new(0, &palette);
        let mut job = RdSpec {
            n_steps: 6,
            ..RdSpec::default()
        }
        .job();
        job.step_budget = Some(2);
        let (outcome, steps, _) = s.execute(&job, CancelToken::new(), false, &palette);
        match outcome {
            crate::session::RunOutcome::Cancelled(reason) => {
                assert_eq!(steps, 2);
                assert_eq!(reason, crate::session::CancelReason::Deadline { budget: 2 });
            }
            _ => panic!("expected deadline cancellation"),
        }
    }

    #[test]
    fn rd_job_yields_checkpoint_bytes_on_request() {
        let palette = palette_fn();
        let mut s = Session::new(0, &palette);
        let mut job = RdSpec::default().job();
        job.want_checkpoint = true;
        let (outcome, _, _) = s.execute(&job, CancelToken::new(), false, &palette);
        match outcome {
            crate::session::RunOutcome::Done(a) => {
                let bytes = a.checkpoint.expect("checkpoint requested");
                assert!(!bytes.is_empty());
            }
            _ => panic!("expected completion"),
        }
    }

    fn run_done(s: &mut Session, job: &SimJob, palette: &crate::session::PaletteFn) -> Artifacts {
        match s.execute(job, CancelToken::new(), false, palette).0 {
            crate::session::RunOutcome::Done(a) => a,
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn preempted_rd_job_resumes_bit_identically() {
        let palette = palette_fn();
        let spec = |n_steps| RdSpec {
            n_steps,
            max_levels: 2,
            threshold: 5.0,
            ..RdSpec::default()
        };
        // Ground truth: four macro steps in one uninterrupted leg.
        let mut s = Session::new(0, &palette);
        let direct = run_done(&mut s, &spec(4).job(), &palette);
        // Preemption: two steps, checkpoint, then a fresh session resumes
        // the remaining two from the component set.
        let mut first = spec(2).job();
        first.want_checkpoint = true;
        let mut s1 = Session::new(1, &palette);
        let a1 = run_done(&mut s1, &first, &palette);
        let set = a1.checkpoint.expect("checkpoint requested");
        let parsed = cca_ckpt::ComponentSet::from_bytes(&set).expect("artifact is a valid set");
        assert_eq!(parsed.steps_done, 2);
        let mut second = spec(2).job();
        second.restore = Some(set);
        assert_ne!(
            second.key(),
            spec(2).job().key(),
            "a resumed leg must never share a cache key with a from-scratch run"
        );
        let mut s2 = Session::new(2, &palette);
        let a2 = run_done(&mut s2, &second, &palette);
        for norm in ["T_max", "T_min", "T_integral", "levels"] {
            let (got, want) = (a2.norm(norm).unwrap(), direct.norm(norm).unwrap());
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{norm} drifted across preemption: {got} vs {want}"
            );
        }
    }

    #[test]
    fn corrupt_or_mismatched_restore_sets_are_rejected() {
        let palette = palette_fn();
        let mut first = RdSpec::default().job();
        first.want_checkpoint = true;
        let mut s = Session::new(0, &palette);
        let a1 = run_done(&mut s, &first, &palette);
        let set = a1.checkpoint.expect("checkpoint requested");
        let failed = |job: &SimJob| -> String {
            let mut s = Session::new(9, &palette);
            match s.execute(job, CancelToken::new(), false, &palette).0 {
                crate::session::RunOutcome::Failed(msg) => msg,
                other => panic!("expected deterministic failure, got {other:?}"),
            }
        };
        // A flipped byte fails the set checksum — typed failure, no panic.
        let mut corrupt = set.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        let mut job = RdSpec::default().job();
        job.restore = Some(corrupt);
        assert!(failed(&job).contains("restore rejected"), "checksum gate");
        // A set from a different configuration is refused by its hash.
        let mut other_cfg = RdSpec {
            nx: 16,
            ..RdSpec::default()
        }
        .job();
        other_cfg.restore = Some(set.clone());
        assert!(
            failed(&other_cfg).contains("different configuration"),
            "config-hash gate"
        );
        // Ignition jobs cannot restore at all.
        let mut ign = IgnitionSpec::default().job();
        ign.restore = Some(set);
        assert!(failed(&ign).contains("do not support"), "kind gate");
    }

    #[test]
    fn injected_fault_panics_then_clean_retry_succeeds() {
        let palette = palette_fn();
        let mut s = Session::new(0, &palette);
        let mut job = IgnitionSpec::default().job();
        job.fault = FaultSpec {
            fail_attempts: 1,
            panic_at_step: 2,
            ..FaultSpec::default()
        };
        let (outcome, _, _) = s.execute(&job, CancelToken::new(), true, &palette);
        assert!(matches!(outcome, crate::session::RunOutcome::Panicked(_)));
        assert_eq!(s.epoch, 1, "poisoning must bump the epoch");
        // Attempt 2: fault no longer injected; the rebuilt slot completes.
        let (outcome, _, _) = s.execute(&job, CancelToken::new(), false, &palette);
        assert!(matches!(outcome, crate::session::RunOutcome::Done(_)));
        assert_eq!(s.runs, 2);
    }
}
