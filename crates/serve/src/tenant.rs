//! Multi-tenant QoS: tenant table, service classes, and deterministic
//! stride-based fair-share accounting.
//!
//! Every fleet job belongs to a tenant ([`crate::job::SimJob::tenant`]
//! indexes the fleet's tenant table). Scheduling composes three forces,
//! in order:
//!
//! 1. **QoS class bands** — interactive jobs outrank standard, standard
//!    outrank batch ([`QosClass::base_priority`]).
//! 2. **Priority aging** — a job's effective priority grows by one per
//!    `aging_ticks` of queue wait, so a starving batch job eventually
//!    climbs past fresh interactive traffic (no unbounded starvation).
//! 3. **Stride fair share** — within a band, tenants are served in
//!    proportion to their weights: each attempt charges the owning
//!    tenant `cost · STRIDE_SCALE / weight` onto its *pass* value, and
//!    the scheduler prefers the tenant with the smallest pass. Integer
//!    arithmetic, deterministic, and exact in the long run — which is
//!    what lets `tests/serve_loadgen.rs` pin the per-tenant service
//!    ratios byte-for-byte.

/// Service class of a tenant: the coarse latency band its jobs schedule
/// in. Bands are priority offsets, so a higher class always outranks a
/// lower one until priority aging closes the gap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QosClass {
    /// Latency-sensitive traffic: short jobs, first claim on sessions.
    Interactive,
    /// The default class.
    Standard,
    /// Throughput traffic: long jobs, runs when nothing above is ready.
    Batch,
}

impl QosClass {
    /// Effective-priority offset of the band (added to the job's own
    /// `priority`). The gaps are wide enough that intra-band priorities
    /// (u8) never leak across bands without aging.
    pub fn base_priority(self) -> u64 {
        match self {
            QosClass::Interactive => 2048,
            QosClass::Standard => 1024,
            QosClass::Batch => 0,
        }
    }

    /// Stable tag for reports and baselines.
    pub fn tag(self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Standard => "standard",
            QosClass::Batch => "batch",
        }
    }
}

/// Fixed-point scale of stride accounting: pass values advance by
/// `cost * STRIDE_SCALE / weight`, so weight ratios are honored exactly
/// up to one tick of rounding per attempt.
pub const STRIDE_SCALE: u64 = 1 << 20;

/// One tenant's registration: name, class, and fair-share weight.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (stable across runs — it lands in baselines).
    pub name: String,
    /// Service class.
    pub class: QosClass,
    /// Fair-share weight (≥ 1); service is proportional to it.
    pub weight: u64,
}

impl TenantSpec {
    /// Convenience constructor; weight is clamped to ≥ 1.
    pub fn new(name: &str, class: QosClass, weight: u64) -> Self {
        TenantSpec {
            name: name.to_string(),
            class,
            weight: weight.max(1),
        }
    }
}

/// Live per-tenant scheduling state and counters.
#[derive(Clone, Debug)]
pub struct TenantState {
    /// The registration.
    pub spec: TenantSpec,
    /// Stride pass value — the fair-share clock; smallest pass schedules
    /// first within a priority band.
    pub pass: u64,
    /// Session ticks charged to this tenant (the fair-share currency).
    pub served_ticks: u64,
    /// Submissions accepted for this tenant.
    pub submitted: u64,
    /// Jobs completed on a session.
    pub completed: u64,
    /// Submissions answered from a result cache (hits).
    pub hits: u64,
    /// Submissions that had to run (misses = submitted − hits, tracked
    /// explicitly so the report never derives it from racing counters).
    pub misses: u64,
    /// Submissions refused by queue backpressure.
    pub rejected_full: u64,
    /// Submissions refused because the cost model proved the deadline
    /// unreachable.
    pub rejected_deadline: u64,
    /// Deadline-doomed submissions accepted in degraded (batch) mode.
    pub downgraded: u64,
}

impl TenantState {
    /// Fresh state for `spec`.
    pub fn new(spec: TenantSpec) -> Self {
        TenantState {
            spec,
            pass: 0,
            served_ticks: 0,
            submitted: 0,
            completed: 0,
            hits: 0,
            misses: 0,
            rejected_full: 0,
            rejected_deadline: 0,
            downgraded: 0,
        }
    }

    /// Charge `cost` session ticks of service: advances the stride pass
    /// by `cost · STRIDE_SCALE / weight`.
    pub fn charge(&mut self, cost: u64) {
        self.served_ticks += cost;
        self.pass += cost * STRIDE_SCALE / self.spec.weight;
    }
}

/// The default single-tenant table (tenant 0), used when a fleet is
/// built without an explicit tenant list.
pub fn default_tenants() -> Vec<TenantSpec> {
    vec![TenantSpec::new("default", QosClass::Standard, 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_charges_are_inversely_proportional_to_weight() {
        let mut heavy = TenantState::new(TenantSpec::new("heavy", QosClass::Standard, 4));
        let mut light = TenantState::new(TenantSpec::new("light", QosClass::Standard, 1));
        heavy.charge(8);
        light.charge(2);
        // 8 ticks at weight 4 advance the pass exactly as far as 2 ticks
        // at weight 1 — equal pass means both are equally "owed".
        assert_eq!(heavy.pass, light.pass);
        assert_eq!(heavy.served_ticks, 8);
        assert_eq!(light.served_ticks, 2);
    }

    #[test]
    fn class_bands_are_ordered_and_wider_than_job_priorities() {
        assert!(QosClass::Interactive.base_priority() > QosClass::Standard.base_priority());
        assert!(QosClass::Standard.base_priority() > QosClass::Batch.base_priority());
        let gap = QosClass::Standard.base_priority() - QosClass::Batch.base_priority();
        assert!(
            gap > u8::MAX as u64,
            "a u8 job priority must not cross bands"
        );
    }

    #[test]
    fn weights_are_clamped_to_one() {
        assert_eq!(TenantSpec::new("z", QosClass::Batch, 0).weight, 1);
    }
}
