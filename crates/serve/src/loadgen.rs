//! Deterministic load generator: N synthetic clients submitting a mixed
//! 0D-ignition / reaction–diffusion job stream with a fixed duplicate
//! ratio, in bursts that deliberately exceed the queue capacity so the
//! backpressure path is exercised. Used by `tests/serve_loadgen.rs` to
//! pin the no-lost-jobs and cache-hit guarantees, and by `cca-bench` to
//! emit the drift-checked `BENCH_PR3.json` baseline.
//!
//! Everything is a pure function of the seed: the request mix, the
//! submission order, and (because the server runs on a virtual clock)
//! every latency number in the report.

use crate::cost::LatePolicy;
use crate::fleet::{Fleet, FleetConfig, FleetStats};
use crate::job::{fnv1a64, FaultSpec, JobId, SimJob, FNV_OFFSET};
use crate::server::{JobOutcome, Server, ServerConfig, SubmitError};
use crate::stats::ServerStats;
use crate::tenant::{QosClass, TenantSpec};
use crate::workload::{serve_palette, IgnitionSpec, RdSpec};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::VecDeque;
use std::rc::Rc;

/// Loadgen shape. The defaults are the PR's pinned scenario: 200 jobs,
/// 25% duplicates, 4 sessions, bursts of 32 against a 24-deep queue.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Total client requests.
    pub jobs: usize,
    /// Fraction of requests that duplicate an earlier cacheable request.
    pub duplicate_ratio: f64,
    /// PRNG seed — the entire scenario is a function of it.
    pub seed: u64,
    /// Server session-pool size.
    pub sessions: usize,
    /// Server queue capacity.
    pub queue_capacity: usize,
    /// Requests submitted per burst (set above `queue_capacity` to force
    /// rejection events).
    pub burst: usize,
    /// Server result-cache capacity.
    pub cache_capacity: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            jobs: 200,
            duplicate_ratio: 0.25,
            seed: 20_260_806,
            sessions: 4,
            queue_capacity: 24,
            burst: 32,
            cache_capacity: 128,
        }
    }
}

/// What the run produced, in deterministic counters.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// The scenario that was run.
    pub config: LoadgenConfig,
    /// Requests that ran to completion on a session.
    pub completed: u64,
    /// Requests answered from the cache (submit hit or coalesced).
    pub cached: u64,
    /// Requests cancelled by their step-budget deadline.
    pub cancelled_deadline: u64,
    /// Requests cancelled by their client.
    pub cancelled_user: u64,
    /// Requests that failed terminally.
    pub failed: u64,
    /// Queue-full rejection events observed by clients (each rejected
    /// request was resubmitted in a later burst, so none were lost).
    pub rejection_events: u64,
    /// Duplicate requests in the generated stream.
    pub duplicate_requests: u64,
    /// `cached / jobs` — must be ≥ `duplicate_ratio` by construction.
    pub cache_hit_ratio: f64,
    /// Total virtual ticks from first submit to drained queue.
    pub total_ticks: u64,
    /// `jobs * 1000 / total_ticks`.
    pub throughput_jobs_per_kilotick: f64,
    /// Full server statistics snapshot at the end.
    pub stats: ServerStats,
    /// Accepted submission ids, in submission order.
    pub ids: Vec<JobId>,
}

/// Generate the request stream for `cfg` (exposed for the example CLI).
pub fn request_stream(cfg: &LoadgenConfig) -> Vec<SimJob> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_dup = (cfg.jobs as f64 * cfg.duplicate_ratio).round() as usize;
    let n_unique = cfg.jobs.saturating_sub(n_dup);

    let mut uniques: Vec<SimJob> = Vec::with_capacity(n_unique);
    // Jobs whose first occurrence is guaranteed to end in the cache —
    // the only legal duplicate targets.
    let mut cacheable: Vec<SimJob> = Vec::new();
    for i in 0..n_unique {
        if i == 7 {
            // One hopeless job: transient-fault injection outlives the
            // retry budget, so it must end `failed` after poisoning a
            // session on every attempt.
            let mut job = IgnitionSpec {
                t0: 1033.5,
                ..IgnitionSpec::default()
            }
            .job();
            job.fault = FaultSpec {
                fail_attempts: 16,
                panic_at_step: 1,
                ..FaultSpec::default()
            };
            uniques.push(job);
            continue;
        }
        if i % 29 == 13 {
            // Transient fault: first attempt panics, the retry completes.
            let mut job = IgnitionSpec {
                t0: 950.0 + i as f64,
                ..IgnitionSpec::default()
            }
            .job();
            job.fault = FaultSpec {
                fail_attempts: 1,
                panic_at_step: 2,
                ..FaultSpec::default()
            };
            cacheable.push(job.clone());
            uniques.push(job);
            continue;
        }
        if i % 31 == 17 {
            // Deadline job: budget 1 against 4 macro steps.
            let mut job = RdSpec {
                nx: 10,
                n_steps: 4,
                t_hot: 1300.0 + i as f64,
                ..RdSpec::default()
            }
            .job();
            job.step_budget = Some(1);
            uniques.push(job);
            continue;
        }
        if rng.gen_bool(0.75) {
            let job = IgnitionSpec {
                t0: rng.gen_range(950.0..1250.0),
                t_end: 1.0e-6 * rng.gen_range(2.0..8.0),
                chunks: 3,
                ..IgnitionSpec::default()
            }
            .job();
            cacheable.push(job.clone());
            uniques.push(job);
        } else {
            let with_chemistry = rng.gen_bool(0.15);
            let mut job = RdSpec {
                nx: if with_chemistry {
                    8
                } else {
                    *[8, 10, 12].get(rng.gen_range(0usize..3)).expect("in range")
                },
                n_steps: 2,
                max_levels: if rng.gen_bool(0.3) { 2 } else { 1 },
                with_chemistry,
                t_hot: rng.gen_range(1100.0..1500.0),
                ..RdSpec::default()
            }
            .job();
            job.want_checkpoint = rng.gen_bool(0.25);
            cacheable.push(job.clone());
            uniques.push(job);
        }
    }

    let mut requests = uniques;
    for _ in 0..n_dup {
        let target = cacheable[rng.gen_range(0usize..cacheable.len())].clone();
        let pos = rng.gen_range(0usize..requests.len() + 1);
        requests.insert(pos, target);
    }
    requests
}

/// Run the scenario: submit in bursts, resubmit queue-full rejections in
/// the next burst, drain between bursts, and summarize.
pub fn run_loadgen(cfg: &LoadgenConfig) -> LoadgenReport {
    let mut server = Server::new(ServerConfig {
        palette: Rc::new(serve_palette),
        sessions: cfg.sessions,
        queue_capacity: cfg.queue_capacity,
        cache_capacity: cfg.cache_capacity,
        ..ServerConfig::default()
    });

    let requests = request_stream(cfg);
    let duplicate_requests = (cfg.jobs as f64 * cfg.duplicate_ratio).round() as u64;
    let mut pending: VecDeque<SimJob> = requests.into();
    let mut ids = Vec::with_capacity(cfg.jobs);
    let mut rejection_events = 0u64;

    while !pending.is_empty() {
        let mut deferred: Vec<SimJob> = Vec::new();
        for _ in 0..cfg.burst.max(1) {
            let Some(job) = pending.pop_front() else {
                break;
            };
            match server.submit(job.clone()) {
                Ok(id) => ids.push(id),
                Err(SubmitError::QueueFull { .. }) => {
                    rejection_events += 1;
                    deferred.push(job);
                }
                Err(e) => {
                    unreachable!("loadgen scripts are admission-clean and deadline-free: {e}")
                }
            }
        }
        server.run_until_idle();
        for job in deferred.into_iter().rev() {
            pending.push_front(job);
        }
    }

    let mut completed = 0u64;
    let mut cached = 0u64;
    let mut cancelled_deadline = 0u64;
    let mut cancelled_user = 0u64;
    let mut failed = 0u64;
    for id in &ids {
        match server.outcome(*id) {
            Some(JobOutcome::Completed { .. }) => completed += 1,
            Some(JobOutcome::Cached { .. }) => cached += 1,
            Some(JobOutcome::Cancelled { reason, .. }) => match reason {
                crate::session::CancelReason::Deadline { .. } => cancelled_deadline += 1,
                crate::session::CancelReason::User => cancelled_user += 1,
            },
            Some(JobOutcome::Failed { .. }) => failed += 1,
            None => {} // counted as lost by the caller's invariant check
        }
    }

    let stats = server.stats();
    let total_ticks = stats.clock.max(1);
    LoadgenReport {
        config: *cfg,
        completed,
        cached,
        cancelled_deadline,
        cancelled_user,
        failed,
        rejection_events,
        duplicate_requests,
        cache_hit_ratio: cached as f64 / cfg.jobs.max(1) as f64,
        total_ticks,
        throughput_jobs_per_kilotick: cfg.jobs as f64 * 1000.0 / total_ticks as f64,
        stats,
        ids,
    }
}

/// Fleet loadgen shape: a multi-tenant traffic mix against an N-shard
/// fleet. The same stream can be replayed at different shard counts —
/// the per-request outcome checksum must not move (the scaling-drift
/// contract `cca-bench fleet` pins), which is why the default scenario
/// contains **no deadline-constrained jobs**: admission decisions depend
/// on fleet capacity and would legitimately differ across shard counts.
/// Set `deadlines: true` for the separate admission scenario.
#[derive(Clone, Copy, Debug)]
pub struct FleetLoadgenConfig {
    /// Total client requests.
    pub jobs: usize,
    /// PRNG seed — the entire scenario is a function of it.
    pub seed: u64,
    /// Fleet shard count.
    pub shards: usize,
    /// Session-pool size per shard.
    pub sessions_per_shard: usize,
    /// Queue capacity per shard.
    pub queue_capacity: usize,
    /// Result-cache capacity per shard.
    pub cache_capacity: usize,
    /// Requests submitted per burst (drained between bursts).
    pub burst: usize,
    /// Enable deterministic work stealing.
    pub steal: bool,
    /// Include deadline-pressured jobs (Reject and Downgrade policies).
    pub deadlines: bool,
}

impl Default for FleetLoadgenConfig {
    fn default() -> Self {
        FleetLoadgenConfig {
            jobs: 240,
            seed: 20_260_808,
            shards: 2,
            sessions_per_shard: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            burst: 24,
            steal: true,
            deadlines: false,
        }
    }
}

/// The fleet loadgen's tenant table: an interactive tenant with a
/// skewed-popularity key mix, a bursty standard tenant, and a heavy
/// batch tenant running long sliceable jobs.
pub fn fleet_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("interactive", QosClass::Interactive, 1),
        TenantSpec::new("bursty", QosClass::Standard, 2),
        TenantSpec::new("heavy", QosClass::Batch, 1),
    ]
}

/// Generate the multi-tenant request stream for `cfg`.
///
/// Tenant mix per request (seeded, deterministic):
/// * **interactive** (~40%) — short ignition jobs drawn from a small
///   *popular pool* with probability 0.65 (skewed key popularity: the
///   consistent-hash router must keep these duplicates coalescing and
///   cache-hitting on their home shard), else a fresh unique job.
/// * **bursty** (~35%) — distinct-key reaction–diffusion jobs; the
///   burst-submission pattern plus consistent-hash skew is what creates
///   the imbalance work stealing flattens.
/// * **heavy** (~25%) — long sliceable RD jobs (`ckpt_interval = 2`,
///   10 macro steps): they run as checkpointed slices, so preemption and
///   cross-shard migration over real checkpoint bytes get exercised.
pub fn fleet_request_stream(cfg: &FleetLoadgenConfig) -> Vec<SimJob> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // The popular pool interactive traffic skews onto.
    let popular: Vec<SimJob> = (0..8)
        .map(|i| {
            let mut job = IgnitionSpec {
                t0: 1010.0 + 15.0 * i as f64,
                t_end: 3.0e-6,
                chunks: 3,
                ..IgnitionSpec::default()
            }
            .job();
            job.tenant = 0;
            job
        })
        .collect();
    let mut requests = Vec::with_capacity(cfg.jobs);
    for i in 0..cfg.jobs {
        let roll = rng.gen_range(0.0..1.0);
        let mut job = if roll < 0.40 {
            // Interactive: popular pool with probability 0.65.
            if rng.gen_bool(0.65) {
                popular[rng.gen_range(0usize..popular.len())].clone()
            } else {
                let mut job = IgnitionSpec {
                    t0: rng.gen_range(950.0..1250.0),
                    t_end: 2.0e-6,
                    chunks: 3,
                    ..IgnitionSpec::default()
                }
                .job();
                job.tenant = 0;
                job
            }
        } else if roll < 0.75 {
            // Bursty: distinct-key medium jobs.
            let mut job = RdSpec {
                nx: *[8, 10, 12].get(rng.gen_range(0usize..3)).expect("in range"),
                n_steps: 2,
                t_hot: 1100.0 + i as f64,
                ..RdSpec::default()
            }
            .job();
            job.tenant = 1;
            job.priority = rng.gen_range(0usize..3) as u8;
            job
        } else {
            // Heavy: long sliceable batch jobs.
            let mut job = RdSpec {
                nx: 8,
                n_steps: 10,
                t_hot: 1300.0 + i as f64,
                ..RdSpec::default()
            }
            .job();
            job.tenant = 2;
            job.ckpt_interval = 2;
            job.want_checkpoint = rng.gen_bool(0.25);
            job
        };
        if cfg.deadlines && i % 23 == 11 {
            // Deadline pressure: a tight deadline with alternating
            // policies, so both admission paths stay exercised.
            job.deadline = Some(2);
            job.on_late = if i % 46 == 11 {
                LatePolicy::Reject
            } else {
                LatePolicy::Downgrade
            };
        }
        requests.push(job);
    }
    requests
}

/// What one fleet loadgen run produced, in deterministic counters.
#[derive(Clone, Debug)]
pub struct FleetLoadgenReport {
    /// The scenario that was run.
    pub config: FleetLoadgenConfig,
    /// Requests that ran to completion on a session.
    pub completed: u64,
    /// Requests answered from a result cache (hit or coalesced).
    pub cached: u64,
    /// Requests cancelled by their step-budget deadline.
    pub cancelled_deadline: u64,
    /// Requests that failed terminally.
    pub failed: u64,
    /// Requests refused at admission because the deadline was provably
    /// unreachable (`LatePolicy::Reject`).
    pub rejected_deadline: u64,
    /// Queue-full rejection events (each was resubmitted later — none
    /// lost).
    pub rejection_events: u64,
    /// Accepted submissions that never resolved — must be zero.
    pub lost: u64,
    /// Total virtual ticks from first submit to drained fleet.
    pub total_ticks: u64,
    /// `jobs * 1000 / total_ticks`.
    pub throughput_jobs_per_kilotick: f64,
    /// FNV-1a fold of every request's outcome in *original request
    /// order* — completed and cached fold the artifact digest (they must
    /// be bit-identical), cancelled/failed/rejected fold a stable tag.
    /// Identical across shard counts when `deadlines` is off.
    pub outcome_checksum: u64,
    /// Full fleet statistics snapshot at the end.
    pub stats: FleetStats,
}

/// Run the fleet scenario: submit in bursts (carrying the original
/// request index through deferrals), drain between bursts, fold the
/// request-order outcome checksum, and summarize.
pub fn run_fleet_loadgen(cfg: &FleetLoadgenConfig) -> FleetLoadgenReport {
    let mut fleet = Fleet::new(FleetConfig {
        shards: cfg.shards,
        sessions_per_shard: cfg.sessions_per_shard,
        queue_capacity: cfg.queue_capacity,
        cache_capacity: cfg.cache_capacity,
        steal: cfg.steal,
        tenants: fleet_tenants(),
        ..FleetConfig::default()
    });

    let requests = fleet_request_stream(cfg);
    let n = requests.len();
    let mut pending: VecDeque<(usize, SimJob)> = requests.into_iter().enumerate().collect();
    // Outcome slot per original request index.
    let mut resolved: Vec<Option<ReqOutcome>> = vec![None; n];
    let mut ids: Vec<(usize, JobId)> = Vec::with_capacity(n);
    let mut rejection_events = 0u64;
    let mut rejected_deadline = 0u64;

    while !pending.is_empty() {
        let mut deferred: Vec<(usize, SimJob)> = Vec::new();
        for _ in 0..cfg.burst.max(1) {
            let Some((req, job)) = pending.pop_front() else {
                break;
            };
            match fleet.submit(job.clone()) {
                Ok(id) => ids.push((req, id)),
                Err(SubmitError::QueueFull { .. }) => {
                    rejection_events += 1;
                    deferred.push((req, job));
                }
                Err(SubmitError::Deadline { .. }) => {
                    rejected_deadline += 1;
                    resolved[req] = Some(ReqOutcome::RejectedDeadline);
                }
                Err(e) => {
                    unreachable!("fleet loadgen scripts are admission-clean: {e}")
                }
            }
        }
        fleet.run_until_idle();
        for item in deferred.into_iter().rev() {
            pending.push_front(item);
        }
    }

    let mut completed = 0u64;
    let mut cached = 0u64;
    let mut cancelled_deadline = 0u64;
    let mut failed = 0u64;
    let mut lost = 0u64;
    for (req, id) in &ids {
        match fleet.outcome(*id) {
            Some(JobOutcome::Completed { artifacts, .. }) => {
                completed += 1;
                resolved[*req] = Some(ReqOutcome::Artifact(artifacts.transcript_digest.clone()));
            }
            Some(JobOutcome::Cached { artifacts, .. }) => {
                cached += 1;
                resolved[*req] = Some(ReqOutcome::Artifact(artifacts.transcript_digest.clone()));
            }
            Some(JobOutcome::Cancelled { reason, .. }) => {
                match reason {
                    crate::session::CancelReason::Deadline { .. } => cancelled_deadline += 1,
                    crate::session::CancelReason::User => {}
                }
                resolved[*req] = Some(ReqOutcome::Cancelled);
            }
            Some(JobOutcome::Failed { .. }) => {
                failed += 1;
                resolved[*req] = Some(ReqOutcome::Failed);
            }
            None => lost += 1,
        }
    }

    // Request-order checksum: schedule-independent by construction —
    // completed and cached results are bit-identical, and which of the
    // two a duplicate lands on depends on timing, so both fold only the
    // digest.
    let mut checksum = FNV_OFFSET;
    for slot in &resolved {
        checksum = match slot {
            Some(ReqOutcome::Artifact(digest)) => fnv1a64(checksum, digest.as_bytes()),
            Some(ReqOutcome::Cancelled) => fnv1a64(checksum, b"cancelled"),
            Some(ReqOutcome::Failed) => fnv1a64(checksum, b"failed"),
            Some(ReqOutcome::RejectedDeadline) => fnv1a64(checksum, b"rejected-deadline"),
            None => fnv1a64(checksum, b"lost"),
        };
    }

    let stats = fleet.stats();
    let total_ticks = stats.clock.max(1);
    FleetLoadgenReport {
        config: *cfg,
        completed,
        cached,
        cancelled_deadline,
        failed,
        rejected_deadline,
        rejection_events,
        lost,
        total_ticks,
        throughput_jobs_per_kilotick: cfg.jobs as f64 * 1000.0 / total_ticks as f64,
        outcome_checksum: checksum,
        stats,
    }
}

/// One request's terminal state, reduced to checksum material.
#[derive(Clone, Debug)]
enum ReqOutcome {
    /// Completed or cache-answered: the artifact digest (bit-identical
    /// either way).
    Artifact(String),
    /// Cancelled (step budget — the loadgen never user-cancels).
    Cancelled,
    /// Terminal failure.
    Failed,
    /// Refused by deadline admission.
    RejectedDeadline,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_sized() {
        let cfg = LoadgenConfig::default();
        let a = request_stream(&cfg);
        let b = request_stream(&cfg);
        assert_eq!(a.len(), cfg.jobs);
        let keys_a: Vec<_> = a.iter().map(|j| j.key()).collect();
        let keys_b: Vec<_> = b.iter().map(|j| j.key()).collect();
        assert_eq!(keys_a, keys_b);
        // Exactly the configured number of duplicate keys.
        let mut seen = std::collections::BTreeSet::new();
        let dups = keys_a.iter().filter(|k| !seen.insert(**k)).count();
        assert_eq!(dups, 50);
    }
}
