//! Deterministic load generator: N synthetic clients submitting a mixed
//! 0D-ignition / reaction–diffusion job stream with a fixed duplicate
//! ratio, in bursts that deliberately exceed the queue capacity so the
//! backpressure path is exercised. Used by `tests/serve_loadgen.rs` to
//! pin the no-lost-jobs and cache-hit guarantees, and by `cca-bench` to
//! emit the drift-checked `BENCH_PR3.json` baseline.
//!
//! Everything is a pure function of the seed: the request mix, the
//! submission order, and (because the server runs on a virtual clock)
//! every latency number in the report.

use crate::job::{FaultSpec, JobId, SimJob};
use crate::server::{JobOutcome, Server, ServerConfig, SubmitError};
use crate::stats::ServerStats;
use crate::workload::{serve_palette, IgnitionSpec, RdSpec};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::VecDeque;
use std::rc::Rc;

/// Loadgen shape. The defaults are the PR's pinned scenario: 200 jobs,
/// 25% duplicates, 4 sessions, bursts of 32 against a 24-deep queue.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Total client requests.
    pub jobs: usize,
    /// Fraction of requests that duplicate an earlier cacheable request.
    pub duplicate_ratio: f64,
    /// PRNG seed — the entire scenario is a function of it.
    pub seed: u64,
    /// Server session-pool size.
    pub sessions: usize,
    /// Server queue capacity.
    pub queue_capacity: usize,
    /// Requests submitted per burst (set above `queue_capacity` to force
    /// rejection events).
    pub burst: usize,
    /// Server result-cache capacity.
    pub cache_capacity: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            jobs: 200,
            duplicate_ratio: 0.25,
            seed: 20_260_806,
            sessions: 4,
            queue_capacity: 24,
            burst: 32,
            cache_capacity: 128,
        }
    }
}

/// What the run produced, in deterministic counters.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// The scenario that was run.
    pub config: LoadgenConfig,
    /// Requests that ran to completion on a session.
    pub completed: u64,
    /// Requests answered from the cache (submit hit or coalesced).
    pub cached: u64,
    /// Requests cancelled by their step-budget deadline.
    pub cancelled_deadline: u64,
    /// Requests cancelled by their client.
    pub cancelled_user: u64,
    /// Requests that failed terminally.
    pub failed: u64,
    /// Queue-full rejection events observed by clients (each rejected
    /// request was resubmitted in a later burst, so none were lost).
    pub rejection_events: u64,
    /// Duplicate requests in the generated stream.
    pub duplicate_requests: u64,
    /// `cached / jobs` — must be ≥ `duplicate_ratio` by construction.
    pub cache_hit_ratio: f64,
    /// Total virtual ticks from first submit to drained queue.
    pub total_ticks: u64,
    /// `jobs * 1000 / total_ticks`.
    pub throughput_jobs_per_kilotick: f64,
    /// Full server statistics snapshot at the end.
    pub stats: ServerStats,
    /// Accepted submission ids, in submission order.
    pub ids: Vec<JobId>,
}

/// Generate the request stream for `cfg` (exposed for the example CLI).
pub fn request_stream(cfg: &LoadgenConfig) -> Vec<SimJob> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_dup = (cfg.jobs as f64 * cfg.duplicate_ratio).round() as usize;
    let n_unique = cfg.jobs.saturating_sub(n_dup);

    let mut uniques: Vec<SimJob> = Vec::with_capacity(n_unique);
    // Jobs whose first occurrence is guaranteed to end in the cache —
    // the only legal duplicate targets.
    let mut cacheable: Vec<SimJob> = Vec::new();
    for i in 0..n_unique {
        if i == 7 {
            // One hopeless job: transient-fault injection outlives the
            // retry budget, so it must end `failed` after poisoning a
            // session on every attempt.
            let mut job = IgnitionSpec {
                t0: 1033.5,
                ..IgnitionSpec::default()
            }
            .job();
            job.fault = FaultSpec {
                fail_attempts: 16,
                panic_at_step: 1,
            };
            uniques.push(job);
            continue;
        }
        if i % 29 == 13 {
            // Transient fault: first attempt panics, the retry completes.
            let mut job = IgnitionSpec {
                t0: 950.0 + i as f64,
                ..IgnitionSpec::default()
            }
            .job();
            job.fault = FaultSpec {
                fail_attempts: 1,
                panic_at_step: 2,
            };
            cacheable.push(job.clone());
            uniques.push(job);
            continue;
        }
        if i % 31 == 17 {
            // Deadline job: budget 1 against 4 macro steps.
            let mut job = RdSpec {
                nx: 10,
                n_steps: 4,
                t_hot: 1300.0 + i as f64,
                ..RdSpec::default()
            }
            .job();
            job.step_budget = Some(1);
            uniques.push(job);
            continue;
        }
        if rng.gen_bool(0.75) {
            let job = IgnitionSpec {
                t0: rng.gen_range(950.0..1250.0),
                t_end: 1.0e-6 * rng.gen_range(2.0..8.0),
                chunks: 3,
                ..IgnitionSpec::default()
            }
            .job();
            cacheable.push(job.clone());
            uniques.push(job);
        } else {
            let with_chemistry = rng.gen_bool(0.15);
            let mut job = RdSpec {
                nx: if with_chemistry {
                    8
                } else {
                    *[8, 10, 12].get(rng.gen_range(0usize..3)).expect("in range")
                },
                n_steps: 2,
                max_levels: if rng.gen_bool(0.3) { 2 } else { 1 },
                with_chemistry,
                t_hot: rng.gen_range(1100.0..1500.0),
                ..RdSpec::default()
            }
            .job();
            job.want_checkpoint = rng.gen_bool(0.25);
            cacheable.push(job.clone());
            uniques.push(job);
        }
    }

    let mut requests = uniques;
    for _ in 0..n_dup {
        let target = cacheable[rng.gen_range(0usize..cacheable.len())].clone();
        let pos = rng.gen_range(0usize..requests.len() + 1);
        requests.insert(pos, target);
    }
    requests
}

/// Run the scenario: submit in bursts, resubmit queue-full rejections in
/// the next burst, drain between bursts, and summarize.
pub fn run_loadgen(cfg: &LoadgenConfig) -> LoadgenReport {
    let mut server = Server::new(ServerConfig {
        palette: Rc::new(serve_palette),
        sessions: cfg.sessions,
        queue_capacity: cfg.queue_capacity,
        cache_capacity: cfg.cache_capacity,
        ..ServerConfig::default()
    });

    let requests = request_stream(cfg);
    let duplicate_requests = (cfg.jobs as f64 * cfg.duplicate_ratio).round() as u64;
    let mut pending: VecDeque<SimJob> = requests.into();
    let mut ids = Vec::with_capacity(cfg.jobs);
    let mut rejection_events = 0u64;

    while !pending.is_empty() {
        let mut deferred: Vec<SimJob> = Vec::new();
        for _ in 0..cfg.burst.max(1) {
            let Some(job) = pending.pop_front() else {
                break;
            };
            match server.submit(job.clone()) {
                Ok(id) => ids.push(id),
                Err(SubmitError::QueueFull { .. }) => {
                    rejection_events += 1;
                    deferred.push(job);
                }
                Err(e @ SubmitError::Admission { .. }) => {
                    unreachable!("loadgen scripts are admission-clean: {e}")
                }
            }
        }
        server.run_until_idle();
        for job in deferred.into_iter().rev() {
            pending.push_front(job);
        }
    }

    let mut completed = 0u64;
    let mut cached = 0u64;
    let mut cancelled_deadline = 0u64;
    let mut cancelled_user = 0u64;
    let mut failed = 0u64;
    for id in &ids {
        match server.outcome(*id) {
            Some(JobOutcome::Completed { .. }) => completed += 1,
            Some(JobOutcome::Cached { .. }) => cached += 1,
            Some(JobOutcome::Cancelled { reason, .. }) => match reason {
                crate::session::CancelReason::Deadline { .. } => cancelled_deadline += 1,
                crate::session::CancelReason::User => cancelled_user += 1,
            },
            Some(JobOutcome::Failed { .. }) => failed += 1,
            None => {} // counted as lost by the caller's invariant check
        }
    }

    let stats = server.stats();
    let total_ticks = stats.clock.max(1);
    LoadgenReport {
        config: *cfg,
        completed,
        cached,
        cancelled_deadline,
        cancelled_user,
        failed,
        rejection_events,
        duplicate_requests,
        cache_hit_ratio: cached as f64 / cfg.jobs.max(1) as f64,
        total_ticks,
        throughput_jobs_per_kilotick: cfg.jobs as f64 * 1000.0 / total_ticks as f64,
        stats,
        ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_sized() {
        let cfg = LoadgenConfig::default();
        let a = request_stream(&cfg);
        let b = request_stream(&cfg);
        assert_eq!(a.len(), cfg.jobs);
        let keys_a: Vec<_> = a.iter().map(|j| j.key()).collect();
        let keys_b: Vec<_> = b.iter().map(|j| j.key()).collect();
        assert_eq!(keys_a, keys_b);
        // Exactly the configured number of duplicate keys.
        let mut seen = std::collections::BTreeSet::new();
        let dups = keys_a.iter().filter(|k| !seen.insert(**k)).count();
        assert_eq!(dups, 50);
    }
}
