//! The bounded admission queue: FIFO within a priority class, with
//! per-entry `ready_at` ticks so retried jobs back off without wall-clock
//! sleeps. Capacity is a hard bound — a full queue rejects with a
//! retry-after hint rather than growing without limit (backpressure).

use crate::job::{JobId, JobKey, SimJob};
use crate::session::CancelToken;

/// One queued submission.
#[derive(Clone)]
pub(crate) struct Entry {
    /// Server-assigned submission id.
    pub id: JobId,
    /// Monotone submission sequence — the FIFO tiebreaker.
    pub seq: u64,
    /// Content hash of the job.
    pub key: JobKey,
    /// The job itself.
    pub job: SimJob,
    /// Virtual tick at which the job was submitted.
    pub submit_tick: u64,
    /// Earliest virtual tick at which the entry may be dispatched
    /// (later than `submit_tick` only for retry backoff).
    pub ready_at: u64,
    /// Attempts already spent (0 for a fresh submission).
    pub attempts: u32,
    /// Cooperative cancellation token shared with the client handle.
    pub token: CancelToken,
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct QueueFull {
    /// Queue depth at the time of the refusal (== capacity).
    pub depth: usize,
}

/// Bounded priority + FIFO queue over virtual ticks.
pub(crate) struct JobQueue {
    capacity: usize,
    entries: Vec<Entry>,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    pub fn push(&mut self, entry: Entry) -> Result<(), QueueFull> {
        if self.entries.len() >= self.capacity {
            return Err(QueueFull {
                depth: self.entries.len(),
            });
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Earliest `ready_at` over all entries (`None` when empty) — the
    /// tick the scheduler fast-forwards to when nothing is ready yet.
    pub fn next_ready_at(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.ready_at).min()
    }

    /// Remove and return the dispatchable entry at `clock`: among entries
    /// with `ready_at <= clock`, the highest priority, then lowest
    /// sequence number. Deterministic by construction.
    pub fn pop_ready(&mut self, clock: u64) -> Option<Entry> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.ready_at <= clock)
            .max_by_key(|(_, e)| (e.job.priority, std::cmp::Reverse(e.seq)))
            .map(|(i, _)| i)?;
        Some(self.entries.remove(idx))
    }

    /// Remove and return the ready entry (at `clock`) maximizing `key` —
    /// the fleet's tenant-aware selection hook. The caller's key must be
    /// a total order (include the sequence number) for determinism.
    pub fn pop_ready_by<K: Ord>(&mut self, clock: u64, key: impl Fn(&Entry) -> K) -> Option<Entry> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.ready_at <= clock)
            .max_by_key(|(_, e)| key(e))
            .map(|(i, _)| i)?;
        Some(self.entries.remove(idx))
    }

    /// Entries dispatchable at `clock` (the steal-balance signal).
    pub fn ready_count(&self, clock: u64) -> usize {
        self.entries.iter().filter(|e| e.ready_at <= clock).count()
    }

    /// Earliest `ready_at` strictly after `clock` — the backoff edge the
    /// fleet scheduler fast-forwards to when nothing is ready yet.
    pub fn next_ready_after(&self, clock: u64) -> Option<u64> {
        self.entries
            .iter()
            .map(|e| e.ready_at)
            .filter(|t| *t > clock)
            .min()
    }

    /// Push that bypasses the capacity bound — for *internal* re-queues
    /// only (retry backoff, preemption continuations, stolen entries).
    /// Client backpressure is enforced at submission; work the fleet has
    /// already accepted is never dropped for lack of a slot.
    pub fn push_internal(&mut self, entry: Entry) {
        self.entries.push(entry);
    }

    /// Remove a queued entry by id (client-side cancellation).
    pub fn remove_by_id(&mut self, id: JobId) -> Option<Entry> {
        let idx = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(idx))
    }

    /// Is a primary for `key` currently queued?
    pub fn contains_key(&self, key: JobKey) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{FaultSpec, WorkloadKind};

    fn entry(id: u64, seq: u64, priority: u8, ready_at: u64) -> Entry {
        let job = SimJob {
            kind: WorkloadKind::Ignition0d,
            script: format!("instantiate X x{id}"),
            overrides: vec![],
            priority,
            step_budget: None,
            want_checkpoint: false,
            fault: FaultSpec::default(),
            distributed: None,
            restore: None,
            tenant: 0,
            deadline: None,
            ckpt_interval: 0,
            on_late: crate::cost::LatePolicy::Reject,
        };
        Entry {
            id,
            seq,
            key: job.key(),
            job,
            submit_tick: 0,
            ready_at,
            attempts: 0,
            token: CancelToken::new(),
        }
    }

    #[test]
    fn fifo_within_priority_and_priority_wins() {
        let mut q = JobQueue::new(8);
        q.push(entry(1, 1, 0, 0)).unwrap();
        q.push(entry(2, 2, 0, 0)).unwrap();
        q.push(entry(3, 3, 5, 0)).unwrap();
        assert_eq!(q.pop_ready(0).unwrap().id, 3); // priority first
        assert_eq!(q.pop_ready(0).unwrap().id, 1); // then FIFO
        assert_eq!(q.pop_ready(0).unwrap().id, 2);
        assert!(q.pop_ready(0).is_none());
    }

    #[test]
    fn backoff_entries_wait_for_their_tick() {
        let mut q = JobQueue::new(8);
        q.push(entry(1, 1, 0, 10)).unwrap();
        assert!(q.pop_ready(5).is_none());
        assert_eq!(q.next_ready_at(), Some(10));
        assert_eq!(q.pop_ready(10).unwrap().id, 1);
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let mut q = JobQueue::new(2);
        q.push(entry(1, 1, 0, 0)).unwrap();
        q.push(entry(2, 2, 0, 0)).unwrap();
        let err = q.push(entry(3, 3, 0, 0)).unwrap_err();
        assert_eq!(err.depth, 2);
        q.pop_ready(0).unwrap();
        q.push(entry(3, 4, 0, 0)).unwrap();
    }
}
