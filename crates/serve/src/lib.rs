//! `cca-serve` — simulation-as-a-service over the component framework.
//!
//! The paper's codes are batch programs: a script assembles an
//! application, `go` runs it, the process exits. This crate turns the
//! same palette into a *served* resource — the shape a production
//! CCA-style deployment takes when many clients share one simulation
//! capability:
//!
//! * [`job::SimJob`] — a request: rc-script + typed parameter overrides,
//!   content-hashed into a [`job::JobKey`] so identical physics is
//!   recognized no matter how the script is formatted.
//! * [`server::Server`] — admission (via `cca-analyze`, so doomed
//!   scripts never spend a session), a bounded priority/FIFO queue with
//!   backpressure, a pool of framework sessions with panic isolation
//!   (poisoned sessions are rebuilt, never reused), bounded
//!   retry-with-backoff for transient faults, and step-budget deadlines
//!   enforced cooperatively between macro steps.
//! * [`cache::ResultCache`] — completed artifacts (field norms, digest,
//!   optional checkpoint bytes) in an LRU cache; duplicate submissions
//!   coalesce onto in-flight work and are answered bit-identically.
//! * [`stats::ServerStats`] — queue depth, wait/run tick distributions
//!   (p50/p95/p99 from the core profiler's sample reservoir), cache hit
//!   counters, retries, poisonings, rejections.
//!
//! Scheduling runs on a **virtual clock** (ticks = macro steps), so
//! every latency number and the entire schedule are deterministic — no
//! wall-clock sleeps anywhere, which is what lets CI pin the loadgen
//! benchmark byte-for-byte (`BENCH_PR3.json`).
//!
//! PR 10 scales the single server out into a **fleet**
//! ([`fleet::Fleet`]): N shards behind a consistent-hash router
//! ([`fleet::HashRing`]) so coalescing and the result cache stay
//! effective per shard, deterministic work stealing between idle and
//! overloaded pools, per-tenant QoS fair share ([`tenant`]),
//! cost-model-based deadline admission ([`cost`]), and preemptive
//! checkpoint-based migration of long jobs between shards (real
//! `cca-ckpt` bytes under a sealed handoff ticket — results stay
//! bit-identical to unmigrated runs).

pub mod cache;
pub mod cost;
pub mod fleet;
pub mod job;
pub mod loadgen;
pub(crate) mod queue;
pub mod server;
pub mod session;
pub(crate) mod shard;
pub mod stats;
pub mod tenant;
pub mod workload;

pub use cache::{Artifacts, CacheStats, ResultCache};
pub use cost::{CostModel, CostPrediction, LatePolicy};
pub use fleet::{Fleet, FleetConfig, FleetStats, HashRing, TenantRow};
pub use job::{DistributedSpec, FaultSpec, JobId, JobKey, Override, SimJob, WorkloadKind};
pub use loadgen::{
    fleet_request_stream, fleet_tenants, run_fleet_loadgen, run_loadgen, FleetLoadgenConfig,
    FleetLoadgenReport, LoadgenConfig, LoadgenReport,
};
pub use server::{JobOutcome, Server, ServerConfig, SubmitError};
pub use session::{CancelReason, CancelToken, PreemptSpec, StepSignal};
pub use shard::ShardStat;
pub use stats::{LatencyStat, ServerStats, SessionStat};
pub use tenant::{default_tenants, QosClass, TenantSpec, TenantState};
pub use workload::{serve_palette, IgnitionSpec, JobConfig, RdSpec};
