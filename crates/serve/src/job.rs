//! Job description and content-addressed job identity.
//!
//! A [`SimJob`] is exactly what a remote client would send a simulation
//! service: an rc-script assembling the application, plus typed parameter
//! overrides and scheduling attributes. Its *identity* — the key results
//! are cached under — is derived only from what changes the physics:
//! the workload kind, the canonicalized script, the overrides, and whether
//! a checkpoint artifact is requested. Scheduling attributes (priority,
//! step budget) and the fault-injection hook deliberately do **not**
//! enter the key: two submissions asking for the same simulation must
//! coalesce even if one is more patient than the other.

use crate::cost::LatePolicy;
use cca_analyze::commplan::CommPlan;
use cca_apps::scaling::ScalingConfig;
use std::fmt;

/// Unique per-submission identifier handed back by the server.
pub type JobId = u64;

/// Which stepper drives the assembled application (the serve-side
/// analogue of choosing a driver component).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkloadKind {
    /// 0D homogeneous ignition (paper §4.1): chunked BDF integration.
    Ignition0d,
    /// 2D reaction–diffusion flame (paper §4.2): Strang-split macro steps.
    ReactionDiffusion,
}

impl WorkloadKind {
    /// Stable tag folded into the job key and printed in outcome lines.
    pub fn tag(&self) -> &'static str {
        match self {
            WorkloadKind::Ignition0d => "ign0d",
            WorkloadKind::ReactionDiffusion => "rd2d",
        }
    }
}

/// One typed parameter override, applied after the script's own
/// `parameter` lines (client-side knob turning on a template script).
#[derive(Clone, Debug, PartialEq)]
pub struct Override {
    /// Target instance (must provide a `ParameterPort`).
    pub instance: String,
    /// Parameter key.
    pub key: String,
    /// Numeric value.
    pub value: f64,
}

impl Override {
    /// Convenience constructor.
    pub fn new(instance: &str, key: &str, value: f64) -> Self {
        Override {
            instance: instance.to_string(),
            key: key.to_string(),
            value,
        }
    }
}

/// Deterministic fault-injection hook: the session panics at the start of
/// macro step `panic_at_step` (1-based) while the attempt number is below
/// `fail_attempts`. `fail_attempts == 0` (the default) injects nothing.
/// This models transient infrastructure failure — the job itself is fine,
/// so it is *not* part of the job key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Number of leading attempts that panic (0 = healthy job).
    pub fail_attempts: u32,
    /// 1-based macro step at which the injected panic fires.
    pub panic_at_step: u64,
    /// Chaos drill for preemptive migration: pretend every preemption of
    /// this job lands *mid-snapshot* — a boundary commit coinciding with
    /// the yield step is treated as torn, forcing the continuation back
    /// onto the prior committed set.
    pub mid_snapshot_preempt: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            fail_attempts: 0,
            panic_at_step: 1,
            mid_snapshot_preempt: false,
        }
    }
}

/// Distributed-run attachment for a job: the scaling configuration and,
/// optionally, an explicit communication plan.
///
/// When `plan` is `None` the admission gate derives the plan from
/// `config` with the schedule emitter — the shipped emitter always
/// verifies clean. An explicit `plan` is the seam for clients shipping a
/// hand-written schedule (and for tests injecting a broken one): it is
/// verified *instead of* the derived plan, so a mis-scheduled exchange is
/// rejected with C-code diagnostics before any session time is spent.
#[derive(Clone, Debug)]
pub struct DistributedSpec {
    /// The distributed scaling configuration to run.
    pub config: ScalingConfig,
    /// Explicit communication plan; `None` derives it from `config`.
    pub plan: Option<CommPlan>,
}

impl DistributedSpec {
    /// The plan admission verifies: the explicit one if given, else the
    /// one the schedule emitter derives from `config`.
    pub fn effective_plan(&self) -> CommPlan {
        self.plan.clone().unwrap_or_else(|| {
            cca_apps::schedule::comm_plan(&cca_apps::scaling::decompose(&self.config), &self.config)
        })
    }

    /// Identity material folded into the job key: the physics-bearing
    /// configuration fields plus the canonical plan text. The `audit`
    /// flag is an observability knob (like priority) and stays out.
    fn key_material(&self) -> String {
        let c = &self.config;
        format!(
            "n={} per_rank={} steps={} stages={}\u{1f}{}",
            c.n,
            c.per_rank,
            c.steps,
            c.stages_per_step,
            self.effective_plan().canonical()
        )
    }
}

/// A simulation job: rc-script + overrides + scheduling attributes.
#[derive(Clone, Debug)]
pub struct SimJob {
    /// Which stepper drives the assembly once the script has run.
    pub kind: WorkloadKind,
    /// The rc-script assembling the application (no `go` lines — the
    /// serve stepper drives ports directly so it can honor deadlines).
    pub script: String,
    /// Typed parameter overrides applied after the script.
    pub overrides: Vec<Override>,
    /// Scheduling priority; higher dequeues first among ready jobs.
    pub priority: u8,
    /// Deadline as a macro-step budget: the job executes at most this
    /// many steps, then is cancelled deterministically (no wall clocks).
    pub step_budget: Option<u64>,
    /// Request the checkpoint artifact (serialized SAMR state) where the
    /// workload supports it.
    pub want_checkpoint: bool,
    /// Transient-failure injection hook (testing / chaos drills).
    pub fault: FaultSpec,
    /// Distributed-run attachment; `None` for single-rank jobs.
    pub distributed: Option<DistributedSpec>,
    /// Resume from this serialized `cca-ckpt` component set instead of
    /// the initial condition (preemption/migration of long jobs).
    pub restore: Option<Vec<u8>>,
    /// Owning tenant (index into the fleet's tenant table; 0 is the
    /// default tenant). A scheduling attribute — not part of the key, so
    /// identical physics coalesces across tenants.
    pub tenant: u32,
    /// Completion deadline in virtual ticks *after submission*. The
    /// fleet's cost model rejects (or downgrades) jobs that provably
    /// cannot finish by it. `None` = no deadline. Not part of the key.
    pub deadline: Option<u64>,
    /// Macro steps between periodic checkpoint commits while the job
    /// runs (0 = none). A job with a positive interval is *sliceable*:
    /// the fleet may preempt it at slice edges and migrate the committed
    /// set to another shard. Not part of the key — the committed sets
    /// never change the physics.
    pub ckpt_interval: u64,
    /// What admission does when the cost model proves `deadline`
    /// unreachable: refuse the job, or accept it degraded. Not part of
    /// the key.
    pub on_late: LatePolicy,
}

impl SimJob {
    /// The content-addressed identity of this job. A distributed
    /// attachment folds its canonical comm-plan into the key, and a
    /// restore set folds its bytes in — a resumed leg must never coalesce
    /// with (or be served from the cache of) a from-scratch run.
    pub fn key(&self) -> JobKey {
        let mut key = JobKey::compute(
            self.kind.tag(),
            &self.script,
            &self.overrides,
            self.want_checkpoint,
        );
        if let Some(d) = &self.distributed {
            let material = d.key_material();
            key = JobKey {
                hi: fnv1a64(key.hi, material.as_bytes()),
                lo: fnv1a64(key.lo, material.as_bytes()),
            };
        }
        if let Some(set) = &self.restore {
            key = JobKey {
                hi: fnv1a64(key.hi, set),
                lo: fnv1a64(key.lo, set),
            };
        }
        key
    }

    /// The script the admission checker vets: the assembly script plus
    /// one synthetic `parameter` line per override, so a typo'd override
    /// (unknown instance, no `ParameterPort`) is rejected *before* a
    /// session is spent on it.
    pub fn admission_script(&self) -> String {
        let mut s = self.script.clone();
        for o in &self.overrides {
            s.push_str(&format!(
                "parameter {} {} {:e}\n",
                o.instance, o.key, o.value
            ));
        }
        s
    }
}

/// Canonical form of an rc-script: comments stripped, blank lines
/// dropped, runs of whitespace collapsed — the two scripts a human would
/// call "the same" hash identically.
pub fn canonical_script(script: &str) -> String {
    let mut out = String::new();
    for raw in script.lines() {
        let line = raw.split('#').next().unwrap_or("");
        let mut first = true;
        let mut wrote = false;
        for tok in line.split_whitespace() {
            if !first {
                out.push(' ');
            }
            out.push_str(tok);
            first = false;
            wrote = true;
        }
        if wrote {
            out.push('\n');
        }
    }
    out
}

/// 128-bit content hash of a job (two independent FNV-1a streams).
///
/// Order of overrides and insignificant script whitespace do not affect
/// the key; any physics-relevant difference does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobKey {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second-stream seed: golden-ratio offset, decorrelating the two hashes.
const FNV_OFFSET_ALT: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// Plain FNV-1a over a byte stream (used for keys and artifact digests).
pub(crate) fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl JobKey {
    /// Compute the key from the identity-bearing parts of a job.
    pub fn compute(
        kind_tag: &str,
        script: &str,
        overrides: &[Override],
        want_checkpoint: bool,
    ) -> JobKey {
        let mut material = String::new();
        material.push_str(kind_tag);
        material.push('\u{1f}');
        material.push_str(&canonical_script(script));
        material.push('\u{1e}');
        let mut sorted: Vec<&Override> = overrides.iter().collect();
        sorted.sort_by(|a, b| {
            (&a.instance, &a.key, a.value.to_bits()).cmp(&(&b.instance, &b.key, b.value.to_bits()))
        });
        for o in sorted {
            material.push_str(&o.instance);
            material.push('\u{1f}');
            material.push_str(&o.key);
            material.push('\u{1f}');
            material.push_str(&format!("{:016x}", o.value.to_bits()));
            material.push('\u{1e}');
        }
        material.push(if want_checkpoint { '1' } else { '0' });
        JobKey {
            hi: fnv1a64(FNV_OFFSET, material.as_bytes()),
            lo: fnv1a64(FNV_OFFSET_ALT, material.as_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_strips_noise() {
        let a = "instantiate Foo f\nconnect a b c d\n";
        let b = "  instantiate   Foo  f   # what it is\n\n\nconnect a b c d";
        assert_eq!(canonical_script(a), canonical_script(b));
        assert_eq!(
            JobKey::compute("t", a, &[], false),
            JobKey::compute("t", b, &[], false)
        );
    }

    #[test]
    fn override_order_is_irrelevant_values_are_not() {
        let o1 = vec![Override::new("i", "a", 1.0), Override::new("i", "b", 2.0)];
        let o2 = vec![Override::new("i", "b", 2.0), Override::new("i", "a", 1.0)];
        let o3 = vec![Override::new("i", "a", 1.0), Override::new("i", "b", 2.5)];
        let k = |o: &[Override]| JobKey::compute("t", "x y", o, false);
        assert_eq!(k(&o1), k(&o2));
        assert_ne!(k(&o1), k(&o3));
    }

    #[test]
    fn checkpoint_request_and_kind_change_the_key() {
        let base = JobKey::compute("a", "s", &[], false);
        assert_ne!(base, JobKey::compute("a", "s", &[], true));
        assert_ne!(base, JobKey::compute("b", "s", &[], false));
    }

    #[test]
    fn distributed_plan_enters_the_key() {
        let job = |distributed| SimJob {
            kind: WorkloadKind::Ignition0d,
            script: "instantiate X x".into(),
            overrides: vec![],
            priority: 0,
            step_budget: None,
            want_checkpoint: false,
            fault: FaultSpec::default(),
            distributed,
            restore: None,
            tenant: 0,
            deadline: None,
            ckpt_interval: 0,
            on_late: LatePolicy::Reject,
        };
        let cfg = ScalingConfig {
            n: 16,
            per_rank: false,
            ranks: 2,
            ..ScalingConfig::default()
        };
        let plain = job(None).key();
        let d1 = job(Some(DistributedSpec {
            config: cfg,
            plan: None,
        }))
        .key();
        let d2 = job(Some(DistributedSpec {
            config: cfg,
            plan: None,
        }))
        .key();
        let other = job(Some(DistributedSpec {
            config: ScalingConfig {
                overlap: true,
                ..cfg
            },
            plan: None,
        }))
        .key();
        assert_ne!(plain, d1, "attachment must change the key");
        assert_eq!(d1, d2, "identical specs must coalesce");
        assert_ne!(d1, other, "a different schedule is a different job");
    }
}
