//! Server observability: one [`ServerStats`] snapshot carrying queue
//! depth, outcome counters, wait/run distributions (p50/p95/p99 via the
//! core profiler's sample reservoir), cache counters, and the aggregated
//! patch-executor counters of every framework the server ran.

use crate::cache::CacheStats;
use cca_core::{ExecutorStats, Profiler};

/// Distribution summary of a tick-valued quantity (queue wait, run cost).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStat {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean, ticks.
    pub mean: f64,
    /// Largest sample, ticks.
    pub max: f64,
    /// Median, ticks (nearest-rank over the recent-sample reservoir).
    pub p50: f64,
    /// 95th percentile, ticks.
    pub p95: f64,
    /// 99th percentile, ticks.
    pub p99: f64,
}

impl LatencyStat {
    /// Summarize the named timer of `profiler` (ticks recorded as raw
    /// sample values). Zeroes if the timer never fired.
    pub fn from_profiler(profiler: &Profiler, name: &str) -> LatencyStat {
        let Some(stat) = profiler.stat(name) else {
            return LatencyStat::default();
        };
        let p = profiler
            .percentiles(name, &[0.50, 0.95, 0.99])
            .unwrap_or_else(|| vec![0.0; 3]);
        LatencyStat {
            count: stat.calls,
            mean: if stat.calls > 0 {
                stat.total_secs / stat.calls as f64
            } else {
                0.0
            },
            max: stat.max_secs,
            p50: p[0],
            p95: p[1],
            p99: p[2],
        }
    }
}

/// Per-slot session summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStat {
    /// Slot index.
    pub id: usize,
    /// Rebuilds after poisonings.
    pub epoch: u64,
    /// Attempts executed on the slot.
    pub runs: u64,
    /// Virtual tick the slot next becomes free.
    pub free_at: u64,
}

/// One coherent snapshot of the server's state and history.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Current virtual time.
    pub clock: u64,
    /// Submissions accepted (queued, coalesced, or served from cache).
    pub submitted: u64,
    /// Jobs that ran to completion on a session.
    pub completed: u64,
    /// Submissions answered from the result cache (at submit or by
    /// follower coalescing).
    pub cached: u64,
    /// Submissions coalesced onto an in-flight duplicate.
    pub coalesced: u64,
    /// Submissions refused because the queue was full.
    pub rejected_full: u64,
    /// Submissions refused by the static admission check.
    pub rejected_admission: u64,
    /// Admission warnings observed on accepted jobs.
    pub admission_warnings: u64,
    /// Attempts re-queued after a transient (panic) failure.
    pub retries: u64,
    /// Sessions poisoned (and rebuilt) by panicking jobs.
    pub poisonings: u64,
    /// Jobs that ended in a terminal failure.
    pub failed: u64,
    /// Jobs cancelled by their step-budget deadline.
    pub cancelled_deadline: u64,
    /// Jobs cancelled by their client.
    pub cancelled_user: u64,
    /// Entries currently waiting in the queue.
    pub queue_depth: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Queue-wait distribution, ticks.
    pub queue_wait: LatencyStat,
    /// Run-cost distribution, ticks.
    pub run_ticks: LatencyStat,
    /// Patch-executor counters aggregated over every framework run.
    pub executor: ExecutorStats,
    /// Per-slot session summaries.
    pub sessions: Vec<SessionStat>,
}

impl ServerStats {
    /// Human-readable rendering for CLI front-ends.
    pub fn render(&self) -> String {
        let mut out = String::from("=== cca-serve stats ===\n");
        out.push_str(&format!(
            "clock {} ticks | submitted {} | completed {} | cached {} (coalesced {})\n",
            self.clock, self.submitted, self.completed, self.cached, self.coalesced
        ));
        out.push_str(&format!(
            "rejected: {} full, {} admission ({} warnings on accepted jobs)\n",
            self.rejected_full, self.rejected_admission, self.admission_warnings
        ));
        out.push_str(&format!(
            "retries {} | poisonings {} | failed {} | cancelled: {} deadline, {} user\n",
            self.retries,
            self.poisonings,
            self.failed,
            self.cancelled_deadline,
            self.cancelled_user
        ));
        out.push_str(&format!(
            "queue depth {} | cache {}/{} (hits {}, misses {}, evictions {})\n",
            self.queue_depth,
            self.cache.len,
            self.cache.capacity,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions
        ));
        out.push_str(&format!(
            "queue wait [ticks]: n={} mean={:.2} p50={:.0} p95={:.0} p99={:.0} max={:.0}\n",
            self.queue_wait.count,
            self.queue_wait.mean,
            self.queue_wait.p50,
            self.queue_wait.p95,
            self.queue_wait.p99,
            self.queue_wait.max
        ));
        out.push_str(&format!(
            "run cost  [ticks]: n={} mean={:.2} p50={:.0} p95={:.0} p99={:.0} max={:.0}\n",
            self.run_ticks.count,
            self.run_ticks.mean,
            self.run_ticks.p50,
            self.run_ticks.p95,
            self.run_ticks.p99,
            self.run_ticks.max
        ));
        out.push_str(&format!(
            "patch executor: workers {} runs {} items {} poisonings {}\n",
            self.executor.workers,
            self.executor.runs,
            self.executor.items,
            self.executor.poisonings
        ));
        for s in &self.sessions {
            out.push_str(&format!(
                "session {}: epoch {} runs {} free_at {}\n",
                s.id, s.epoch, s.runs, s.free_at
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stat_summarizes_profiler_timer() {
        let p = Profiler::new();
        for k in 1..=100 {
            p.record("serve.wait", k as f64);
        }
        let l = LatencyStat::from_profiler(&p, "serve.wait");
        assert_eq!(l.count, 100);
        assert!((l.mean - 50.5).abs() < 1e-12);
        assert!((l.p50 - 50.0).abs() < 1e-12);
        assert!((l.p99 - 99.0).abs() < 1e-12);
        assert!((l.max - 100.0).abs() < 1e-12);
        assert_eq!(
            LatencyStat::from_profiler(&p, "ghost"),
            LatencyStat::default()
        );
    }
}
