//! The result cache: completed artifacts keyed by content-addressed job
//! hash, bounded by a capacity with least-recently-used eviction. Because
//! runs are deterministic, a hit is *bit-identical* to recomputation —
//! the fidelity test in `tests/serve_cache.rs` pins exactly that.

use crate::job::{fnv1a64, JobKey};
use std::collections::BTreeMap;
use std::rc::Rc;

/// What a completed simulation leaves behind.
#[derive(Clone, Debug, PartialEq)]
pub struct Artifacts {
    /// Named scalar results (field norms, final state summaries), in a
    /// fixed per-workload order.
    pub norms: Vec<(String, f64)>,
    /// Digest of the run (norm bits + checkpoint bytes + step count) —
    /// a compact fingerprint clients can compare across runs.
    pub transcript_digest: String,
    /// Serialized SAMR state, when the job requested a checkpoint and
    /// the workload supports it.
    pub checkpoint: Option<Vec<u8>>,
    /// Macro steps the run executed.
    pub steps: u64,
}

impl Artifacts {
    /// Build the digest from the other fields (call after filling them).
    pub fn seal(mut self) -> Self {
        let mut bytes = Vec::new();
        for (name, v) in &self.norms {
            bytes.extend_from_slice(name.as_bytes());
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        if let Some(ck) = &self.checkpoint {
            bytes.extend_from_slice(ck);
        }
        bytes.extend_from_slice(&self.steps.to_le_bytes());
        self.transcript_digest = format!("{:016x}", fnv1a64(0xcbf2_9ce4_8422_2325, &bytes));
        self
    }

    /// Look up one norm by name.
    pub fn norm(&self, name: &str) -> Option<f64> {
        self.norms.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Counters the cache exposes through [`crate::stats::ServerStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries ever inserted.
    pub insertions: u64,
}

struct Slot {
    artifacts: Rc<Artifacts>,
    last_used: u64,
}

/// Capacity-bounded LRU cache of completed results.
pub struct ResultCache {
    capacity: usize,
    map: BTreeMap<JobKey, Slot>,
    use_clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl ResultCache {
    /// Empty cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            map: BTreeMap::new(),
            use_clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    /// Look up `key`, bumping its recency on a hit.
    pub fn get(&mut self, key: JobKey) -> Option<Rc<Artifacts>> {
        self.use_clock += 1;
        match self.map.get_mut(&key) {
            Some(slot) => {
                slot.last_used = self.use_clock;
                self.hits += 1;
                Some(slot.artifacts.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) the result for `key`, evicting the least
    /// recently used entry when at capacity.
    pub fn insert(&mut self, key: JobKey, artifacts: Rc<Artifacts>) {
        self.use_clock += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.insertions += 1;
        self.map.insert(
            key,
            Slot {
                artifacts,
                last_used: self.use_clock,
            },
        );
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            len: self.map.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> JobKey {
        JobKey { hi: n, lo: n }
    }

    fn art(v: f64) -> Rc<Artifacts> {
        Rc::new(
            Artifacts {
                norms: vec![("v".into(), v)],
                transcript_digest: String::new(),
                checkpoint: None,
                steps: 1,
            }
            .seal(),
        )
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), art(1.0));
        c.insert(key(2), art(2.0));
        assert!(c.get(key(1)).is_some()); // 1 is now the most recent
        c.insert(key(3), art(3.0)); // evicts 2
        assert!(c.get(key(2)).is_none());
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
    }

    #[test]
    fn digest_covers_norms_checkpoint_and_steps() {
        let a = Artifacts {
            norms: vec![("T".into(), 1000.0)],
            transcript_digest: String::new(),
            checkpoint: Some(vec![1, 2, 3]),
            steps: 4,
        }
        .seal();
        let b = Artifacts {
            norms: vec![("T".into(), 1000.0)],
            transcript_digest: String::new(),
            checkpoint: Some(vec![1, 2, 4]),
            steps: 4,
        }
        .seal();
        assert_ne!(a.transcript_digest, b.transcript_digest);
        assert_eq!(a.norm("T"), Some(1000.0));
    }
}
