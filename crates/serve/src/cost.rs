//! Deadline-aware admission: a cost model predicting a job's
//! virtual-clock runtime (and a modeled wall-time figure) from its
//! script alone — mesh size, mechanism, step budget — before any session
//! is spent on it.
//!
//! The virtual-tick prediction is *exact*: the scheduler charges
//! `1 + macro steps` per attempt, and the macro-step count of both
//! workloads is a pure function of script parameters (`chunks`,
//! `n_steps`) and the step budget. That exactness is what makes deadline
//! rejection **provable**: if even the globally earliest-free session
//! cannot finish the job by its deadline, no schedule can — work
//! stealing included — so the fleet refuses (or degrades) the job
//! instead of letting it rot in a queue it can never leave in time.
//!
//! The modeled-seconds figure is calibrated against the PR 9 machine
//! model (`cca-bench::model`, BENCH_PR9.json). `cca-bench` depends on
//! `cca-serve`, so the calibration constants are mirrored here rather
//! than imported; the bench suite is the drift check.

use crate::job::{canonical_script, Override, SimJob, WorkloadKind};

/// What to do with a job whose deadline is provably unreachable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LatePolicy {
    /// Refuse it at admission with a typed error (the default).
    #[default]
    Reject,
    /// Accept it degraded: the deadline is dropped and the job demoted
    /// to priority 0 — it runs as scavenger traffic.
    Downgrade,
}

/// Modeled throughput of the tuned reaction–diffusion sweep, cells/s.
/// Mirrors the `padded_tiled` diffusion row of BENCH_PR9.json
/// (`cells_per_sec` ≈ 3.968e6 at the 2 GHz model clock).
pub const RD_CELLS_PER_SEC: f64 = 3.967_884_931_336_991e6;
/// Slowdown factor of a macro step when the implicit chemistry
/// half-steps are on (per-cell BDF integrations dominate the sweep).
pub const CHEMISTRY_FACTOR: f64 = 8.0;
/// Modeled seconds per 0D-ignition chunk with the full 9-species
/// mechanism (one stiff BDF integration over the chunk horizon).
pub const IGN_CHUNK_SECONDS: f64 = 2.5e-4;
/// Chunk-cost ratio of the reduced 8-species/5-reaction mechanism.
pub const REDUCED_MECH_FACTOR: f64 = 0.45;

/// A job's predicted cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostPrediction {
    /// Macro steps the job will execute (budget-clamped).
    pub steps: u64,
    /// Virtual ticks one uninterrupted attempt costs (`1 + steps`) —
    /// exact, because the dispatcher charges the same formula.
    pub run_ticks: u64,
    /// Modeled wall seconds (PR 9 machine model), for capacity planning.
    pub modeled_seconds: f64,
}

/// The calibrated predictor. The default constants mirror the PR 9
/// machine model; tests may override them to probe admission logic.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Reaction–diffusion sweep throughput, cells/s.
    pub rd_cells_per_sec: f64,
    /// Chemistry slowdown multiplier.
    pub chemistry_factor: f64,
    /// Seconds per ignition chunk (full mechanism).
    pub ign_chunk_seconds: f64,
    /// Reduced-mechanism chunk cost ratio.
    pub reduced_mech_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rd_cells_per_sec: RD_CELLS_PER_SEC,
            chemistry_factor: CHEMISTRY_FACTOR,
            ign_chunk_seconds: IGN_CHUNK_SECONDS,
            reduced_mech_factor: REDUCED_MECH_FACTOR,
        }
    }
}

/// The script parameters the model reads, with the workload defaults
/// (kept in lockstep with `workload::run_ignition` / `run_rd`).
fn param(script_params: &[(String, f64)], overrides: &[Override], key: &str, default: f64) -> f64 {
    // Overrides apply after the script, so the last writer wins.
    let mut value = default;
    for (k, v) in script_params {
        if k == key {
            value = *v;
        }
    }
    for o in overrides {
        if o.instance == "cfg" && o.key == key {
            value = o.value;
        }
    }
    value
}

/// Extract every `parameter cfg <key> <value>` line of the canonical
/// script (the workload's whole configuration surface).
fn cfg_params(script: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in canonical_script(script).lines() {
        let mut tok = line.split(' ');
        if tok.next() != Some("parameter") || tok.next() != Some("cfg") {
            continue;
        }
        if let (Some(key), Some(val)) = (tok.next(), tok.next()) {
            if let Ok(v) = val.parse::<f64>() {
                out.push((key.to_string(), v));
            }
        }
    }
    out
}

impl CostModel {
    /// Predict the cost of one uninterrupted run of `job`.
    pub fn predict(&self, job: &SimJob) -> CostPrediction {
        let params = cfg_params(&job.script);
        let (natural_steps, step_seconds) = match job.kind {
            WorkloadKind::Ignition0d => {
                let chunks = (param(&params, &job.overrides, "chunks", 4.0) as u64).max(1);
                let mech = if job.script.contains("ThermoChemistryReduced") {
                    self.reduced_mech_factor
                } else {
                    1.0
                };
                (chunks, self.ign_chunk_seconds * mech)
            }
            WorkloadKind::ReactionDiffusion => {
                let nx = param(&params, &job.overrides, "nx", 12.0).max(1.0);
                let n_steps = (param(&params, &job.overrides, "n_steps", 2.0) as u64).max(1);
                let max_levels = param(&params, &job.overrides, "max_levels", 1.0).max(1.0);
                let ratio = param(&params, &job.overrides, "ratio", 2.0).max(1.0);
                let with_chemistry = param(&params, &job.overrides, "with_chemistry", 0.0) != 0.0;
                // Effective cells per macro step: the coarse sweep plus a
                // quarter-domain refined patch per extra level (the
                // loadgen hot-spot geometry the PR 7 suite measured).
                let cells = nx * nx * (1.0 + (max_levels - 1.0) * 0.25 * ratio * ratio);
                let mut secs = cells / self.rd_cells_per_sec;
                if with_chemistry {
                    secs *= self.chemistry_factor;
                }
                (n_steps, secs)
            }
        };
        // A restored leg only runs the steps its own script asks for —
        // `n_steps`/`chunks` already describe the leg, not the original
        // submission — so no further adjustment is needed here.
        let steps = match job.step_budget {
            Some(b) => natural_steps.min(b),
            None => natural_steps,
        };
        CostPrediction {
            steps,
            run_ticks: 1 + steps,
            modeled_seconds: steps as f64 * step_seconds,
        }
    }

    /// Is the deadline provably unreachable? `earliest_start` must be a
    /// lower bound on when *any* session in the whole fleet could start
    /// the job (work stealing cannot beat the globally earliest-free
    /// session). Returns the needed completion tick when it proves
    /// lateness, `None` when the deadline is (at least in principle)
    /// reachable.
    pub fn provably_late(
        &self,
        job: &SimJob,
        earliest_start: u64,
        deadline_abs: u64,
    ) -> Option<u64> {
        let needed = earliest_start + self.predict(job).run_ticks;
        (needed > deadline_abs).then_some(needed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{IgnitionSpec, RdSpec};

    #[test]
    fn tick_prediction_matches_the_dispatcher_charge_exactly() {
        let m = CostModel::default();
        let ign = IgnitionSpec {
            chunks: 7,
            ..IgnitionSpec::default()
        }
        .job();
        assert_eq!(m.predict(&ign).run_ticks, 8);
        let rd = RdSpec {
            n_steps: 12,
            ..RdSpec::default()
        }
        .job();
        assert_eq!(m.predict(&rd).run_ticks, 13);
        // Budget clamps the charge, exactly as StepCtl clamps the run.
        let mut budgeted = rd;
        budgeted.step_budget = Some(3);
        assert_eq!(m.predict(&budgeted).run_ticks, 4);
    }

    #[test]
    fn overrides_shift_the_prediction() {
        let m = CostModel::default();
        let mut rd = RdSpec {
            n_steps: 2,
            ..RdSpec::default()
        }
        .job();
        rd.overrides
            .push(crate::job::Override::new("cfg", "n_steps", 9.0));
        assert_eq!(m.predict(&rd).steps, 9);
    }

    #[test]
    fn modeled_seconds_track_mesh_size_mechanism_and_chemistry() {
        let m = CostModel::default();
        let small = m.predict(&RdSpec::default().job()).modeled_seconds;
        let big = m
            .predict(
                &RdSpec {
                    nx: 48,
                    ..RdSpec::default()
                }
                .job(),
            )
            .modeled_seconds;
        assert!(
            big > 10.0 * small,
            "quadratic cell scaling: {big} vs {small}"
        );
        let chem = m
            .predict(
                &RdSpec {
                    with_chemistry: true,
                    ..RdSpec::default()
                }
                .job(),
            )
            .modeled_seconds;
        assert!((chem / small - CHEMISTRY_FACTOR).abs() < 1e-9);
        let full = m.predict(&IgnitionSpec::default().job()).modeled_seconds;
        let reduced = m
            .predict(
                &IgnitionSpec {
                    reduced: true,
                    ..IgnitionSpec::default()
                }
                .job(),
            )
            .modeled_seconds;
        assert!(reduced < full);
    }

    #[test]
    fn provable_lateness_is_a_lower_bound_test() {
        let m = CostModel::default();
        let job = IgnitionSpec {
            chunks: 4,
            ..IgnitionSpec::default()
        }
        .job(); // run_ticks = 5
        assert_eq!(m.provably_late(&job, 10, 14), Some(15));
        assert_eq!(m.provably_late(&job, 10, 15), None);
    }
}
