//! The serve fleet: N shards behind a consistent-hash router, with
//! deterministic work stealing, per-tenant QoS fair-share scheduling,
//! deadline-aware admission, and checkpoint-based migration of long jobs.
//!
//! The single [`crate::server::Server`] of PR 3 is one session pool
//! behind one queue. A fleet shards that capability:
//!
//! * **Routing** — every [`JobKey`] has exactly one *home* shard, chosen
//!   by a [`HashRing`] (FNV points, no process-seeded hashing, identical
//!   across runs). Duplicate coalescing and the LRU result cache live on
//!   the home shard, so their hit rates survive scaling out: identical
//!   submissions always meet at the same cache, no matter which shard
//!   ultimately executes them.
//! * **Work stealing** — dispatch is *lazy*: a shard only starts jobs on
//!   sessions free at the current virtual tick, so waiting work remains
//!   in queues where an idle shard can steal it. The thief/donor choice
//!   is a pure function of queue depths and shard ids — deterministic,
//!   like everything else on the virtual clock.
//! * **QoS** — tenants ([`crate::tenant`]) get class bands (interactive ≻
//!   standard ≻ batch), stride fair-share within a band, and priority
//!   aging so no job starves forever.
//! * **Deadline admission** — the [`CostModel`] predicts an attempt's
//!   virtual-tick cost exactly; a job whose deadline is provably
//!   unreachable even on the globally earliest-free session is refused
//!   (or accepted degraded) *at submit time*, before it can rot in a
//!   queue it can never leave in time.
//! * **Preemptive migration** — long reaction–diffusion jobs with a
//!   positive `ckpt_interval` run in *slices*: the dispatcher arms a
//!   [`PreemptSpec`], the workload commits periodic
//!   [`cca_ckpt::ComponentSet`]s, and the yielded continuation re-enters
//!   the home queue carrying the committed bytes. If another shard steals
//!   it, the handoff travels as real checkpoint bytes under a sealed
//!   [`HandoffTicket`] — and deterministic re-execution makes the final
//!   artifacts bit-identical to an unmigrated run. Preemption cost is
//!   bounded by `ckpt_interval` re-executed steps.
//!
//! Shard session pools are elastic ([`Fleet::resize_shard`]): grows warm
//! up immediately, shrinks drain busy slots first, and in-flight sliced
//! jobs simply resume on whatever pool exists next — the same
//! any-pool-size restart guarantee `cca-ckpt` gives the distributed SAMR
//! runs.

use crate::cost::{CostModel, LatePolicy};
use crate::job::{fnv1a64, JobId, JobKey, Override, SimJob, WorkloadKind, FNV_OFFSET};
use crate::queue::Entry;
use crate::server::{JobOutcome, SubmitError};
use crate::session::{CancelReason, CancelToken, PaletteFn, PreemptSpec, RunOutcome};
use crate::shard::{Follower, Shard, ShardStat};
use crate::stats::LatencyStat;
use crate::tenant::{default_tenants, TenantSpec, TenantState};
use cca_analyze::Analyzer;
use cca_ckpt::HandoffTicket;
use cca_core::{ExecutorStats, Profiler};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Consistent-hash ring mapping job keys onto shards.
///
/// Each shard contributes `virtual_nodes` points hashed from the stable
/// string `shard:<id>:replica:<r>` with FNV-1a — no process-seeded
/// hashing anywhere, so routing is identical across runs and machines. A
/// key routes to the successor point of `key.hi` (wrapping), which is
/// what bounds remapping when the fleet grows: adding a shard moves only
/// the keys falling into the new shard's arcs, ~K/N of them.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Sorted `(point, shard)` pairs.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Ring over `shards` shards with `virtual_nodes` points each.
    pub fn new(shards: usize, virtual_nodes: usize) -> Self {
        let shards = shards.max(1);
        let virtual_nodes = virtual_nodes.max(1);
        let mut points = Vec::with_capacity(shards * virtual_nodes);
        for s in 0..shards {
            for r in 0..virtual_nodes {
                let label = format!("shard:{s}:replica:{r}");
                points.push((fnv1a64(FNV_OFFSET, label.as_bytes()), s));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// The home shard of `key`: owner of the successor point of `key.hi`.
    pub fn route(&self, key: JobKey) -> usize {
        let i = self.points.partition_point(|(h, _)| *h < key.hi);
        self.points[i % self.points.len()].1
    }

    /// Number of ring points (shards × virtual nodes).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// A ring always has at least one point.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Fleet tuning knobs.
pub struct FleetConfig {
    /// Framework factory jobs assemble against.
    pub palette: PaletteFn,
    /// Number of shards.
    pub shards: usize,
    /// Session-pool size per shard (the initial elastic target).
    pub sessions_per_shard: usize,
    /// Queue capacity per shard (client backpressure bound).
    pub queue_capacity: usize,
    /// Result-cache capacity per shard.
    pub cache_capacity: usize,
    /// Maximum retries after transient (panic) failures.
    pub max_retries: u32,
    /// Retry backoff base, ticks (`backoff_ticks << (k-1)` for retry k).
    pub backoff_ticks: u64,
    /// Ring points per shard.
    pub virtual_nodes: usize,
    /// Enable deterministic work stealing between shards.
    pub steal: bool,
    /// Macro steps a sliceable job may run per attempt before the
    /// dispatcher preempts it (0 disables slicing). Clamped up to the
    /// job's `ckpt_interval` so every slice commits at least once.
    pub slice_steps: u64,
    /// Queue-wait ticks per point of priority aging (0 disables aging).
    pub aging_ticks: u64,
    /// The tenant table; job `tenant` fields index into it.
    pub tenants: Vec<TenantSpec>,
    /// Cost model for deadline-aware admission.
    pub cost_model: CostModel,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            palette: Rc::new(crate::workload::serve_palette),
            shards: 2,
            sessions_per_shard: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            max_retries: 2,
            backoff_ticks: 4,
            virtual_nodes: 64,
            steal: true,
            slice_steps: 4,
            aging_ticks: 64,
            tenants: default_tenants(),
            cost_model: CostModel::default(),
        }
    }
}

/// Per-job fleet context: routing home, the pristine job continuations
/// are rebuilt from, and migration/latency accounting. Kept after
/// resolution so tests can audit a job's whole path.
struct JobCtx {
    /// Home shard (cache + coalescing site).
    home: usize,
    /// The job exactly as submitted (continuation template).
    base_job: SimJob,
    /// First tick any session started the job.
    first_start: Option<u64>,
    /// Session ticks spent across all slices/attempts.
    run_ticks: u64,
    /// Cross-shard handoffs over checkpoint bytes.
    migrations: u64,
    /// Absolute macro steps covered by the entry's current restore set.
    committed_steps: u64,
    /// Shard that executed the most recent slice.
    last_exec_shard: Option<usize>,
    /// Times the entry was stolen out of a queue.
    stolen: u64,
    /// Extra slice length granted after a no-progress preemption (the
    /// mid-snapshot drill can tear the only commit of a slice).
    extend_slice: u64,
}

/// One tenant's row in a [`FleetStats`] snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantRow {
    /// Tenant name.
    pub name: String,
    /// QoS class tag (`interactive`, `standard`, `batch`).
    pub class: &'static str,
    /// Fair-share weight.
    pub weight: u64,
    /// Stride pass value at snapshot time.
    pub pass: u64,
    /// Session ticks served.
    pub served_ticks: u64,
    /// Submissions accepted.
    pub submitted: u64,
    /// Jobs completed on a session.
    pub completed: u64,
    /// Submissions answered from a result cache.
    pub hits: u64,
    /// Submissions resolved without a cache answer.
    pub misses: u64,
    /// Submissions refused by queue backpressure.
    pub rejected_full: u64,
    /// Submissions refused by deadline admission.
    pub rejected_deadline: u64,
    /// Deadline-doomed submissions accepted degraded.
    pub downgraded: u64,
}

/// One coherent snapshot of the fleet's state and history. Latency
/// distributions are merged across shards via `Profiler::absorb` —
/// every wait/run/turnaround figure is recorded exactly once, at the
/// job's terminal resolution, so retried and sliced jobs are never
/// double-counted.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetStats {
    /// Current virtual time.
    pub clock: u64,
    /// Submissions accepted.
    pub submitted: u64,
    /// Jobs completed on a session.
    pub completed: u64,
    /// Submissions answered from a result cache.
    pub cached: u64,
    /// Submissions coalesced onto an in-flight duplicate.
    pub coalesced: u64,
    /// Submissions refused by queue backpressure.
    pub rejected_full: u64,
    /// Submissions refused by the static admission check.
    pub rejected_admission: u64,
    /// Admission warnings observed on accepted jobs.
    pub admission_warnings: u64,
    /// Submissions refused because their deadline was provably
    /// unreachable.
    pub rejected_deadline: u64,
    /// Deadline-doomed submissions accepted degraded.
    pub downgraded: u64,
    /// Attempts re-queued after transient (panic) failures.
    pub retries: u64,
    /// Sessions poisoned (and rebuilt) by panicking jobs.
    pub poisonings: u64,
    /// Jobs that ended in terminal failure.
    pub failed: u64,
    /// Jobs cancelled by their step-budget deadline.
    pub cancelled_deadline: u64,
    /// Jobs cancelled by their client.
    pub cancelled_user: u64,
    /// Queue entries stolen between shards.
    pub steals: u64,
    /// Cross-shard continuation handoffs over checkpoint bytes.
    pub migrations: u64,
    /// Scheduler preemptions of sliceable jobs.
    pub preemptions: u64,
    /// Entries waiting across all shard queues.
    pub queue_depth: u64,
    /// Queue-wait distribution (submission → first start), ticks.
    pub queue_wait: LatencyStat,
    /// Run-cost distribution (session ticks over all slices), ticks.
    pub run_ticks: LatencyStat,
    /// Turnaround distribution (submission → completion), ticks.
    pub turnaround: LatencyStat,
    /// Patch-executor counters aggregated over every framework run.
    pub executor: ExecutorStats,
    /// Per-shard rows.
    pub shards: Vec<ShardStat>,
    /// Per-tenant rows.
    pub tenants: Vec<TenantRow>,
}

impl FleetStats {
    /// Human-readable rendering for CLI front-ends.
    pub fn render(&self) -> String {
        let mut out = String::from("=== cca-serve fleet stats ===\n");
        out.push_str(&format!(
            "clock {} ticks | submitted {} | completed {} | cached {} (coalesced {})\n",
            self.clock, self.submitted, self.completed, self.cached, self.coalesced
        ));
        out.push_str(&format!(
            "rejected: {} full, {} admission, {} deadline ({} downgraded, {} warnings)\n",
            self.rejected_full,
            self.rejected_admission,
            self.rejected_deadline,
            self.downgraded,
            self.admission_warnings
        ));
        out.push_str(&format!(
            "retries {} | poisonings {} | failed {} | cancelled: {} deadline, {} user\n",
            self.retries,
            self.poisonings,
            self.failed,
            self.cancelled_deadline,
            self.cancelled_user
        ));
        out.push_str(&format!(
            "steals {} | migrations {} | preemptions {} | queue depth {}\n",
            self.steals, self.migrations, self.preemptions, self.queue_depth
        ));
        for (label, l) in [
            ("queue wait", &self.queue_wait),
            ("run cost  ", &self.run_ticks),
            ("turnaround", &self.turnaround),
        ] {
            out.push_str(&format!(
                "{label} [ticks]: n={} mean={:.2} p50={:.0} p95={:.0} p99={:.0} max={:.0}\n",
                l.count, l.mean, l.p50, l.p95, l.p99, l.max
            ));
        }
        out.push_str(&format!(
            "patch executor: workers {} runs {} items {} poisonings {}\n",
            self.executor.workers,
            self.executor.runs,
            self.executor.items,
            self.executor.poisonings
        ));
        for s in &self.shards {
            out.push_str(&format!(
                "shard {}: sessions {}/{} queue {} completed {} cached {} retries {} \
                 steals in/out {}/{} cache hits {} misses {}\n",
                s.id,
                s.sessions,
                s.target_sessions,
                s.queue_depth,
                s.completed,
                s.cached,
                s.retries,
                s.steals_in,
                s.steals_out,
                s.cache_stats.hits,
                s.cache_stats.misses
            ));
        }
        for t in &self.tenants {
            out.push_str(&format!(
                "tenant {:<12} [{:<11} w{}]: submitted {} completed {} hits {} misses {} \
                 served {}t rejected {}f/{}d downgraded {}\n",
                t.name,
                t.class,
                t.weight,
                t.submitted,
                t.completed,
                t.hits,
                t.misses,
                t.served_ticks,
                t.rejected_full,
                t.rejected_deadline,
                t.downgraded
            ));
        }
        out
    }
}

/// The sharded simulation fleet.
pub struct Fleet {
    cfg: FleetConfig,
    analyzer: Analyzer,
    ring: HashRing,
    shards: Vec<Shard>,
    tenants: Vec<TenantState>,
    clock: u64,
    next_id: JobId,
    next_seq: u64,
    outcomes: BTreeMap<JobId, JobOutcome>,
    tokens: BTreeMap<JobId, CancelToken>,
    ctxs: BTreeMap<JobId, JobCtx>,
    /// Jobs admitted degraded: scheduled in the batch band regardless of
    /// their tenant's class.
    downgraded_ids: BTreeSet<JobId>,
    submitted: u64,
    completed: u64,
    cached: u64,
    coalesced: u64,
    rejected_full: u64,
    rejected_admission: u64,
    admission_warnings: u64,
    rejected_deadline: u64,
    downgraded: u64,
    retries: u64,
    poisonings: u64,
    failed: u64,
    cancelled_deadline: u64,
    cancelled_user: u64,
    steals: u64,
    migrations: u64,
    preemptions: u64,
}

impl Fleet {
    /// Build a fleet; harvests the palette's class signatures once for
    /// the admission checker and builds the routing ring.
    pub fn new(cfg: FleetConfig) -> Self {
        let probe = (cfg.palette)();
        let analyzer = Analyzer::new(&probe);
        let n = cfg.shards.max(1);
        let ring = HashRing::new(n, cfg.virtual_nodes);
        let shards = (0..n)
            .map(|id| {
                Shard::new(
                    id,
                    cfg.sessions_per_shard,
                    cfg.queue_capacity,
                    cfg.cache_capacity,
                    &cfg.palette,
                )
            })
            .collect();
        let table = if cfg.tenants.is_empty() {
            default_tenants()
        } else {
            cfg.tenants.clone()
        };
        let tenants = table.into_iter().map(TenantState::new).collect();
        Fleet {
            analyzer,
            ring,
            shards,
            tenants,
            cfg,
            clock: 0,
            next_id: 1,
            next_seq: 1,
            outcomes: BTreeMap::new(),
            tokens: BTreeMap::new(),
            ctxs: BTreeMap::new(),
            downgraded_ids: BTreeSet::new(),
            submitted: 0,
            completed: 0,
            cached: 0,
            coalesced: 0,
            rejected_full: 0,
            rejected_admission: 0,
            admission_warnings: 0,
            rejected_deadline: 0,
            downgraded: 0,
            retries: 0,
            poisonings: 0,
            failed: 0,
            cancelled_deadline: 0,
            cancelled_user: 0,
            steals: 0,
            migrations: 0,
            preemptions: 0,
        }
    }

    /// Current virtual time, ticks.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The home shard `key` routes to.
    pub fn home_of(&self, key: JobKey) -> usize {
        self.ring.route(key)
    }

    /// Cross-shard checkpoint-byte migrations of submission `id`.
    pub fn migrations_of(&self, id: JobId) -> u64 {
        self.ctxs.get(&id).map(|c| c.migrations).unwrap_or(0)
    }

    /// Times submission `id` was stolen between shard queues.
    pub fn steals_of(&self, id: JobId) -> u64 {
        self.ctxs.get(&id).map(|c| c.stolen).unwrap_or(0)
    }

    /// Submit a job to the fleet. Admission order: static script check,
    /// tenant validation, comm-plan verification, home-cache lookup,
    /// duplicate coalescing, deadline admission, then the home queue with
    /// backpressure. Rejected jobs never spend a session.
    pub fn submit(&mut self, job: SimJob) -> Result<JobId, SubmitError> {
        let admission_script = job.admission_script();
        let report = self.analyzer.analyze(&admission_script);
        if report.has_errors() {
            self.rejected_admission += 1;
            return Err(SubmitError::Admission {
                report: report.render(&admission_script),
            });
        }
        self.admission_warnings += report.warning_count() as u64;

        let tenant = job.tenant as usize;
        if tenant >= self.tenants.len() {
            self.rejected_admission += 1;
            return Err(SubmitError::Admission {
                report: format!(
                    "unknown tenant {} (fleet tenant table has {} entries)",
                    job.tenant,
                    self.tenants.len()
                ),
            });
        }

        if let Some(spec) = &job.distributed {
            let plan_report = spec.effective_plan().verify();
            if plan_report.has_errors() {
                self.rejected_admission += 1;
                return Err(SubmitError::Admission {
                    report: plan_report.render("comm-plan"),
                });
            }
            self.admission_warnings += plan_report.warning_count() as u64;
        }

        let key = job.key();
        let home = self.ring.route(key);
        let id = self.next_id;
        let token = CancelToken::new();

        // Home-shard result cache: identical completed work answers now.
        if let Some(artifacts) = self.shards[home].cache.get(key) {
            self.next_id += 1;
            self.submitted += 1;
            self.cached += 1;
            self.shards[home].cached += 1;
            self.tenants[tenant].submitted += 1;
            self.tenants[tenant].hits += 1;
            self.outcomes.insert(
                id,
                JobOutcome::Cached {
                    artifacts,
                    wait_ticks: 0,
                },
            );
            return Ok(id);
        }

        // Coalesce onto a queued identical primary at home.
        if self.shards[home].queue.contains_key(key) {
            self.next_id += 1;
            self.submitted += 1;
            self.coalesced += 1;
            self.tenants[tenant].submitted += 1;
            self.shards[home]
                .followers
                .entry(key)
                .or_default()
                .push(Follower {
                    id,
                    tenant: job.tenant,
                    job,
                    submit_tick: self.clock,
                    token: token.clone(),
                });
            self.tokens.insert(id, token);
            return Ok(id);
        }

        // Deadline admission: provable-lateness test against the
        // globally earliest-free session (a lower bound no schedule —
        // stealing included — can beat).
        let mut job = job;
        let mut degrade = false;
        if let Some(rel) = job.deadline {
            let deadline_abs = self.clock.saturating_add(rel);
            let earliest = self.earliest_start();
            if let Some(needed) = self
                .cfg
                .cost_model
                .provably_late(&job, earliest, deadline_abs)
            {
                match job.on_late {
                    LatePolicy::Reject => {
                        self.rejected_deadline += 1;
                        self.tenants[tenant].rejected_deadline += 1;
                        return Err(SubmitError::Deadline {
                            needed,
                            deadline: deadline_abs,
                        });
                    }
                    LatePolicy::Downgrade => {
                        // Scavenger mode: drop the deadline, demote to
                        // the batch band at priority 0.
                        job.deadline = None;
                        job.priority = 0;
                        degrade = true;
                    }
                }
            }
        }

        let base_job = job.clone();
        let entry = Entry {
            id,
            seq: self.next_seq,
            key,
            job,
            submit_tick: self.clock,
            ready_at: self.clock,
            attempts: 0,
            token: token.clone(),
        };
        match self.shards[home].queue.push(entry) {
            Ok(()) => {
                self.next_id += 1;
                self.next_seq += 1;
                self.submitted += 1;
                self.tenants[tenant].submitted += 1;
                if degrade {
                    self.downgraded += 1;
                    self.tenants[tenant].downgraded += 1;
                    self.downgraded_ids.insert(id);
                }
                self.tokens.insert(id, token);
                self.ctxs.insert(
                    id,
                    JobCtx {
                        home,
                        base_job,
                        first_start: None,
                        run_ticks: 0,
                        migrations: 0,
                        committed_steps: 0,
                        last_exec_shard: None,
                        stolen: 0,
                        extend_slice: 0,
                    },
                );
                Ok(id)
            }
            Err(full) => {
                self.rejected_full += 1;
                self.tenants[tenant].rejected_full += 1;
                let sessions = self.shards[home].sessions.len().max(1) as u64;
                Err(SubmitError::QueueFull {
                    depth: full.depth,
                    retry_after: (full.depth as u64 / sessions) + 1,
                })
            }
        }
    }

    /// Cancel an accepted submission (same contract as the single
    /// server: queued primaries resolve immediately and a follower is
    /// promoted; followers detach without touching the primary).
    pub fn cancel(&mut self, id: JobId) -> bool {
        if self.outcomes.contains_key(&id) {
            return false;
        }
        let Some(token) = self.tokens.get(&id) else {
            return false;
        };
        token.cancel();
        for s in 0..self.shards.len() {
            if let Some(entry) = self.shards[s].queue.remove_by_id(id) {
                let wait = self.clock.saturating_sub(entry.submit_tick);
                let tenant = entry.job.tenant;
                self.resolve_cancelled(id, tenant, CancelReason::User, wait, 0);
                let home = self.ctxs.get(&id).map(|c| c.home).unwrap_or(s);
                self.promote_followers(home, entry.key);
                return true;
            }
        }
        for s in 0..self.shards.len() {
            let keys: Vec<JobKey> = self.shards[s].followers.keys().copied().collect();
            for key in keys {
                let fs = self.shards[s]
                    .followers
                    .get_mut(&key)
                    .expect("key just listed");
                if let Some(pos) = fs.iter().position(|f| f.id == id) {
                    let f = fs.remove(pos);
                    if fs.is_empty() {
                        self.shards[s].followers.remove(&key);
                    }
                    let wait = self.clock.saturating_sub(f.submit_tick);
                    self.resolve_cancelled(id, f.tenant, CancelReason::User, wait, 0);
                    return true;
                }
            }
        }
        true
    }

    /// Set shard `shard`'s elastic session-pool target and converge on
    /// it as far as the current tick allows (grows are immediate, shrinks
    /// retire idle slots only — busy slots drain first).
    pub fn resize_shard(&mut self, shard: usize, sessions: usize) {
        let palette = self.cfg.palette.clone();
        self.shards[shard].set_target_sessions(sessions);
        self.shards[shard].apply_resize(self.clock, &palette);
    }

    /// One scheduler round: dispatch everything startable at the current
    /// tick (stealing between shards as configured), then advance the
    /// virtual clock to the next event. Returns `false` once the fleet is
    /// idle — `while fleet.step() {}` is `run_until_idle`.
    pub fn step(&mut self) -> bool {
        let progressed = self.dispatch_round();
        match self.next_event() {
            Some(t) => {
                self.clock = t;
                true
            }
            None => progressed,
        }
    }

    /// Drain every queue deterministically.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Resolved outcome of a submission, if terminal.
    pub fn outcome(&self, id: JobId) -> Option<&JobOutcome> {
        self.outcomes.get(&id)
    }

    /// All resolved outcomes (id-sorted).
    pub fn outcomes(&self) -> &BTreeMap<JobId, JobOutcome> {
        &self.outcomes
    }

    /// Coherent statistics snapshot. Per-shard latency reservoirs merge
    /// through `Profiler::absorb` into fleet-wide distributions.
    pub fn stats(&self) -> FleetStats {
        let merged = Profiler::new();
        let mut executor = ExecutorStats::default();
        for sh in &self.shards {
            merged.absorb(&sh.profiler);
            executor.absorb(&sh.exec_agg);
        }
        FleetStats {
            clock: self.clock,
            submitted: self.submitted,
            completed: self.completed,
            cached: self.cached,
            coalesced: self.coalesced,
            rejected_full: self.rejected_full,
            rejected_admission: self.rejected_admission,
            admission_warnings: self.admission_warnings,
            rejected_deadline: self.rejected_deadline,
            downgraded: self.downgraded,
            retries: self.retries,
            poisonings: self.poisonings,
            failed: self.failed,
            cancelled_deadline: self.cancelled_deadline,
            cancelled_user: self.cancelled_user,
            steals: self.steals,
            migrations: self.migrations,
            preemptions: self.preemptions,
            queue_depth: self.shards.iter().map(|s| s.queue.depth() as u64).sum(),
            queue_wait: LatencyStat::from_profiler(&merged, "fleet.queue_wait"),
            run_ticks: LatencyStat::from_profiler(&merged, "fleet.run"),
            turnaround: LatencyStat::from_profiler(&merged, "fleet.turnaround"),
            executor,
            shards: self
                .shards
                .iter()
                .map(|s| ShardStat {
                    id: s.id,
                    sessions: s.sessions.len(),
                    target_sessions: s.target_sessions,
                    queue_depth: s.queue.depth() as u64,
                    completed: s.completed,
                    cached: s.cached,
                    retries: s.retries,
                    poisonings: s.poisonings,
                    failed: s.failed,
                    steals_in: s.steals_in,
                    steals_out: s.steals_out,
                    cache_stats: s.cache_stats(),
                })
                .collect(),
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantRow {
                    name: t.spec.name.clone(),
                    class: t.spec.class.tag(),
                    weight: t.spec.weight,
                    pass: t.pass,
                    served_ticks: t.served_ticks,
                    submitted: t.submitted,
                    completed: t.completed,
                    hits: t.hits,
                    misses: t.misses,
                    rejected_full: t.rejected_full,
                    rejected_deadline: t.rejected_deadline,
                    downgraded: t.downgraded,
                })
                .collect(),
        }
    }

    // --- internals -----------------------------------------------------

    /// Lower bound on when *any* session in the fleet could start a new
    /// job — the provability anchor of deadline admission.
    fn earliest_start(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|sh| sh.sessions.iter())
            .map(|s| s.free_at.max(self.clock))
            .min()
            .unwrap_or(self.clock)
    }

    /// Pop shard `s`'s next entry under the fleet scheduling key:
    /// aged class-band priority first, then smallest tenant stride pass,
    /// then FIFO by sequence — a total, deterministic order.
    fn pop_scheduled(&mut self, s: usize) -> Option<Entry> {
        let clock = self.clock;
        let aging = self.cfg.aging_ticks;
        let passes: Vec<u64> = self.tenants.iter().map(|t| t.pass).collect();
        let bases: Vec<u64> = self
            .tenants
            .iter()
            .map(|t| t.spec.class.base_priority())
            .collect();
        let degraded = self.downgraded_ids.clone();
        self.shards[s].queue.pop_ready_by(clock, move |e| {
            let t = e.job.tenant as usize;
            let band = if degraded.contains(&e.id) {
                0
            } else {
                bases[t]
            };
            let aged = band
                + e.job.priority as u64
                + clock
                    .saturating_sub(e.submit_tick)
                    .checked_div(aging)
                    .unwrap_or(0);
            (aged, std::cmp::Reverse(passes[t]), std::cmp::Reverse(e.seq))
        })
    }

    /// Dispatch everything startable at the current tick: per-shard in id
    /// order, then steal, until a fixpoint. Returns whether anything ran.
    fn dispatch_round(&mut self) -> bool {
        let palette = self.cfg.palette.clone();
        let mut progressed = false;
        loop {
            let mut moved = false;
            for s in 0..self.shards.len() {
                self.shards[s].apply_resize(self.clock, &palette);
                while self.shards[s].has_free_session(self.clock) {
                    let Some(entry) = self.pop_scheduled(s) else {
                        break;
                    };
                    self.dispatch_on(s, entry);
                    moved = true;
                }
            }
            if self.cfg.steal && self.try_steal() {
                moved = true;
            }
            if !moved {
                break;
            }
            progressed = true;
        }
        progressed
    }

    /// The next virtual tick anything can happen at: a backoff edge, or
    /// a session freeing up for ready-but-blocked work.
    fn next_event(&self) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut bump = |t: u64| {
            next = Some(next.map_or(t, |n: u64| n.min(t)));
        };
        let global_free: Option<u64> = self
            .shards
            .iter()
            .flat_map(|sh| sh.sessions.iter())
            .map(|s| s.free_at)
            .filter(|t| *t > self.clock)
            .min();
        for sh in &self.shards {
            if let Some(t) = sh.queue.next_ready_after(self.clock) {
                bump(t);
            }
            if sh.queue.ready_count(self.clock) > 0 {
                // Ready work is blocked on sessions. With stealing, any
                // freeing session in the fleet can take it; pinned, only
                // this shard's own pool counts.
                let candidate = if self.cfg.steal {
                    global_free
                } else {
                    sh.sessions
                        .iter()
                        .map(|s| s.free_at)
                        .filter(|t| *t > self.clock)
                        .min()
                };
                if let Some(t) = candidate {
                    bump(t);
                }
            }
        }
        next
    }

    /// One steal: the lowest-id shard that is idle-with-capacity takes
    /// the top-ranked ready entry of the most-backlogged other shard.
    fn try_steal(&mut self) -> bool {
        let clock = self.clock;
        let Some(thief) = (0..self.shards.len()).find(|&i| {
            self.shards[i].has_free_session(clock) && self.shards[i].queue.ready_count(clock) == 0
        }) else {
            return false;
        };
        let Some(donor) = (0..self.shards.len())
            .filter(|&i| i != thief && self.shards[i].queue.ready_count(clock) > 0)
            .max_by_key(|&i| {
                (
                    self.shards[i].queue.ready_count(clock),
                    std::cmp::Reverse(i),
                )
            })
        else {
            return false;
        };
        let Some(entry) = self.pop_scheduled(donor) else {
            return false;
        };
        self.shards[donor].steals_out += 1;
        self.shards[thief].steals_in += 1;
        self.steals += 1;
        if let Some(ctx) = self.ctxs.get_mut(&entry.id) {
            ctx.stolen += 1;
        }
        self.shards[thief].queue.push_internal(entry);
        true
    }

    /// Execute `entry` on shard `s` at the current tick (a session is
    /// free by the caller's invariant) and resolve the outcome.
    fn dispatch_on(&mut self, s: usize, mut entry: Entry) {
        let id = entry.id;
        let tenant = entry.job.tenant as usize;
        let (home, prev_shard, prior_committed) = match self.ctxs.get(&id) {
            Some(c) => (c.home, c.last_exec_shard, c.committed_steps),
            None => (s, None, 0),
        };

        // Cancelled while queued: resolve without spending a session.
        if entry.token.is_cancelled() {
            let wait = self.clock.saturating_sub(entry.submit_tick);
            self.resolve_cancelled(id, entry.job.tenant, CancelReason::User, wait, 0);
            self.promote_followers(home, entry.key);
            return;
        }
        // A duplicate's result may have landed at home since queueing.
        if let Some(artifacts) = self.shards[home].cache.get(entry.key) {
            self.cached += 1;
            self.shards[home].cached += 1;
            self.tenants[tenant].hits += 1;
            self.tokens.remove(&id);
            let wait = self.clock.saturating_sub(entry.submit_tick);
            self.outcomes.insert(
                id,
                JobOutcome::Cached {
                    artifacts,
                    wait_ticks: wait,
                },
            );
            let clock = self.clock;
            self.resolve_followers_cached(home, entry.key, clock);
            return;
        }

        // A continuation landing on a different shard than its last slice
        // is a *migration*: the committed set travels as checkpoint bytes
        // under a sealed handoff ticket, verified before any session time
        // is spent on the restore.
        if let (Some(prev), Some(bytes)) = (prev_shard, entry.job.restore.as_ref()) {
            if prev != s {
                let handoff = HandoffTicket::seal(prev, s, bytes).and_then(|t| t.verify(bytes));
                if let Err(e) = handoff {
                    self.failed += 1;
                    self.shards[s].failed += 1;
                    self.tenants[tenant].misses += 1;
                    self.tokens.remove(&id);
                    self.outcomes.insert(
                        id,
                        JobOutcome::Failed {
                            reason: format!("migration handoff rejected: {e}"),
                            attempts: entry.attempts,
                        },
                    );
                    self.promote_followers(home, entry.key);
                    return;
                }
                self.migrations += 1;
                if let Some(ctx) = self.ctxs.get_mut(&id) {
                    ctx.migrations += 1;
                }
            }
        }

        // Slice decision: a sliceable job whose remaining work exceeds
        // the slice gets a preemption directive. The slice is clamped up
        // to the commit interval (every slice must commit at least once)
        // and extended after a no-progress yield (mid-snapshot drill).
        let extend = self.ctxs.get(&id).map(|c| c.extend_slice).unwrap_or(0);
        let preempt = if entry.job.kind == WorkloadKind::ReactionDiffusion
            && entry.job.ckpt_interval > 0
            && self.cfg.slice_steps > 0
        {
            let slice = self.cfg.slice_steps.max(entry.job.ckpt_interval) + extend;
            let remaining = self.cfg.cost_model.predict(&entry.job).steps;
            (remaining > slice).then_some(PreemptSpec {
                at_step: slice,
                mid_snapshot: entry.job.fault.mid_snapshot_preempt,
            })
        } else {
            None
        };

        let si = self.shards[s].pick_session();
        let start = self.clock;
        let inject = entry.attempts < entry.job.fault.fail_attempts;
        let palette = self.cfg.palette.clone();
        let (outcome, steps, exec) = self.shards[s].sessions[si].execute_sliced(
            &entry.job,
            entry.token.clone(),
            inject,
            &palette,
            preempt,
        );
        self.shards[s].exec_agg.absorb(&exec);
        entry.attempts += 1;
        let cost = 1 + steps;
        let finish = start + cost;
        self.shards[s].sessions[si].free_at = finish;
        self.tenants[tenant].charge(cost);
        if let Some(ctx) = self.ctxs.get_mut(&id) {
            ctx.first_start.get_or_insert(start);
            ctx.run_ticks += cost;
            ctx.last_exec_shard = Some(s);
        }
        let wait = start.saturating_sub(entry.submit_tick);

        match outcome {
            RunOutcome::Done(artifacts) => {
                // A final slice reports only its own steps; lift the
                // count to the whole job so the sealed digest is
                // bit-identical to an unsliced, unmigrated run.
                let artifacts = if prior_committed > 0 {
                    let mut a = artifacts;
                    a.steps += prior_committed;
                    a.seal()
                } else {
                    artifacts
                };
                let rc = Rc::new(artifacts);
                self.shards[home].cache.insert(entry.key, rc.clone());
                let (first_start, total_run) = self
                    .ctxs
                    .get(&id)
                    .map(|c| (c.first_start.unwrap_or(start), c.run_ticks))
                    .unwrap_or((start, cost));
                let submit_tick = entry.submit_tick;
                self.shards[s].profiler.record(
                    "fleet.queue_wait",
                    first_start.saturating_sub(submit_tick) as f64,
                );
                self.shards[s]
                    .profiler
                    .record("fleet.run", total_run as f64);
                self.shards[s].profiler.record(
                    "fleet.turnaround",
                    finish.saturating_sub(submit_tick) as f64,
                );
                self.completed += 1;
                self.shards[s].completed += 1;
                self.tenants[tenant].completed += 1;
                self.tenants[tenant].misses += 1;
                self.tokens.remove(&id);
                self.outcomes.insert(
                    id,
                    JobOutcome::Completed {
                        artifacts: rc,
                        wait_ticks: first_start.saturating_sub(submit_tick),
                        run_ticks: total_run,
                        attempts: entry.attempts,
                        session: si,
                    },
                );
                self.resolve_followers_cached(home, entry.key, finish);
            }
            RunOutcome::Preempted {
                set,
                committed_steps,
            } => {
                self.preemptions += 1;
                // A yield without a usable set (or a torn boundary
                // commit) falls back to the entry's prior restore; the
                // continuation then re-executes at most `ckpt_interval`
                // steps — the bounded-migration-cost invariant.
                let (bytes, committed) = match set {
                    Some(b) => (Some(b), committed_steps),
                    None => (entry.job.restore.clone(), prior_committed),
                };
                if let Some(ctx) = self.ctxs.get_mut(&id) {
                    if committed <= prior_committed {
                        // No forward progress persisted: grant the next
                        // slice one extra interval so it can out-run the
                        // torn commit.
                        ctx.extend_slice += entry.job.ckpt_interval;
                    } else {
                        ctx.extend_slice = 0;
                    }
                    ctx.committed_steps = committed;
                }
                let total = self
                    .ctxs
                    .get(&id)
                    .map(|c| self.cfg.cost_model.predict(&c.base_job).steps)
                    .unwrap_or(committed);
                let remaining = total.saturating_sub(committed).max(1);
                let mut cont = self
                    .ctxs
                    .get(&id)
                    .map(|c| c.base_job.clone())
                    .unwrap_or_else(|| entry.job.clone());
                cont.overrides
                    .retain(|o| !(o.instance == "cfg" && o.key == "n_steps"));
                cont.overrides
                    .push(Override::new("cfg", "n_steps", remaining as f64));
                cont.restore = if committed > 0 { bytes } else { None };
                entry.job = cont;
                entry.ready_at = finish;
                // Continuations re-enter the HOME queue (coalescing and
                // cache stay effective); stealing may carry them to any
                // shard, which is exactly the migration path.
                self.shards[home].queue.push_internal(entry);
            }
            RunOutcome::Cancelled(reason) => {
                self.resolve_cancelled(id, entry.job.tenant, reason, wait, prior_committed + steps);
                self.promote_followers(home, entry.key);
            }
            RunOutcome::Failed(reason) => {
                self.failed += 1;
                self.shards[s].failed += 1;
                self.tenants[tenant].misses += 1;
                self.tokens.remove(&id);
                self.outcomes.insert(
                    id,
                    JobOutcome::Failed {
                        reason,
                        attempts: entry.attempts,
                    },
                );
                self.promote_followers(home, entry.key);
            }
            RunOutcome::Panicked(message) => {
                self.poisonings += 1;
                self.shards[s].poisonings += 1;
                if entry.attempts <= self.cfg.max_retries {
                    self.retries += 1;
                    self.shards[s].retries += 1;
                    entry.ready_at = finish + (self.cfg.backoff_ticks << (entry.attempts - 1));
                    // Retry at home: accepted work is never dropped for
                    // lack of a queue slot.
                    self.shards[home].queue.push_internal(entry);
                } else {
                    self.failed += 1;
                    self.shards[s].failed += 1;
                    self.tenants[tenant].misses += 1;
                    self.tokens.remove(&id);
                    self.outcomes.insert(
                        id,
                        JobOutcome::Failed {
                            reason: format!(
                                "panicked after {} attempts: {message}",
                                entry.attempts
                            ),
                            attempts: entry.attempts,
                        },
                    );
                    self.promote_followers(home, entry.key);
                }
            }
        }
    }

    fn resolve_cancelled(
        &mut self,
        id: JobId,
        tenant: u32,
        reason: CancelReason,
        wait: u64,
        steps: u64,
    ) {
        match reason {
            CancelReason::Deadline { .. } => self.cancelled_deadline += 1,
            CancelReason::User => self.cancelled_user += 1,
        }
        if let Some(t) = self.tenants.get_mut(tenant as usize) {
            t.misses += 1;
        }
        self.tokens.remove(&id);
        self.outcomes.insert(
            id,
            JobOutcome::Cancelled {
                reason,
                wait_ticks: wait,
                steps,
            },
        );
    }

    /// The primary for `key` completed: answer every follower at its
    /// home shard from the cache, bit-identical to the primary's result.
    fn resolve_followers_cached(&mut self, home: usize, key: JobKey, resolve_tick: u64) {
        let Some(fs) = self.shards[home].followers.remove(&key) else {
            return;
        };
        for f in fs {
            let artifacts = self.shards[home]
                .cache
                .get(key)
                .expect("primary result was just inserted");
            self.cached += 1;
            self.shards[home].cached += 1;
            if let Some(t) = self.tenants.get_mut(f.tenant as usize) {
                t.hits += 1;
            }
            self.tokens.remove(&f.id);
            self.outcomes.insert(
                f.id,
                JobOutcome::Cached {
                    artifacts,
                    wait_ticks: resolve_tick.saturating_sub(f.submit_tick),
                },
            );
        }
    }

    /// The primary for `key` is gone without a cacheable result: promote
    /// the oldest live follower to primary with a fresh attempt budget.
    fn promote_followers(&mut self, home: usize, key: JobKey) {
        let Some(mut fs) = self.shards[home].followers.remove(&key) else {
            return;
        };
        while !fs.is_empty() {
            let f = fs.remove(0);
            if f.token.is_cancelled() {
                let wait = self.clock.saturating_sub(f.submit_tick);
                self.resolve_cancelled(f.id, f.tenant, CancelReason::User, wait, 0);
                continue;
            }
            let base_job = f.job.clone();
            let promoted = Entry {
                id: f.id,
                seq: self.next_seq,
                key,
                job: f.job,
                submit_tick: f.submit_tick,
                ready_at: self.clock,
                attempts: 0,
                token: f.token,
            };
            self.next_seq += 1;
            self.ctxs.insert(
                f.id,
                JobCtx {
                    home,
                    base_job,
                    first_start: None,
                    run_ticks: 0,
                    migrations: 0,
                    committed_steps: 0,
                    last_exec_shard: None,
                    stolen: 0,
                    extend_slice: 0,
                },
            );
            self.shards[home].queue.push_internal(promoted);
            if !fs.is_empty() {
                self.shards[home].followers.insert(key, fs);
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::IgnitionSpec;

    #[test]
    fn ring_routing_is_stable_and_total() {
        let ring = HashRing::new(4, 64);
        assert_eq!(ring.len(), 256);
        let key = IgnitionSpec::default().job().key();
        let home = ring.route(key);
        assert!(home < 4);
        // A freshly built identical ring routes identically.
        assert_eq!(HashRing::new(4, 64).route(key), home);
    }

    #[test]
    fn fleet_completes_caches_and_coalesces_at_home() {
        let mut fleet = Fleet::new(FleetConfig {
            shards: 3,
            ..FleetConfig::default()
        });
        let job = IgnitionSpec::default().job();
        let a = fleet.submit(job.clone()).unwrap();
        let b = fleet.submit(job.clone()).unwrap(); // coalesces
        fleet.run_until_idle();
        let c = fleet.submit(job).unwrap(); // cache hit
        let (da, db, dc) = match (
            fleet.outcome(a).unwrap(),
            fleet.outcome(b).unwrap(),
            fleet.outcome(c).unwrap(),
        ) {
            (
                JobOutcome::Completed { artifacts: x, .. },
                JobOutcome::Cached { artifacts: y, .. },
                JobOutcome::Cached { artifacts: z, .. },
            ) => (
                x.transcript_digest.clone(),
                y.transcript_digest.clone(),
                z.transcript_digest.clone(),
            ),
            other => panic!("unexpected outcomes: {other:?}"),
        };
        assert_eq!(da, db);
        assert_eq!(da, dc);
        let s = fleet.stats();
        assert_eq!(s.completed, 1);
        assert_eq!(s.cached, 2);
        assert_eq!(s.coalesced, 1);
    }

    #[test]
    fn deadline_admission_rejects_provably_late_jobs() {
        let mut fleet = Fleet::new(FleetConfig::default());
        let mut job = IgnitionSpec::default().job(); // run_ticks = 5
        job.deadline = Some(2);
        match fleet.submit(job.clone()) {
            Err(SubmitError::Deadline { needed, deadline }) => {
                assert_eq!(deadline, 2);
                assert_eq!(needed, 5);
            }
            other => panic!("expected deadline rejection, got {other:?}"),
        }
        // Downgrade policy accepts the same job as scavenger traffic.
        job.on_late = LatePolicy::Downgrade;
        job.priority = 7;
        let id = fleet.submit(job).unwrap();
        fleet.run_until_idle();
        assert!(matches!(
            fleet.outcome(id),
            Some(JobOutcome::Completed { .. })
        ));
        let s = fleet.stats();
        assert_eq!(s.rejected_deadline, 1);
        assert_eq!(s.downgraded, 1);
        // A reachable deadline is admitted untouched.
        let mut fine = IgnitionSpec {
            t0: 1077.0,
            ..IgnitionSpec::default()
        }
        .job();
        fine.deadline = Some(50);
        fleet.submit(fine).unwrap();
    }

    #[test]
    fn idle_shards_steal_ready_work() {
        // One home shard gets every job (distinct scripts, but we force
        // imbalance by submitting more work than one pool can start);
        // with stealing on, other shards must pick some of it up.
        let mut fleet = Fleet::new(FleetConfig {
            shards: 4,
            sessions_per_shard: 1,
            queue_capacity: 64,
            ..FleetConfig::default()
        });
        for i in 0..12 {
            let job = IgnitionSpec {
                t0: 1000.0 + i as f64,
                ..IgnitionSpec::default()
            }
            .job();
            fleet.submit(job).unwrap();
        }
        fleet.run_until_idle();
        let s = fleet.stats();
        assert_eq!(s.completed, 12);
        // Jobs spread across several homes, and total served work must
        // involve more than one shard regardless of the routing split.
        let active = s.shards.iter().filter(|sh| sh.completed > 0).count();
        assert!(active > 1, "work never spread beyond one shard");
    }
}
