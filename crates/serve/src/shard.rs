//! One serve shard: a session pool, a bounded queue, a per-shard LRU
//! result cache, and per-shard observability.
//!
//! Shards are the unit of consistent-hash routing: every [`crate::job::JobKey`]
//! has exactly one *home* shard, so duplicate coalescing and the result
//! cache keep their hit rates no matter how many shards the fleet runs —
//! identical submissions always meet at the same cache. Work stealing
//! may *execute* a job elsewhere, but its artifacts are always credited
//! back to the home shard's cache.
//!
//! A shard's session pool is **elastic**: [`Shard::set_target_sessions`]
//! records the desired size and [`Shard::apply_resize`] converges on it
//! at safe points — new slots warm up immediately, retiring slots drain
//! first (a slot is only removed once it is free at the current virtual
//! tick). Long jobs survive shrinks because they run in checkpointed
//! slices: a preempted job's continuation simply lands on whatever pool
//! exists next.

use crate::cache::{CacheStats, ResultCache};
use crate::job::{JobId, JobKey, SimJob};
use crate::queue::JobQueue;
use crate::session::{CancelToken, PaletteFn, Session};
use cca_core::{ExecutorStats, Profiler};
use std::collections::BTreeMap;

/// A duplicate submission riding a queued primary on this shard (same
/// promotion contract as the single-server follower).
pub(crate) struct Follower {
    pub id: JobId,
    pub tenant: u32,
    pub job: SimJob,
    pub submit_tick: u64,
    pub token: CancelToken,
}

/// One shard of the fleet.
pub(crate) struct Shard {
    /// Stable shard index (the ring routes onto it).
    pub id: usize,
    pub sessions: Vec<Session>,
    /// Monotone session-id source, so rebuilt/grown slots never reuse an
    /// id within the shard.
    pub next_session_id: usize,
    /// Elastic pool goal; `apply_resize` converges the pool onto it.
    pub target_sessions: usize,
    pub queue: JobQueue,
    pub cache: ResultCache,
    pub followers: BTreeMap<JobKey, Vec<Follower>>,
    /// Per-shard latency reservoirs (`fleet.queue_wait`, `fleet.run`,
    /// `fleet.turnaround`); the fleet snapshot merges them via
    /// `Profiler::absorb`.
    pub profiler: Profiler,
    pub exec_agg: ExecutorStats,
    pub completed: u64,
    pub cached: u64,
    pub retries: u64,
    pub poisonings: u64,
    pub failed: u64,
    /// Ready entries this shard pulled from other shards.
    pub steals_in: u64,
    /// Ready entries other shards pulled from this one.
    pub steals_out: u64,
}

impl Shard {
    pub fn new(
        id: usize,
        sessions: usize,
        queue_capacity: usize,
        cache_capacity: usize,
        palette: &PaletteFn,
    ) -> Self {
        let n = sessions.max(1);
        Shard {
            id,
            sessions: (0..n).map(|sid| Session::new(sid, palette)).collect(),
            next_session_id: n,
            target_sessions: n,
            queue: JobQueue::new(queue_capacity),
            cache: ResultCache::new(cache_capacity),
            followers: BTreeMap::new(),
            profiler: Profiler::new(),
            exec_agg: ExecutorStats::default(),
            completed: 0,
            cached: 0,
            retries: 0,
            poisonings: 0,
            failed: 0,
            steals_in: 0,
            steals_out: 0,
        }
    }

    /// Does any slot accept work at `clock`?
    pub fn has_free_session(&self, clock: u64) -> bool {
        self.sessions.iter().any(|s| s.free_at <= clock)
    }

    /// The session the dispatcher uses: earliest-free, lowest id.
    pub fn pick_session(&self) -> usize {
        self.sessions
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.free_at, *i))
            .map(|(i, _)| i)
            .expect("pool is non-empty")
    }

    /// Record the desired pool size (≥ 1). Takes effect via
    /// [`Shard::apply_resize`].
    pub fn set_target_sessions(&mut self, target: usize) {
        self.target_sessions = target.max(1);
    }

    /// Converge the pool on its target at a safe point: grow with fresh
    /// warm slots immediately; shrink by retiring *idle* slots only
    /// (drain-then-remove — a busy slot survives until it frees up).
    pub fn apply_resize(&mut self, clock: u64, palette: &PaletteFn) {
        while self.sessions.len() < self.target_sessions {
            self.sessions
                .push(Session::new(self.next_session_id, palette));
            self.next_session_id += 1;
        }
        while self.sessions.len() > self.target_sessions {
            // Retire the highest-id idle slot; if all are busy, wait.
            let Some(idx) = self
                .sessions
                .iter()
                .enumerate()
                .rev()
                .find(|(_, s)| s.free_at <= clock)
                .map(|(i, _)| i)
            else {
                break;
            };
            self.sessions.remove(idx);
        }
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Public per-shard statistics row.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardStat {
    /// Shard index.
    pub id: usize,
    /// Live session-pool size.
    pub sessions: usize,
    /// Elastic pool target.
    pub target_sessions: usize,
    /// Entries waiting in the shard queue.
    pub queue_depth: u64,
    /// Jobs completed on this shard's sessions.
    pub completed: u64,
    /// Submissions this shard answered from its cache.
    pub cached: u64,
    /// Retries re-queued on this shard.
    pub retries: u64,
    /// Session poisonings on this shard.
    pub poisonings: u64,
    /// Terminal failures on this shard.
    pub failed: u64,
    /// Entries stolen *into* this shard.
    pub steals_in: u64,
    /// Entries stolen *out of* this shard.
    pub steals_out: u64,
    /// Result-cache counters.
    pub cache_stats: CacheStats,
}
