//! Framework sessions: the worker slots jobs execute on.
//!
//! A session is a logical slot in the pool. It keeps a *warm* pre-built
//! framework so dispatch does not pay palette construction on the
//! critical path; every job nevertheless runs on a pristine framework
//! (instance names are script-chosen, so frameworks cannot be shared
//! between jobs — and pristine state is what makes reruns bit-identical).
//! A panicking job *poisons* the session: the dirty framework is
//! discarded wholesale, the epoch increments, and the slot is rebuilt
//! before it accepts the next job — poisoned state is never reused.

use crate::cache::Artifacts;
use crate::job::SimJob;
use cca_core::{ExecutorStats, Framework};
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// Factory producing a fresh framework pre-loaded with the palette the
/// server executes against.
pub type PaletteFn = Rc<dyn Fn() -> Framework>;

/// Why a job stopped before reaching its natural end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The macro-step budget (deadline) was exhausted.
    Deadline {
        /// The budget that ran out.
        budget: u64,
    },
    /// The client cancelled through its token.
    User,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Deadline { budget } => write!(f, "deadline (step budget {budget})"),
            CancelReason::User => write!(f, "cancelled by client"),
        }
    }
}

/// Shared cooperative cancellation flag: the client holds one end, the
/// stepper polls the other between macro steps.
#[derive(Clone, Default)]
pub struct CancelToken(Rc<Cell<bool>>);

impl CancelToken {
    /// Fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; the stepper honors it at its next step edge.
    pub fn cancel(&self) {
        self.0.set(true);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.get()
    }
}

/// Why a stepper must stop at a step edge: a cooperative cancellation
/// (deadline/client) or a scheduler preemption (the slice the fleet
/// granted this attempt is over — checkpoint and yield the session).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepSignal {
    /// Stop for good: deadline exhausted or client cancelled.
    Cancel(CancelReason),
    /// Stop *for now*: commit the latest periodic set and yield; the
    /// scheduler re-queues a continuation that resumes from it.
    Preempt,
}

/// Scheduler preemption directive for one attempt: run at most `at_step`
/// macro steps, then yield. `mid_snapshot` models the unlucky timing
/// where the preemption lands while the boundary snapshot is still being
/// written — the torn set is discarded and the continuation falls back
/// to the *prior* committed set (re-executing at most `ckpt_interval`
/// steps, which is exactly the bounded-migration-cost invariant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreemptSpec {
    /// Macro steps this attempt may execute before yielding.
    pub at_step: u64,
    /// Treat a commit landing exactly on the yield step as torn.
    pub mid_snapshot: bool,
}

/// Per-attempt step controller handed to the stepper: enforces the step
/// budget, polls the cancel token, counts steps, carries the preemption
/// directive, and hosts the fault-injection hook. All deterministic — no
/// wall clocks anywhere.
pub struct StepCtl {
    token: CancelToken,
    budget: Option<u64>,
    steps: Cell<u64>,
    /// `Some(step)` — panic at the start of that 1-based step.
    inject_panic_at: Option<u64>,
    preempt: Option<PreemptSpec>,
}

impl StepCtl {
    /// Controller for one attempt.
    pub fn new(token: CancelToken, budget: Option<u64>, inject_panic_at: Option<u64>) -> Self {
        StepCtl {
            token,
            budget,
            steps: Cell::new(0),
            inject_panic_at,
            preempt: None,
        }
    }

    /// Arm a scheduler preemption directive on this attempt.
    pub fn with_preempt(mut self, preempt: Option<PreemptSpec>) -> Self {
        self.preempt = preempt;
        self
    }

    /// The preemption directive, if armed (steppers that support
    /// checkpointing read `mid_snapshot` from here).
    pub fn preempt_spec(&self) -> Option<PreemptSpec> {
        self.preempt
    }

    /// Called by the stepper at the top of every macro step. `Err` means
    /// stop *before* doing the step's work; on `Ok` the step is counted.
    pub fn begin_step(&self) -> Result<(), StepSignal> {
        if self.token.is_cancelled() {
            return Err(StepSignal::Cancel(CancelReason::User));
        }
        let done = self.steps.get();
        if let Some(b) = self.budget {
            if done >= b {
                return Err(StepSignal::Cancel(CancelReason::Deadline { budget: b }));
            }
        }
        if let Some(p) = self.preempt {
            if done >= p.at_step {
                return Err(StepSignal::Preempt);
            }
        }
        let next = done + 1;
        if self.inject_panic_at == Some(next) {
            panic!("injected transient fault at step {next}");
        }
        self.steps.set(next);
        Ok(())
    }

    /// Macro steps executed so far this attempt.
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }
}

/// What one attempt on a session produced.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// Natural completion.
    Done(Artifacts),
    /// Cooperative stop (deadline or client cancel).
    Cancelled(CancelReason),
    /// Deterministic failure (bad script, solver error) — not retried.
    Failed(String),
    /// The job panicked; the session is poisoned and rebuilt.
    Panicked(String),
    /// The scheduler's slice ran out: the attempt yielded cooperatively,
    /// handing back the last committed component set so a continuation
    /// can resume from it (possibly on another shard).
    Preempted {
        /// Serialized `cca_ckpt::ComponentSet` of the last commit;
        /// `None` if the slice ended before the first commit (the
        /// continuation then restarts from the initial condition).
        set: Option<Vec<u8>>,
        /// Absolute macro steps covered by `set` (0 when `None`).
        committed_steps: u64,
    },
}

/// One slot in the session pool.
pub struct Session {
    /// Stable slot index.
    pub id: usize,
    /// Incremented every time the slot is rebuilt after a poisoning.
    pub epoch: u64,
    /// Jobs attempted on this slot (all epochs).
    pub runs: u64,
    /// Virtual tick at which the slot next becomes free.
    pub free_at: u64,
    warm: Framework,
}

impl Session {
    /// Build slot `id` with a warm framework from `palette`.
    pub fn new(id: usize, palette: &PaletteFn) -> Self {
        Session {
            id,
            epoch: 0,
            runs: 0,
            free_at: 0,
            warm: palette(),
        }
    }

    /// Execute one attempt of `job` on this slot.
    ///
    /// Returns the outcome, the number of macro steps the attempt
    /// executed (its deterministic virtual-time cost), and the patch-
    /// executor counters of the framework the attempt ran on.
    pub fn execute(
        &mut self,
        job: &SimJob,
        token: CancelToken,
        inject_fault: bool,
        palette: &PaletteFn,
    ) -> (RunOutcome, u64, ExecutorStats) {
        self.execute_sliced(job, token, inject_fault, palette, None)
    }

    /// Execute one attempt of `job` with an optional preemption slice
    /// armed — the fleet's dispatch path for long jobs. Same contract as
    /// [`Session::execute`], plus the attempt may end in
    /// [`RunOutcome::Preempted`].
    pub fn execute_sliced(
        &mut self,
        job: &SimJob,
        token: CancelToken,
        inject_fault: bool,
        palette: &PaletteFn,
        preempt: Option<PreemptSpec>,
    ) -> (RunOutcome, u64, ExecutorStats) {
        // Take the warm framework and immediately re-warm the slot, so the
        // slot is whole again no matter how this attempt ends.
        let mut fw = std::mem::replace(&mut self.warm, palette());
        let armed = inject_fault && job.fault.fail_attempts > 0;
        let ctl = StepCtl::new(
            token,
            job.step_budget,
            armed.then_some(job.fault.panic_at_step),
        )
        .with_preempt(preempt);
        // An armed injection is *expected* to panic — keep its backtrace
        // off stderr. Genuine panics keep the default hook and print.
        let prev_hook = if armed {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            Some(prev)
        } else {
            None
        };
        let outcome = {
            let fw_ref = &mut fw;
            let ctl_ref = &ctl;
            match catch_unwind(AssertUnwindSafe(move || run_attempt(fw_ref, job, ctl_ref))) {
                Ok(Ok(artifacts)) => RunOutcome::Done(artifacts),
                Ok(Err(StepError::Cancelled(reason))) => RunOutcome::Cancelled(reason),
                Ok(Err(StepError::Failed(message))) => RunOutcome::Failed(message),
                Ok(Err(StepError::Preempted {
                    set,
                    committed_steps,
                })) => RunOutcome::Preempted {
                    set,
                    committed_steps,
                },
                Err(payload) => {
                    // Poisoned: never reuse anything from this epoch.
                    self.epoch += 1;
                    RunOutcome::Panicked(panic_message(payload))
                }
            }
        };
        if let Some(prev) = prev_hook {
            std::panic::set_hook(prev);
        }
        self.runs += 1;
        let exec = fw.executor().stats();
        (outcome, ctl.steps(), exec)
    }
}

/// Stepper-level error: a cooperative stop, a scheduler preemption, or a
/// hard failure.
pub(crate) enum StepError {
    Cancelled(CancelReason),
    Failed(String),
    Preempted {
        set: Option<Vec<u8>>,
        committed_steps: u64,
    },
}

fn run_attempt(fw: &mut Framework, job: &SimJob, ctl: &StepCtl) -> Result<Artifacts, StepError> {
    cca_core::script::run_script(fw, &job.script)
        .map_err(|e| StepError::Failed(format!("assembly failed: {e}")))?;
    for o in &job.overrides {
        fw.set_parameter(&o.instance, &o.key, o.value)
            .map_err(|e| {
                StepError::Failed(format!("override {}.{} failed: {e}", o.instance, o.key))
            })?;
    }
    crate::workload::execute(job, fw, ctl)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_ctl_enforces_budget_exactly() {
        let ctl = StepCtl::new(CancelToken::new(), Some(3), None);
        for _ in 0..3 {
            ctl.begin_step().unwrap();
        }
        assert_eq!(
            ctl.begin_step().unwrap_err(),
            StepSignal::Cancel(CancelReason::Deadline { budget: 3 })
        );
        assert_eq!(ctl.steps(), 3);
    }

    #[test]
    fn step_ctl_honors_cancellation() {
        let token = CancelToken::new();
        let ctl = StepCtl::new(token.clone(), None, None);
        ctl.begin_step().unwrap();
        token.cancel();
        assert_eq!(
            ctl.begin_step().unwrap_err(),
            StepSignal::Cancel(CancelReason::User)
        );
        assert_eq!(ctl.steps(), 1);
    }

    #[test]
    fn step_ctl_preempts_at_the_slice_boundary() {
        let ctl =
            StepCtl::new(CancelToken::new(), Some(10), None).with_preempt(Some(PreemptSpec {
                at_step: 2,
                mid_snapshot: false,
            }));
        ctl.begin_step().unwrap();
        ctl.begin_step().unwrap();
        assert_eq!(ctl.begin_step().unwrap_err(), StepSignal::Preempt);
        assert_eq!(ctl.steps(), 2);
        // Cancellation outranks preemption at the same edge.
        let token = CancelToken::new();
        let ctl = StepCtl::new(token.clone(), None, None).with_preempt(Some(PreemptSpec {
            at_step: 0,
            mid_snapshot: false,
        }));
        token.cancel();
        assert_eq!(
            ctl.begin_step().unwrap_err(),
            StepSignal::Cancel(CancelReason::User)
        );
    }

    #[test]
    fn fault_hook_panics_at_the_requested_step() {
        let ctl = StepCtl::new(CancelToken::new(), None, Some(2));
        ctl.begin_step().unwrap();
        let err = catch_unwind(AssertUnwindSafe(|| ctl.begin_step())).unwrap_err();
        assert!(panic_message(err).contains("injected transient fault at step 2"));
    }
}
