//! Framework error type.

use std::fmt;

/// Errors raised by the framework, the services registry, or the script
/// interpreter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CcaError {
    /// `instantiate` named a class absent from the palette.
    UnknownClass(String),
    /// An operation named an instance that was never instantiated.
    UnknownInstance(String),
    /// An instance name was reused.
    DuplicateInstance(String),
    /// A port name was looked up on a component that never declared it.
    UnknownPort {
        /// Instance searched.
        instance: String,
        /// Port name requested.
        port: String,
    },
    /// A port name was registered twice on the same component.
    DuplicatePort {
        /// Offending instance.
        instance: String,
        /// Offending port name.
        port: String,
    },
    /// `connect` tried to join ports of different interface types.
    TypeMismatch {
        /// Uses-side declared type.
        expected: String,
        /// Provides-side actual type.
        found: String,
    },
    /// A component invoked a uses-port that was never connected.
    NotConnected {
        /// Instance whose port is dangling.
        instance: String,
        /// Dangling uses-port.
        port: String,
    },
    /// A `go` was issued on a port that is not a `GoPort`.
    NotAGoPort(String),
    /// A component's `go` body reported a failure.
    GoFailed(String),
    /// The script interpreter hit a malformed line.
    Script {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// `parameter` was issued to a component without a `ParameterPort`.
    NoParameterPort(String),
}

impl fmt::Display for CcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcaError::UnknownClass(c) => write!(f, "unknown component class '{c}'"),
            CcaError::UnknownInstance(i) => write!(f, "unknown component instance '{i}'"),
            CcaError::DuplicateInstance(i) => write!(f, "instance name '{i}' already in use"),
            CcaError::UnknownPort { instance, port } => {
                write!(f, "component '{instance}' has no port '{port}'")
            }
            CcaError::DuplicatePort { instance, port } => {
                write!(f, "component '{instance}' registered port '{port}' twice")
            }
            CcaError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "port type mismatch: uses side wants {expected}, provider offers {found}"
                )
            }
            CcaError::NotConnected { instance, port } => {
                write!(f, "uses port '{port}' of '{instance}' is not connected")
            }
            CcaError::NotAGoPort(p) => write!(f, "port '{p}' is not a GoPort"),
            CcaError::GoFailed(m) => write!(f, "go() failed: {m}"),
            CcaError::Script { line, message } => write!(f, "script line {line}: {message}"),
            CcaError::NoParameterPort(i) => {
                write!(f, "component '{i}' exposes no ParameterPort")
            }
        }
    }
}

impl std::error::Error for CcaError {}
