//! The framework: component palette, instantiation, port wiring, drivers,
//! and the textual "arena" rendering that stands in for the CCAFFEINE GUI.

use crate::error::CcaError;
use crate::ports::{GoPort, ParameterPort};
use crate::services::{Component, Services};
use crate::signature::ClassSignature;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One unwired, non-optional uses-port: the reason a `go` would be refused.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DanglingPort {
    /// Instance whose slot is unwired.
    pub instance: String,
    /// The dangling uses-port name.
    pub port: String,
    /// The port type the slot expects, for actionable diagnostics.
    pub type_name: &'static str,
}

impl std::fmt::Display for DanglingPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{} (expects {})",
            self.instance, self.port, self.type_name
        )
    }
}

/// Factory producing a fresh component instance — the reproduction's
/// equivalent of a dynamically loadable `.so` in the palette.
pub type Factory = Box<dyn Fn() -> Box<dyn Component>>;

struct Instance {
    class: String,
    /// Kept alive for the lifetime of the framework; the component's state
    /// is reachable through the port objects it registered.
    _component: Box<dyn Component>,
    services: Services,
}

/// One CCAFFEINE framework instance.
///
/// Under SCMD parallelism, *each rank constructs its own `Framework`* from
/// the same script, so `P` identically configured frameworks exist — the
/// paper's "identical frameworks, containing the same components, are
/// instantiated on all P processors". The framework itself provides no
/// message passing (components do that through `cca-comm`).
pub struct Framework {
    palette: BTreeMap<String, Factory>,
    instances: BTreeMap<String, Instance>,
    /// Instantiation order, for stable arena rendering.
    order: Vec<String>,
    /// Shared per-component performance registry (TAU stand-in).
    profiler: crate::profile::Profiler,
    /// Shared patch-kernel executor, handed to every instance's
    /// [`Services`] (serial unless configured otherwise).
    executor: crate::executor::Executor,
}

impl Default for Framework {
    fn default() -> Self {
        let profiler = crate::profile::Profiler::new();
        let executor = crate::executor::Executor::new(profiler.clone());
        Framework {
            palette: BTreeMap::new(),
            instances: BTreeMap::new(),
            order: Vec::new(),
            profiler,
            executor,
        }
    }
}

impl Framework {
    /// Empty framework with an empty palette. The executor worker count is
    /// initialized from the `CCA_HYDRO_THREADS` environment variable
    /// ([`crate::executor::WORKERS_ENV`]) when set; the default is serial.
    pub fn new() -> Self {
        let fw = Self::default();
        let env = std::env::var(crate::executor::WORKERS_ENV).ok();
        fw.executor
            .set_workers(crate::executor::Executor::workers_from_env_value(
                env.as_deref(),
            ));
        fw
    }

    /// The framework's shared patch-kernel [`crate::executor::Executor`]
    /// (the same handle every instantiated component receives).
    pub fn executor(&self) -> crate::executor::Executor {
        self.executor.clone()
    }

    /// Set the patch-kernel worker count for the whole assembly (clamped
    /// to at least 1; 1 means serial inline execution). Components see the
    /// change on their next executor run.
    pub fn set_workers(&self, workers: usize) {
        self.executor.set_workers(workers);
    }

    /// Add a component class to the palette.
    pub fn register_class<F>(&mut self, class: &str, factory: F)
    where
        F: Fn() -> Box<dyn Component> + 'static,
    {
        self.palette.insert(class.to_string(), Box::new(factory));
    }

    /// Classes available for instantiation (sorted).
    pub fn palette_classes(&self) -> Vec<String> {
        self.palette.keys().cloned().collect()
    }

    /// Harvest the declared port signature of one palette class by
    /// instantiating it into a scratch [`Services`] registry (the instance
    /// is dropped immediately; the framework is not modified). This is the
    /// manifest static analysis tools type-check scripts against.
    pub fn class_signature(&self, class: &str) -> Result<ClassSignature, CcaError> {
        let factory = self
            .palette
            .get(class)
            .ok_or_else(|| CcaError::UnknownClass(class.to_string()))?;
        let mut component = factory();
        let services = Services::new(&format!("<signature-probe:{class}>"));
        component.set_services(services.clone());
        Ok(ClassSignature::harvest(class, &services))
    }

    /// Signatures for every class in the palette (sorted by class name).
    pub fn class_signatures(&self) -> BTreeMap<String, ClassSignature> {
        self.palette
            .keys()
            .map(|class| {
                let sig = self
                    .class_signature(class)
                    .expect("palette key is a known class");
                (class.clone(), sig)
            })
            .collect()
    }

    /// Create an instance of `class` named `name` and run its
    /// `set_services`.
    pub fn instantiate(&mut self, class: &str, name: &str) -> Result<(), CcaError> {
        if self.instances.contains_key(name) {
            return Err(CcaError::DuplicateInstance(name.to_string()));
        }
        let factory = self
            .palette
            .get(class)
            .ok_or_else(|| CcaError::UnknownClass(class.to_string()))?;
        let mut component = factory();
        let services = Services::with_runtime(name, self.profiler.clone(), self.executor.clone());
        component.set_services(services.clone());
        self.instances.insert(
            name.to_string(),
            Instance {
                class: class.to_string(),
                _component: component,
                services,
            },
        );
        self.order.push(name.to_string());
        Ok(())
    }

    /// The services registry of instance `name` (for tests and drivers).
    pub fn services(&self, name: &str) -> Result<Services, CcaError> {
        Ok(self
            .instances
            .get(name)
            .ok_or_else(|| CcaError::UnknownInstance(name.to_string()))?
            .services
            .clone())
    }

    /// The palette class an instance was created from.
    pub fn class_of(&self, name: &str) -> Result<String, CcaError> {
        Ok(self
            .instances
            .get(name)
            .ok_or_else(|| CcaError::UnknownInstance(name.to_string()))?
            .class
            .clone())
    }

    /// Instance names in instantiation order.
    pub fn instance_names(&self) -> Vec<String> {
        self.order.clone()
    }

    /// Wire `user.uses_port` to `provider.provides_port`.
    ///
    /// Type compatibility is checked: both sides must have declared the same
    /// port type (`Rc<dyn SameTrait>`). On success the provider's `Rc` is
    /// cloned into the user's slot — the "movement of (pointers to)
    /// interfaces" of paper §2.
    pub fn connect(
        &mut self,
        user: &str,
        uses_port: &str,
        provider: &str,
        provides_port: &str,
    ) -> Result<(), CcaError> {
        let (dup, p_type_id, p_type_name) = {
            let prov = self
                .instances
                .get(provider)
                .ok_or_else(|| CcaError::UnknownInstance(provider.to_string()))?;
            let st = prov.services.state.borrow();
            let po = st
                .provides
                .get(provides_port)
                .ok_or_else(|| CcaError::UnknownPort {
                    instance: provider.to_string(),
                    port: provides_port.to_string(),
                })?;
            (po.duplicate(), po.type_id, po.type_name)
        };
        let user_inst = self
            .instances
            .get(user)
            .ok_or_else(|| CcaError::UnknownInstance(user.to_string()))?;
        let mut st = user_inst.services.state.borrow_mut();
        let slot = st
            .uses
            .get_mut(uses_port)
            .ok_or_else(|| CcaError::UnknownPort {
                instance: user.to_string(),
                port: uses_port.to_string(),
            })?;
        if slot.type_id != p_type_id {
            return Err(CcaError::TypeMismatch {
                expected: slot.type_name.to_string(),
                found: p_type_name.to_string(),
            });
        }
        slot.connected = Some(dup);
        slot.connected_to = Some((provider.to_string(), provides_port.to_string()));
        Ok(())
    }

    /// Undo a connection; subsequent `get_port` on the user errors with
    /// `NotConnected`.
    pub fn disconnect(&mut self, user: &str, uses_port: &str) -> Result<(), CcaError> {
        let user_inst = self
            .instances
            .get(user)
            .ok_or_else(|| CcaError::UnknownInstance(user.to_string()))?;
        let mut st = user_inst.services.state.borrow_mut();
        let slot = st
            .uses
            .get_mut(uses_port)
            .ok_or_else(|| CcaError::UnknownPort {
                instance: user.to_string(),
                port: uses_port.to_string(),
            })?;
        slot.connected = None;
        slot.connected_to = None;
        Ok(())
    }

    /// Uses-ports that are still dangling, as `(instance, port)` pairs,
    /// sorted by instance then port for deterministic diagnostics. The
    /// script interpreter refuses `go` while any exist.
    pub fn dangling_uses_ports(&self) -> Vec<(String, String)> {
        self.dangling_uses_ports_detailed()
            .into_iter()
            .map(|d| (d.instance, d.port))
            .collect()
    }

    /// Like [`Framework::dangling_uses_ports`] but carrying each slot's
    /// expected port type, sorted by `(instance, port)`.
    pub fn dangling_uses_ports_detailed(&self) -> Vec<DanglingPort> {
        let mut out = Vec::new();
        for name in &self.order {
            let inst = &self.instances[name];
            let st = inst.services.state.borrow();
            for (pname, slot) in &st.uses {
                if slot.connected.is_none() && !slot.optional {
                    out.push(DanglingPort {
                        instance: name.clone(),
                        port: pname.clone(),
                        type_name: slot.type_name,
                    });
                }
            }
        }
        out.sort();
        out
    }

    /// The framework's shared [`crate::profile::Profiler`]. Enable it
    /// before `go` to collect the per-component timing report.
    pub fn profiler(&self) -> crate::profile::Profiler {
        self.profiler.clone()
    }

    /// Invoke `go()` on a provides-port of type [`GoPort`].
    pub fn go(&self, instance: &str, port: &str) -> Result<(), CcaError> {
        let inst = self
            .instances
            .get(instance)
            .ok_or_else(|| CcaError::UnknownInstance(instance.to_string()))?;
        let go: Rc<dyn GoPort> = {
            let st = inst.services.state.borrow();
            let po = st.provides.get(port).ok_or_else(|| CcaError::UnknownPort {
                instance: instance.to_string(),
                port: port.to_string(),
            })?;
            po.downcast_ref::<Rc<dyn GoPort>>()
                .ok_or_else(|| CcaError::NotAGoPort(port.to_string()))?
                .clone()
        };
        let _scope = self.profiler.scope(&format!("{instance}.{port}"));
        go.go().map_err(CcaError::GoFailed)
    }

    /// Fetch a provides-port directly from the framework — what the
    /// CCAFFEINE driver shell does when the user pokes a component from
    /// the command line. `P` must match the registered port type exactly
    /// (`Rc<dyn Trait>`).
    pub fn get_provides_port<P: Clone + 'static>(
        &self,
        instance: &str,
        port: &str,
    ) -> Result<P, CcaError> {
        let inst = self
            .instances
            .get(instance)
            .ok_or_else(|| CcaError::UnknownInstance(instance.to_string()))?;
        let st = inst.services.state.borrow();
        let po = st.provides.get(port).ok_or_else(|| CcaError::UnknownPort {
            instance: instance.to_string(),
            port: port.to_string(),
        })?;
        po.downcast_ref::<P>()
            .cloned()
            .ok_or_else(|| CcaError::TypeMismatch {
                expected: std::any::type_name::<P>().to_string(),
                found: po.type_name.to_string(),
            })
    }

    /// Set a named parameter on an instance through any provides-port of
    /// type [`ParameterPort`] (the first one found).
    pub fn set_parameter(&self, instance: &str, key: &str, value: f64) -> Result<(), CcaError> {
        let inst = self
            .instances
            .get(instance)
            .ok_or_else(|| CcaError::UnknownInstance(instance.to_string()))?;
        let st = inst.services.state.borrow();
        for po in st.provides.values() {
            if let Some(p) = po.downcast_ref::<Rc<dyn ParameterPort>>() {
                p.set_parameter(key, value);
                return Ok(());
            }
        }
        Err(CcaError::NoParameterPort(instance.to_string()))
    }

    /// Text rendering of the assembly — the stand-in for the GUI "arena"
    /// screenshots (Figs 1, 2, 5): every component as a box with
    /// provides-ports on the left, uses-ports on the right, followed by the
    /// connection list.
    pub fn render_arena(&self) -> String {
        let mut out = String::new();
        out.push_str("=== arena ===\n");
        for name in &self.order {
            let inst = &self.instances[name];
            let st = inst.services.state.borrow();
            out.push_str(&format!("[{name} : {}]\n", inst.class));
            for p in st.provides.keys() {
                out.push_str(&format!("  provides> {p}\n"));
            }
            for (u, slot) in &st.uses {
                match &slot.connected_to {
                    Some((pi, pp)) => out.push_str(&format!("  uses>     {u} -> {pi}.{pp}\n")),
                    None => out.push_str(&format!("  uses>     {u} -> (dangling)\n")),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    trait Counter {
        fn bump(&self) -> u32;
    }
    struct C {
        n: Cell<u32>,
    }
    impl Counter for C {
        fn bump(&self) -> u32 {
            self.n.set(self.n.get() + 1);
            self.n.get()
        }
    }

    struct Prov;
    impl Component for Prov {
        fn set_services(&mut self, s: Services) {
            s.add_provides_port::<Rc<dyn Counter>>("ctr", Rc::new(C { n: Cell::new(0) }));
        }
    }

    struct User;
    impl Component for User {
        fn set_services(&mut self, s: Services) {
            s.register_uses_port::<Rc<dyn Counter>>("ctr-in");
        }
    }

    trait Other {
        #[allow(dead_code)]
        fn x(&self);
    }
    struct WrongUser;
    impl Component for WrongUser {
        fn set_services(&mut self, s: Services) {
            s.register_uses_port::<Rc<dyn Other>>("ctr-in");
        }
    }

    fn fw() -> Framework {
        let mut fw = Framework::new();
        fw.register_class("Prov", || Box::new(Prov));
        fw.register_class("User", || Box::new(User));
        fw.register_class("WrongUser", || Box::new(WrongUser));
        fw
    }

    #[test]
    fn connect_moves_shared_rc() {
        let mut fw = fw();
        fw.instantiate("Prov", "p").unwrap();
        fw.instantiate("User", "u1").unwrap();
        fw.instantiate("User", "u2").unwrap();
        fw.connect("u1", "ctr-in", "p", "ctr").unwrap();
        fw.connect("u2", "ctr-in", "p", "ctr").unwrap();
        // Both users observe the same underlying instance (peer sharing).
        let c1: Rc<dyn Counter> = fw.services("u1").unwrap().get_port("ctr-in").unwrap();
        let c2: Rc<dyn Counter> = fw.services("u2").unwrap().get_port("ctr-in").unwrap();
        assert_eq!(c1.bump(), 1);
        assert_eq!(c2.bump(), 2);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut fw = fw();
        fw.instantiate("Prov", "p").unwrap();
        fw.instantiate("WrongUser", "w").unwrap();
        let err = fw.connect("w", "ctr-in", "p", "ctr").unwrap_err();
        assert!(matches!(err, CcaError::TypeMismatch { .. }), "{err}");
    }

    #[test]
    fn unknown_names_are_reported() {
        let mut fw = fw();
        assert!(matches!(
            fw.instantiate("Nope", "x").unwrap_err(),
            CcaError::UnknownClass(_)
        ));
        fw.instantiate("Prov", "p").unwrap();
        assert!(matches!(
            fw.instantiate("Prov", "p").unwrap_err(),
            CcaError::DuplicateInstance(_)
        ));
        assert!(matches!(
            fw.connect("p", "x", "ghost", "y").unwrap_err(),
            CcaError::UnknownInstance(_)
        ));
        assert!(matches!(
            fw.connect("p", "nope", "p", "ctr").unwrap_err(),
            CcaError::UnknownPort { .. }
        ));
    }

    #[test]
    fn disconnect_restores_dangling() {
        let mut fw = fw();
        fw.instantiate("Prov", "p").unwrap();
        fw.instantiate("User", "u").unwrap();
        assert_eq!(fw.dangling_uses_ports().len(), 1);
        fw.connect("u", "ctr-in", "p", "ctr").unwrap();
        assert!(fw.dangling_uses_ports().is_empty());
        fw.disconnect("u", "ctr-in").unwrap();
        assert_eq!(
            fw.dangling_uses_ports(),
            vec![("u".to_string(), "ctr-in".to_string())]
        );
        let err = fw
            .services("u")
            .unwrap()
            .get_port::<Rc<dyn Counter>>("ctr-in")
            .err()
            .unwrap();
        assert!(matches!(err, CcaError::NotConnected { .. }));
    }

    #[test]
    fn arena_renders_wiring() {
        let mut fw = fw();
        fw.instantiate("Prov", "p").unwrap();
        fw.instantiate("User", "u").unwrap();
        fw.connect("u", "ctr-in", "p", "ctr").unwrap();
        let arena = fw.render_arena();
        assert!(arena.contains("[p : Prov]"));
        assert!(arena.contains("provides> ctr"));
        assert!(arena.contains("uses>     ctr-in -> p.ctr"));
    }

    struct Driver;
    impl GoPort for Driver {
        fn go(&self) -> Result<(), String> {
            Ok(())
        }
    }
    struct FailingDriver;
    impl GoPort for FailingDriver {
        fn go(&self) -> Result<(), String> {
            Err("boom".into())
        }
    }
    struct D;
    impl Component for D {
        fn set_services(&mut self, s: Services) {
            s.add_provides_port::<Rc<dyn GoPort>>("go", Rc::new(Driver));
            s.add_provides_port::<Rc<dyn GoPort>>("go-fail", Rc::new(FailingDriver));
        }
    }

    #[test]
    fn go_dispatches_and_propagates_failures() {
        let mut fw = Framework::new();
        fw.register_class("D", || Box::new(D));
        fw.register_class("Prov", || Box::new(Prov));
        fw.instantiate("D", "d").unwrap();
        fw.instantiate("Prov", "p").unwrap();
        fw.go("d", "go").unwrap();
        assert!(matches!(
            fw.go("d", "go-fail").unwrap_err(),
            CcaError::GoFailed(_)
        ));
        assert!(matches!(
            fw.go("p", "ctr").unwrap_err(),
            CcaError::NotAGoPort(_)
        ));
    }
}
