//! The rc-script interpreter: assemble and run an application from text,
//! the way a CCAFFEINE job is driven by a script fed to every framework
//! instance (paper §2: "A CCAFFEINE code can be assembled and run through a
//! script or a GUI... Any action performed in the GUI is converted to the
//! corresponding script command").
//!
//! Grammar (one command per line, `#` comments):
//!
//! ```text
//! instantiate <Class> <instance>
//! connect <user> <usesPort> <provider> <providesPort>
//! parameter <instance> <key> <number>
//! disconnect <user> <usesPort>
//! arena                     # print the wiring (returned in the transcript)
//! go <instance> <goPort>    # refuses to run while uses-ports dangle
//! ```

use crate::error::CcaError;
use crate::framework::Framework;

/// Output of a script run: anything the script asked to display.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transcript {
    /// Arena renderings, in order of `arena` commands.
    pub arenas: Vec<String>,
    /// Number of `go` commands executed.
    pub go_count: usize,
}

/// Execute `script` against `fw`.
///
/// `go` first verifies that no uses-port in the whole assembly is dangling,
/// catching wiring mistakes at launch rather than as mid-run panics. Every
/// error — syntactic or semantic — is reported as [`CcaError::Script`] with
/// the 1-based line it was triggered by.
pub fn run_script(fw: &mut Framework, script: &str) -> Result<Transcript, CcaError> {
    let mut transcript = Transcript::default();
    for (idx, raw) in script.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tok: Vec<&str> = line.split_whitespace().collect();
        let err = |message: &str| CcaError::Script {
            line: line_no,
            message: message.to_string(),
        };
        // Attribute framework-level failures (unknown class, duplicate
        // instance, type mismatch, ...) to the script line that caused them.
        let wrap = |e: CcaError| match e {
            CcaError::Script { .. } => e,
            other => CcaError::Script {
                line: line_no,
                message: other.to_string(),
            },
        };
        match tok[0] {
            "instantiate" => {
                if tok.len() != 3 {
                    return Err(err("usage: instantiate <Class> <instance>"));
                }
                fw.instantiate(tok[1], tok[2]).map_err(wrap)?;
            }
            "connect" => {
                if tok.len() != 5 {
                    return Err(err(
                        "usage: connect <user> <usesPort> <provider> <providesPort>",
                    ));
                }
                fw.connect(tok[1], tok[2], tok[3], tok[4]).map_err(wrap)?;
            }
            "disconnect" => {
                if tok.len() != 3 {
                    return Err(err("usage: disconnect <user> <usesPort>"));
                }
                fw.disconnect(tok[1], tok[2]).map_err(wrap)?;
            }
            "parameter" => {
                if tok.len() != 4 {
                    return Err(err("usage: parameter <instance> <key> <number>"));
                }
                let value: f64 = tok[3]
                    .parse()
                    .map_err(|_| err(&format!("'{}' is not a number", tok[3])))?;
                fw.set_parameter(tok[1], tok[2], value).map_err(wrap)?;
            }
            "arena" => {
                if tok.len() != 1 {
                    return Err(err("usage: arena"));
                }
                transcript.arenas.push(fw.render_arena());
            }
            "go" => {
                if tok.len() != 3 {
                    return Err(err("usage: go <instance> <goPort>"));
                }
                let dangling = fw.dangling_uses_ports_detailed();
                if !dangling.is_empty() {
                    let list: Vec<String> = dangling.iter().map(|d| d.to_string()).collect();
                    return Err(err(&format!(
                        "cannot go: dangling uses ports: {}",
                        list.join(", ")
                    )));
                }
                fw.go(tok[1], tok[2]).map_err(wrap)?;
                transcript.go_count += 1;
            }
            other => return Err(err(&format!("unknown command '{other}'"))),
        }
    }
    Ok(transcript)
}

/// Like [`run_script`], but a caller-supplied static lint pass must accept
/// the whole script before a single command executes.
///
/// `cca-core` defines the seam; the `cca-analyze` crate supplies the
/// analyzer that plugs into it (its `run_script_checked` wraps this with
/// the full multi-pass checker). Keeping the hook here lets any embedder
/// enforce reject-before-run semantics without depending on the analyzer.
pub fn run_script_checked<L>(
    fw: &mut Framework,
    script: &str,
    lint: L,
) -> Result<Transcript, CcaError>
where
    L: FnOnce(&Framework, &str) -> Result<(), CcaError>,
{
    lint(fw, script)?;
    run_script(fw, script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::{GoPort, ParameterPort, ParameterStore};
    use crate::services::{Component, Services};
    use std::cell::Cell;
    use std::rc::Rc;

    trait Rhs {
        fn eval(&self) -> f64;
    }
    struct RhsImpl {
        k: Rc<ParameterStore>,
    }
    impl Rhs for RhsImpl {
        fn eval(&self) -> f64 {
            self.k.get_parameter("k").unwrap_or(1.0)
        }
    }

    struct Physics;
    impl Component for Physics {
        fn set_services(&mut self, s: Services) {
            let store = Rc::new(ParameterStore::new());
            s.add_provides_port::<Rc<dyn ParameterPort>>("params", store.clone());
            s.add_provides_port::<Rc<dyn Rhs>>("rhs", Rc::new(RhsImpl { k: store }));
        }
    }

    struct DriverPort {
        services: Services,
        ran: Rc<Cell<Option<f64>>>,
    }
    impl GoPort for DriverPort {
        fn go(&self) -> Result<(), String> {
            let rhs: Rc<dyn Rhs> = self.services.get_port("rhs").map_err(|e| e.to_string())?;
            self.ran.set(Some(rhs.eval()));
            Ok(())
        }
    }
    struct Driver {
        ran: Rc<Cell<Option<f64>>>,
    }
    impl Component for Driver {
        fn set_services(&mut self, s: Services) {
            s.register_uses_port::<Rc<dyn Rhs>>("rhs");
            s.add_provides_port::<Rc<dyn GoPort>>(
                "go",
                Rc::new(DriverPort {
                    services: s.clone(),
                    ran: self.ran.clone(),
                }),
            );
        }
    }

    fn fw(ran: Rc<Cell<Option<f64>>>) -> Framework {
        let mut fw = Framework::new();
        fw.register_class("Physics", || Box::new(Physics));
        fw.register_class("Driver", move || Box::new(Driver { ran: ran.clone() }));
        fw
    }

    #[test]
    fn full_assembly_script_runs() {
        let ran = Rc::new(Cell::new(None));
        let mut fw = fw(ran.clone());
        let t = run_script(
            &mut fw,
            "# assemble the toy code\n\
             instantiate Physics phys\n\
             instantiate Driver drv\n\
             connect drv rhs phys rhs\n\
             parameter phys k 3.5\n\
             arena\n\
             go drv go\n",
        )
        .unwrap();
        assert_eq!(t.go_count, 1);
        assert_eq!(ran.get(), Some(3.5));
        assert!(t.arenas[0].contains("uses>     rhs -> phys.rhs"));
    }

    #[test]
    fn go_refuses_dangling_ports() {
        let ran = Rc::new(Cell::new(None));
        let mut fw = fw(ran);
        let err = run_script(
            &mut fw,
            "instantiate Physics phys\n\
             instantiate Driver drv\n\
             go drv go\n",
        )
        .unwrap_err();
        match err {
            CcaError::Script { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("dangling"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let ran = Rc::new(Cell::new(None));
        let mut fw = fw(ran);
        let err = run_script(&mut fw, "\n\nfrobnicate x\n").unwrap_err();
        assert!(matches!(err, CcaError::Script { line: 3, .. }), "{err}");
        let mut fw2 = Framework::new();
        let err = run_script(&mut fw2, "instantiate OnlyOneArg\n").unwrap_err();
        assert!(matches!(err, CcaError::Script { line: 1, .. }));
    }

    #[test]
    fn inline_comments_after_commands_are_ignored() {
        let ran = Rc::new(Cell::new(None));
        let mut fw = fw(ran.clone());
        let t = run_script(
            &mut fw,
            "instantiate Physics phys   # the physics half\n\
             instantiate Driver drv # and its driver\n\
             connect drv rhs phys rhs# no space before the comment\n\
             go drv go  # launch\n",
        )
        .unwrap();
        assert_eq!(t.go_count, 1);
        assert!(ran.get().is_some());
    }

    #[test]
    fn duplicate_instance_reports_the_offending_line() {
        let ran = Rc::new(Cell::new(None));
        let mut fw = fw(ran);
        let err = run_script(
            &mut fw,
            "instantiate Physics phys\n\
             # a comment line\n\
             instantiate Driver phys\n",
        )
        .unwrap_err();
        match err {
            CcaError::Script { line, message } => {
                assert_eq!(line, 3, "duplicate must be blamed on its own line");
                assert!(message.contains("'phys'"), "{message}");
                assert!(message.contains("already in use"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn parameter_on_unknown_instance_carries_line_and_name() {
        let ran = Rc::new(Cell::new(None));
        let mut fw = fw(ran);
        let err = run_script(
            &mut fw,
            "instantiate Physics phys\n\
             parameter ghost k 1.0\n",
        )
        .unwrap_err();
        match err {
            CcaError::Script { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("'ghost'"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn disconnect_of_never_connected_port_is_a_noop() {
        let ran = Rc::new(Cell::new(None));
        let mut fw = fw(ran);
        // The interpreter accepts it (the slot just stays empty); the static
        // analyzer is the layer that flags it as suspicious.
        run_script(
            &mut fw,
            "instantiate Driver drv\n\
             disconnect drv rhs\n",
        )
        .unwrap();
        assert_eq!(fw.dangling_uses_ports().len(), 1);
    }

    #[test]
    fn dangling_diagnostic_is_sorted_and_typed() {
        let ran = Rc::new(Cell::new(None));
        let mut fw = fw(ran);
        let err = run_script(
            &mut fw,
            "instantiate Driver z\n\
             instantiate Driver a\n\
             go a go\n",
        )
        .unwrap_err();
        match err {
            CcaError::Script { line, message } => {
                assert_eq!(line, 3);
                // Sorted by instance regardless of instantiation order, and
                // each entry names the expected port type.
                let a = message.find("a.rhs").expect("a.rhs listed");
                let z = message.find("z.rhs").expect("z.rhs listed");
                assert!(a < z, "expected sorted order in: {message}");
                assert!(message.contains("expects"), "{message}");
                assert!(message.contains("Rhs"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn run_script_checked_lints_before_running() {
        let ran = Rc::new(Cell::new(None));
        let mut fw = fw(ran.clone());
        let script = "instantiate Physics phys\n\
                      instantiate Driver drv\n\
                      connect drv rhs phys rhs\n\
                      go drv go\n";
        // A rejecting linter stops the run before any command executes.
        let err = run_script_checked(&mut fw, script, |_, _| {
            Err(CcaError::Script {
                line: 1,
                message: "rejected by lint".into(),
            })
        })
        .unwrap_err();
        assert!(matches!(err, CcaError::Script { line: 1, .. }), "{err}");
        assert!(fw.instance_names().is_empty(), "nothing may have executed");
        assert_eq!(ran.get(), None);
        // An accepting linter lets the script run normally.
        let t = run_script_checked(&mut fw, script, |_, _| Ok(())).unwrap();
        assert_eq!(t.go_count, 1);
        assert!(ran.get().is_some());
    }

    #[test]
    fn component_swap_without_recompilation() {
        // The paper's §4.3 claim: replace GodunovFlux with EFMFlux purely at
        // assembly time. Model it with two Physics classes in the palette
        // and two scripts differing only in the instantiate line.
        trait Flux {
            fn name(&self) -> &'static str;
        }
        struct F1;
        impl Flux for F1 {
            fn name(&self) -> &'static str {
                "godunov"
            }
        }
        struct F2;
        impl Flux for F2 {
            fn name(&self) -> &'static str {
                "efm"
            }
        }
        struct C1;
        impl Component for C1 {
            fn set_services(&mut self, s: Services) {
                s.add_provides_port::<Rc<dyn Flux>>("flux", Rc::new(F1));
            }
        }
        struct C2;
        impl Component for C2 {
            fn set_services(&mut self, s: Services) {
                s.add_provides_port::<Rc<dyn Flux>>("flux", Rc::new(F2));
            }
        }
        for (class, expect) in [("GodunovFlux", "godunov"), ("EFMFlux", "efm")] {
            let mut fw = Framework::new();
            fw.register_class("GodunovFlux", || Box::new(C1));
            fw.register_class("EFMFlux", || Box::new(C2));
            run_script(&mut fw, &format!("instantiate {class} flux\n")).unwrap();
            let port: Rc<dyn Flux> = {
                let s = fw.services("flux").unwrap();
                let st = s.state.borrow();
                st.provides
                    .get("flux")
                    .unwrap()
                    .downcast_ref::<Rc<dyn Flux>>()
                    .unwrap()
                    .clone()
            };
            assert_eq!(port.name(), expect);
        }
    }
}
