//! Per-component performance instrumentation — the reproduction of the
//! paper's future-work item (4): "By using TAU, we intend to characterize
//! the performance characteristics of individual components and their
//! assemblies."
//!
//! A [`Profiler`] is a cheap shared registry of named timers. The
//! framework owns one and hands it to every component through its
//! [`crate::Services`]; components bracket their port bodies with
//! [`Profiler::scope`] guards. [`Profiler::report`] renders the
//! per-component table (calls, total time, mean time), the assembly-level
//! view TAU would give.
//!
//! Beyond the TAU-style means, every timer keeps a bounded **ring-buffer
//! sample reservoir** (the most recent [`SAMPLE_CAPACITY`] durations), so
//! latency *tails* — max, p50/p95/p99 — are available through
//! [`Profiler::percentiles`] and the report. Serving layers need tails,
//! not means: one slow job hiding behind a flat average is exactly the
//! pathology a mean cannot show.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// Number of most-recent samples each timer retains for percentile
/// queries. Old samples are overwritten ring-buffer style, so long runs
/// report the *recent* latency distribution at O(1) memory per timer.
pub const SAMPLE_CAPACITY: usize = 1024;

/// Accumulated statistics of one named timer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimerStat {
    /// Number of completed scopes.
    pub calls: u64,
    /// Total seconds inside the scope.
    pub total_secs: f64,
    /// Longest single scope, seconds.
    pub max_secs: f64,
    /// Scratch-pool misses (real heap allocations, see
    /// [`crate::scratch`]) attributed to this scope. A hot loop that
    /// reports a non-zero steady-state value here is re-allocating
    /// workspaces it should be reusing.
    pub alloc_events: u64,
    /// Mesh cells the scope has swept, accumulated by kernels through
    /// [`Profiler::add_cells`]. Together with `total_secs` this yields
    /// the throughput column (cells/s) in [`Profiler::report`] — the
    /// figure of merit tiling and layout work is judged by.
    pub cells_processed: u64,
}

impl TimerStat {
    /// Throughput in cells per second, or `None` until the timer has
    /// both swept cells and spent measurable time.
    pub fn cells_per_sec(&self) -> Option<f64> {
        if self.cells_processed > 0 && self.total_secs > 0.0 {
            Some(self.cells_processed as f64 / self.total_secs)
        } else {
            None
        }
    }
}

/// One timer's full record: the running totals plus the sample ring.
#[derive(Default)]
struct TimerRecord {
    stat: TimerStat,
    /// Ring buffer of the most recent samples; `stat.calls % capacity`
    /// marks the overwrite cursor once the ring is full.
    samples: Vec<f64>,
}

impl TimerRecord {
    fn record(&mut self, secs: f64, alloc_events: u64) {
        self.stat.alloc_events += alloc_events;
        if self.samples.len() < SAMPLE_CAPACITY {
            self.samples.push(secs);
        } else {
            let slot = (self.stat.calls as usize) % SAMPLE_CAPACITY;
            self.samples[slot] = secs;
        }
        self.stat.calls += 1;
        self.stat.total_secs += secs;
        if secs > self.stat.max_secs {
            self.stat.max_secs = secs;
        }
    }
}

#[derive(Default)]
struct ProfilerState {
    timers: BTreeMap<String, TimerRecord>,
    enabled: bool,
}

/// Shared timing registry. Cloning shares the underlying state.
#[derive(Clone, Default)]
pub struct Profiler {
    state: Rc<RefCell<ProfilerState>>,
}

impl Profiler {
    /// New, disabled profiler (scopes cost one branch while disabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn timing on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.state.borrow_mut().enabled = enabled;
    }

    /// Is timing on?
    pub fn is_enabled(&self) -> bool {
        self.state.borrow().enabled
    }

    /// Start a scope named `component.port`; the returned guard records
    /// elapsed time when dropped. Returns `None` (no overhead) while
    /// disabled.
    pub fn scope(&self, name: &str) -> Option<ProfileScope> {
        if !self.is_enabled() {
            return None;
        }
        Some(ProfileScope {
            profiler: self.clone(),
            name: name.to_string(),
            start: Instant::now(),
            alloc_start: crate::scratch::thread_alloc_events(),
        })
    }

    /// Directly record an externally measured duration.
    pub fn record(&self, name: &str, secs: f64) {
        self.record_with_allocs(name, secs, 0);
    }

    /// Record a duration together with the number of scratch-pool misses
    /// (heap allocations) the region incurred — what [`ProfileScope`]
    /// reports automatically from the [`crate::scratch`] counter delta.
    pub fn record_with_allocs(&self, name: &str, secs: f64, alloc_events: u64) {
        let mut st = self.state.borrow_mut();
        st.timers
            .entry(name.to_string())
            .or_default()
            .record(secs, alloc_events);
    }

    /// Attribute `cells` swept mesh cells to the named timer. Kernel
    /// call sites call this next to their [`Profiler::scope`] guard so
    /// the report can derive per-scope throughput. No-op while disabled,
    /// mirroring `scope`.
    pub fn add_cells(&self, name: &str, cells: u64) {
        let mut st = self.state.borrow_mut();
        if !st.enabled {
            return;
        }
        st.timers
            .entry(name.to_string())
            .or_default()
            .stat
            .cells_processed += cells;
    }

    /// Snapshot of one timer.
    pub fn stat(&self, name: &str) -> Option<TimerStat> {
        self.state.borrow().timers.get(name).map(|r| r.stat)
    }

    /// Snapshot of everything, name-sorted.
    pub fn stats(&self) -> Vec<(String, TimerStat)> {
        self.state
            .borrow()
            .timers
            .iter()
            .map(|(k, v)| (k.clone(), v.stat))
            .collect()
    }

    /// Percentiles of one timer's sample reservoir by nearest-rank, e.g.
    /// `percentiles("a.go", &[0.50, 0.95, 0.99])`. Quantiles outside
    /// `[0, 1]` are clamped. `None` if the timer has never fired. The
    /// reservoir holds the most recent [`SAMPLE_CAPACITY`] samples, so on
    /// long runs this is the *recent* distribution.
    pub fn percentiles(&self, name: &str, quantiles: &[f64]) -> Option<Vec<f64>> {
        let st = self.state.borrow();
        let rec = st.timers.get(name)?;
        if rec.samples.is_empty() {
            return None;
        }
        let mut sorted = rec.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        Some(
            quantiles
                .iter()
                .map(|q| {
                    let q = q.clamp(0.0, 1.0);
                    // Nearest-rank: smallest sample with cumulative
                    // frequency >= q.
                    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                    sorted[rank - 1]
                })
                .collect(),
        )
    }

    /// Merge every timer of `other` into this profiler: counters add,
    /// maxima take the larger value, and the sample reservoirs
    /// concatenate under the usual ring-buffer bound — so percentile
    /// queries on the merged profiler see both sides' samples.
    ///
    /// This is the multi-shard aggregation primitive: each serve shard
    /// records into its own profiler, and a fleet-level snapshot absorbs
    /// the shard profilers into a fresh one. Because absorption reads
    /// `other` without modifying it, and the destination starts empty,
    /// each sample is counted exactly once per snapshot — retried jobs
    /// are not double-counted (their timers only fire on the terminal
    /// attempt) and repeated snapshots do not compound.
    pub fn absorb(&self, other: &Profiler) {
        if Rc::ptr_eq(&self.state, &other.state) {
            return; // self-absorption would double every counter
        }
        let src = other.state.borrow();
        let mut dst = self.state.borrow_mut();
        for (name, rec) in &src.timers {
            let d = dst.timers.entry(name.clone()).or_default();
            d.stat.total_secs += rec.stat.total_secs;
            d.stat.alloc_events += rec.stat.alloc_events;
            d.stat.cells_processed += rec.stat.cells_processed;
            if rec.stat.max_secs > d.stat.max_secs {
                d.stat.max_secs = rec.stat.max_secs;
            }
            // Replay the source samples in recording order so the merged
            // reservoir keeps the same most-recent-window semantics.
            for &s in &rec.samples {
                if d.samples.len() < SAMPLE_CAPACITY {
                    d.samples.push(s);
                } else {
                    let slot = (d.stat.calls as usize) % SAMPLE_CAPACITY;
                    d.samples[slot] = s;
                }
                d.stat.calls += 1;
            }
            // Calls beyond the reservoir window (long runs) still count.
            d.stat.calls += rec.stat.calls - rec.samples.len() as u64;
        }
    }

    /// Forget all recorded data (keeps the enabled flag).
    pub fn reset(&self) {
        self.state.borrow_mut().timers.clear();
    }

    /// The TAU-style report: one row per timer, sorted by total time
    /// descending. Columns: calls, total, mean, then the tail — max and
    /// p50/p95/p99 from the sample reservoir.
    pub fn report(&self) -> String {
        let mut rows = self.stats();
        rows.sort_by(|a, b| {
            b.1.total_secs
                .partial_cmp(&a.1.total_secs)
                .expect("finite times")
        });
        let mut out = String::from(
            "=== component profile ===\n\
             timer                                    calls      total[s]    mean[us]     max[us]     p50[us]     p95[us]     p99[us]      allocs       cells     cells/s\n",
        );
        for (name, t) in rows {
            let mean_us = if t.calls > 0 {
                1e6 * t.total_secs / t.calls as f64
            } else {
                0.0
            };
            let p = self
                .percentiles(&name, &[0.50, 0.95, 0.99])
                .unwrap_or_else(|| vec![0.0; 3]);
            let rate = match t.cells_per_sec() {
                Some(r) => format!("{r:>11.3e}"),
                None => format!("{:>11}", "-"),
            };
            out.push_str(&format!(
                "{name:<40} {calls:>7}  {total:>12.6}  {mean_us:>10.2}  {max_us:>10.2}  {p50:>10.2}  {p95:>10.2}  {p99:>10.2}  {allocs:>10}  {cells:>10}  {rate}\n",
                calls = t.calls,
                total = t.total_secs,
                max_us = 1e6 * t.max_secs,
                p50 = 1e6 * p[0],
                p95 = 1e6 * p[1],
                p99 = 1e6 * p[2],
                allocs = t.alloc_events,
                cells = t.cells_processed,
            ));
        }
        out
    }
}

/// RAII guard created by [`Profiler::scope`].
pub struct ProfileScope {
    profiler: Profiler,
    name: String,
    start: Instant,
    /// Scratch-pool miss counter at scope entry; the delta at drop is the
    /// region's allocation count.
    alloc_start: u64,
}

impl Drop for ProfileScope {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        let allocs = crate::scratch::thread_alloc_events().saturating_sub(self.alloc_start);
        self.profiler.record_with_allocs(&self.name, secs, allocs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::new();
        {
            let _g = p.scope("x");
        }
        assert!(p.stat("x").is_none());
    }

    #[test]
    fn scopes_accumulate() {
        let p = Profiler::new();
        p.set_enabled(true);
        for _ in 0..3 {
            let _g = p.scope("comp.port");
        }
        let s = p.stat("comp.port").unwrap();
        assert_eq!(s.calls, 3);
        assert!(s.total_secs >= 0.0);
        assert!(s.max_secs >= 0.0);
    }

    #[test]
    fn record_and_report() {
        let p = Profiler::new();
        p.set_enabled(true);
        p.record("a.go", 0.25);
        p.record("a.go", 0.75);
        p.record("b.rhs", 0.1);
        let s = p.stat("a.go").unwrap();
        assert_eq!(s.calls, 2);
        assert!((s.total_secs - 1.0).abs() < 1e-12);
        assert!((s.max_secs - 0.75).abs() < 1e-12);
        let report = p.report();
        // Sorted by total time: a.go first.
        let a_pos = report.find("a.go").unwrap();
        let b_pos = report.find("b.rhs").unwrap();
        assert!(a_pos < b_pos, "{report}");
        assert!(report.contains("p99[us]"), "{report}");
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = Profiler::new();
        p.set_enabled(true);
        // 100 samples: 1ms .. 100ms.
        for k in 1..=100 {
            p.record("t", k as f64 * 1e-3);
        }
        let q = p.percentiles("t", &[0.50, 0.95, 0.99, 1.0]).unwrap();
        assert!((q[0] - 0.050).abs() < 1e-12, "{q:?}");
        assert!((q[1] - 0.095).abs() < 1e-12, "{q:?}");
        assert!((q[2] - 0.099).abs() < 1e-12, "{q:?}");
        assert!((q[3] - 0.100).abs() < 1e-12, "{q:?}");
        assert!(p.percentiles("ghost", &[0.5]).is_none());
    }

    #[test]
    fn reservoir_overwrites_oldest_samples() {
        let p = Profiler::new();
        p.set_enabled(true);
        // Overfill the ring: first SAMPLE_CAPACITY samples are slow (1s),
        // the next SAMPLE_CAPACITY are fast (1ms). Only fast ones remain.
        for _ in 0..SAMPLE_CAPACITY {
            p.record("t", 1.0);
        }
        for _ in 0..SAMPLE_CAPACITY {
            p.record("t", 1e-3);
        }
        let q = p.percentiles("t", &[1.0]).unwrap();
        assert!((q[0] - 1e-3).abs() < 1e-12, "stale sample survived: {q:?}");
        // Totals still cover every call, and max remembers the slow era.
        let s = p.stat("t").unwrap();
        assert_eq!(s.calls, 2 * SAMPLE_CAPACITY as u64);
        assert!((s.max_secs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_counters_and_reservoirs() {
        let a = Profiler::new();
        let b = Profiler::new();
        for k in 1..=50 {
            a.record("t", k as f64);
        }
        for k in 51..=100 {
            b.record("t", k as f64);
        }
        b.record("b.only", 7.0);
        let merged = Profiler::new();
        merged.absorb(&a);
        merged.absorb(&b);
        let s = merged.stat("t").unwrap();
        assert_eq!(s.calls, 100);
        assert!((s.total_secs - 5050.0).abs() < 1e-9);
        assert!((s.max_secs - 100.0).abs() < 1e-12);
        // Percentiles see both sides' samples.
        let q = merged.percentiles("t", &[0.50, 0.99]).unwrap();
        assert!((q[0] - 50.0).abs() < 1e-12, "{q:?}");
        assert!((q[1] - 99.0).abs() < 1e-12, "{q:?}");
        assert_eq!(merged.stat("b.only").unwrap().calls, 1);
        // Self-absorption is a no-op, not a doubling.
        merged.absorb(&merged.clone());
        assert_eq!(merged.stat("t").unwrap().calls, 100);
        // Sources are untouched: a second snapshot counts once again.
        let again = Profiler::new();
        again.absorb(&a);
        assert_eq!(again.stat("t").unwrap().calls, 50);
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let p = Profiler::new();
        p.set_enabled(true);
        p.record("x", 1.0);
        p.reset();
        assert!(p.stat("x").is_none());
        assert!(p.is_enabled());
    }

    #[test]
    fn scopes_attribute_scratch_alloc_events() {
        let _lock = crate::scratch::test_guard();
        let p = Profiler::new();
        p.set_enabled(true);
        crate::scratch::clear_thread_pools();
        let pooling_was = crate::scratch::pooling_enabled();
        crate::scratch::set_pooling(true);
        {
            let _g = p.scope("hot.loop");
            let _buf = crate::scratch::take_f64(64); // cold pool: one miss
        }
        {
            let _g = p.scope("hot.loop");
            let _buf = crate::scratch::take_f64(64); // warm pool: no miss
        }
        crate::scratch::set_pooling(pooling_was);
        let s = p.stat("hot.loop").unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.alloc_events, 1, "only the cold checkout allocates");
        let report = p.report();
        assert!(report.contains("allocs"), "{report}");
    }

    #[test]
    fn cells_accumulate_and_derive_throughput() {
        let p = Profiler::new();
        p.add_cells("k.rhs", 100); // disabled: dropped, mirroring scope()
        p.set_enabled(true);
        p.record("k.rhs", 0.5);
        p.add_cells("k.rhs", 1_000);
        p.add_cells("k.rhs", 1_000);
        let s = p.stat("k.rhs").unwrap();
        assert_eq!(s.cells_processed, 2_000);
        let rate = s.cells_per_sec().unwrap();
        assert!((rate - 4_000.0).abs() < 1e-9, "rate = {rate}");
        let report = p.report();
        assert!(report.contains("cells/s"), "{report}");
        assert!(report.contains("2000"), "{report}");
        // A timer with time but no cells renders a dash, not a rate.
        p.record("idle", 0.1);
        assert!(p.stat("idle").unwrap().cells_per_sec().is_none());
    }

    #[test]
    fn clones_share_state() {
        let p = Profiler::new();
        p.set_enabled(true);
        let q = p.clone();
        q.record("shared", 0.5);
        assert_eq!(p.stat("shared").unwrap().calls, 1);
    }
}
