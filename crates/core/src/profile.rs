//! Per-component performance instrumentation — the reproduction of the
//! paper's future-work item (4): "By using TAU, we intend to characterize
//! the performance characteristics of individual components and their
//! assemblies."
//!
//! A [`Profiler`] is a cheap shared registry of named timers. The
//! framework owns one and hands it to every component through its
//! [`crate::Services`]; components bracket their port bodies with
//! [`Profiler::scope`] guards. [`Profiler::report`] renders the
//! per-component table (calls, total time, mean time), the assembly-level
//! view TAU would give.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// Accumulated statistics of one named timer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimerStat {
    /// Number of completed scopes.
    pub calls: u64,
    /// Total seconds inside the scope.
    pub total_secs: f64,
}

#[derive(Default)]
struct ProfilerState {
    timers: BTreeMap<String, TimerStat>,
    enabled: bool,
}

/// Shared timing registry. Cloning shares the underlying state.
#[derive(Clone, Default)]
pub struct Profiler {
    state: Rc<RefCell<ProfilerState>>,
}

impl Profiler {
    /// New, disabled profiler (scopes cost one branch while disabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn timing on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.state.borrow_mut().enabled = enabled;
    }

    /// Is timing on?
    pub fn is_enabled(&self) -> bool {
        self.state.borrow().enabled
    }

    /// Start a scope named `component.port`; the returned guard records
    /// elapsed time when dropped. Returns `None` (no overhead) while
    /// disabled.
    pub fn scope(&self, name: &str) -> Option<ProfileScope> {
        if !self.is_enabled() {
            return None;
        }
        Some(ProfileScope {
            profiler: self.clone(),
            name: name.to_string(),
            start: Instant::now(),
        })
    }

    /// Directly record an externally measured duration.
    pub fn record(&self, name: &str, secs: f64) {
        let mut st = self.state.borrow_mut();
        let t = st.timers.entry(name.to_string()).or_default();
        t.calls += 1;
        t.total_secs += secs;
    }

    /// Snapshot of one timer.
    pub fn stat(&self, name: &str) -> Option<TimerStat> {
        self.state.borrow().timers.get(name).copied()
    }

    /// Snapshot of everything, name-sorted.
    pub fn stats(&self) -> Vec<(String, TimerStat)> {
        self.state
            .borrow()
            .timers
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Forget all recorded data (keeps the enabled flag).
    pub fn reset(&self) {
        self.state.borrow_mut().timers.clear();
    }

    /// The TAU-style report: one row per timer, sorted by total time
    /// descending.
    pub fn report(&self) -> String {
        let mut rows = self.stats();
        rows.sort_by(|a, b| {
            b.1.total_secs
                .partial_cmp(&a.1.total_secs)
                .expect("finite times")
        });
        let mut out = String::from(
            "=== component profile ===\n\
             timer                                    calls      total[s]    mean[us]\n",
        );
        for (name, t) in rows {
            let mean_us = if t.calls > 0 {
                1e6 * t.total_secs / t.calls as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{name:<40} {calls:>7}  {total:>12.6}  {mean_us:>10.2}\n",
                calls = t.calls,
                total = t.total_secs,
            ));
        }
        out
    }
}

/// RAII guard created by [`Profiler::scope`].
pub struct ProfileScope {
    profiler: Profiler,
    name: String,
    start: Instant,
}

impl Drop for ProfileScope {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        self.profiler.record(&self.name, secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::new();
        {
            let _g = p.scope("x");
        }
        assert!(p.stat("x").is_none());
    }

    #[test]
    fn scopes_accumulate() {
        let p = Profiler::new();
        p.set_enabled(true);
        for _ in 0..3 {
            let _g = p.scope("comp.port");
        }
        let s = p.stat("comp.port").unwrap();
        assert_eq!(s.calls, 3);
        assert!(s.total_secs >= 0.0);
    }

    #[test]
    fn record_and_report() {
        let p = Profiler::new();
        p.set_enabled(true);
        p.record("a.go", 0.25);
        p.record("a.go", 0.75);
        p.record("b.rhs", 0.1);
        let s = p.stat("a.go").unwrap();
        assert_eq!(s.calls, 2);
        assert!((s.total_secs - 1.0).abs() < 1e-12);
        let report = p.report();
        // Sorted by total time: a.go first.
        let a_pos = report.find("a.go").unwrap();
        let b_pos = report.find("b.rhs").unwrap();
        assert!(a_pos < b_pos, "{report}");
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let p = Profiler::new();
        p.set_enabled(true);
        p.record("x", 1.0);
        p.reset();
        assert!(p.stat("x").is_none());
        assert!(p.is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let p = Profiler::new();
        p.set_enabled(true);
        let q = p.clone();
        q.record("shared", 0.5);
        assert_eq!(p.stat("shared").unwrap().calls, 1);
    }
}
