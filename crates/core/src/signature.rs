//! Machine-checkable port signatures: what a component class *declares*,
//! harvested without wiring anything.
//!
//! CCAFFEINE learns a component's ports only by instantiating it and letting
//! `setServices` run; there is no separate interface manifest. The same is
//! true here — but because `set_services` is cheap and side-effect-free by
//! convention (components only register ports in it), the framework can
//! instantiate each palette class once into a *scratch* [`crate::Services`]
//! and record what it declared. The result is a [`ClassSignature`] manifest
//! that static tools (notably the `cca-analyze` crate) use to type-check an
//! assembly script without executing it.

use crate::ports::{GoPort, ParameterPort};
use crate::services::Services;
use std::any::TypeId;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Declared shape of one provides-port.
#[derive(Clone, Debug)]
pub struct ProvidesSignature {
    /// `TypeId` of the registered port value (conventionally `Rc<dyn Trait>`).
    pub type_id: TypeId,
    /// Human-readable form of the same type, for diagnostics.
    pub type_name: &'static str,
    /// Whether the port downcasts to [`GoPort`] — i.e. `go` may target it.
    pub is_go_port: bool,
    /// Whether the port downcasts to [`ParameterPort`] — i.e. `parameter`
    /// commands can reach the component through it.
    pub is_parameter_port: bool,
}

/// Declared shape of one uses-port.
#[derive(Clone, Debug)]
pub struct UsesSignature {
    /// `TypeId` the slot will accept on `connect`.
    pub type_id: TypeId,
    /// Human-readable form of the same type, for diagnostics.
    pub type_name: &'static str,
    /// Optional slots (CCA `minOccurs = 0`) may stay dangling at `go`.
    pub optional: bool,
}

/// Everything one palette class declares through `set_services`.
#[derive(Clone, Debug)]
pub struct ClassSignature {
    /// Palette class name the signature was harvested from.
    pub class: String,
    /// Provides-ports by port name (sorted).
    pub provides: BTreeMap<String, ProvidesSignature>,
    /// Uses-ports by port name (sorted).
    pub uses: BTreeMap<String, UsesSignature>,
}

impl ClassSignature {
    /// Harvest the signature from a scratch services registry that a fresh
    /// component instance has just populated.
    pub(crate) fn harvest(class: &str, services: &Services) -> Self {
        let st = services.state.borrow();
        let provides = st
            .provides
            .iter()
            .map(|(name, po)| {
                (
                    name.clone(),
                    ProvidesSignature {
                        type_id: po.type_id,
                        type_name: po.type_name,
                        is_go_port: po.downcast_ref::<Rc<dyn GoPort>>().is_some(),
                        is_parameter_port: po.downcast_ref::<Rc<dyn ParameterPort>>().is_some(),
                    },
                )
            })
            .collect();
        let uses = st
            .uses
            .iter()
            .map(|(name, slot)| {
                (
                    name.clone(),
                    UsesSignature {
                        type_id: slot.type_id,
                        type_name: slot.type_name,
                        optional: slot.optional,
                    },
                )
            })
            .collect();
        ClassSignature {
            class: class.to_string(),
            provides,
            uses,
        }
    }

    /// Does the class expose any [`ParameterPort`] (so `parameter` commands
    /// can reach it)?
    pub fn has_parameter_port(&self) -> bool {
        self.provides.values().any(|p| p.is_parameter_port)
    }

    /// Names of the non-optional uses-ports — the slots that must be wired
    /// before a `go` may run.
    pub fn required_uses(&self) -> impl Iterator<Item = (&String, &UsesSignature)> {
        self.uses.iter().filter(|(_, u)| !u.optional)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::ParameterStore;
    use crate::services::Component;
    use crate::Framework;

    trait Dummy {}

    struct Driver;
    impl GoPort for Driver {
        fn go(&self) -> Result<(), String> {
            Ok(())
        }
    }

    struct Probe;
    impl Component for Probe {
        fn set_services(&mut self, s: Services) {
            s.add_provides_port::<Rc<dyn GoPort>>("go", Rc::new(Driver));
            s.add_provides_port::<Rc<dyn ParameterPort>>("params", Rc::new(ParameterStore::new()));
            s.register_uses_port::<Rc<dyn Dummy>>("input");
            s.register_optional_uses_port::<Rc<dyn Dummy>>("extra");
        }
    }

    #[test]
    fn harvest_records_ports_and_capabilities() {
        let mut fw = Framework::new();
        fw.register_class("Probe", || Box::new(Probe));
        let sig = fw.class_signature("Probe").unwrap();
        assert_eq!(sig.class, "Probe");
        assert!(sig.provides["go"].is_go_port);
        assert!(!sig.provides["go"].is_parameter_port);
        assert!(sig.provides["params"].is_parameter_port);
        assert!(sig.has_parameter_port());
        assert!(!sig.uses["input"].optional);
        assert!(sig.uses["extra"].optional);
        assert_eq!(
            sig.required_uses()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["input"]
        );
        assert_eq!(sig.uses["input"].type_id, TypeId::of::<Rc<dyn Dummy>>());
    }

    #[test]
    fn signatures_cover_whole_palette() {
        let mut fw = Framework::new();
        fw.register_class("Probe", || Box::new(Probe));
        let all = fw.class_signatures();
        assert_eq!(all.len(), 1);
        assert!(all.contains_key("Probe"));
        assert!(fw.class_signature("Nope").is_err());
        // Harvesting leaves the framework untouched.
        assert!(fw.instance_names().is_empty());
    }
}
