//! Framework-standard port traits. Most ports are domain-specific and live
//! with the components that define them (paper §2: "Most Ports are
//! domain-specific and their design is left to the user community"); only
//! two are known to the framework itself.

/// The driver entry point. The script command `go <instance> <port>`
/// invokes this on a provides-port, exactly like CCAFFEINE's `GoPort`.
pub trait GoPort {
    /// Run the application (or the component's unit of work).
    fn go(&self) -> Result<(), String>;
}

/// Key-value configuration, the framework-visible face of the paper's
/// *Database components*: "maps between the (character string) property
/// name and a number". The script command `parameter <instance> <key>
/// <value>` feeds this port.
pub trait ParameterPort {
    /// Set a named numeric parameter.
    fn set_parameter(&self, key: &str, value: f64);
    /// Get a named numeric parameter, if present.
    fn get_parameter(&self, key: &str) -> Option<f64>;
}

/// A ready-made `ParameterPort` backed by a map; components that only need
/// plain key-value storage can provide one of these directly.
#[derive(Default)]
pub struct ParameterStore {
    map: std::cell::RefCell<std::collections::BTreeMap<String, f64>>,
}

impl ParameterStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// All keys currently set (sorted).
    pub fn keys(&self) -> Vec<String> {
        self.map.borrow().keys().cloned().collect()
    }
}

impl ParameterPort for ParameterStore {
    fn set_parameter(&self, key: &str, value: f64) {
        self.map.borrow_mut().insert(key.to_string(), value);
    }

    fn get_parameter(&self, key: &str) -> Option<f64> {
        self.map.borrow().get(key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_store_roundtrip() {
        let p = ParameterStore::new();
        assert_eq!(p.get_parameter("gamma"), None);
        p.set_parameter("gamma", 1.4);
        p.set_parameter("alpha", 2.0);
        assert_eq!(p.get_parameter("gamma"), Some(1.4));
        assert_eq!(p.keys(), vec!["alpha".to_string(), "gamma".to_string()]);
        p.set_parameter("gamma", 1.67); // overwrite
        assert_eq!(p.get_parameter("gamma"), Some(1.67));
    }
}
