//! `cca-core` — a Rust rendition of the Common Component Architecture (CCA)
//! component model as implemented by the CCAFFEINE framework.
//!
//! The model (paper §2) in one paragraph: *components* are peer objects that
//! **provide** functionality through exported interfaces and **use** other
//! components' functionality through imported interfaces; both kinds of
//! interface are called *ports*. Components are created inside a
//! *framework*, where they register themselves and their ports via a single
//! deferred method `set_services`. Connecting a uses-port to a
//! provides-port is just the movement of (a pointer to) an interface from
//! the providing component to the using one; a method invocation on a
//! uses-port therefore costs one virtual-function call.
//!
//! Mapping to Rust:
//!
//! | CCAFFEINE                         | here                                   |
//! |-----------------------------------|----------------------------------------|
//! | abstract class `Component`        | [`Component`] trait                    |
//! | `setServices(Services*)`          | [`Component::set_services`]            |
//! | port = abstract class             | port = object-safe trait, passed as `Rc<dyn Trait>` |
//! | `.so` palette + `instantiate`     | [`Framework`] factory palette + [`Framework::instantiate`] |
//! | `connect u uPort p pPort` script  | [`Framework::connect`] / [`script`]    |
//! | GUI arena (Figs 1, 2, 5)          | [`Framework::render_arena`]            |
//!
//! The "negligible overhead" claim of the paper's Table 4 is about exactly
//! the dispatch this crate produces: a call through `Rc<dyn Port>` is one
//! indirect call, the same machine-level operation as a C++ virtual call
//! through the CCA port.
//!
//! ```
//! use cca_core::{Component, Framework, Services};
//! use std::rc::Rc;
//!
//! // A domain port, designed by the user community:
//! trait Doubler { fn double(&self, x: f64) -> f64; }
//!
//! struct DoublerImpl;
//! impl Doubler for DoublerImpl { fn double(&self, x: f64) -> f64 { 2.0 * x } }
//!
//! struct Provider;
//! impl Component for Provider {
//!     fn set_services(&mut self, s: Services) {
//!         s.add_provides_port::<Rc<dyn Doubler>>("dbl", Rc::new(DoublerImpl));
//!     }
//! }
//!
//! struct User { services: Option<Services> }
//! impl Component for User {
//!     fn set_services(&mut self, s: Services) {
//!         s.register_uses_port::<Rc<dyn Doubler>>("dbl-in");
//!         self.services = Some(s);
//!     }
//! }
//!
//! let mut fw = Framework::new();
//! fw.register_class("Provider", || Box::new(Provider));
//! fw.register_class("User", || Box::new(User { services: None }));
//! fw.instantiate("Provider", "p").unwrap();
//! fw.instantiate("User", "u").unwrap();
//! fw.connect("u", "dbl-in", "p", "dbl").unwrap();
//!
//! let port: Rc<dyn Doubler> = fw.services("u").unwrap().get_port("dbl-in").unwrap();
//! assert_eq!(port.double(21.0), 42.0);
//! ```

pub mod error;
pub mod executor;
pub mod framework;
pub mod ports;
pub mod profile;
pub mod scratch;
pub mod script;
pub mod services;
pub mod signature;

pub use error::CcaError;
pub use executor::{Executor, ExecutorStats, KernelFailure, RunReport};
pub use framework::{DanglingPort, Framework};
pub use ports::{GoPort, ParameterPort, ParameterStore};
pub use profile::{Profiler, TimerStat};
pub use scratch::{ScratchF64, ScratchI64, ScratchStats};
pub use services::{Component, Services};
pub use signature::{ClassSignature, ProvidesSignature, UsesSignature};
