//! Patch-parallel kernel executor: a persistent work-stealing worker pool
//! shared through [`crate::Services`] the way the [`Profiler`] is.
//!
//! # Why ownership transfer
//!
//! The workspace forbids `unsafe` (`unsafe_code = "deny"`), which rules
//! out the classic scoped-threads trick of lending `&mut` patch views into
//! long-lived worker threads. Instead the executor runs *owned* work
//! items: the caller moves each item (typically one SAMR patch's data)
//! into a job, workers mutate it through the shared kernel closure, and
//! every item is sent back over a channel and reassembled **in index
//! order**. Disjointness is therefore a fact of ownership, not a promise:
//! two workers cannot alias a patch because each patch is owned by exactly
//! one job.
//!
//! # Determinism
//!
//! The kernel runs the same code whether the pool has one worker or many —
//! at `workers == 1` the executor simply runs the jobs inline in index
//! order. Because jobs only touch the item they own and results are
//! reassembled by index, a run with N workers is bit-identical to the
//! serial run for any kernel that is a pure function of its item.
//!
//! # Panic containment
//!
//! A panicking kernel never takes down the pool and never loses a patch:
//! each job wraps the kernel in `catch_unwind` while *borrowing* its item,
//! so the item survives the panic and is returned alongside a
//! [`KernelFailure`]. [`RunReport::into_result`] turns any failure into a
//! poisoned-run error listing every failed index.

use crate::profile::Profiler;
use crossbeam::deque::{Injector, Steal, Stealer, Worker as LocalQueue};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Environment variable consulted by [`crate::Framework::new`] for the
/// initial worker count (a positive integer; `1` means serial).
pub const WORKERS_ENV: &str = "CCA_HYDRO_THREADS";

/// A type-erased job: receives the index of the worker executing it.
type Job = Box<dyn FnOnce(usize) + Send>;

/// One kernel invocation that panicked.
#[derive(Clone, Debug)]
pub struct KernelFailure {
    /// Index of the work item whose kernel panicked.
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for KernelFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item {}: {}", self.index, self.message)
    }
}

/// Outcome of one [`Executor::run`]: every item comes back (in submission
/// order) even when kernels panicked.
#[derive(Debug)]
pub struct RunReport<T> {
    /// The work items, in the order they were submitted. Items whose
    /// kernel panicked are returned in whatever intermediate state the
    /// kernel left them.
    pub items: Vec<T>,
    /// Kernel panics, sorted by item index; empty on a clean run.
    pub failures: Vec<KernelFailure>,
    /// Busy seconds per worker (length = workers used for this run).
    pub worker_busy: Vec<f64>,
    /// Kernel seconds per item, in submission order. Summed over a
    /// worker these add up to that worker's `worker_busy` entry; the
    /// caller can use them to model makespans under other worker counts.
    pub item_busy: Vec<f64>,
}

impl<T> RunReport<T> {
    /// True if any kernel panicked.
    pub fn poisoned(&self) -> bool {
        !self.failures.is_empty()
    }

    /// The items on a clean run, or a poisoned-run error naming every
    /// failed item.
    pub fn into_result(self) -> Result<Vec<T>, String> {
        if self.failures.is_empty() {
            return Ok(self.items);
        }
        let list: Vec<String> = self.failures.iter().map(|f| f.to_string()).collect();
        Err(format!(
            "executor run poisoned: {} of {} kernels panicked [{}]",
            self.failures.len(),
            self.items.len(),
            list.join("; ")
        ))
    }
}

/// What a finished job sends home.
struct Done<T> {
    index: usize,
    item: T,
    worker: usize,
    busy: f64,
    panic: Option<String>,
}

struct PoolState {
    /// Monotone submission counter; workers compare against their last
    /// observed value to decide whether sleeping is safe (no lost wakeup).
    tickets: u64,
    shutdown: bool,
}

struct PoolShared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    state: Mutex<PoolState>,
    signal: Condvar,
}

/// Persistent worker threads around a global injector plus per-worker
/// work-stealing deques.
struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl Pool {
    fn new(workers: usize) -> Self {
        let locals: Vec<LocalQueue<Job>> = (0..workers).map(|_| LocalQueue::new_fifo()).collect();
        let stealers = locals.iter().map(LocalQueue::stealer).collect();
        let shared = Arc::new(PoolShared {
            injector: Injector::new(),
            stealers,
            state: Mutex::new(PoolState {
                tickets: 0,
                shutdown: false,
            }),
            signal: Condvar::new(),
        });
        let handles = locals
            .into_iter()
            .enumerate()
            .map(|(k, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cca-exec-{k}"))
                    .spawn(move || worker_loop(local, &shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            workers,
        }
    }

    fn submit(&self, job: Job) {
        self.shared.injector.push(job);
        {
            let mut st = self.shared.state.lock();
            st.tickets += 1;
        }
        self.shared.signal.notify_all();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.signal.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(local: LocalQueue<Job>, shared: &PoolShared) {
    // Worker index recovered from the thread name set in Pool::new.
    let me = std::thread::current()
        .name()
        .and_then(|n| n.strip_prefix("cca-exec-").and_then(|s| s.parse().ok()))
        .unwrap_or(0);
    let mut seen_tickets = 0u64;
    loop {
        if let Some(job) = find_job(&local, shared) {
            job(me);
            continue;
        }
        let mut st = shared.state.lock();
        if st.shutdown {
            return;
        }
        if st.tickets == seen_tickets {
            shared.signal.wait(&mut st);
        }
        if st.shutdown {
            return;
        }
        seen_tickets = st.tickets;
    }
}

/// Local queue first, then a batch from the global injector, then steal
/// from a sibling — the standard crossbeam-deque search order.
fn find_job(local: &LocalQueue<Job>, shared: &PoolShared) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            Steal::Success(job) => return Some(job),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for stealer in &shared.stealers {
        loop {
            match stealer.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

/// Cheap cumulative counters of everything an [`Executor`] has done since
/// construction — the machine-readable snapshot a serving tier embeds in
/// its own stats instead of parsing profiler text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Currently configured worker count.
    pub workers: usize,
    /// Completed [`Executor::run`] invocations.
    pub runs: u64,
    /// Work items executed across all runs (including panicked ones).
    pub items: u64,
    /// Kernel panics contained by `catch_unwind` across all runs.
    pub poisonings: u64,
}

impl ExecutorStats {
    /// Merge another snapshot into this one (counters add; `workers`
    /// takes the other's value so the merged snapshot reflects the most
    /// recently observed configuration).
    pub fn absorb(&mut self, other: &ExecutorStats) {
        self.workers = other.workers;
        self.runs += other.runs;
        self.items += other.items;
        self.poisonings += other.poisonings;
    }
}

struct ExecCore {
    workers: usize,
    pool: Option<Pool>,
    runs: u64,
    items: u64,
    poisonings: u64,
}

impl ExecCore {
    /// The pool matching the configured worker count, created on first
    /// parallel use and kept across runs (persistent threads).
    fn pool(&mut self) -> &Pool {
        if self.pool.as_ref().is_none_or(|p| p.workers != self.workers) {
            self.pool = Some(Pool::new(self.workers));
        }
        self.pool.as_ref().expect("pool just ensured")
    }
}

/// Cheap-to-clone handle to the framework's patch-kernel executor.
///
/// Handed to components through [`crate::Services::executor`] exactly like
/// the [`Profiler`]; all clones share the worker-count setting and the
/// underlying pool. The handle itself is single-threaded (`Rc`-based, like
/// everything at the framework layer); only the pool's internals are
/// shared across threads.
#[derive(Clone)]
pub struct Executor {
    core: Rc<RefCell<ExecCore>>,
    profiler: Profiler,
}

impl Executor {
    /// New serial executor (one worker, inline execution) reporting kernel
    /// times into `profiler`.
    pub fn new(profiler: Profiler) -> Self {
        Executor {
            core: Rc::new(RefCell::new(ExecCore {
                workers: 1,
                pool: None,
                runs: 0,
                items: 0,
                poisonings: 0,
            })),
            profiler,
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.core.borrow().workers
    }

    /// The profiler this executor reports run times into, so callers can
    /// attach extra per-label stats (e.g. cell counts) to the same timers.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Snapshot of the cumulative run/item/poisoning counters. O(1), no
    /// allocation — cheap enough to call after every run.
    pub fn stats(&self) -> ExecutorStats {
        let core = self.core.borrow();
        ExecutorStats {
            workers: core.workers,
            runs: core.runs,
            items: core.items,
            poisonings: core.poisonings,
        }
    }

    /// Set the worker count (clamped to at least 1). At `1` kernels run
    /// inline on the calling thread; above `1` a persistent pool of that
    /// many worker threads executes them. Takes effect on the next run;
    /// all [`Executor`] clones (every component's `Services`) observe it.
    pub fn set_workers(&self, workers: usize) {
        let workers = workers.max(1);
        let mut core = self.core.borrow_mut();
        if core.workers != workers {
            core.workers = workers;
            // Drop eagerly so a shrink releases its threads now, not at
            // the next run.
            core.pool = None;
        }
    }

    /// Parse a `CCA_HYDRO_THREADS`-style setting. `None`, empty, zero, or
    /// garbage all mean "serial".
    pub fn workers_from_env_value(value: Option<&str>) -> usize {
        value
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    }

    /// Execute `kernel` once per item, concurrently across the worker
    /// pool, and hand every item back in submission order.
    ///
    /// The kernel receives `(index, &mut item)`. Items are moved into jobs
    /// (ownership = disjointness; see the module docs) and reassembled by
    /// index, so the result is independent of scheduling.
    ///
    /// When profiling is enabled, each item's kernel time is recorded
    /// under the plain `label` (one call per item, exactly like a
    /// profiler scope around a serial per-patch loop), and — on genuinely
    /// parallel runs — per-worker busy totals are additionally recorded
    /// as `{label}[w{k}]`.
    pub fn run<T, F>(&self, label: &str, items: Vec<T>, kernel: F) -> RunReport<T>
    where
        T: Send + 'static,
        F: Fn(usize, &mut T) + Send + Sync + 'static,
    {
        let mut core = self.core.borrow_mut();
        let report = if core.workers <= 1 || items.len() <= 1 {
            run_serial(items, &kernel)
        } else {
            run_parallel(core.pool(), items, kernel)
        };
        self.account(core, label, report)
    }

    /// Like [`Executor::run`] but items *start* in descending `priority`
    /// order (stable: equal priorities keep submission order) instead of
    /// index order. Results still come back in submission order, and —
    /// because each kernel is a pure function of its own item — they are
    /// bit-identical to a plain `run` at any worker count; only the
    /// schedule changes.
    ///
    /// The integrator uses this to start boundary-adjacent patches first:
    /// their results are what the next ghost exchange (and, distributed,
    /// the next halo message) waits on, so front-loading them shortens the
    /// critical path.
    pub fn run_with_priority<T, F, P>(
        &self,
        label: &str,
        items: Vec<T>,
        priority: P,
        kernel: F,
    ) -> RunReport<T>
    where
        T: Send + 'static,
        F: Fn(usize, &mut T) + Send + Sync + 'static,
        P: Fn(usize, &T) -> i64,
    {
        let prio: Vec<i64> = items
            .iter()
            .enumerate()
            .map(|(i, item)| priority(i, item))
            .collect();
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(prio[i]));
        let mut core = self.core.borrow_mut();
        let report = if core.workers <= 1 || items.len() <= 1 {
            run_serial_ordered(items, &order, &kernel)
        } else {
            run_parallel_ordered(core.pool(), items, &order, kernel)
        };
        self.account(core, label, report)
    }

    fn account<T>(
        &self,
        mut core: std::cell::RefMut<'_, ExecCore>,
        label: &str,
        report: RunReport<T>,
    ) -> RunReport<T> {
        core.runs += 1;
        core.items += report.items.len() as u64;
        core.poisonings += report.failures.len() as u64;
        drop(core);
        if self.profiler.is_enabled() {
            for busy in &report.item_busy {
                self.profiler.record(label, *busy);
            }
            if report.worker_busy.len() > 1 {
                for (k, busy) in report.worker_busy.iter().enumerate() {
                    if *busy > 0.0 {
                        self.profiler.record(&format!("{label}[w{k}]"), *busy);
                    }
                }
            }
        }
        report
    }
}

fn run_serial<T, F>(mut items: Vec<T>, kernel: &F) -> RunReport<T>
where
    F: Fn(usize, &mut T),
{
    let mut failures = Vec::new();
    let mut item_busy = Vec::with_capacity(items.len());
    for (i, item) in items.iter_mut().enumerate() {
        let start = Instant::now();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| kernel(i, item))) {
            failures.push(KernelFailure {
                index: i,
                message: panic_message(payload.as_ref()),
            });
        }
        item_busy.push(start.elapsed().as_secs_f64());
    }
    RunReport {
        items,
        failures,
        worker_busy: vec![item_busy.iter().sum()],
        item_busy,
    }
}

/// [`run_serial`] with an explicit execution order (result layout is
/// still submission order; a pure kernel makes the two bit-identical).
fn run_serial_ordered<T, F>(mut items: Vec<T>, order: &[usize], kernel: &F) -> RunReport<T>
where
    F: Fn(usize, &mut T),
{
    let mut failures = Vec::new();
    let mut item_busy = vec![0.0; items.len()];
    for &i in order {
        let start = Instant::now();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| kernel(i, &mut items[i]))) {
            failures.push(KernelFailure {
                index: i,
                message: panic_message(payload.as_ref()),
            });
        }
        item_busy[i] = start.elapsed().as_secs_f64();
    }
    failures.sort_by_key(|f| f.index);
    RunReport {
        items,
        failures,
        worker_busy: vec![item_busy.iter().sum()],
        item_busy,
    }
}

fn run_parallel<T, F>(pool: &Pool, items: Vec<T>, kernel: F) -> RunReport<T>
where
    T: Send + 'static,
    F: Fn(usize, &mut T) + Send + Sync + 'static,
{
    let order: Vec<usize> = (0..items.len()).collect();
    run_parallel_ordered(pool, items, &order, kernel)
}

/// [`run_parallel`] with an explicit submission order: earlier-submitted
/// jobs are picked up by workers first, so `order` is a soft execution
/// priority (work stealing may still interleave).
fn run_parallel_ordered<T, F>(
    pool: &Pool,
    items: Vec<T>,
    order: &[usize],
    kernel: F,
) -> RunReport<T>
where
    T: Send + 'static,
    F: Fn(usize, &mut T) + Send + Sync + 'static,
{
    let n = items.len();
    let kernel = Arc::new(kernel);
    let (tx, rx) = mpsc::channel::<Done<T>>();
    let mut pending: Vec<Option<T>> = items.into_iter().map(Some).collect();
    for &i in order {
        let mut item = pending[i]
            .take()
            .expect("each index submitted exactly once");
        let kernel = Arc::clone(&kernel);
        let tx = tx.clone();
        pool.submit(Box::new(move |worker| {
            let start = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| kernel(i, &mut item)));
            let _ = tx.send(Done {
                index: i,
                item,
                worker,
                busy: start.elapsed().as_secs_f64(),
                panic: outcome.err().map(|p| panic_message(p.as_ref())),
            });
        }));
    }
    drop(tx);

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut worker_busy = vec![0.0; pool.workers];
    let mut item_busy = vec![0.0; n];
    let mut failures = Vec::new();
    for _ in 0..n {
        let done = rx
            .recv()
            .expect("catch_unwind guarantees every job reports");
        worker_busy[done.worker.min(pool.workers - 1)] += done.busy;
        item_busy[done.index] = done.busy;
        if let Some(message) = done.panic {
            failures.push(KernelFailure {
                index: done.index,
                message,
            });
        }
        slots[done.index] = Some(done.item);
    }
    failures.sort_by_key(|f| f.index);
    RunReport {
        items: slots
            .into_iter()
            .map(|s| s.expect("each index reports exactly once"))
            .collect(),
        failures,
        worker_busy,
        item_busy,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(workers: usize) -> Executor {
        let e = Executor::new(Profiler::new());
        e.set_workers(workers);
        e
    }

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        let items: Vec<(usize, f64)> = (0..64).map(|i| (i, i as f64 * 0.1)).collect();
        let kernel = |_: usize, it: &mut (usize, f64)| {
            for _ in 0..100 {
                it.1 = (it.1 * 1.000001).sin().mul_add(0.5, it.1);
            }
        };
        let serial = exec(1)
            .run("k", items.clone(), kernel)
            .into_result()
            .unwrap();
        for workers in [2, 4] {
            let par = exec(workers)
                .run("k", items.clone(), kernel)
                .into_result()
                .unwrap();
            assert_eq!(serial.len(), par.len());
            for (s, p) in serial.iter().zip(&par) {
                assert_eq!(s.0, p.0);
                assert_eq!(s.1.to_bits(), p.1.to_bits(), "item {}", s.0);
            }
        }
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let items: Vec<usize> = (0..100).collect();
        let report = exec(4).run("order", items, |i, it| {
            // Uneven work so completion order scrambles.
            std::thread::sleep(std::time::Duration::from_micros(((i * 7) % 13) as u64));
            *it += 1000;
        });
        assert!(!report.poisoned());
        for (i, it) in report.items.iter().enumerate() {
            assert_eq!(*it, 1000 + i);
        }
    }

    #[test]
    fn priority_controls_serial_execution_order_but_not_results() {
        let started: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&started);
        let items: Vec<usize> = (0..8).collect();
        // Even indices are "boundary" items and must start first.
        let report = exec(1).run_with_priority(
            "prio",
            items,
            |i, _| if i % 2 == 0 { 1 } else { 0 },
            move |i, it| {
                log.lock().push(i);
                *it += 100;
            },
        );
        assert!(!report.poisoned());
        // Results in submission order regardless of schedule.
        for (i, it) in report.items.iter().enumerate() {
            assert_eq!(*it, 100 + i);
        }
        // Evens first (stable within each class), then odds.
        assert_eq!(*started.lock(), vec![0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn priority_run_matches_plain_run_bitwise_at_any_worker_count() {
        let items: Vec<(usize, f64)> = (0..48).map(|i| (i, i as f64 * 0.3)).collect();
        let kernel = |_: usize, it: &mut (usize, f64)| {
            for _ in 0..50 {
                it.1 = (it.1 * 1.000001).sin().mul_add(0.5, it.1);
            }
        };
        let plain = exec(1)
            .run("k", items.clone(), kernel)
            .into_result()
            .unwrap();
        for workers in [1, 4] {
            let prioritized = exec(workers)
                .run_with_priority("k", items.clone(), |i, _| -(i as i64 % 5), kernel)
                .into_result()
                .unwrap();
            for (s, p) in plain.iter().zip(&prioritized) {
                assert_eq!(s.0, p.0);
                assert_eq!(s.1.to_bits(), p.1.to_bits(), "item {}", s.0);
            }
        }
    }

    #[test]
    fn priority_run_contains_panics_like_plain_run() {
        let report = exec(1).run_with_priority(
            "p",
            (0..10).collect::<Vec<i32>>(),
            |i, _| -(i as i64),
            |i, it| {
                if i == 4 {
                    panic!("boom at {i}");
                }
                *it += 1;
            },
        );
        assert!(report.poisoned());
        assert_eq!(report.items.len(), 10);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, 4);
    }

    #[test]
    fn panic_poisons_but_loses_nothing() {
        for workers in [1, 3] {
            let items: Vec<i32> = (0..20).collect();
            let report = exec(workers).run("p", items, |i, it| {
                if i % 7 == 3 {
                    panic!("boom at {i}");
                }
                *it = -*it;
            });
            assert!(report.poisoned());
            assert_eq!(report.items.len(), 20, "no lost items");
            let failed: Vec<usize> = report.failures.iter().map(|f| f.index).collect();
            assert_eq!(failed, vec![3, 10, 17]);
            assert!(report.failures[0].message.contains("boom at 3"));
            let err = report.into_result().unwrap_err();
            assert!(err.contains("poisoned"), "{err}");
            assert!(err.contains("boom at 10"), "{err}");
        }
    }

    #[test]
    fn pool_survives_across_runs_and_resizes() {
        let e = exec(3);
        for round in 0..5 {
            let out = e
                .run("r", vec![round; 16], |_, it| *it *= 2)
                .into_result()
                .unwrap();
            assert_eq!(out, vec![round * 2; 16]);
        }
        e.set_workers(2);
        let out = e
            .run("r", vec![1; 8], |_, it| *it += 1)
            .into_result()
            .unwrap();
        assert_eq!(out, vec![2; 8]);
        assert_eq!(e.workers(), 2);
    }

    #[test]
    fn profiler_gets_per_worker_records() {
        let profiler = Profiler::new();
        profiler.set_enabled(true);
        let e = Executor::new(profiler.clone());
        e.set_workers(2);
        let report = e.run("diff.rhs", (0..32).collect::<Vec<i32>>(), |_, it| {
            *it = it.wrapping_mul(3);
        });
        assert!(!report.poisoned());
        assert_eq!(report.worker_busy.len(), 2);
        let stats = profiler.stats();
        assert!(
            stats.iter().any(|(name, _)| name.starts_with("diff.rhs[w")),
            "no per-worker timer in {stats:?}"
        );
    }

    #[test]
    fn stats_count_runs_items_and_poisonings() {
        let e = exec(2);
        assert_eq!(e.stats(), ExecutorStats::default().with_workers(2));
        e.run("a", vec![0i32; 8], |_, it| *it += 1);
        let report = e.run("b", (0..4).collect::<Vec<i32>>(), |i, _| {
            if i == 2 {
                panic!("boom");
            }
        });
        assert!(report.poisoned());
        let s = e.stats();
        assert_eq!(s.runs, 2);
        assert_eq!(s.items, 12);
        assert_eq!(s.poisonings, 1);
        assert_eq!(s.workers, 2);
        // Snapshots merge additively.
        let mut agg = ExecutorStats::default();
        agg.absorb(&s);
        agg.absorb(&s);
        assert_eq!(agg.runs, 4);
        assert_eq!(agg.items, 24);
        assert_eq!(agg.poisonings, 2);
    }

    impl ExecutorStats {
        fn with_workers(mut self, workers: usize) -> Self {
            self.workers = workers;
            self
        }
    }

    #[test]
    fn env_value_parsing() {
        assert_eq!(Executor::workers_from_env_value(None), 1);
        assert_eq!(Executor::workers_from_env_value(Some("")), 1);
        assert_eq!(Executor::workers_from_env_value(Some("0")), 1);
        assert_eq!(Executor::workers_from_env_value(Some("junk")), 1);
        assert_eq!(Executor::workers_from_env_value(Some(" 4 ")), 4);
    }
}
